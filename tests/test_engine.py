"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_starts_at_time_zero():
    assert Simulator().now == 0.0


def test_runs_callback_at_scheduled_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_run_fifo():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(1.0, lambda lab=label: order.append(lab))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run(until=2.5)
    assert sim.now == 2.5
    assert sim.pending == 1


def test_pending_counts_cancelled_but_pending_active_skips_them():
    # Regression for the pending-vs-cancelled mismatch: `pending` is a
    # raw heap size (cancelled entries are only removed lazily), while
    # `pending_active` reports what will actually run.
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    assert (sim.pending, sim.pending_active) == (2, 2)
    drop.cancel()
    assert sim.pending == 2          # lazy removal: entry still queued
    assert sim.pending_active == 1   # but it will never run
    drop.cancel()                    # idempotent
    assert sim.pending_active == 1
    keep.cancel()
    assert sim.pending_active == 0
    sim.run()
    assert (sim.pending, sim.pending_active) == (0, 0)
    assert sim.events_processed == 0


def test_run_until_resumes():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run(until=2.5)
    assert seen == []
    sim.run(until=10.0)
    assert seen == [5.0]


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def tick():
        seen.append(sim.now)
        if sim.now < 3.0:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_cancelled_event_does_not_run():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, lambda: seen.append("x"))
    event.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_step_executes_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(1))
    sim.schedule(2.0, lambda: seen.append(2))
    assert sim.step() is True
    assert seen == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reentrant_run_rejected():
    sim = Simulator()

    def naughty():
        sim.run()

    sim.schedule(1.0, naughty)
    with pytest.raises(SimulationError):
        sim.run()


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_property_execution_order_is_sorted(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(st.lists(st.floats(min_value=0.001, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=30),
       st.integers(min_value=0, max_value=29))
def test_property_cancellation_removes_exactly_one(delays, cancel_idx):
    sim = Simulator()
    count = [0]
    events = [sim.schedule(d, lambda: count.__setitem__(0, count[0] + 1))
              for d in delays]
    events[cancel_idx % len(events)].cancel()
    sim.run()
    assert count[0] == len(delays) - 1


# -- float-noise clamping ---------------------------------------------------

def test_tiny_negative_delay_clamps_to_now():
    # A delay negative only by floating-point error (e.g. computing
    # `next_tx - now` after accumulating rounding) schedules at `now`
    # instead of raising.
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule(-1e-12,
                                           lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.0]


def test_genuinely_negative_delay_still_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1e-6, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_later(-1e-6, lambda: None)


def test_call_at_tiny_past_clamps():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.call_at(1.0 - 1e-12,
                                          lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.0]


# -- the handle-free fast path ---------------------------------------------

def test_call_later_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.call_later(2.0, lambda: order.append("b"))
    sim.call_later(1.0, lambda: order.append("a"))
    sim.call_at(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.events_processed == 3


def test_call_later_interleaves_fifo_with_schedule():
    # Both scheduling families share one sequence counter, so ties
    # between them still run in submission order.
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("ev1"))
    sim.call_later(1.0, lambda: order.append("cb1"))
    sim.schedule(1.0, lambda: order.append("ev2"))
    sim.call_later(1.0, lambda: order.append("cb2"))
    sim.run()
    assert order == ["ev1", "cb1", "ev2", "cb2"]


def test_call_later_counts_as_pending_active():
    sim = Simulator()
    sim.call_later(1.0, lambda: None)
    assert (sim.pending, sim.pending_active) == (1, 1)
    sim.run()
    assert (sim.pending, sim.pending_active) == (0, 0)
