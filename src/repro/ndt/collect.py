"""Collect NDT-style records from the packet-level simulator.

An :class:`NdtCollector` runs a speedtest-shaped bulk transfer on a
simulated path and snapshots the sender's ``TCPInfo`` on the NDT
cadence.  Records produced here flow through the same
:mod:`repro.ndt.pipeline` as synthetic ones -- closing the loop between
the simulator substrate and the passive analysis.
"""

from __future__ import annotations

from ..cca.base import CongestionControl
from ..cca.cubic import CubicCca
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..tcp.endpoint import Connection
from ..tcp.tcp_info import TcpInfoSnapshot
from .schema import NdtRecord


class NdtCollector:
    """A simulated NDT measurement flow.

    Args:
        sim: the simulator.
        path: path under test.
        flow_id: flow identifier.
        duration: test length (NDT uses 10 s).
        snapshot_interval: TCPInfo snapshot cadence.
        access_type: metadata tag carried into the record.
        cca: transport CCA (NDT servers run Cubic or BBR).
        rwnd_bytes: receiver window, to model receiver-limited tests.
    """

    def __init__(self, sim: Simulator, path: PathHandles, flow_id: str,
                 duration: float = 10.0, snapshot_interval: float = 0.25,
                 access_type: str = "cable",
                 cca: CongestionControl | None = None,
                 rwnd_bytes: int | None = None,
                 true_class: str = "", true_contention: bool = False):
        self.sim = sim
        self.flow_id = flow_id
        self.duration = duration
        self.snapshot_interval = snapshot_interval
        self.access_type = access_type
        self.true_class = true_class
        self.true_contention = true_contention
        self.connection = Connection(
            sim, path, flow_id, cca if cca is not None else CubicCca(),
            rwnd_bytes=rwnd_bytes)
        self._snapshots: list[TcpInfoSnapshot] = []
        self._path = path

    def start(self) -> None:
        """Begin the test; snapshots collect until ``duration``."""
        self.connection.sender.set_infinite_backlog()
        self._start_time = self.sim.now
        self.sim.schedule(self.snapshot_interval, self._snap)

    def _snap(self) -> None:
        self._snapshots.append(self.connection.sender.snapshot())
        if self.sim.now - self._start_time < self.duration - 1e-9:
            self.sim.schedule(self.snapshot_interval, self._snap)
        else:
            # Test over: stop offering load.
            sender = self.connection.sender
            sender._infinite_backlog = False
            sender._total_written = sender.snd_nxt
            sender._closed = True

    def record(self, access_rate_bps: float = 0.0) -> NdtRecord:
        """Build the NDT record (call after the simulation has run)."""
        return NdtRecord(
            uuid=f"collected-{self.flow_id}",
            duration_s=self.duration,
            access_type=self.access_type,
            access_rate_bps=access_rate_bps,
            snapshots=tuple(self._snapshots),
            true_class=self.true_class,
            true_contention=self.true_contention,
        )
