"""Hierarchical metrics registry: counters, gauges, histograms.

Components register named instruments into a :class:`MetricsRegistry`
(usually the process-global one from :func:`registry`).  Names are
dotted paths ("pool.task_s", "sim.events_processed"); :meth:`scoped`
gives a component its own namespace without threading prefixes through
call sites.

Snapshots are plain JSON-able dicts, and :meth:`MetricsRegistry.merge`
folds one snapshot into a registry **commutatively** -- counters and
histogram buckets add, gauges take the max -- so per-worker snapshots
from :class:`repro.runtime.pool.ParallelExecutor` can be merged in any
completion order with identical results.

Histograms use *fixed* bucket bounds chosen at creation, so percentile
queries are O(buckets), merges are exact, and two histograms created
with the same bounds are always mergeable.
"""

from __future__ import annotations

import bisect
import math
from typing import Mapping, Sequence

from ..errors import AnalysisError, ConfigError


def default_buckets() -> tuple[float, ...]:
    """Log-spaced bounds from 1 microsecond to ~100 ks.

    Suitable for latencies/durations in seconds; values above the last
    bound land in the overflow bucket.
    """
    return tuple(round(10.0 ** (exp / 4.0), 9) for exp in range(-24, 21))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters never decrease)."""
        if amount < 0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease: {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value (last set wins locally; merge takes the max)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with percentile bounds.

    Args:
        name: registry name.
        buckets: strictly increasing bucket *upper bounds*; an implicit
            overflow bucket catches values above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, buckets: Sequence[float] | None = None):
        self.name = name
        bounds = tuple(buckets) if buckets is not None else default_buckets()
        if not bounds:
            raise ConfigError(f"histogram {name!r} needs at least one bucket")
        if any(later <= earlier
               for later, earlier in zip(bounds[1:], bounds)):
            raise ConfigError(
                f"histogram {name!r} bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if math.isnan(value):
            raise AnalysisError(f"histogram {self.name!r}: NaN observation")
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile_bounds(self, q: float) -> tuple[float, float]:
        """(lower, upper) bounds of the bucket holding the q-quantile.

        The true q-quantile of the observed values is guaranteed to lie
        within the returned interval; ``upper`` is ``inf`` when the
        quantile fell into the overflow bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            raise AnalysisError(
                f"histogram {self.name!r} has no observations")
        # Index (1-based) of the q-th observation, as numpy's "lower"
        # interpolation would pick it.
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target:
                lower = self.bounds[i - 1] if i > 0 else float("-inf")
                upper = self.bounds[i] if i < len(self.bounds) \
                    else float("inf")
                return lower, upper
        raise AnalysisError("unreachable: cumulative < count")  # pragma: no cover

    def percentile(self, q: float) -> float:
        """Conservative q-quantile estimate (the bucket's upper bound)."""
        return self.percentile_bounds(q)[1]


class _Scope:
    """Prefix proxy: ``registry.scoped("pool").counter("tasks")``
    registers ``pool.tasks``."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self._registry = registry
        self._prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}",
                                        buckets=buckets)


class MetricsRegistry:
    """Named instruments plus snapshot/merge plumbing.

    >>> reg = MetricsRegistry()
    >>> reg.counter("jobs").inc(3)
    >>> reg.scoped("pool").gauge("workers").set(8)
    >>> sorted(reg.snapshot())
    ['jobs', 'pool.workers']
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        #: Monotonic reset count.  Callers that cache instrument
        #: references (the engine's run-accounting fast path) key their
        #: cache on this so :meth:`reset` cannot leave them holding
        #: orphaned instruments.
        self.generation = 0

    def _get(self, name: str, cls, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ConfigError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None) -> Histogram:
        histogram = self._get(name, Histogram,
                              lambda: Histogram(name, buckets=buckets))
        if buckets is not None and tuple(buckets) != histogram.bounds:
            raise ConfigError(
                f"histogram {name!r} already registered with different "
                "bucket bounds")
        return histogram

    def scoped(self, prefix: str) -> _Scope:
        """A namespaced view registering ``prefix.<name>`` instruments."""
        return _Scope(self, prefix)

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        """Drop every registered instrument."""
        self._instruments.clear()
        self.generation += 1

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """JSON-able state of every instrument, sorted by name."""
        out: dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "bounds": list(instrument.bounds),
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "sum": instrument.total,
                }
        return out

    def merge(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold a :meth:`snapshot` into this registry (commutative).

        Counters and histogram buckets add; gauges keep the maximum, so
        merging worker snapshots is independent of completion order.
        """
        for name, entry in snapshot.items():
            kind = entry["type"]
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                # A gauge absent locally adopts the snapshot's value
                # outright -- a fresh instrument's 0.0 is "no reading",
                # not a reading of zero, and must not win the max
                # against a negative incoming value.
                absent = name not in self._instruments
                gauge = self.gauge(name)
                gauge.set(entry["value"] if absent
                          else max(gauge.value, entry["value"]))
            elif kind == "histogram":
                histogram = self.histogram(name,
                                           buckets=entry["bounds"])
                if list(histogram.bounds) != list(entry["bounds"]):
                    raise ConfigError(
                        f"histogram {name!r}: merge with mismatched "
                        "bucket bounds")
                for i, n in enumerate(entry["counts"]):
                    histogram.counts[i] += n
                histogram.count += entry["count"]
                histogram.total += entry["sum"]
            else:
                raise ConfigError(f"unknown instrument type {kind!r}")


#: The process-global registry instrumented components report into.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return REGISTRY
