"""Queue disciplines: the in-network bandwidth-management toolbox.

The paper argues (§2.1) that these mechanisms -- not CCA dynamics --
determine bandwidth allocations on the modern Internet.  This package
implements the ones the paper discusses:

* :class:`DropTailQueue` -- the default FIFO everyone contends inside.
* :class:`RedQueue` / :class:`CoDelQueue` -- AQM variants.
* :class:`DrrFairQueue` / :class:`StochasticFairQueue` -- fair queueing,
  which "would entirely eliminate the role of CCA dynamics".
* :class:`TokenBucketFilter` -- shaping (queues excess traffic).
* :class:`Policer` -- policing (drops excess traffic; Flach et al.).
* :class:`HtbQueue` -- hierarchical per-user plans (assured rate + ceiling).
"""

from .base import Qdisc
from .codel import CoDelQueue
from .fifo import DropTailQueue
from .fq import DrrFairQueue, by_flow, by_user
from .htb import HtbClass, HtbQueue
from .policer import Policer
from .red import RedQueue
from .sfq import StochasticFairQueue
from .tbf import TokenBucketFilter

__all__ = [
    "Qdisc", "DropTailQueue", "RedQueue", "CoDelQueue",
    "DrrFairQueue", "StochasticFairQueue", "by_flow", "by_user",
    "TokenBucketFilter", "Policer", "HtbClass", "HtbQueue",
]
