"""Offline change-point detection.

The paper's §3.1 searches M-Lab flows for throughput level shifts,
citing the survey of Truong, Oudre & Vayatis (Signal Processing 2020)
[60].  We implement the two workhorse algorithms from that survey:

* :func:`binary_segmentation` -- greedy recursive splitting; fast and
  simple, approximate.
* :func:`pelt` -- Pruned Exact Linear Time (Killick et al. 2012);
  exact penalized optimum with amortized linear cost.

Both use a piecewise-constant (L2 / Gaussian mean-shift) cost by
default, which is the right model for "did this flow's achieved
throughput level change".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


class L2Cost:
    """Sum of squared deviations from the segment mean.

    cost(a, b) over signal x = sum_{a<=i<b} (x_i - mean(x[a:b]))^2,
    computed in O(1) per query from prefix sums.
    """

    def __init__(self, signal: np.ndarray):
        x = np.asarray(signal, dtype=float)
        if x.ndim != 1:
            raise AnalysisError("signal must be one-dimensional")
        self.n = len(x)
        self._cum = np.concatenate([[0.0], np.cumsum(x)])
        self._cum2 = np.concatenate([[0.0], np.cumsum(x * x)])

    def cost(self, a: int, b: int) -> float:
        """Cost of the segment ``signal[a:b]``."""
        n = b - a
        if n <= 0:
            return 0.0
        s = self._cum[b] - self._cum[a]
        s2 = self._cum2[b] - self._cum2[a]
        return max(0.0, s2 - s * s / n)

    def cost_batch(self, starts, ends) -> np.ndarray:
        """Vectorized :meth:`cost` over arrays of segment bounds.

        ``starts`` and ``ends`` broadcast against each other; every
        resulting segment must be non-empty.  Identical arithmetic to
        the scalar path (same IEEE-754 operations on the same prefix
        sums), so results are bit-for-bit equal.
        """
        starts = np.asarray(starts)
        ends = np.asarray(ends)
        n = ends - starts
        s = self._cum[ends] - self._cum[starts]
        s2 = self._cum2[ends] - self._cum2[starts]
        return np.maximum(0.0, s2 - s * s / n)


class NormalMeanVarCost:
    """Negative log-likelihood cost for a Gaussian with free mean and
    variance per segment -- detects changes in mean *or* variance."""

    MIN_SEGMENT = 2

    def __init__(self, signal: np.ndarray):
        x = np.asarray(signal, dtype=float)
        if x.ndim != 1:
            raise AnalysisError("signal must be one-dimensional")
        self.n = len(x)
        self._cum = np.concatenate([[0.0], np.cumsum(x)])
        self._cum2 = np.concatenate([[0.0], np.cumsum(x * x)])

    def cost(self, a: int, b: int) -> float:
        n = b - a
        if n < self.MIN_SEGMENT:
            return 0.0
        s = self._cum[b] - self._cum[a]
        s2 = self._cum2[b] - self._cum2[a]
        var = max((s2 - s * s / n) / n, 1e-12)
        return n * (math.log(var) + 1.0 + math.log(2.0 * math.pi)) / 2.0

    def cost_batch(self, starts, ends) -> np.ndarray:
        """Vectorized :meth:`cost` over arrays of segment bounds."""
        starts = np.asarray(starts)
        ends = np.asarray(ends)
        n = (ends - starts).astype(float)
        s = self._cum[ends] - self._cum[starts]
        s2 = self._cum2[ends] - self._cum2[starts]
        with np.errstate(divide="ignore", invalid="ignore"):
            var = np.maximum((s2 - s * s / n) / n, 1e-12)
            out = n * (np.log(var) + 1.0 + math.log(2.0 * math.pi)) / 2.0
        return np.where(n < self.MIN_SEGMENT, 0.0, out)


def default_penalty(signal: np.ndarray) -> float:
    """BIC-style penalty: 2 * sigma^2 * log(n), with sigma estimated
    robustly from first differences (median absolute deviation)."""
    x = np.asarray(signal, dtype=float)
    n = len(x)
    if n < 4:
        return float("inf")
    diffs = np.diff(x)
    mad = np.median(np.abs(diffs - np.median(diffs)))
    sigma = max(mad / 0.6745 / math.sqrt(2.0), 1e-12)
    return 2.0 * sigma * sigma * math.log(n)


@dataclass(frozen=True)
class ChangePointResult:
    """Detected change points and bookkeeping.

    Attributes:
        breakpoints: sorted indices i where a new segment starts
            (0 < i < n); empty if the signal is one level throughout.
        segments: (start, end) index pairs covering the signal.
        penalty: the penalty value used.
    """

    breakpoints: tuple[int, ...]
    n: int
    penalty: float

    @property
    def segments(self) -> tuple[tuple[int, int], ...]:
        edges = [0, *self.breakpoints, self.n]
        return tuple((edges[i], edges[i + 1]) for i in range(len(edges) - 1))

    @property
    def num_changes(self) -> int:
        return len(self.breakpoints)


def _check_length(n: int, min_segment: int) -> None:
    """Reject signals that cannot hold two segments.

    Raises :class:`AnalysisError` (never an ``IndexError`` from deep
    inside the dynamic program) for empty and tiny inputs.
    """
    if min_segment < 1:
        raise AnalysisError(f"min_segment must be >= 1: {min_segment}")
    if n < 2 * min_segment:
        raise AnalysisError(
            f"signal of length {n} is too short for change-point "
            f"detection with min_segment={min_segment} "
            f"(need at least {2 * min_segment} points)")


def pelt(signal, penalty: float | None = None, cost_class=L2Cost,
         min_segment: int = 2) -> ChangePointResult:
    """Exact penalized change-point detection (PELT).

    Args:
        signal: 1-D array-like.
        penalty: per-change-point penalty; default is a robust BIC.
        cost_class: segment cost model (L2Cost or NormalMeanVarCost).
        min_segment: minimum points per segment.

    Returns:
        :class:`ChangePointResult` with the optimal breakpoints.

    Raises:
        AnalysisError: if the signal is shorter than ``2*min_segment``.
    """
    x = np.asarray(signal, dtype=float)
    n = len(x)
    _check_length(n, min_segment)
    if penalty is None:
        penalty = default_penalty(x)
    cost = cost_class(x)
    cost_batch = getattr(cost, "cost_batch", None)

    # f[t] = optimal cost of x[0:t]; prev[t] = last breakpoint before t.
    # The per-candidate scan is vectorized over the (pruned) candidate
    # set via the cost model's ``cost_batch``; candidate order is
    # preserved and ties resolve to the first candidate, exactly like
    # the scalar loop, so breakpoints are unchanged.
    f = np.empty(n + 1)
    f[0] = 0.0
    f[1:] = np.inf
    prev = np.zeros(n + 1, dtype=np.int64)
    candidates = np.array([0], dtype=np.int64)
    for t in range(min_segment, n + 1):
        if cost_batch is not None:
            seg_costs = cost_batch(candidates, t)
        else:
            seg_costs = np.array([cost.cost(int(s), t)
                                  for s in candidates])
        totals = f[candidates] + seg_costs + penalty
        best_i = int(np.argmin(totals))
        f[t] = totals[best_i]
        prev[t] = candidates[best_i]
        # Prune candidates that can never win again.
        keep = f[candidates] + seg_costs <= f[t]
        candidates = np.append(candidates[keep], t - min_segment + 1)

    breakpoints = []
    t = n
    while t > 0:
        s = int(prev[t])
        if s > 0:
            breakpoints.append(s)
        t = s
    return ChangePointResult(tuple(sorted(breakpoints)), n, penalty)


def binary_segmentation(signal, penalty: float | None = None,
                        cost_class=L2Cost, min_segment: int = 2,
                        max_changes: int | None = None) -> ChangePointResult:
    """Greedy top-down change-point detection.

    Recursively split at the point with the largest cost reduction
    until no split beats the penalty (or ``max_changes`` is reached).

    Raises:
        AnalysisError: if the signal is shorter than ``2*min_segment``.
    """
    x = np.asarray(signal, dtype=float)
    n = len(x)
    _check_length(n, min_segment)
    if penalty is None:
        penalty = default_penalty(x)
    cost = cost_class(x)
    cost_batch = getattr(cost, "cost_batch", None)

    def best_split(a: int, b: int) -> tuple[float, int]:
        # Vectorized scan over every admissible split point; ties
        # resolve to the first (lowest) index, like the scalar loop.
        splits = np.arange(a + min_segment, b - min_segment + 1)
        if len(splits) == 0:
            return 0.0, -1
        base = cost.cost(a, b)
        if cost_batch is not None:
            gains = base - cost_batch(a, splits) - cost_batch(splits, b)
        else:
            gains = np.array([base - cost.cost(a, int(i))
                              - cost.cost(int(i), b) for i in splits])
        best = int(np.argmax(gains))
        if gains[best] <= 0.0:
            return 0.0, -1
        return float(gains[best]), int(splits[best])

    breakpoints: list[int] = []
    queue = [(0, n)]
    while queue:
        if max_changes is not None and len(breakpoints) >= max_changes:
            break
        # Split the segment offering the biggest gain first.
        gains = [(best_split(a, b), (a, b)) for a, b in queue]
        gains.sort(key=lambda item: item[0][0], reverse=True)
        (gain, idx), (a, b) = gains[0]
        queue.remove((a, b))
        if idx < 0 or gain <= penalty:
            continue
        breakpoints.append(idx)
        queue.extend([(a, idx), (idx, b)])
    return ChangePointResult(tuple(sorted(breakpoints)), n, penalty)


def throughput_level_shift(signal, penalty: float | None = None,
                           min_relative_shift: float = 0.2,
                           min_segment: int = 4) -> ChangePointResult:
    """The §3.1 detector: change points that are *meaningful* throughput
    level shifts.

    Runs PELT, then keeps only breakpoints where the mean level changes
    by at least ``min_relative_shift`` of the larger side -- filtering
    the small wiggles that would otherwise count as "contention".

    A flow too short to hold two segments trivially has no level shift,
    so (unlike the raw detectors, which raise) this returns an empty
    result for short signals.
    """
    x = np.asarray(signal, dtype=float)
    if len(x) < 2 * min_segment:
        return ChangePointResult((), len(x), penalty or float("inf"))
    raw = pelt(x, penalty=penalty, min_segment=min_segment)
    kept = []
    edges = [0, *raw.breakpoints, raw.n]
    for i, bp in enumerate(raw.breakpoints):
        left = x[edges[i]:bp].mean()
        right = x[bp:edges[i + 2]].mean()
        scale = max(abs(left), abs(right), 1e-12)
        if abs(left - right) / scale >= min_relative_shift:
            kept.append(bp)
    return ChangePointResult(tuple(kept), raw.n, raw.penalty)
