"""Benchmark E11: probe behaviour on variable-rate (cellular) links.

§2.3 leaves variable links as an open question; this ablation charts
the answer this reproduction finds: the technique is reliable at
low-to-moderate volatility and degrades beyond a real boundary
(stale-μ false alarms on idle links, starvation-driven misses under
contention).  The bench asserts both halves: correctness in the
reliable regime AND observable degradation past it.
"""

from repro.experiments import cellular_robustness

from conftest import once


def test_cellular_robustness(benchmark, bench_scale):
    if bench_scale == "full":
        volatilities, duration = (0.0, 0.05, 0.1, 0.2, 0.3), 40.0
    else:
        volatilities, duration = (0.0, 0.1, 0.2), 25.0
    result = once(benchmark, cellular_robustness.run,
                  volatilities=volatilities, duration=duration)

    print()
    print(result.text)

    m = result.metrics
    # Reliable below the boundary...
    assert m["correctness_low_volatility"] >= 0.99
    # ...and measurably degraded above it (this is the finding; a
    # perfectly-correct high-volatility regime would mean the paper's
    # §2.3 caution was unnecessary).
    assert m["correctness_high_volatility"] < 1.0
