"""Experiment E4: token-bucket shaping causes jitter contention (§5.2).

"one popular method of bandwidth shaping is the token-bucket filter
[...] the resulting bursty transmission can cause jitter."

Setup: a latency-sensitive CBR stream (think live video) shares an
isolated per-user pipe with a bursty bulk flow.  The pipe is shaped
either by a token-bucket filter (with varying burst sizes) or by a
plain rate limiter (a Link at the shaped rate -- the "smooth" shaper
baseline).  Even though *bandwidth* isolation is perfect in all cases,
the CBR stream's delay jitter grows with the token-bucket burst size:
contention has moved from throughput to jitter, as §5.2 predicts.
"""

from __future__ import annotations

from .. import viz
from ..analysis.timeseries import DelayMeter, jitter_metrics
from ..cca.cubic import CubicCca
from ..qdisc.fifo import DropTailQueue
from ..qdisc.tbf import TokenBucketFilter
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..sim.link import DelayBox, Link
from ..sim.node import Host
from ..tcp.endpoint import Connection
from ..traffic.cbr import CbrSource
from ..units import mbps, ms, to_ms
from .runner import ExperimentResult, Stopwatch


def _shaped_path(sim: Simulator, shaped_rate: float, line_rate: float,
                 rtt: float, burst_bytes: int | None) -> PathHandles:
    """A per-user pipe: line-rate link whose egress is shaped.

    ``burst_bytes=None`` means the smooth-shaper baseline (the link
    itself runs at the shaped rate); otherwise a TBF with that burst
    gates a line-rate link.
    """
    src, dst = Host("src"), Host("dst")
    fwd_delay = DelayBox(sim, rtt / 2.0, sink=dst)
    if burst_bytes is None:
        bottleneck = Link(sim, shaped_rate, sink=fwd_delay,
                          qdisc=DropTailQueue(limit_packets=400))
    else:
        tbf = TokenBucketFilter(rate=shaped_rate, burst=burst_bytes,
                                child=DropTailQueue(limit_packets=400))
        bottleneck = Link(sim, line_rate, sink=fwd_delay, qdisc=tbf)
    rev_delay = DelayBox(sim, rtt / 2.0, sink=src)
    reverse = Link(sim, line_rate * 10, sink=rev_delay,
                   qdisc=DropTailQueue(limit_packets=10_000))
    return PathHandles(sim=sim, entry=bottleneck, bottleneck=bottleneck,
                       src_host=src, dst_host=dst, reverse_entry=reverse,
                       rtt=rtt)


def _measure(burst_kb: float | None, shaped_mbps: float,
             line_mbps: float, rtt_ms_val: float,
             duration: float) -> dict:
    sim = Simulator()
    rtt = ms(rtt_ms_val)
    burst = int(burst_kb * 1000) if burst_kb is not None else None
    path = _shaped_path(sim, mbps(shaped_mbps), mbps(line_mbps), rtt,
                        burst)
    meter = DelayMeter(flow_filter=lambda f: f == "live")
    path.bottleneck.add_tap(meter.on_packet)

    live = CbrSource(sim, path, "live", rate=mbps(2.0), packet_size=1200)
    live.start()
    bulk = Connection(sim, path, "bulk", CubicCca())
    bulk.sender.set_infinite_backlog()
    sim.run(until=duration)

    _, delays = meter.as_arrays()
    metrics = jitter_metrics(delays[len(delays) // 5:])  # drop warmup
    label = "smooth" if burst_kb is None else f"tbf-{burst_kb:.0f}kB"
    return {
        "shaper": label,
        "burst_kb": burst_kb if burst_kb is not None else 0.0,
        "jitter_ms": round(to_ms(metrics["rfc3550_jitter"]), 4),
        "delay_span_ms": round(to_ms(metrics["delay_span_p99_p1"]), 4),
        "delay_p99_ms": round(to_ms(metrics["delay_p99"]), 4),
        "live_delivered_kb": round(live.delivered_bytes / 1000, 1),
    }


def run(burst_sizes_kb: tuple = (15.0, 60.0, 250.0, 1000.0),
        shaped_mbps: float = 10.0, line_mbps: float = 1000.0,
        rtt_ms_val: float = 20.0,
        duration: float = 20.0) -> ExperimentResult:
    """Sweep token-bucket burst size against a smooth-shaper baseline."""
    with Stopwatch() as watch:
        rows = [_measure(None, shaped_mbps, line_mbps, rtt_ms_val,
                         duration)]
        rows += [_measure(b, shaped_mbps, line_mbps, rtt_ms_val, duration)
                 for b in burst_sizes_kb]

    # Token-bucket burstiness shows up in different statistics at
    # different burst sizes: medium bursts stretch the delay range
    # (p99-p1 span) while very large bursts whipsaw consecutive
    # packets (RFC 3550 interarrival jitter).  The degradation metric
    # is therefore the worst amplification across both, each relative
    # to the smooth-shaper baseline.
    def _ratio(key):
        base = rows[0][key]
        worst = max(r[key] for r in rows[1:])
        return worst / base if base > 0 else float("inf")

    amplification = max(_ratio("jitter_ms"), _ratio("delay_span_ms"))

    parts = [
        f"E4: jitter felt by a 2 Mbit/s live stream sharing a "
        f"{shaped_mbps:.0f} Mbit/s shaped pipe with a bulk Cubic flow",
        "",
        viz.table(
            [(r["shaper"], r["jitter_ms"], r["delay_span_ms"],
              r["delay_p99_ms"]) for r in rows],
            header=("shaper", "RFC3550 jitter (ms)",
                    "p99-p1 delay span (ms)", "p99 delay (ms)")),
        "",
        f"worst jitter amplification of token-bucket shaping vs the "
        f"smooth shaper (max over RFC 3550 and p99-p1 span): "
        f"{amplification:.1f}x",
    ]
    metrics = {
        "baseline_jitter_ms": rows[0]["jitter_ms"],
        "baseline_span_ms": rows[0]["delay_span_ms"],
        "span_amplification": amplification,
    }
    return ExperimentResult(
        experiment="tbf_jitter",
        text="\n".join(parts),
        metrics=metrics,
        tables={"jitter": rows},
        params={"burst_sizes_kb": list(burst_sizes_kb),
                "shaped_mbps": shaped_mbps, "duration": duration},
        elapsed_s=watch.elapsed,
    )
