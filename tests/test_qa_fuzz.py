"""Fuzz driver: deterministic sampling, verdict caching, the CLI
entry points, and (behind ``-m fuzz``) a full-budget campaign."""

import pytest

from repro.qa.fuzz import (FuzzReport, ScenarioVerdict, run_fuzz,
                           sample_scenario)
from repro.qa.oracles import FAULT_ENV
from repro.qa.scenario import QDISC_NAMES, Scenario
from repro.store.artifacts import ArtifactStore

SMOKE_BUDGET = 5


# -- sampling -------------------------------------------------------------

def test_sampling_is_deterministic():
    assert sample_scenario(5, 0) == sample_scenario(5, 0)
    assert sample_scenario(5, 0) != sample_scenario(5, 1)
    assert sample_scenario(5, 0) != sample_scenario(6, 0)


def test_sampled_scenarios_are_valid():
    for index in range(40):
        scenario = sample_scenario(index, 0)
        assert isinstance(scenario, Scenario)  # __post_init__ validated


def test_sampling_covers_the_space():
    scenarios = [sample_scenario(i, 0) for i in range(150)]
    qdiscs = {s.qdisc for s in scenarios}
    ccas = {f.cca for s in scenarios for f in s.flows}
    families = {s.family for s in scenarios}
    assert qdiscs == set(QDISC_NAMES)
    assert len(ccas) >= 8
    assert families == {"flows", "probe"}


# -- campaign -------------------------------------------------------------

def test_smoke_campaign_passes_and_is_deterministic():
    first = run_fuzz(SMOKE_BUDGET, seed=0, store=None, pool_check=False)
    assert isinstance(first, FuzzReport)
    assert len(first.verdicts) == SMOKE_BUDGET
    assert first.failures == []
    second = run_fuzz(SMOKE_BUDGET, seed=0, store=None, pool_check=False)
    assert first.render() == second.render()


def test_campaign_caches_passing_verdicts(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    cold = run_fuzz(3, seed=0, store=store, pool_check=False)
    assert cold.cache_hits == 0
    warm = run_fuzz(3, seed=0, store=store, pool_check=False)
    assert warm.cache_hits == 3
    assert cold.render() == warm.render()


def test_injected_fault_is_caught_not_cached(monkeypatch, tmp_path):
    store = ArtifactStore(tmp_path / "store")
    monkeypatch.setenv(FAULT_ENV, "any")
    report = run_fuzz(1, seed=0, store=store, pool_check=False)
    assert len(report.failures) == 1
    assert all(f.oracle == "injected-fault"
               for v in report.failures for f in v.findings)
    # Failures must never enter the verdict cache...
    rerun = run_fuzz(1, seed=0, store=store, pool_check=False)
    assert rerun.cache_hits == 0
    # ...and clearing the fault changes the cache key, so clean
    # verdicts are computed fresh rather than inherited.
    monkeypatch.delenv(FAULT_ENV)
    clean = run_fuzz(1, seed=0, store=store, pool_check=False)
    assert clean.failures == []
    assert clean.cache_hits == 0


def test_pool_equivalence_stage():
    report = run_fuzz(2, seed=0, store=None, pool_check=True)
    assert report.failures == []


def test_verdict_shape():
    report = run_fuzz(1, seed=0, store=None, pool_check=False)
    verdict = report.verdicts[0]
    assert isinstance(verdict, ScenarioVerdict)
    assert verdict.passed and verdict.oracles
    assert verdict.fingerprint and verdict.label


# -- CLI ------------------------------------------------------------------

def test_cli_fuzz_smoke(capsys):
    from repro.cli import main
    assert main(["qa", "fuzz", "--budget", "2", "--seed", "0",
                 "--no-cache", "--no-pool-check"]) == 0
    out = capsys.readouterr().out
    assert "2/2 scenarios passed" in out


def test_cli_fuzz_shrinks_failures_into_corpus(monkeypatch, tmp_path,
                                               capsys):
    from repro.cli import main
    monkeypatch.setenv(FAULT_ENV, "qdisc:policer")
    corpus_dir = tmp_path / "failures"
    # seed 0 index 1 is a policer scenario: one failure to shrink.
    assert main(["qa", "fuzz", "--budget", "2", "--seed", "0",
                 "--no-cache", "--no-pool-check",
                 "--corpus-out", str(corpus_dir)]) == 1
    cases = list(corpus_dir.glob("*.json"))
    assert len(cases) == 1
    from repro.qa.corpus import load_case
    case = load_case(cases[0])
    assert case.scenario.qdisc == "policer"
    assert len(case.scenario.flows) == 1


def test_cli_corpus_replay(capsys):
    from repro.cli import main
    assert main(["qa", "corpus", "--dir", "tests/corpus",
                 "--replay"]) == 0
    out = capsys.readouterr().out
    assert "corpus cases pass" in out


# -- full campaign (nightly / -m fuzz) ------------------------------------

@pytest.mark.fuzz
def test_full_budget_campaign_clean():
    report = run_fuzz(200, seed=0, store=None)
    assert report.failures == [], report.render()


@pytest.mark.fuzz
def test_full_campaign_render_stable(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    cold = run_fuzz(60, seed=1, store=store)
    warm = run_fuzz(60, seed=1, store=store)
    assert cold.render() == warm.render()
    assert warm.cache_hits == 60
