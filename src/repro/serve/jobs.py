"""Job execution for the experiment service.

Two layers live here:

* **Executors** -- one module-level function per job kind, mapping a
  request's params to ``(summary, payload)``.  The summary is the
  JSON document returned over HTTP; the payload is the full result
  object, stored in the artifact store under the request fingerprint.
  Executors run on a thread executor and reuse the existing batch
  machinery (:class:`repro.core.campaign.Campaign`,
  :func:`repro.ndt.pipeline.run_pipeline`,
  :func:`repro.experiments.runner.sweep`,
  :func:`repro.qa.fuzz.run_fuzz`), always passing the service's store
  through -- so campaign jobs checkpoint per path and a killed server
  resumes them.

* **JobManager** -- admission and lifecycle.  On submit it
  fingerprints the request; a completed fingerprint is answered
  directly from the store (no execution), an identical in-flight
  fingerprint coalesces onto the running job (one execution, every
  waiter gets the result), and everything else is journaled and
  enqueued.  Worker coroutines drain the queue, run executors with a
  per-job timeout, and write results back to the store.  ``drain``
  implements graceful shutdown: stop admitting, let in-flight jobs
  finish (or stay checkpointed), and leave undone journal entries for
  the next server start to re-enqueue.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import time
from typing import Callable

from ..errors import ConfigError, ReproError
from ..obs.metrics import REGISTRY as _METRICS
from ..store.artifacts import ArtifactStore
from ..store.atomic import atomic_write_json
from ..store.fingerprint import fingerprint
from .protocol import Job, JobRequest, JobState
from .queue import JobQueue, QueueFull

_JOURNAL_VERSION = 1


class ServiceDraining(ReproError):
    """The service is draining and no longer admits jobs."""


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


def _int_param(params: dict, name: str, default: int,
               minimum: int = 1) -> int:
    value = params.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        raise ConfigError(
            f"param {name!r} must be an integer >= {minimum}: {value!r}")
    return value


def _float_param(params: dict, name: str, default: float) -> float:
    value = params.get(name, default)
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value <= 0:
        raise ConfigError(
            f"param {name!r} must be a positive number: {value!r}")
    return float(value)


def campaign_from_params(params: dict):
    """Build the :class:`Campaign` a params document describes.

    Shared by ``campaign`` jobs and the cluster fabric's ``paths``
    shards: a coordinator and its worker nodes construct campaigns
    from the *same* params dict, so their per-path store fingerprints
    agree and merged shard results assemble byte-identically.
    """
    from ..core.campaign import Campaign
    from ..medium import MEDIUM_DEFAULT, parse_medium

    backend = params.get("backend", "packet")
    if backend not in ("packet", "fluid"):
        raise ConfigError(
            f"param 'backend' must be 'packet' or 'fluid': {backend!r}")
    medium = params.get("medium", MEDIUM_DEFAULT)
    if not isinstance(medium, str):
        raise ConfigError(
            f"param 'medium' must be a string: {medium!r}")
    parse_medium(medium)  # raises ConfigError on bad values
    return Campaign(
        n_paths=_int_param(params, "n_paths", 40),
        seed=_int_param(params, "seed", 0, minimum=0),
        duration=_float_param(params, "duration", 30.0),
        fq_fraction=float(params.get("fq_fraction", 0.3)),
        backend=backend,
        medium=medium)


def execute_campaign(params: dict, store, workers) -> tuple[dict, object]:
    """``campaign`` jobs: a §3.2-style measurement study (E7).

    Runs through :meth:`Campaign.run` with the service's store, so
    every completed path checkpoints and an interrupted job resumes.
    """
    campaign = campaign_from_params(params)
    result = campaign.run(store=store, workers=workers,
                          resume=bool(params.get("resume", False)))
    outcome = [{"contending": r.verdict.contending,
                "category": r.verdict.category,
                "mean_elasticity": r.verdict.mean_elasticity}
               for r in result.results]
    summary = {
        "n_paths": len(result.results) + len(result.failed),
        "n_failed": len(result.failed),
        "fraction_contending": result.fraction_contending,
        "true_fraction_contending": result.true_fraction_contending,
        "detector_quality": result.detector_quality(),
        "result_fingerprint": fingerprint(outcome,
                                          kind="campaign-outcome"),
    }
    return summary, result


def execute_paths(params: dict, store, workers) -> tuple[dict, object]:
    """``paths`` jobs: one shard of a campaign -- a subset of its
    paths, named by index.

    The cluster coordinator's unit of dispatch: the node rebuilds the
    full campaign from the same params, runs only ``indices``, and
    checkpoints every path under the exact store key the coordinator
    computed -- which is what makes the shard's results pullable (and
    the merge idempotent) by content address.
    """
    import functools as _functools

    from ..core.campaign import run_path
    from ..runtime import FaultPolicy
    from ..store.scheduler import ResumableScheduler

    if store is None:
        raise ConfigError("'paths' jobs need a store (the shard's "
                          "results travel by content address)")
    campaign = campaign_from_params(params)
    indices = params.get("indices")
    if (not isinstance(indices, (list, tuple)) or not indices
            or not all(isinstance(i, int) and not isinstance(i, bool)
                       and 0 <= i < len(campaign.specs)
                       for i in indices)):
        raise ConfigError(
            f"param 'indices' must be a non-empty array of path "
            f"indices in [0, {len(campaign.specs)}): {indices!r}")
    specs = [campaign.specs[i] for i in indices]
    keys = [campaign.path_key(s) for s in specs]
    labels = [f"path[{i}] {s.cross_traffic}@{s.qdisc} "
              f"{s.rate_mbps:g}mbps/{s.rtt_ms:g}ms seed={s.seed}"
              for i, s in zip(indices, specs)]
    job = _functools.partial(run_path, duration=campaign.duration,
                             detector=campaign.detector,
                             backend=campaign.backend)
    shard_key = fingerprint(
        {"campaign": campaign.fingerprint(), "indices": list(indices)},
        kind="paths-shard")
    scheduler = ResumableScheduler(store, shard_key, kind="path")
    report = scheduler.run(job, specs, keys, labels=labels,
                           workers=workers, policy=FaultPolicy())
    failed = [{"index": indices[o.index], "error": o.error,
               "error_type": o.error_type, "attempts": o.attempts}
              for o in report.failed]
    done_keys = [k for k, r in zip(keys, report.results)
                 if r is not None]
    summary = {
        "campaign": campaign.fingerprint(),
        "indices": list(indices),
        "done": len(done_keys),
        "failed": failed,
        "path_keys": done_keys,
        "cache_hits": report.hits,
    }
    return summary, {"path_keys": done_keys, "failed": failed}


def execute_qa_eval(params: dict, store, workers) -> tuple[dict, object]:
    """``qa-eval`` jobs: run + judge one search candidate scenario.

    The cluster fabric's unit of dispatch for ``repro qa search
    --cluster``: the coordinator generates candidates (the sequential,
    deterministic part) and farms evaluation out.  The payload is the
    exact ``(outcome, findings)`` tuple the local evaluator would have
    produced, so a clustered search report is byte-identical to a
    serial one.
    """
    from ..qa.scenario import Scenario
    from ..qa.search import _run_search_scenario

    doc = params.get("scenario")
    if not isinstance(doc, dict):
        raise ConfigError(
            f"param 'scenario' must be a scenario document: {doc!r}")
    try:
        scenario = Scenario.from_dict(doc)
    except (ConfigError, KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"bad scenario document: {exc}")
    outcome, findings = _run_search_scenario(scenario)
    summary = {
        "scenario": scenario.label(),
        "failed": bool(findings),
        "findings": [str(f) for f in findings],
    }
    return summary, (outcome, findings)


def execute_fig2_shard(params: dict, store, workers) -> tuple[dict, object]:
    """``fig2-shard`` jobs: one shard of a streamed §3.1 pipeline run.

    The cluster coordinator's unit of dispatch for ``repro run fig2
    --cluster``: the node rebuilds the :class:`~repro.ndt.stream.
    ShardSpec` from the same params the coordinator used, analyses it,
    and stores the flowless partial under the spec's own content key --
    which is what makes the shard pullable (and the merge idempotent)
    by content address.  Only the default :class:`PopulationModel`
    travels over the wire.
    """
    from ..ndt.stream import ShardSpec, analyse_shard

    if store is None:
        raise ConfigError("'fig2-shard' jobs need a store (the shard's "
                          "partial travels by content address)")
    spec = ShardSpec(
        seed=_int_param(params, "seed", 0, minimum=0),
        start=_int_param(params, "start", 0, minimum=0),
        count=_int_param(params, "count", 2000),
        min_relative_shift=_float_param(params, "min_relative_shift",
                                        0.25))
    key = spec.key()
    partial = store.get(key)
    cached = partial is not None
    if not cached:
        partial = analyse_shard(spec)
        store.put(key, partial, kind="fig2-shard", label=spec.shard_id)
    summary = {
        "shard_id": spec.shard_id,
        "shard_key": key,
        "total": partial.total,
        "remaining_with_shifts": partial.remaining_with_shifts,
        "cached": cached,
        "aggregate_fingerprint": partial.aggregate_fingerprint(),
    }
    return summary, {"shard_key": key}


def execute_pipeline(params: dict, store, workers) -> tuple[dict, object]:
    """``pipeline`` jobs: the §3.1 passive NDT pipeline over a
    synthetic dataset (Figure 2).

    ``streaming: true`` (or any request above the fig2 streaming
    threshold) runs out of core -- bounded memory, per-shard store
    checkpoints -- with aggregates byte-identical to the materialized
    path; ``chunk_size`` sets the shard size.
    """
    from ..experiments.fig2 import STREAMING_THRESHOLD
    from ..ndt.pipeline import run_pipeline
    from ..ndt.stream import run_pipeline_streaming
    from ..ndt.synth import DEFAULT_CHUNK_SIZE, SyntheticNdtGenerator

    flows = _int_param(params, "flows", 2000)
    seed = _int_param(params, "seed", 0, minimum=0)
    min_relative_shift = _float_param(params, "min_relative_shift", 0.25)
    streaming = params.get("streaming")
    if streaming is None:
        streaming = flows > STREAMING_THRESHOLD
    if streaming:
        result = run_pipeline_streaming(
            flows, seed=seed,
            chunk_size=_int_param(params, "chunk_size",
                                  DEFAULT_CHUNK_SIZE),
            min_relative_shift=min_relative_shift,
            workers=workers, store=store,
            resume=bool(params.get("resume", False)))
    else:
        dataset = SyntheticNdtGenerator(seed=seed).generate(flows)
        result = run_pipeline(dataset,
                              min_relative_shift=min_relative_shift,
                              workers=workers, store=store)
    summary = {
        "total": result.total,
        "counts": {getattr(cat, "name", str(cat)): n
                   for cat, n in sorted(result.counts.items(),
                                        key=lambda kv: str(kv[0]))},
        "remaining_with_shifts": result.remaining_with_shifts,
        "streamed": bool(streaming),
        "aggregate_fingerprint": result.aggregate_fingerprint(),
    }
    return summary, result


def execute_experiment(params: dict, store, workers) -> tuple[dict, object]:
    """``experiment`` jobs: any registered experiment by name."""
    import inspect

    from ..experiments import EXPERIMENTS

    name = params.get("experiment")
    if name not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {name!r}; "
            f"try: {', '.join(sorted(EXPERIMENTS))}")
    run_fn = EXPERIMENTS[name]
    run_params: dict = {}
    if params.get("smoke"):
        from ..cli import _smoke_overrides
        run_params.update(_smoke_overrides(name))
    extra = params.get("params", {})
    if not isinstance(extra, dict):
        raise ConfigError(f"param 'params' must be an object: {extra!r}")
    run_params.update(extra)
    accepted = inspect.signature(run_fn).parameters
    unknown = set(run_params) - set(accepted)
    if unknown:
        raise ConfigError(f"experiment {name} does not accept: "
                          f"{', '.join(sorted(unknown))}")
    if workers is not None and "workers" in accepted:
        run_params["workers"] = workers
    result = run_fn(**run_params)
    summary = {
        "experiment": result.experiment,
        "metrics": dict(result.metrics),
        "elapsed_s": result.elapsed_s,
    }
    return summary, result


def _run_sweep_point(value, experiment: str, param: str, base: dict):
    """Module-level (picklable, fingerprintable) sweep task body."""
    from ..experiments import EXPERIMENTS
    return EXPERIMENTS[experiment](**{**base, param: value})


def execute_sweep(params: dict, store, workers) -> tuple[dict, object]:
    """``sweep`` jobs: one experiment across a parameter range."""
    from ..experiments import EXPERIMENTS
    from ..experiments.runner import sweep

    name = params.get("experiment")
    if name not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {name!r}; "
            f"try: {', '.join(sorted(EXPERIMENTS))}")
    param = params.get("param")
    values = params.get("values")
    if not isinstance(param, str) or not param:
        raise ConfigError(f"param 'param' must be a string: {param!r}")
    if not isinstance(values, (list, tuple)) or not values:
        raise ConfigError(
            f"param 'values' must be a non-empty array: {values!r}")
    base = params.get("base", {})
    if not isinstance(base, dict):
        raise ConfigError(f"param 'base' must be an object: {base!r}")
    task = functools.partial(_run_sweep_point, experiment=name,
                             param=param, base=base)
    rows = sweep(list(values), task, label=param, workers=workers,
                 store=store)
    return {"experiment": name, "param": param, "rows": rows}, rows


def execute_qa_fuzz(params: dict, store, workers) -> tuple[dict, object]:
    """``qa-fuzz`` jobs: a budgeted scenario-fuzz campaign."""
    from ..qa.fuzz import run_fuzz

    budget = _int_param(params, "budget", 25)
    seed = _int_param(params, "seed", 0, minimum=0)
    report = run_fuzz(budget, seed=seed, store=store,
                      pool_check=bool(params.get("pool_check", False)))
    summary = {
        "budget": budget,
        "seed": seed,
        "passed": budget - len(report.failures),
        "failures": [{"index": v.index, "label": v.label,
                      "findings": [str(f) for f in v.findings]}
                     for v in report.failures],
        "cache_hits": report.cache_hits,
    }
    return summary, report


def execute_qa_search(params: dict, store, workers) -> tuple[dict, object]:
    """``qa-search`` jobs: a coverage-guided search campaign."""
    from ..qa.search import run_search

    budget = _int_param(params, "budget", 50)
    seed = _int_param(params, "seed", 0, minimum=0)
    threshold = _float_param(params, "threshold", 2.0)
    report = run_search(budget, seed=seed, workers=workers,
                        threshold=threshold)
    summary = {
        "budget": budget,
        "seed": seed,
        "coverage": report.feature_map.coverage,
        "min_confidence": report.feature_map.min_confidence(),
        "corpus_size": len(report.corpus),
        "failures": [f.to_dict() for f in report.failures],
        "reproduced": len(report.reproduced_failures),
    }
    return summary, report.to_dict()


def execute_qa_envelope(params: dict, store, workers) -> tuple[dict, object]:
    """``qa-envelope`` jobs: the robustness-envelope artifact.

    The artifact itself is store-cached under its own key (seed,
    budget, threshold, detector config, oracle-suite version), so a
    resubmission with equal params -- even under a different serve
    request id -- is a search-free cache hit.
    """
    from ..qa.search import run_envelope

    budget = _int_param(params, "budget", 50)
    seed = _int_param(params, "seed", 0, minimum=0)
    threshold = _float_param(params, "threshold", 2.0)
    artifact, cached = run_envelope(budget, seed=seed, store=store,
                                    workers=workers, threshold=threshold)
    failing = sum(1 for s in artifact["cells"].values() if not s["pass"])
    summary = {
        "budget": budget,
        "seed": seed,
        "coverage": artifact["coverage"],
        "failing_cells": failing,
        "min_confidence": artifact["min_confidence"],
        "fingerprint": artifact["fingerprint"],
        "cached": cached,
    }
    return summary, artifact


#: Kind -> executor.  Tests may register extra kinds; admission
#: validates against this table.
EXECUTORS: dict[str, Callable] = {
    "campaign": execute_campaign,
    "paths": execute_paths,
    "pipeline": execute_pipeline,
    "fig2-shard": execute_fig2_shard,
    "experiment": execute_experiment,
    "sweep": execute_sweep,
    "qa-fuzz": execute_qa_fuzz,
    "qa-search": execute_qa_search,
    "qa-eval": execute_qa_eval,
    "qa-envelope": execute_qa_envelope,
}


# ---------------------------------------------------------------------------
# JobManager
# ---------------------------------------------------------------------------


class JobManager:
    """Admission, coalescing, execution, and drain for serve jobs.

    Args:
        store: artifact store for cache hits, result persistence, and
            the admission journal; ``None`` disables all three (jobs
            still coalesce while in flight).
        queue_depth: bounded queue size (backpressure point).
        concurrency: worker coroutines / executor threads running jobs.
        job_workers: ``workers`` passed into each executor (process
            fan-out inside a job); ``None`` defers to ``REPRO_WORKERS``.
        timeout_s: per-job wall-clock deadline (``None`` = unlimited).
        clock: time source for job stamps (injectable for tests).
    """

    def __init__(self, store: ArtifactStore | None = None,
                 queue_depth: int = 64, concurrency: int = 2,
                 job_workers: int | None = None,
                 timeout_s: float | None = None,
                 clock: Callable[[], float] = time.time):
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigError(f"timeout_s must be > 0: {timeout_s}")
        self.store = store
        self.queue = JobQueue(queue_depth, concurrency=concurrency)
        self.concurrency = concurrency
        self.job_workers = job_workers
        self.timeout_s = timeout_s
        self.clock = clock
        self.jobs: dict[str, Job] = {}
        self.inflight: dict[str, Job] = {}
        self.running: set[str] = set()
        self.draining = False
        self._metrics = _METRICS.scoped("serve")
        self._workers: list[asyncio.Task] = []
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None

    # -- journal ---------------------------------------------------------

    def _journal_path(self, key: str):
        assert self.store is not None
        return self.store.root / "serve" / "journal" / f"{key}.json"

    def _journal_write(self, job: Job) -> None:
        if self.store is None:
            return
        atomic_write_json(self._journal_path(job.key), {
            "version": _JOURNAL_VERSION,
            "request": job.request.to_dict(),
            "admitted": job.created,
        })

    def _journal_remove(self, key: str) -> None:
        if self.store is None:
            return
        try:
            self._journal_path(key).unlink(missing_ok=True)
        except OSError:
            pass

    def resume_journal(self) -> list[Job]:
        """Re-admit every journaled (admitted but unfinished) request.

        Called on server start: a server killed mid-job left its
        journal entries behind, and their per-task results are already
        checkpointed in the store, so re-admission completes them
        cheaply (fully-finished entries come straight back as cache
        hits).  Invalid entries are dropped; a full queue leaves the
        remaining entries for the next start.
        """
        if self.store is None:
            return []
        journal_dir = self.store.root / "serve" / "journal"
        if not journal_dir.is_dir():
            return []
        resumed = []
        for path in sorted(journal_dir.glob("*.json")):
            try:
                import json
                with open(path) as f:
                    entry = json.load(f)
                if entry.get("version") != _JOURNAL_VERSION:
                    raise ValueError("journal version mismatch")
                request = JobRequest.from_dict(entry["request"])
            except (OSError, ValueError, KeyError, ConfigError):
                path.unlink(missing_ok=True)
                continue
            try:
                job, _ = self.submit(request)
            except QueueFull:
                break  # keep the rest journaled for the next start
            self._metrics.counter("jobs_resumed").inc()
            resumed.append(job)
        return resumed

    # -- admission -------------------------------------------------------

    def submit(self, request: JobRequest) -> tuple[Job, str]:
        """Admit one request.

        Returns ``(job, disposition)`` where disposition is one of
        ``"cached"`` (answered from the store, no execution),
        ``"coalesced"`` (attached to an identical in-flight job), or
        ``"queued"``.

        Raises:
            ServiceDraining: the manager no longer admits work.
            ConfigError: unknown kind or invalid params.
            QueueFull: backpressure; carries a Retry-After estimate.
        """
        if self.draining:
            raise ServiceDraining("service is draining; retry later")
        if request.kind not in EXECUTORS:
            raise ConfigError(
                f"unknown job kind {request.kind!r}; "
                f"try: {', '.join(sorted(EXECUTORS))}")
        key = request.fingerprint()
        now = self.clock()
        if self.store is not None:
            entry = self.store.get(key)
            if isinstance(entry, dict) and "summary" in entry:
                job = Job(request=request, key=key, created=now,
                          cached=True, summary=entry["summary"])
                job.transition(JobState.DONE, now)
                self.jobs[job.id] = job
                self._metrics.counter("jobs_cached").inc()
                return job, "cached"
        existing = self.inflight.get(key)
        if existing is not None and not existing.terminal:
            existing.waiters += 1
            existing.version += 1
            self._metrics.counter("jobs_coalesced").inc()
            return existing, "coalesced"
        job = Job(request=request, key=key, created=now)
        self.queue.put_nowait(job)  # may raise QueueFull
        self.jobs[job.id] = job
        self.inflight[key] = job
        self._journal_write(job)
        self._metrics.counter("jobs_admitted").inc()
        self._metrics.counter(f"kind.{request.kind}.admitted").inc()
        self._metrics.gauge("queue_depth").set(len(self.queue))
        return job, "queued"

    def get_job(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> tuple[bool, str]:
        """Cancel a queued job; running/terminal jobs refuse.

        Returns ``(ok, reason)``.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return False, "not found"
        if job.terminal:
            return False, f"already {job.state}"
        if job.state == JobState.RUNNING:
            return False, "already running"
        job.transition(JobState.CANCELLED, self.clock())
        self.inflight.pop(job.key, None)
        self._journal_remove(job.key)
        self._metrics.counter("jobs_cancelled").inc()
        return True, "cancelled"

    def stats(self) -> dict:
        """Live counters for ``/healthz``."""
        return {
            "queued": len(self.queue),
            "running": len(self.running),
            "jobs": len(self.jobs),
            "draining": self.draining,
        }

    # -- execution -------------------------------------------------------

    async def start(self) -> list[Job]:
        """Spawn worker coroutines and resume the admission journal."""
        if self._executor is None:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.concurrency,
                thread_name_prefix="repro-serve")
        resumed = self.resume_journal()
        for _ in range(self.concurrency - len(self._workers)):
            self._workers.append(asyncio.ensure_future(self._worker()))
        return resumed

    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            self._metrics.gauge("queue_depth").set(len(self.queue))
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        now = self.clock()
        self._metrics.histogram("queue_wait_s").observe(
            max(0.0, now - job.created))
        job.transition(JobState.RUNNING, now)
        self.running.add(job.id)
        self._metrics.gauge("running").set(len(self.running))
        loop = asyncio.get_running_loop()
        body = functools.partial(EXECUTORS[job.request.kind],
                                 dict(job.request.params), self.store,
                                 self.job_workers)
        try:
            future = loop.run_in_executor(self._executor, body)
            summary, payload = await asyncio.wait_for(
                future, timeout=self.timeout_s)
        except asyncio.TimeoutError:
            # The thread cannot be interrupted, but job-level progress
            # is checkpointed in the store, so a resubmission resumes.
            job.error = (f"job exceeded {self.timeout_s:g}s deadline "
                         "(partial progress is checkpointed)")
            job.error_type = "TimeoutError"
            job.transition(JobState.TIMEOUT, self.clock())
            self._journal_remove(job.key)
            self._metrics.counter("jobs_timeout").inc()
        except asyncio.CancelledError:
            # Drain cancelled the worker mid-wait: the executor thread
            # finishes on its own and the journal entry survives, so a
            # restarted server resumes this job.
            raise
        except Exception as exc:
            job.error = str(exc)
            job.error_type = type(exc).__name__
            job.transition(JobState.FAILED, self.clock())
            self._journal_remove(job.key)
            self._metrics.counter("jobs_failed").inc()
            self._metrics.counter(f"kind.{job.request.kind}.failed").inc()
        else:
            job.summary = summary
            if self.store is not None:
                self.store.put(job.key,
                               {"summary": summary, "payload": payload},
                               kind="serve-job",
                               label=f"{job.request.kind} {job.id}")
            job.transition(JobState.DONE, self.clock())
            self._journal_remove(job.key)
            self._metrics.counter("jobs_executed").inc()
            self._metrics.counter(f"kind.{job.request.kind}.done").inc()
            self._metrics.histogram("job_s").observe(
                max(0.0, job.finished - job.started))
            self.queue.observe_latency(job.finished - job.started)
        finally:
            self.running.discard(job.id)
            self._metrics.gauge("running").set(len(self.running))
            if self.inflight.get(job.key) is job:
                self.inflight.pop(job.key, None)

    # -- shutdown --------------------------------------------------------

    async def drain(self, grace_s: float = 30.0) -> bool:
        """Graceful shutdown: stop admitting, let work finish.

        Waits up to ``grace_s`` for the queue and running set to empty.
        Jobs still unfinished at the deadline keep their journal
        entries (and their store checkpoints), so the next server start
        re-admits and resumes them.  Returns True on a clean drain.
        """
        self.draining = True
        deadline = time.monotonic() + max(0.0, grace_s)
        while (len(self.queue) or self.running) \
                and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        clean = not len(self.queue) and not self.running
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=clean)
            self._executor = None
        return clean
