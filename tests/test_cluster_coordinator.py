"""Coordinator: dispatch/steal/merge semantics with scripted nodes,
and end-to-end clustered runs against live :class:`ServerThread`s.

The unit half drives the single-threaded loop with a fake clock and
in-memory clients, so every failure path (transport loss, execution
quarantine, stealing, dead cluster) is deterministic.  The e2e half
asserts the headline guarantee: a clustered campaign's store objects
are byte-identical to a serial run's, even with a dead node in the
spec, and a clustered search report equals the local one.
"""

import pickle

import pytest

from repro.cluster import (ClusterJournal, Coordinator, Membership,
                           parse_cluster, run_clustered_campaign,
                           run_clustered_search, shard_indices,
                           task_for)
from repro.errors import ClusterError, ConfigError
from repro.serve import ServeError, ServerThread, campaign_from_params
from repro.serve.limits import ClientRateLimiter
from repro.store import ArtifactStore


@pytest.fixture(autouse=True)
def _fresh_metrics():
    from repro.obs.metrics import REGISTRY
    REGISTRY.reset()
    yield
    REGISTRY.reset()


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class FakeServeNode:
    """Client-side stand-in for one serve node.

    Jobs reach ``state`` (default ``done``) on the first poll, and
    artifact fetches are served from ``objects`` (key -> bytes).
    """

    def __init__(self, objects, *, submit_hook=None, state="done"):
        self.objects = objects
        self.submit_hook = submit_hook
        self.state = state
        self.submitted = []
        self.status_calls = 0
        self.cancelled = []
        self._n = 0

    def submit(self, kind, params, priority=3):
        if self.submit_hook is not None:
            doc = self.submit_hook(kind, params)
            if doc is not None:
                return doc
        self._n += 1
        self.submitted.append((kind, dict(params)))
        return {"id": f"job-{self._n}", "state": "queued",
                "disposition": "queued"}

    def status(self, job_id):
        self.status_calls += 1
        state = self.state
        return {"id": job_id, "state": state, "summary": {"ok": True},
                "error": "boom" if state == "failed" else ""}

    def cancel(self, job_id):
        self.cancelled.append(job_id)
        return {"id": job_id, "state": "cancelled"}

    def fetch_store(self, key):
        try:
            return self.objects[key]
        except KeyError:
            raise ServeError(404, f"no store object {key[:16]}...")


def _tasks(n, objects, tag="t"):
    """n distinct tasks whose result objects land in ``objects``."""
    tasks = []
    for i in range(n):
        task = task_for("fake", {"i": i, "tag": tag})
        objects[task.key] = pickle.dumps({"i": i, "tag": tag},
                                         protocol=4)
        tasks.append(task)
    return tasks


def _fabric(clients, tmp_path, clock=None, **kwargs):
    """A (coordinator, store, clock) triple over scripted clients.

    ``clients`` maps node name ("host:port") to a client object, or
    None for a node whose probe always fails.
    """
    clock = clock or FakeClock()

    def probe(node):
        if clients.get(node.name) is None:
            raise ConnectionError("down")
        return {"status": "ok"}

    membership = Membership(parse_cluster(list(clients)), probe=probe,
                            clock=clock, probe_interval_s=0.2,
                            backoff_base_s=0.2, backoff_max_s=1.0)
    store = ArtifactStore(tmp_path / "coordinator-store")
    kwargs.setdefault("poll_s", 0.05)
    coordinator = Coordinator(
        membership, store, clock=clock, sleep=clock.advance,
        client_factory=lambda node: clients[node.name], **kwargs)
    return coordinator, store, clock


class TestCoordinatorLoop:
    def test_happy_path_merges_every_task(self, tmp_path):
        objects = {}
        a, b = FakeServeNode(objects), FakeServeNode(objects)
        coordinator, store, _ = _fabric({"a:1": a, "b:2": b}, tmp_path)
        tasks = _tasks(12, objects)
        records = coordinator.run(tasks)
        assert all(r.status == "done" for r in records.values())
        for task in tasks:
            assert store.get_bytes(task.key) == objects[task.key]
        # Rendezvous placement spreads a 12-task set over both nodes.
        assert a.submitted and b.submitted

    def test_duplicate_tasks_collapse_to_one_record(self, tmp_path):
        objects = {}
        node = FakeServeNode(objects)
        coordinator, _, _ = _fabric({"a:1": node}, tmp_path)
        [task] = _tasks(1, objects)
        records = coordinator.run([task, task, task])
        assert list(records) == [task.key]
        assert len(node.submitted) == 1
        from repro.obs.metrics import REGISTRY
        snap = REGISTRY.snapshot()
        assert snap["cluster.tasks_deduplicated"]["value"] == 2.0

    def test_transport_failure_fails_over_to_live_node(self, tmp_path):
        objects = {}
        good = FakeServeNode(objects)

        def refuse(kind, params):
            raise ServeError(0, "connection refused")

        flaky = FakeServeNode(objects, submit_hook=refuse)
        coordinator, store, _ = _fabric({"a:1": flaky, "b:2": good},
                                        tmp_path)
        tasks = _tasks(6, objects)
        records = coordinator.run(tasks)
        assert all(r.status == "done" for r in records.values())
        assert all(r.node == "b:2" for r in records.values())
        assert len(good.submitted) == 6

    def test_execution_failures_quarantine_after_max_attempts(
            self, tmp_path):
        objects = {}
        node = FakeServeNode(objects, state="failed")
        coordinator, _, _ = _fabric({"a:1": node}, tmp_path,
                                    max_attempts=3)
        [task] = _tasks(1, objects)
        records = coordinator.run([task])
        record = records[task.key]
        assert record.status == "failed"
        assert record.failures == 3 and record.error == "boom"
        assert len(node.submitted) == 3

    def test_invalid_request_quarantines_without_retry(self, tmp_path):
        objects = {}

        def reject(kind, params):
            raise ServeError(400, "param 'indices' must be ...")

        node = FakeServeNode(objects, submit_hook=reject)
        coordinator, _, _ = _fabric({"a:1": node}, tmp_path)
        [task] = _tasks(1, objects)
        records = coordinator.run([task])
        assert records[task.key].status == "failed"
        assert "indices" in records[task.key].error
        assert node.status_calls == 0, "a 400 never reaches polling"

    def test_cached_disposition_merges_without_polling(self, tmp_path):
        objects = {}
        node = FakeServeNode(objects)
        node.submit_hook = lambda kind, params: {
            "id": "cached-1", "state": "done",
            "disposition": "cached", "summary": {"cached": True}}
        coordinator, store, _ = _fabric({"a:1": node}, tmp_path)
        [task] = _tasks(1, objects)
        records = coordinator.run([task])
        assert records[task.key].status == "done"
        assert records[task.key].summary == {"cached": True}
        assert node.status_calls == 0
        assert store.get_bytes(task.key) == objects[task.key]

    def test_stuck_task_is_stolen_and_loser_cancelled(self, tmp_path):
        objects = {}
        slow = FakeServeNode(objects, state="running")
        fast = FakeServeNode(objects)
        coordinator, _, clock = _fabric({"a:1": slow, "b:2": fast},
                                        tmp_path, steal_after_s=1.0)
        nodes = coordinator.membership.nodes
        # A task whose rendezvous placement prefers the slow node.
        for i in range(64):
            task = task_for("fake", {"i": i, "tag": "steal"})
            if coordinator._rendezvous(task.key, nodes)[0].name \
                    == "a:1":
                break
        else:  # pragma: no cover - 2^-64 unlucky
            pytest.fail("no key rendezvoused onto a:1")
        objects[task.key] = pickle.dumps({"i": i}, protocol=4)
        records = coordinator.run([task])
        record = records[task.key]
        assert record.status == "done" and record.node == "b:2"
        assert len(slow.submitted) == 1 and len(fast.submitted) == 1
        assert slow.cancelled, "the loser's replica gets cancelled"

    def test_dead_cluster_raises_after_grace(self, tmp_path):
        objects = {}
        coordinator, _, _ = _fabric({"a:1": None, "b:2": None},
                                    tmp_path, dead_grace_s=1.0)
        with pytest.raises(ClusterError, match="no live cluster node"):
            coordinator.run(_tasks(2, objects))

    def test_journal_resume_skips_completed_tasks(self, tmp_path):
        objects = {}
        node = FakeServeNode(objects)
        coordinator, store, clock = _fabric({"a:1": node}, tmp_path)
        journal = ClusterJournal(store, "resume-run")
        coordinator.journal = journal
        tasks = _tasks(4, objects)
        records = coordinator.run(tasks)
        assert all(r.status == "done" for r in records.values())

        # Second run: same journal and store, but the whole cluster is
        # gone -- every task resumes from local state without dispatch.
        dead, store2, _ = _fabric({"a:1": None}, tmp_path,
                                  dead_grace_s=0.5)
        resumed = Coordinator(dead.membership, store, clock=clock,
                              sleep=clock.advance,
                              journal=ClusterJournal(store,
                                                     "resume-run"),
                              client_factory=lambda node: None)
        records = resumed.run(tasks)
        assert all(r.status == "resumed" for r in records.values())

    def test_coordinator_requires_a_store(self, tmp_path):
        clock = FakeClock()
        membership = Membership([("a", 1)],
                                probe=lambda n: {"status": "ok"},
                                clock=clock)
        with pytest.raises(ConfigError):
            Coordinator(membership, None)


class TestShardIndices:
    def test_near_equal_contiguous_chunks(self):
        assert shard_indices(list(range(7)), 3) == \
            [[0, 1, 2], [3, 4], [5, 6]]

    def test_never_produces_empty_shards(self):
        assert shard_indices([4, 9], 8) == [[4], [9]]
        assert shard_indices([1], 1) == [[1]]


# -- end to end ------------------------------------------------------------

#: Small-but-real campaign: 4 fluid paths, ~1s each of simulated time.
E2E_PARAMS = {"n_paths": 4, "seed": 3, "duration": 1.0,
              "backend": "fluid"}


def _open_limiter():
    return ClientRateLimiter(rate=1000.0, burst=1000.0)


def _node(tmp_path, name):
    return ServerThread(store=ArtifactStore(tmp_path / name),
                        concurrency=1, limiter=_open_limiter())


class TestClusteredCampaign:
    def test_two_nodes_byte_identical_to_serial(self, tmp_path):
        serial_store = ArtifactStore(tmp_path / "serial")
        golden = campaign_from_params(E2E_PARAMS).run(
            store=serial_store, workers=1)

        local = ArtifactStore(tmp_path / "local")
        with _node(tmp_path, "node-a") as a, \
                _node(tmp_path, "node-b") as b:
            membership = Membership(
                parse_cluster(f"127.0.0.1:{a.port},"
                              f"127.0.0.1:{b.port}"))
            result = run_clustered_campaign(
                E2E_PARAMS, membership, store=local, workers=1)

        # The byte-identity contract holds at the store level: every
        # per-path object a remote node computed matches the serial
        # run's bytes for the same content address.
        campaign = campaign_from_params(E2E_PARAMS)
        for spec in campaign.specs:
            key = campaign.path_key(spec)
            assert local.get_bytes(key) == serial_store.get_bytes(key)
        assert result.fraction_contending == golden.fraction_contending
        assert result.detector_quality() == golden.detector_quality()
        assert [r.verdict for r in result.results] == \
            [r.verdict for r in golden.results]

    def test_dead_node_in_spec_does_not_block_the_run(self, tmp_path):
        serial_store = ArtifactStore(tmp_path / "serial")
        golden = campaign_from_params(E2E_PARAMS).run(
            store=serial_store, workers=1)

        local = ArtifactStore(tmp_path / "local")
        with _node(tmp_path, "node-a") as a:
            # Port 9 (discard) is never a serve node: connect fails.
            membership = Membership(
                parse_cluster(f"127.0.0.1:{a.port},127.0.0.1:9"))
            result = run_clustered_campaign(
                E2E_PARAMS, membership, store=local, workers=1)
        assert result.fraction_contending == golden.fraction_contending
        assert [r.verdict for r in result.results] == \
            [r.verdict for r in golden.results]


class TestClusteredSearch:
    def test_report_equals_local_search(self, tmp_path):
        from repro.qa.search import run_search

        budget, seed = 8, 3
        golden = run_search(budget, seed=seed, workers=1)
        local = ArtifactStore(tmp_path / "local")
        with _node(tmp_path, "node-a") as a:
            membership = Membership(
                parse_cluster(f"127.0.0.1:{a.port}"))
            report = run_clustered_search(budget, membership,
                                          seed=seed, store=local)
        assert report.to_dict() == golden.to_dict()
