"""Experiment E12: the detector's calibrated envelope, cell by cell.

The QA oracles (``repro.qa.oracles``) judge contention verdicts only
inside a calibrated envelope of (cross traffic, rate, RTT) cells where
the packet backend's verdict is deterministic ground truth.  This
experiment runs exactly those cells -- the five elastic cells, the
three inelastic CBR cells, and an idle-path control -- on either
backend and reports the verdict table plus scenarios/second, making it
both the envelope's regression check and the standard yardstick for
backend speed comparisons (``benchmarks/bench_fluid.py`` reuses one of
these cells as its reference scenario).
"""

from __future__ import annotations

import functools

from .. import viz
from ..errors import ConfigError
from ..qa.scenario import Scenario, run_scenario
from ..runtime import parallel_map
from .runner import ExperimentResult, Stopwatch

#: The calibrated cells: (cross_traffic, rate_mbps, rtt_ms, expected
#: contending).  Mirrors ``_ELASTIC_ENVELOPE`` / ``_INELASTIC_ENVELOPE``
#: in :mod:`repro.qa.oracles`, plus an idle control.
ENVELOPE_CELLS: tuple[tuple[str, float, float, bool], ...] = (
    ("reno", 20.0, 20.0, True),
    ("reno", 20.0, 50.0, True),
    ("reno", 48.0, 50.0, True),
    ("bbr", 20.0, 20.0, True),
    ("bbr", 48.0, 20.0, True),
    ("cbr", 20.0, 50.0, False),
    ("cbr", 48.0, 20.0, False),
    ("cbr", 48.0, 50.0, False),
    ("none", 48.0, 20.0, False),
)


def _run_cell(scenario: Scenario, check_invariants: bool = True):
    return run_scenario(scenario, check_invariants=check_invariants)


def run(backend: str = "packet", duration: float = 20.0, seed: int = 1,
        workers: int | None = None) -> ExperimentResult:
    """Run every envelope cell and compare verdicts with ground truth.

    ``backend`` selects "packet" (the event-driven reference) or
    "fluid" (the rate-based fast path).  Cells are independent, so
    ``workers`` parallelizes them with bit-identical results.
    """
    if backend not in ("packet", "fluid"):
        raise ConfigError(f"unknown backend {backend!r}")
    scenarios = [
        Scenario(family="probe", rate_mbps=rate, rtt_ms=rtt,
                 qdisc="droptail", duration=duration, seed=seed,
                 cross_traffic=cross, backend=backend)
        for cross, rate, rtt, _ in ENVELOPE_CELLS]
    with Stopwatch() as watch:
        outcomes = parallel_map(functools.partial(_run_cell),
                                scenarios, workers=workers)

    rows = []
    agreements = 0
    for (cross, rate, rtt, expected), outcome in zip(ENVELOPE_CELLS,
                                                     outcomes):
        probe = outcome.probe or {}
        contending = bool(probe.get("contending"))
        agree = contending == expected
        agreements += agree
        total = sum(outcome.delivered.values())
        share = (outcome.delivered.get("probe", 0) / total
                 if total else 0.0)
        rows.append({
            "cross_traffic": cross,
            "rate_mbps": rate,
            "rtt_ms": rtt,
            "mean_elasticity": round(probe.get("mean_elasticity", 0.0),
                                     3),
            "category": probe.get("category", "?"),
            "contending": contending,
            "expected": expected,
            "agree": agree,
            "probe_share": round(share, 4),
        })

    n = len(rows)
    scenarios_per_s = n / watch.elapsed if watch.elapsed > 0 else 0.0
    parts = [
        f"E12: calibrated-envelope verdict check, backend={backend} "
        f"({n} cells, duration={duration:g}s, seed={seed})",
        "",
        viz.table(
            [(r["cross_traffic"], f"{r['rate_mbps']:g}",
              f"{r['rtt_ms']:g}", r["mean_elasticity"], r["category"],
              "yes" if r["expected"] else "no",
              "ok" if r["agree"] else "MISMATCH")
             for r in rows],
            header=("cross", "mbps", "rtt ms", "mean elast.",
                    "category", "expect contend", "verdict")),
        "",
        f"{agreements}/{n} cells agree with ground truth; "
        f"{scenarios_per_s:.2f} scenarios/s "
        f"({watch.elapsed:.2f}s wall)",
    ]
    return ExperimentResult(
        experiment="envelope",
        text="\n".join(parts),
        metrics={
            "cells": float(n),
            "agreements": float(agreements),
            "agreement_fraction": agreements / n,
            "scenarios_per_s": scenarios_per_s,
        },
        tables={"cells": rows},
        params={"backend": backend, "duration": duration, "seed": seed,
                "workers": workers},
        elapsed_s=watch.elapsed,
    )
