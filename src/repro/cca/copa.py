"""Copa: practical delay-based congestion control (Arun & Balakrishnan,
NSDI '18).

Copa targets a sending rate of ``1 / (delta * d_q)`` packets per
second, where ``d_q`` is the measured queueing delay (standing RTT
minus minimum RTT).  The window moves toward the corresponding target
with a velocity that doubles while the direction is stable.  The paper
(§3.2) cites Copa as the other mode-switching CCA: its default mode
checks whether cross traffic follows Copa's delay oscillations; our
implementation exposes the same default-mode dynamics.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import DEFAULT_MSS
from .base import AckSample, CongestionControl
from .filters import WindowedExtremum


class CopaCca(CongestionControl):
    """Copa default mode.

    Args:
        delta: aggressiveness; 0.5 targets ~2 packets of queueing.
    """

    name = "copa"

    def __init__(self, mss: int = DEFAULT_MSS, initial_cwnd: float = 10.0,
                 delta: float = 0.5):
        super().__init__(mss=mss)
        if delta <= 0:
            raise ConfigError(f"delta must be positive: {delta}")
        self._cwnd = float(initial_cwnd)
        self.delta = delta
        self.min_cwnd = 2.0
        self._velocity = 1.0
        self._direction = 0  # +1 growing, -1 shrinking
        self._last_direction_update = 0.0
        self._standing_rtt = WindowedExtremum(window=0.1, mode="min")
        self._srtt: float | None = None
        self._in_slow_start = True

    @property
    def cwnd(self) -> float:
        return self._cwnd

    @property
    def pacing_rate(self) -> float | None:
        # Copa paces at 2 * cwnd / RTT to avoid bursts.
        if self._srtt is None or self._srtt <= 0:
            return None
        return 2.0 * self._cwnd * self.mss / self._srtt

    def on_ack(self, sample: AckSample) -> None:
        if sample.rtt is None or sample.min_rtt is None:
            return
        now = sample.now
        self._srtt = sample.srtt
        # Standing RTT: min over the last srtt/2.
        window = (sample.srtt or sample.rtt) / 2.0
        self._standing_rtt.window = max(window, 1e-3)
        self._standing_rtt.update(now, sample.rtt)
        standing = self._standing_rtt.value or sample.rtt

        d_q = standing - sample.min_rtt
        acked_packets = sample.acked_bytes / self.mss

        if d_q <= 1e-6:
            # No measurable queue: the target rate is unbounded; grow.
            if self._in_slow_start:
                self._cwnd += acked_packets
            else:
                self._cwnd += (self._velocity * acked_packets
                               / (self.delta * self._cwnd))
            self._update_direction(+1, now)
            return

        target_rate = 1.0 / (self.delta * d_q)           # packets/second
        current_rate = self._cwnd / standing             # packets/second
        if self._in_slow_start:
            if current_rate < target_rate:
                self._cwnd += acked_packets
                return
            self._in_slow_start = False
        if current_rate < target_rate:
            self._cwnd += (self._velocity * acked_packets
                           / (self.delta * self._cwnd))
            self._update_direction(+1, now)
        else:
            self._cwnd -= (self._velocity * acked_packets
                           / (self.delta * self._cwnd))
            self._cwnd = max(self._cwnd, self.min_cwnd)
            self._update_direction(-1, now)

    def _update_direction(self, direction: int, now: float) -> None:
        rtt = self._srtt if self._srtt is not None else 0.1
        if direction == self._direction:
            if now - self._last_direction_update >= rtt:
                self._velocity = min(self._velocity * 2.0, 32.0)
                self._last_direction_update = now
        else:
            self._direction = direction
            self._velocity = 1.0
            self._last_direction_update = now

    def on_loss(self, now: float, lost_bytes: int) -> None:
        # Copa's default mode reduces only mildly on loss.
        self._in_slow_start = False
        self._cwnd = max(self._cwnd / 2.0, self.min_cwnd)
        self._velocity = 1.0

    def on_rto(self, now: float) -> None:
        self._in_slow_start = False
        self._cwnd = self.min_cwnd
        self._velocity = 1.0
