"""Queue discipline (qdisc) interface.

A qdisc sits at a link's egress.  The link calls :meth:`Qdisc.enqueue`
when a packet arrives and :meth:`Qdisc.dequeue` whenever it is ready to
transmit.  Qdiscs never own the clock; the current time is passed in so
the same object can be unit-tested without a simulator.

Drop and mark counters are maintained uniformly here so experiments can
read loss statistics off any discipline.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.packet import Packet


class Qdisc(abc.ABC):
    """Abstract egress queue discipline."""

    def __init__(self):
        self.drops = 0
        self.dropped_bytes = 0
        self.marks = 0
        self.enqueued = 0
        #: Optional observer invoked as ``fn(packet, now)`` on every drop.
        self.on_drop: Optional[Callable[[Packet, float], None]] = None

    @abc.abstractmethod
    def enqueue(self, packet: Packet, now: float) -> bool:
        """Offer ``packet`` to the queue.  Returns False if dropped."""

    @abc.abstractmethod
    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the next packet to transmit, if any."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of packets currently queued."""

    @property
    @abc.abstractmethod
    def byte_length(self) -> int:
        """Bytes currently queued."""

    def next_ready_time(self, now: float) -> Optional[float]:
        """Earliest time a queued packet may become transmittable.

        Rate-gated disciplines (token buckets) can hold packets even
        though the link is idle; they override this so the link knows
        when to poll again.  ``None`` means "whenever a packet arrives".
        """
        return None

    # -- helpers for subclasses -----------------------------------------

    def _record_drop(self, packet: Packet, now: float) -> None:
        self.drops += 1
        self.dropped_bytes += packet.size
        if self.on_drop is not None:
            self.on_drop(packet, now)

    def _record_mark(self) -> None:
        self.marks += 1

    def _record_enqueue(self) -> None:
        self.enqueued += 1
