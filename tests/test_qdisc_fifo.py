"""Unit tests for the DropTail FIFO qdisc."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.qdisc import DropTailQueue
from repro.sim.packet import make_data


def pkt(flow="f", size=1500):
    return make_data(flow, seq=0, payload=size - 52, size=size)


def test_fifo_order():
    q = DropTailQueue(limit_packets=10)
    first, second = pkt(), pkt()
    q.enqueue(first, 0.0)
    q.enqueue(second, 0.0)
    assert q.dequeue(0.0) is first
    assert q.dequeue(0.0) is second
    assert q.dequeue(0.0) is None


def test_packet_limit_tail_drops():
    q = DropTailQueue(limit_packets=2)
    assert q.enqueue(pkt(), 0.0)
    assert q.enqueue(pkt(), 0.0)
    assert not q.enqueue(pkt(), 0.0)
    assert q.drops == 1
    assert len(q) == 2


def test_byte_limit_tail_drops():
    q = DropTailQueue(limit_bytes=3000)
    assert q.enqueue(pkt(size=1500), 0.0)
    assert q.enqueue(pkt(size=1500), 0.0)
    assert not q.enqueue(pkt(size=1500), 0.0)
    assert q.byte_length == 3000


def test_small_packet_fits_after_byte_limit_rejects_big():
    q = DropTailQueue(limit_bytes=3100)
    q.enqueue(pkt(size=1500), 0.0)
    q.enqueue(pkt(size=1500), 0.0)
    assert not q.enqueue(pkt(size=1500), 0.0)
    assert q.enqueue(pkt(size=64), 0.0)


def test_requires_some_limit():
    with pytest.raises(ConfigError):
        DropTailQueue()


def test_rejects_nonpositive_limits():
    with pytest.raises(ConfigError):
        DropTailQueue(limit_packets=0)
    with pytest.raises(ConfigError):
        DropTailQueue(limit_bytes=-5)


def test_enqueue_stamps_time():
    q = DropTailQueue(limit_packets=5)
    p = pkt()
    q.enqueue(p, 3.25)
    assert p.enqueue_time == 3.25


def test_drop_observer_invoked():
    q = DropTailQueue(limit_packets=1)
    dropped = []
    q.on_drop = lambda packet, now: dropped.append((packet, now))
    q.enqueue(pkt(), 0.0)
    victim = pkt()
    q.enqueue(victim, 1.0)
    assert dropped == [(victim, 1.0)]


def test_counters():
    q = DropTailQueue(limit_packets=1)
    q.enqueue(pkt(size=1000), 0.0)
    q.enqueue(pkt(size=900), 0.0)
    assert q.enqueued == 1
    assert q.drops == 1
    assert q.dropped_bytes == 900


@given(st.lists(st.integers(min_value=64, max_value=9000), max_size=40))
def test_property_byte_accounting_consistent(sizes):
    q = DropTailQueue(limit_packets=20)
    expected = []
    for s in sizes:
        if q.enqueue(pkt(size=s), 0.0):
            expected.append(s)
    assert q.byte_length == sum(expected)
    drained = []
    while True:
        p = q.dequeue(0.0)
        if p is None:
            break
        drained.append(p.size)
    assert drained == expected
    assert q.byte_length == 0
