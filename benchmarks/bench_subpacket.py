"""Benchmark E5: sub-packet-BDP starvation (§2.3, Chen et al.).

Asserts: when the BDP is below one packet, Reno flows starve over
~20-second windows (timeout-driven), while the same flow count on a
healthy link shares cleanly.
"""

from repro.experiments import subpacket

from conftest import once


def test_subpacket_starvation(benchmark, bench_scale):
    duration = 120.0 if bench_scale == "full" else 60.0
    result = once(benchmark, subpacket.run, duration=duration)

    print()
    print(result.text)

    m = result.metrics
    assert m["subpacket_bdp_packets"] < 1.0
    # Starvation windows are common on the sub-packet link...
    assert m["subpacket_starved_fraction"] > 0.1
    # ...and driven by timeouts...
    assert m["subpacket_timeouts"] > 10
    # ...while the healthy link shows (almost) none.
    assert m["healthy_starved_fraction"] < 0.05
