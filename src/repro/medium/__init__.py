"""Shared-medium (CSMA/CA) bottleneck subsystem.

Every other bottleneck in this repo is a *queue*: packets (or fluid
cohorts) wait in a buffer and drain at the link rate.  This package
models the other regime the paper explicitly sidesteps (it drops
inferred-cellular flows from the §3.1 NDT analysis): a *shared medium*,
where senders are stations arbitrating for airtime with carrier
sensing, NAV deferral, inter-frame spacing, and binary-exponential
backoff -- Wi-Fi/5G-NR-U style contention.

The package holds what both backends share:

* :mod:`repro.medium.config` -- the ``medium`` scenario-axis grammar
  (``"queue"`` / ``"csma-<n>"`` / ``"csma-<n>-prio"``), the MAC access
  classes, and the slot/IFS timing constants.
* :mod:`repro.medium.bianchi` -- Bianchi's fixed-point saturation
  model, used as the fluid backend's airtime law *and* as the packet
  backend's validation ground truth.

The packet-level DES lives in :mod:`repro.sim.medium`
(:class:`~repro.sim.medium.MediumLink`); the fluid counterpart is
:class:`repro.fluid.queue.ContentionBottleneck`.
"""

from .bianchi import (airtime_shares, expected_service_time,
                      saturation_throughput, transmit_probabilities)
from .config import (ACCESS_CLASSES, MEDIUM_DEFAULT, PER_TX_OVERHEAD, SIFS,
                     SLOT_TIME, MacClass, MediumSpec, medium_names,
                     parse_medium)

__all__ = ["ACCESS_CLASSES", "MEDIUM_DEFAULT", "PER_TX_OVERHEAD", "SIFS",
           "SLOT_TIME", "MacClass", "MediumSpec", "medium_names",
           "parse_medium", "airtime_shares", "expected_service_time",
           "saturation_throughput", "transmit_probabilities"]
