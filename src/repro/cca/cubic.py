"""TCP Cubic congestion control (RFC 8312).

The window grows as a cubic function of time since the last loss,
plateauing near ``w_max`` (the window where loss last occurred) and then
probing beyond it.  A TCP-friendly region keeps Cubic at least as
aggressive as Reno at small BDPs.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import DEFAULT_MSS
from .base import AckSample, CongestionControl


class CubicCca(CongestionControl):
    """Cubic with fast convergence, per RFC 8312 defaults.

    Args:
        c: cubic scaling constant (packets/second^3).
        beta: multiplicative decrease factor (window *= beta on loss).
    """

    name = "cubic"

    def __init__(self, mss: int = DEFAULT_MSS, initial_cwnd: float = 10.0,
                 c: float = 0.4, beta: float = 0.7,
                 fast_convergence: bool = True):
        super().__init__(mss=mss)
        if not 0 < beta < 1:
            raise ConfigError(f"beta must be in (0, 1): {beta}")
        if c <= 0:
            raise ConfigError(f"c must be positive: {c}")
        self._cwnd = float(initial_cwnd)
        self.c = c
        self.beta = beta
        self.fast_convergence = fast_convergence
        self.ssthresh = float("inf")
        self.min_cwnd = 2.0
        self.w_max = 0.0
        self._k = 0.0
        self._epoch_start: float | None = None
        self._w_est = 0.0          # TCP-friendly (Reno-tracking) estimate

    @property
    def cwnd(self) -> float:
        return self._cwnd

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self.ssthresh

    def on_ack(self, sample: AckSample) -> None:
        if sample.in_recovery:
            return
        # RFC 3465-style byte counting cap (see RenoCca.on_ack).
        acked_packets = min(sample.acked_bytes / self.mss, 2.0)
        if self.in_slow_start:
            self._cwnd += acked_packets
            if self._cwnd > self.ssthresh:
                self._cwnd = self.ssthresh
            return
        rtt = sample.srtt if sample.srtt is not None else 0.1
        now = sample.now
        if self._epoch_start is None:
            self._epoch_start = now
            if self._cwnd < self.w_max:
                self._k = ((self.w_max - self._cwnd) / self.c) ** (1.0 / 3.0)
            else:
                self._k = 0.0
                self.w_max = self._cwnd
            self._w_est = self._cwnd

        t = now - self._epoch_start + rtt  # target one RTT ahead (RFC 8312)
        w_cubic = self.c * (t - self._k) ** 3 + self.w_max

        # TCP-friendly region: emulate Reno's growth from epoch start.
        reno_alpha = 3.0 * (1.0 - self.beta) / (1.0 + self.beta)
        self._w_est += reno_alpha * acked_packets / self._cwnd

        target = max(w_cubic, self._w_est)
        if target > self._cwnd:
            self._cwnd = min(
                target,
                self._cwnd + (target - self._cwnd) / self._cwnd * acked_packets)
        else:
            # Stay put; Cubic grows at a token rate in the concave dip.
            self._cwnd += acked_packets / (100.0 * self._cwnd)

    def _multiplicative_decrease(self) -> None:
        if self.fast_convergence and self._cwnd < self.w_max:
            self.w_max = self._cwnd * (1.0 + self.beta) / 2.0
        else:
            self.w_max = self._cwnd
        self._cwnd = max(self._cwnd * self.beta, self.min_cwnd)
        self.ssthresh = self._cwnd
        self._epoch_start = None

    def on_loss(self, now: float, lost_bytes: int) -> None:
        self._multiplicative_decrease()

    def on_rto(self, now: float) -> None:
        self._multiplicative_decrease()
        self._cwnd = 1.0
