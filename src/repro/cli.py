"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands:

* ``repro list`` -- show available experiments.
* ``repro run fig3 [--out results/] [--smoke]`` -- run an experiment
  and print its report (optionally saving CSV/JSON artifacts).
* ``repro trace fig3 --out trace.jsonl`` -- run an experiment with the
  structured event trace streamed to JSONL.
* ``repro metrics fig3`` -- run an experiment and print the metrics
  registry (counters, gauges, histograms).
* ``repro quicklook --cross reno`` -- probe one emulated path.
* ``repro synth-ndt --flows 1000 --out ndt.jsonl`` -- write a synthetic
  NDT dataset.
* ``repro bench`` -- quick built-in performance smoke (engine, PELT,
  pipeline, campaign serial vs parallel).

Parallelism: experiments with independent inner work (the campaign,
the Figure 2 pipeline) accept ``--workers N``; without the flag the
``REPRO_WORKERS`` environment variable, then the CPU count, decides.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__

#: Reduced parameters so every experiment finishes in seconds (CI and
#: demos); keys are experiment names, values are run() overrides.
SMOKE_PARAMS: dict[str, dict] = {
    "fig2": {"n_flows": 500},
    "fig3": {"phases": None},  # filled in below to shorten phases
    "fq_ablation": {"duration": 10.0},
    "tbf_jitter": {"duration": 8.0, "burst_sizes_kb": (15.0, 250.0)},
    "subpacket": {"duration": 40.0, "n_flows": 8},
    "fairness_matrix": {"duration": 10.0,
                        "ccas": ("reno", "cubic", "bbr")},
    "campaign_eval": {"n_paths": 8, "duration": 15.0},
    "access_link": {"duration": 3.0},
    "tslp_vs_elasticity": {"duration": 12.0},
    "bwe_isolation": {"duration": 8.0},
    "cellular_robustness": {"duration": 20.0,
                            "volatilities": (0.0, 0.1)},
}


def _smoke_overrides(name: str) -> dict:
    params = dict(SMOKE_PARAMS.get(name, {}))
    if name == "fig3":
        from .traffic.mix import FIGURE3_PHASES, Phase
        params["phases"] = tuple(Phase(p.name, 15.0)
                                 for p in FIGURE3_PHASES)
    return params


def cmd_list(args) -> int:
    """``repro list``: print the experiment registry."""
    from .experiments import EXPERIMENTS
    for name, fn in sorted(EXPERIMENTS.items()):
        doc = (sys.modules[fn.__module__].__doc__ or "").strip()
        first = doc.splitlines()[0] if doc else ""
        print(f"{name:16s} {first}")
    return 0


def _resolve_experiment(args):
    """Map CLI args to ``(run_fn, params)``; None when unknown.

    Shared by ``run``, ``trace``, and ``metrics``: handles smoke
    overrides and the optional ``--seed`` / ``--workers`` passthrough
    (silently meaningful only for experiments that accept them).
    """
    from .experiments import EXPERIMENTS
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return None
    import inspect
    run_fn = EXPERIMENTS[args.experiment]
    params = _smoke_overrides(args.experiment) if args.smoke else {}
    accepted = inspect.signature(run_fn).parameters
    if getattr(args, "seed", None) is not None:
        if "seed" in accepted:
            params["seed"] = args.seed
        else:
            print(f"note: {args.experiment} takes no seed; ignoring",
                  file=sys.stderr)
    if getattr(args, "workers", None) is not None:
        if "workers" in accepted:
            params["workers"] = args.workers
        else:
            print(f"note: {args.experiment} takes no workers; ignoring",
                  file=sys.stderr)
    return run_fn, params


def cmd_run(args) -> int:
    """``repro run <experiment>``: run and print one experiment."""
    resolved = _resolve_experiment(args)
    if resolved is None:
        return 2
    run_fn, params = resolved
    result = run_fn(**params)
    print(result.text)
    print(f"\n[{result.experiment} finished in {result.elapsed_s:.1f}s]")
    if args.out:
        from .obs.metrics import REGISTRY
        if len(REGISTRY):
            result.attachments.setdefault("metrics_registry",
                                          REGISTRY.snapshot())
        written = result.save(args.out)
        for path in written:
            print(f"wrote {path}")
    return 0


def cmd_trace(args) -> int:
    """``repro trace <experiment>``: run with event tracing to JSONL."""
    resolved = _resolve_experiment(args)
    if resolved is None:
        return 2
    run_fn, params = resolved
    from .obs.bus import JsonlTraceWriter
    kinds = args.kinds.split(",") if args.kinds else None
    with JsonlTraceWriter(args.out, kinds=kinds) as writer:
        result = run_fn(**params)
    print(f"{result.experiment}: wrote {writer.count} events "
          f"to {args.out}")
    for kind, n in sorted(writer.counts.items()):
        print(f"  {kind:10s} {n:>10d}")
    return 0


def cmd_metrics(args) -> int:
    """``repro metrics <experiment>``: run and print the metrics registry."""
    resolved = _resolve_experiment(args)
    if resolved is None:
        return 2
    run_fn, params = resolved
    from .obs.metrics import REGISTRY
    REGISTRY.reset()
    result = run_fn(**params)
    snapshot = REGISTRY.snapshot()
    for name, entry in snapshot.items():
        if entry["type"] == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            print(f"{name:32s} histogram n={count} mean={mean:.6g}")
        else:
            print(f"{name:32s} {entry['type']} {entry['value']:.6g}")
    if not snapshot:
        print("(no metrics recorded)")
    if args.out:
        result.attachments["metrics_registry"] = snapshot
        written = result.save(args.out)
        for path in written:
            print(f"wrote {path}")
    return 0


def cmd_quicklook(args) -> int:
    """``repro quicklook``: probe one emulated path and print verdicts."""
    from .core.quicklook import run_quicklook
    result = run_quicklook(cross_traffic=args.cross,
                           duration=args.duration, seed=args.seed or 0)
    print(f"cross traffic:     {result.cross_traffic}")
    print(f"mean elasticity:   {result.mean_elasticity:.2f}")
    print(f"contending:        {result.verdict} ({result.category})")
    print(f"probe throughput:  {result.probe_throughput_mbps:.1f} Mbit/s")
    return 0


def cmd_bench(args) -> int:
    """``repro bench``: built-in quick performance smoke."""
    from .benchtool import render, run_quick_bench
    rows = run_quick_bench(workers=args.workers, full=args.full)
    print(render(rows))
    failed = [r.name for r in rows if not r.ok]
    if failed:
        print(f"self-checks FAILED: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


def cmd_synth_ndt(args) -> int:
    """``repro synth-ndt``: write a synthetic NDT dataset as JSONL."""
    from .ndt.synth import SyntheticNdtGenerator
    dataset = SyntheticNdtGenerator(seed=args.seed or 0) \
        .generate(args.flows)
    dataset.save_jsonl(args.out)
    print(f"wrote {len(dataset)} records to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'How I Learned to Stop Worrying "
                     "About CCA Contention' (HotNets '23)"))
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments")
    p_list.set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="run an experiment")
    p_run.add_argument("experiment")
    p_run.add_argument("--out", help="directory for CSV/JSON artifacts")
    p_run.add_argument("--smoke", action="store_true",
                       help="reduced parameters, seconds not minutes")
    p_run.add_argument("--seed", type=int)
    p_run.add_argument("--workers", type=int,
                       help="worker processes for parallel experiments "
                            "(default: $REPRO_WORKERS, then CPU count)")
    p_run.set_defaults(fn=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="run an experiment with event tracing to JSONL")
    p_trace.add_argument("experiment")
    p_trace.add_argument("--out", default="trace.jsonl",
                         help="JSONL output path (default: trace.jsonl)")
    p_trace.add_argument("--kinds",
                         help="comma-separated event kinds to keep "
                              "(default: all)")
    p_trace.add_argument("--smoke", action="store_true",
                         help="reduced parameters, seconds not minutes")
    p_trace.add_argument("--seed", type=int)
    p_trace.add_argument("--workers", type=int)
    p_trace.set_defaults(fn=cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="run an experiment and print the metrics registry")
    p_metrics.add_argument("experiment")
    p_metrics.add_argument("--out",
                           help="directory for report + registry snapshot")
    p_metrics.add_argument("--smoke", action="store_true",
                           help="reduced parameters, seconds not minutes")
    p_metrics.add_argument("--seed", type=int)
    p_metrics.add_argument("--workers", type=int)
    p_metrics.set_defaults(fn=cmd_metrics)

    p_bench = sub.add_parser(
        "bench", help="quick built-in performance smoke")
    p_bench.add_argument("--workers", type=int,
                         help="worker processes for the parallel rows")
    p_bench.add_argument("--full", action="store_true",
                         help="paper-scale sizes (minutes, not seconds)")
    p_bench.set_defaults(fn=cmd_bench)

    p_quick = sub.add_parser("quicklook",
                             help="probe one emulated path")
    p_quick.add_argument("--cross", default="reno",
                         help="cross traffic type (reno, bbr, video, "
                              "poisson, cbr, none)")
    p_quick.add_argument("--duration", type=float, default=30.0)
    p_quick.add_argument("--seed", type=int)
    p_quick.set_defaults(fn=cmd_quicklook)

    p_synth = sub.add_parser("synth-ndt",
                             help="generate a synthetic NDT dataset")
    p_synth.add_argument("--flows", type=int, default=9_984)
    p_synth.add_argument("--out", default="ndt.jsonl")
    p_synth.add_argument("--seed", type=int)
    p_synth.set_defaults(fn=cmd_synth_ndt)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
