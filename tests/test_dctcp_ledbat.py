"""Tests for DCTCP (ECN-proportional) and LEDBAT (scavenger) CCAs."""

import pytest

from repro.cca import DctcpCca, LedbatCca, RenoCca
from repro.cca.base import AckSample
from repro.errors import ConfigError
from repro.qdisc import RedQueue
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms, to_mbps


def ack(now=1.0, acked=1448, rtt=0.01, min_rtt=0.01, srtt=0.01,
        inflight=14480, delivered=100_000, ecn=False,
        in_recovery=False):
    return AckSample(now=now, acked_bytes=acked, rtt=rtt, min_rtt=min_rtt,
                     srtt=srtt, inflight_bytes=inflight,
                     delivery_rate=None, delivery_rate_app_limited=False,
                     delivered_total=delivered, in_recovery=in_recovery,
                     ecn_echo=ecn)


class TestDctcpUnits:
    def test_alpha_decays_without_marks(self):
        cca = DctcpCca(g=0.5)
        delivered = 0
        for i in range(10):
            delivered += 20_000
            cca.on_ack(ack(now=0.01 * i, delivered=delivered,
                           inflight=10_000))
        assert cca.alpha < 0.1

    def test_full_marking_keeps_alpha_high(self):
        cca = DctcpCca(g=0.5)
        delivered = 0
        for i in range(10):
            delivered += 20_000
            cca.on_ack(ack(now=0.01 * i, delivered=delivered,
                           inflight=10_000, ecn=True))
        assert cca.alpha > 0.9

    def test_reduction_proportional_to_alpha(self):
        def make(alpha):
            cca = DctcpCca(initial_cwnd=100.0)
            cca.ssthresh = 50.0  # exit slow start
            cca.alpha = alpha
            cca._reduced_this_window = False
            cca._window_end_delivered = 1 << 40  # stay in this window
            return cca

        mild = make(0.1)
        mild.on_ack(ack(ecn=True))
        assert mild.cwnd == pytest.approx(95.0)

        harsh = make(1.0)
        harsh.on_ack(ack(ecn=True))
        assert harsh.cwnd == pytest.approx(50.0)

    def test_one_reduction_per_window(self):
        cca = DctcpCca(initial_cwnd=100.0)
        cca.ssthresh = 50.0
        cca.alpha = 1.0
        cca._window_end_delivered = 1 << 40  # keep same window
        cca.on_ack(ack(ecn=True, delivered=100))
        after_first = cca.cwnd
        cca.on_ack(ack(ecn=True, delivered=200))
        # No second cut (only ~one packet of CA growth).
        assert cca.cwnd == pytest.approx(after_first, rel=0.01)
        assert cca.cwnd >= after_first

    def test_loss_still_halves(self):
        cca = DctcpCca(initial_cwnd=40.0)
        cca.on_loss(1.0, 1448)
        assert cca.cwnd == pytest.approx(20.0)

    def test_invalid_gain(self):
        with pytest.raises(ConfigError):
            DctcpCca(g=0.0)

    def test_integration_low_queue_high_utilization(self):
        # DCTCP on a step-marking RED queue keeps the queue short
        # while using the link well -- the §2.3 datacenter property.
        sim = Simulator()
        red = RedQueue(min_thresh=10, max_thresh=11, limit_packets=200,
                       max_p=1.0, weight=1.0, ecn=True)
        path = dumbbell(sim, mbps(100), ms(2), qdisc=red)
        conn = Connection(sim, path, "dctcp", DctcpCca(), ecn=True)
        conn.sender.set_infinite_backlog()
        sim.run(until=5.0)
        goodput = to_mbps(conn.receiver.received_bytes / 5.0)
        assert goodput > 70.0
        assert red.drops < 20  # marks, not drops


class TestLedbatUnits:
    def test_grows_below_target(self):
        cca = LedbatCca(initial_cwnd=10.0, target=0.025)
        cca.on_ack(ack(rtt=0.010, min_rtt=0.010))  # zero queueing
        assert cca.cwnd > 10.0

    def test_shrinks_above_target(self):
        cca = LedbatCca(initial_cwnd=10.0, target=0.025)
        cca.on_ack(ack(rtt=0.100, min_rtt=0.010))  # 90 ms queueing
        assert cca.cwnd < 10.0

    def test_equilibrium_at_target(self):
        cca = LedbatCca(initial_cwnd=10.0, target=0.025)
        cca.on_ack(ack(rtt=0.035, min_rtt=0.010))  # exactly on target
        assert cca.cwnd == pytest.approx(10.0)

    def test_invalid_target(self):
        with pytest.raises(ConfigError):
            LedbatCca(target=0.0)

    def test_integration_yields_to_reno(self):
        # The scavenger property: LEDBAT gets out of the way.
        sim = Simulator()
        path = dumbbell(sim, mbps(20), ms(40), buffer_multiplier=2.0)
        ledbat = Connection(sim, path, "bg", LedbatCca())
        ledbat.sender.set_infinite_backlog()
        sim.run(until=10.0)  # LEDBAT alone first (slow additive ramp)
        alone = ledbat.receiver.received_bytes
        reno = Connection(sim, path, "fg", RenoCca())
        reno.sender.set_infinite_backlog()
        sim.run(until=30.0)
        fg = reno.receiver.received_bytes
        bg = ledbat.receiver.received_bytes - alone
        assert to_mbps(alone / 10.0) > 10.0     # uses idle capacity
        assert fg > 4 * bg                      # then yields hard

    def test_integration_saturates_alone(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(20), ms(40))
        conn = Connection(sim, path, "bg", LedbatCca())
        conn.sender.set_infinite_backlog()
        sim.run(until=10.0)
        assert to_mbps(conn.receiver.received_bytes / 10.0) > 15.0
