"""Simulator quality assurance: fuzzing, oracles, and the corpus.

The paper's claims are only as trustworthy as the event-driven
simulator underneath, so this package validates the engine the way
Contracts (Agarwal et al.) argues CCAs themselves should be validated:
against explicit properties rather than point scenarios.

* :mod:`repro.qa.scenario` -- a serializable :class:`Scenario` model
  spanning every qdisc, CCA, and traffic mix in the repo, plus
  :func:`run_scenario`, which executes one scenario under full trace
  capture and invariant checking.
* :mod:`repro.qa.oracles` -- the oracle suite: conservation/queue
  invariants, metamorphic properties (seed determinism, rate
  monotonicity, elasticity rescaling invariance), and paper-level
  ground-truth oracles (elastic cross traffic must read elastic).
* :mod:`repro.qa.fuzz` -- the seeded scenario sampler and the fuzz
  campaign driver (store-backed caching of passing scenarios).
* :mod:`repro.qa.shrink` -- delta-debugging minimizer for failing
  scenarios.
* :mod:`repro.qa.corpus` -- the committed regression corpus under
  ``tests/corpus/`` that pytest replays on every run.

CLI entry points: ``repro qa fuzz | shrink | corpus``.
"""

from .corpus import (CorpusCase, load_case, load_corpus, replay_case,
                     save_case)
from .fuzz import FuzzReport, ScenarioVerdict, run_fuzz, sample_scenario
from .oracles import (ORACLES, FAULT_ENV, Oracle, OracleFinding,
                      oracles_for_index, run_oracles)
from .scenario import (FLOW_CCAS, QDISC_NAMES, FlowSpec, Scenario,
                       ScenarioOutcome, build_qdisc, run_scenario,
                       scenario_fingerprint)
from .shrink import ShrinkResult, shrink

__all__ = [
    "Scenario", "FlowSpec", "ScenarioOutcome", "QDISC_NAMES", "FLOW_CCAS",
    "build_qdisc", "run_scenario", "scenario_fingerprint",
    "Oracle", "OracleFinding", "ORACLES", "FAULT_ENV", "run_oracles",
    "oracles_for_index",
    "run_fuzz", "sample_scenario", "FuzzReport", "ScenarioVerdict",
    "shrink", "ShrinkResult",
    "CorpusCase", "save_case", "load_case", "load_corpus", "replay_case",
]
