"""DCTCP: Data Center TCP (Alizadeh et al., SIGCOMM 2010).

The paper's §2.3 notes that some datacenter designs use CCA mechanisms
to allocate bandwidth (citing DCTCP first).  DCTCP reacts to the
*fraction* of ECN-marked packets per window, cutting the window
proportionally to congestion extent rather than by half -- which keeps
queues tiny on ECN-marking switches (our :class:`~repro.qdisc.red.RedQueue`
with a step threshold stands in for those).

cwnd <- cwnd * (1 - alpha/2), with alpha an EWMA of the marked
fraction per RTT.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import DEFAULT_MSS
from .base import AckSample, CongestionControl


class DctcpCca(CongestionControl):
    """DCTCP window management.

    Args:
        g: EWMA gain for the marked-fraction estimate (RFC 8257: 1/16).
        initial_cwnd: initial window (packets).
    """

    name = "dctcp"

    def __init__(self, mss: int = DEFAULT_MSS, initial_cwnd: float = 10.0,
                 g: float = 1.0 / 16.0):
        super().__init__(mss=mss)
        if not 0 < g <= 1:
            raise ConfigError(f"g must be in (0, 1]: {g}")
        self._cwnd = float(initial_cwnd)
        self.g = g
        self.alpha = 1.0          # assume the worst until measured
        self.ssthresh = float("inf")
        self.min_cwnd = 2.0
        self._acked_bytes_window = 0
        self._marked_bytes_window = 0
        self._window_end_delivered = 0
        self._reduced_this_window = False

    @property
    def cwnd(self) -> float:
        return self._cwnd

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self.ssthresh

    def on_ack(self, sample: AckSample) -> None:
        self._acked_bytes_window += sample.acked_bytes
        if sample.ecn_echo:
            self._marked_bytes_window += sample.acked_bytes

        # Once per window of data: fold the marked fraction into alpha.
        if sample.delivered_total >= self._window_end_delivered:
            if self._acked_bytes_window > 0:
                fraction = (self._marked_bytes_window
                            / self._acked_bytes_window)
                self.alpha = (1 - self.g) * self.alpha + self.g * fraction
            self._acked_bytes_window = 0
            self._marked_bytes_window = 0
            self._window_end_delivered = (sample.delivered_total
                                          + sample.inflight_bytes)
            self._reduced_this_window = False

        if sample.in_recovery:
            return
        if sample.ecn_echo and not self._reduced_this_window:
            self._reduced_this_window = True
            if self.in_slow_start:
                self.ssthresh = self._cwnd
            self._cwnd = max(self._cwnd * (1 - self.alpha / 2.0),
                             self.min_cwnd)
            return
        acked_packets = min(sample.acked_bytes / self.mss, 2.0)
        if self.in_slow_start:
            self._cwnd += acked_packets
            if self._cwnd > self.ssthresh:
                self._cwnd = self.ssthresh
        else:
            self._cwnd += acked_packets / self._cwnd

    def on_loss(self, now: float, lost_bytes: int) -> None:
        self.ssthresh = max(self._cwnd / 2.0, self.min_cwnd)
        self._cwnd = self.ssthresh

    def on_rto(self, now: float) -> None:
        self.ssthresh = max(self._cwnd / 2.0, self.min_cwnd)
        self._cwnd = 1.0
