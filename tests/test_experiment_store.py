"""Tests for experiment-level store integration.

Satellite coverage from ISSUE 3: ``sweep()`` names the failing sweep
value in its exception chain (serial and pool mode);
``ExperimentResult.save`` never silently overwrites a prior report;
sweeps served from the store skip execution entirely.
"""

import functools
import json

import pytest

from repro.errors import SweepPointError
from repro.experiments.runner import (ExperimentResult, sweep,
                                      versioned_path)
from repro.obs.metrics import REGISTRY
from repro.store import ArtifactStore


def make_result(value, scale=1.0):
    return ExperimentResult(
        experiment="toy", text=f"value={value}",
        metrics={"doubled": float(value) * 2 * scale},
        tables={"rows": [{"v": value}]})


def boom_at_three(value, scale=1.0):
    if value == 3:
        raise ValueError("unstable operating point")
    return make_result(value, scale)


@pytest.fixture(autouse=True)
def _reset_metrics():
    REGISTRY.reset()
    yield
    REGISTRY.reset()


class TestSweepFailureRegression:
    def test_serial_failure_names_value_and_chains_cause(self):
        with pytest.raises(SweepPointError) as excinfo:
            sweep([1, 2, 3, 4], boom_at_three, label="rate", workers=1)
        assert "rate=3" in str(excinfo.value)
        assert "unstable operating point" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_pool_failure_names_value(self):
        # Worker exceptions cross the pool by pickling, which drops
        # __cause__ -- the message itself must carry the value.
        with pytest.raises(SweepPointError) as excinfo:
            sweep([1, 2, 3, 4], boom_at_three, label="rate", workers=2)
        assert "rate=3" in str(excinfo.value)
        assert "ValueError" in str(excinfo.value)

    def test_successful_sweep_rows_in_order(self):
        rows = sweep([1, 2, 4], boom_at_three, label="rate", workers=1)
        assert [r["rate"] for r in rows] == [1, 2, 4]
        assert [r["doubled"] for r in rows] == [2.0, 4.0, 8.0]


class TestSweepCaching:
    def test_second_sweep_runs_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        fn = functools.partial(make_result, scale=3.0)
        first = sweep([1, 2, 4], fn, label="rate", workers=1, store=store)
        REGISTRY.reset()
        second = sweep([1, 2, 4], fn, label="rate", workers=1,
                       store=store)
        assert second == first
        assert REGISTRY.counter("pool.tasks").value == 0
        assert REGISTRY.counter("store.hits").value == 3

    def test_changed_fn_config_invalidates(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        sweep([1], functools.partial(make_result, scale=3.0),
              label="rate", workers=1, store=store)
        REGISTRY.reset()
        rows = sweep([1], functools.partial(make_result, scale=5.0),
                     label="rate", workers=1, store=store)
        assert REGISTRY.counter("store.hits").value == 0
        assert rows[0]["doubled"] == 10.0

    def test_new_points_extend_cached_sweep(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        fn = functools.partial(make_result, scale=1.0)
        sweep([1, 2], fn, label="rate", workers=1, store=store)
        REGISTRY.reset()
        rows = sweep([1, 2, 5], fn, label="rate", workers=1, store=store)
        assert REGISTRY.counter("store.hits").value == 2
        assert REGISTRY.counter("pool.tasks").value == 1
        assert [r["rate"] for r in rows] == [1, 2, 5]


class TestSaveVersioning:
    def test_versioned_path(self, tmp_path):
        p = tmp_path / "report.txt"
        assert versioned_path(p, 0) == p
        assert versioned_path(p, 3).name == "report.3.txt"

    def test_second_save_versions_not_overwrites(self, tmp_path):
        make_result(1).save(tmp_path)
        make_result(2).save(tmp_path)
        out = tmp_path / "toy"
        assert (out / "report.txt").read_text() == "value=1\n"
        assert (out / "report.1.txt").read_text() == "value=2\n"
        assert (out / "metrics.1.json").exists()
        assert (out / "rows.1.csv").exists()

    def test_third_save_takes_next_version(self, tmp_path):
        for value in (1, 2, 3):
            make_result(value).save(tmp_path)
        assert (tmp_path / "toy" / "report.2.txt").read_text() \
            == "value=3\n"

    def test_force_overwrites_in_place(self, tmp_path):
        make_result(1).save(tmp_path)
        written = make_result(2).save(tmp_path, force=True)
        out = tmp_path / "toy"
        assert (out / "report.txt").read_text() == "value=2\n"
        assert not (out / "report.1.txt").exists()
        assert (out / "report.txt") in written
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["metrics"]["doubled"] == 4.0

    def test_fresh_save_unversioned(self, tmp_path):
        written = make_result(1).save(tmp_path)
        names = {p.name for p in written}
        assert names == {"report.txt", "metrics.json", "rows.csv"}
