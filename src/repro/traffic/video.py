"""Adaptive-bitrate (ABR) video streaming.

The paper's §2.2 argues most bytes on the Internet are video, whose
demand is bounded by the bitrate ladder and adapted *by the
application* -- so its bandwidth allocation is set by ABR logic, not by
CCA contention.  This model implements chunked HTTP-style streaming
with a buffer-based ABR policy (BBA-like): pick bitrates by playback
buffer level, stall when the buffer empties, cap the buffer at a
maximum.

Each chunk is a request/response over the flow's transport connection;
between chunks the connection is idle (application-limited) -- exactly
the on/off pattern that shows up as low elasticity in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cca.base import CongestionControl
from ..cca.cubic import CubicCca
from ..errors import ConfigError
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..tcp.endpoint import Connection
from ..units import mbps
from .base import TrafficSource

#: A Netflix/YouTube-style bitrate ladder, in Mbit/s.
DEFAULT_LADDER_MBPS = (0.6, 1.5, 3.0, 4.5, 8.0, 16.0)


@dataclass
class VideoStats:
    """Playback quality statistics."""

    chunks_fetched: int = 0
    stalls: int = 0
    stall_time: float = 0.0
    bitrate_history: list[float] = field(default_factory=list)

    @property
    def mean_bitrate(self) -> float:
        if not self.bitrate_history:
            return 0.0
        return sum(self.bitrate_history) / len(self.bitrate_history)


class VideoStream(TrafficSource):
    """Buffer-based ABR video client+server pair on one connection.

    Args:
        sim: the simulator.
        path: topology the stream runs over.
        flow_id: flow identifier.
        ladder_mbps: available bitrates (Mbit/s), ascending.
        chunk_seconds: media seconds per chunk.
        max_buffer: playback buffer cap (seconds); no fetches while full.
        low_reservoir / high_reservoir: buffer levels (seconds) mapped
            to the bottom/top of the ladder (BBA's reservoir+cushion).
        cca: transport CCA for the underlying connection.
    """

    def __init__(self, sim: Simulator, path: PathHandles, flow_id: str,
                 ladder_mbps: tuple[float, ...] = DEFAULT_LADDER_MBPS,
                 chunk_seconds: float = 2.0, max_buffer: float = 12.0,
                 low_reservoir: float = 4.0, high_reservoir: float = 10.0,
                 cca: CongestionControl | None = None, user_id: str = ""):
        if not ladder_mbps or list(ladder_mbps) != sorted(ladder_mbps):
            raise ConfigError("ladder must be non-empty and ascending")
        if not 0 < low_reservoir < high_reservoir <= max_buffer:
            raise ConfigError(
                "need 0 < low_reservoir < high_reservoir <= max_buffer")
        self.sim = sim
        self.flow_id = flow_id
        self.ladder = [mbps(b) for b in ladder_mbps]  # bytes/second
        self.ladder_mbps = tuple(ladder_mbps)
        self.chunk_seconds = chunk_seconds
        self.max_buffer = max_buffer
        self.low_reservoir = low_reservoir
        self.high_reservoir = high_reservoir
        self.stats = VideoStats()

        self.connection = Connection(
            sim, path, flow_id, cca if cca is not None else CubicCca(),
            user_id=user_id, on_data=self._on_bytes)
        self.buffer_seconds = 0.0
        self._buffer_updated = 0.0
        self._chunk_remaining = 0
        self._fetching = False
        self._stall_started: float | None = None
        self._running = False

    # -- ABR policy ---------------------------------------------------------

    def _choose_bitrate(self) -> float:
        """BBA-style linear map from buffer level to ladder position."""
        buf = self.buffer_seconds
        if buf <= self.low_reservoir:
            return self.ladder[0]
        if buf >= self.high_reservoir:
            return self.ladder[-1]
        frac = ((buf - self.low_reservoir)
                / (self.high_reservoir - self.low_reservoir))
        idx = int(frac * (len(self.ladder) - 1))
        return self.ladder[idx]

    # -- playback clock --------------------------------------------------------

    def _drain_buffer(self) -> None:
        now = self.sim.now
        elapsed = now - self._buffer_updated
        self._buffer_updated = now
        if self._stall_started is not None:
            return  # stalled: buffer is empty, clock charged on unstall
        self.buffer_seconds = max(0.0, self.buffer_seconds - elapsed)
        if self.buffer_seconds <= 0.0 and self.stats.chunks_fetched > 0:
            self._stall_started = now
            self.stats.stalls += 1

    # -- fetch loop ---------------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self._buffer_updated = self.sim.now
        self._maybe_fetch()

    def stop(self) -> None:
        self._running = False

    def _maybe_fetch(self) -> None:
        if not self._running or self._fetching:
            return
        self._drain_buffer()
        if self.buffer_seconds + self.chunk_seconds > self.max_buffer:
            # Buffer full: wait until there is room for one more chunk.
            wait = self.buffer_seconds + self.chunk_seconds - self.max_buffer
            self.sim.schedule(max(wait, 0.01), self._maybe_fetch)
            return
        bitrate = self._choose_bitrate()
        self.stats.bitrate_history.append(bitrate)
        chunk_bytes = int(bitrate * self.chunk_seconds)
        self._chunk_remaining = chunk_bytes
        self._fetching = True
        self.connection.sender.write(chunk_bytes)

    def _on_bytes(self, nbytes: int, now: float) -> None:
        if not self._fetching:
            return
        self._chunk_remaining -= nbytes
        if self._chunk_remaining > 0:
            return
        # Chunk complete.
        self._fetching = False
        self.stats.chunks_fetched += 1
        self._drain_buffer()
        if self._stall_started is not None:
            self.stats.stall_time += now - self._stall_started
            self._stall_started = None
            self._buffer_updated = now
        self.buffer_seconds += self.chunk_seconds
        self._maybe_fetch()

    @property
    def delivered_bytes(self) -> int:
        return self.connection.receiver.received_bytes
