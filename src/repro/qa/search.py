"""Coverage-guided adversarial scenario search.

Where :func:`repro.qa.fuzz.run_fuzz` samples the scenario space
uniformly, this module *steers*: it keeps a corpus of scenarios that
hit new :mod:`repro.qa.features` cells or dragged a detector-
confidence minimum lower, and spends most of its budget mutating
corpus entries (power-schedule weighted toward rarely-hit cells and
low confidence) rather than sampling fresh.  Exploration runs on the
fluid backend -- 46x cheaper per scenario -- and every candidate
failure is replayed on the packet backend before it is reported, so
a finding is never just a fluid-model artifact.

The output doubles as the per-detector-config **robustness
envelope**: the feature-cell pass/fail/confidence surface
(:func:`build_envelope`), store-cached by
(:data:`~repro.qa.oracles.SUITE_VERSION`, seed, budget, detector
config) and diffable across PRs (:func:`diff_envelopes`) -- the
Contracts framing of mapping where the detector's assumptions hold.

Determinism contract: the whole search -- corpus, report, envelope --
is a pure function of ``(seed, budget, threshold)``.  All random
draws happen in the sequential generation loop with a fixed batch
size, and batches are evaluated through the ordered
:class:`~repro.runtime.pool.ParallelExecutor`, so the worker count
changes wall-clock time only, never a byte of output.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.detector import ContentionDetector
from ..runtime.pool import ParallelExecutor, derive_seed
from ..store.artifacts import ArtifactStore
from ..store.fingerprint import fingerprint
from .corpus import DEFAULT_CORPUS_DIR, CorpusCase, case_for, save_case
from .features import (FeatureMap, buffer_bucket, cca_mix_class,
                       detector_confidence, jitter_bucket, medium_bucket)
from .fuzz import mutate_scenario, sample_scenario
from .oracles import (FAULT_ENV, ORACLES, SUITE_VERSION, OracleFinding,
                      run_oracles)
from .scenario import Scenario, run_scenario, scenario_fingerprint
from .shrink import shrink

#: Scenarios generated per sequential batch.  Fixed (never derived
#: from the worker count) -- this is what makes the search
#: worker-count invariant.
SEARCH_BATCH = 8

#: Fraction of each batch drawn fresh from the random sampler rather
#: than mutated from the corpus (keeps exploration alive once the
#: corpus is rich).
FRESH_FRACTION = 0.15

#: Of the mutation slots, the fraction spent chasing detector-
#: confidence minima (exploitation) rather than cell novelty
#: (exploration).  Minimize children usually land in already-visited
#: cells, so this is a direct coverage-vs-minima tradeoff.
MINIMIZE_FRACTION = 0.2

#: Mutation candidates drawn per child; the one whose scenario-side
#: projection is least-hit wins (novelty steering).  Mutation is
#: microseconds against ~50 ms per fluid run, so drawing generously
#: is nearly free.
MUTATION_TRIES = 12

#: Fresh-sample draws per fresh slot; the first with an unvisited
#: projection wins (novelty-filtered fresh sampling).
FRESH_TRIES = 8

#: Probability a child gets a second stacked mutation (bigger jumps
#: escape the parent's cell neighbourhood).
STACK_PROBABILITY = 0.4

#: Oracles the search judges candidates with: the cheap single-run
#: subset (nothing that re-runs simulations; the metamorphic oracles
#: stay the random fuzzer's job).
SEARCH_ORACLE_NAMES = ("invariants", "delivery-bound",
                       "elastic-cross-detected", "inelastic-cross-clean",
                       "injected-fault")

_ORACLES_BY_NAME = {oracle.name: oracle for oracle in ORACLES}


def _search_oracles(scenario: Scenario):
    return [_ORACLES_BY_NAME[name] for name in SEARCH_ORACLE_NAMES
            if _ORACLES_BY_NAME[name].applies(scenario)]


def _run_search_scenario(scenario: Scenario
                         ) -> tuple[object, tuple[OracleFinding, ...]]:
    """Module-level (picklable) worker task: run + judge one candidate."""
    outcome = run_scenario(scenario, check_invariants=True)
    findings = run_oracles(scenario, outcome, run_scenario,
                           oracles=_search_oracles(scenario))
    return outcome, tuple(findings)


@dataclass
class SearchEntry:
    """One corpus member: a scenario that was interesting when found."""

    scenario: Scenario
    cell_id: str
    confidence: float | None
    uses: int = 0


@dataclass(frozen=True)
class SearchFailure:
    """One oracle failure found by the search, with its packet replay."""

    scenario: Scenario
    oracle: str
    messages: tuple[str, ...]
    packet_messages: tuple[str, ...]
    reproduced: bool

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "oracle": self.oracle,
            "messages": list(self.messages),
            "packet_messages": list(self.packet_messages),
            "reproduced": self.reproduced,
        }


@dataclass
class SearchReport:
    """The outcome of one guided-search campaign."""

    seed: int
    budget: int
    threshold: float
    feature_map: FeatureMap
    corpus: list[SearchEntry] = field(default_factory=list)
    failures: list[SearchFailure] = field(default_factory=list)
    evaluated: int = 0

    @property
    def reproduced_failures(self) -> list[SearchFailure]:
        return [f for f in self.failures if f.reproduced]

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (the regression-test unit:
        equal searches must serialize byte-identically)."""
        return {
            "seed": self.seed,
            "budget": self.budget,
            "suite": SUITE_VERSION,
            "threshold": self.threshold,
            "evaluated": self.evaluated,
            "map": self.feature_map.to_dict(),
            "corpus": [
                {"fingerprint": scenario_fingerprint(e.scenario),
                 "cell": e.cell_id,
                 "confidence": e.confidence}
                for e in self.corpus
            ],
            "failures": [f.to_dict() for f in self.failures],
        }

    def render(self) -> str:
        """Deterministic human-readable summary."""
        fmap = self.feature_map
        lines = [
            f"qa search seed={self.seed} budget={self.budget}",
            f"  coverage: {fmap.coverage} feature cells, "
            f"corpus {len(self.corpus)} entries",
        ]
        min_conf = fmap.min_confidence()
        if min_conf is not None:
            lines.append(f"  lowest detector confidence: {min_conf:.3f} "
                         f"(threshold {self.threshold:g})")
        for failure in self.failures:
            tag = ("REPRODUCED on packet" if failure.reproduced
                   else "fluid-only (not reproduced on packet)")
            lines.append(f"  FAIL [{failure.oracle}] {tag}: "
                         f"{failure.scenario.label()}")
            for message in failure.messages:
                lines.append(f"         ! {message}")
        lines.append(f"{self.evaluated} scenarios searched, "
                     f"{len(self.failures)} failures "
                     f"({len(self.reproduced_failures)} reproduced)")
        return "\n".join(lines)


def _entry_weight(entry: SearchEntry, fmap: FeatureMap) -> float:
    """Power schedule: prefer lightly-used parents in rare cells with
    low detector confidence."""
    stats = fmap.cells.get(entry.cell_id)
    hits = stats["hits"] if stats else 1
    weight = 1.0 / (1.0 + entry.uses)
    weight *= 1.0 + 1.0 / hits
    if entry.confidence is not None:
        weight *= 1.0 + 1.0 / (0.25 + entry.confidence)
    return weight


def _force_fluid(scenario: Scenario) -> Scenario:
    if scenario.backend == "fluid":
        return scenario
    return dataclasses.replace(scenario, backend="fluid")


def _projection(scenario: Scenario) -> str:
    """The scenario-side slice of a feature cell -- every component
    knowable *before* running (outcome buckets excluded).  Novelty
    steering ranks mutation candidates by how often their projection
    has already been visited."""
    return "|".join((scenario.qdisc, cca_mix_class(scenario),
                     scenario.cross_traffic, buffer_bucket(scenario),
                     jitter_bucket(scenario), medium_bucket(scenario)))


def _mutate_toward_novelty(parent: Scenario, rng: np.random.Generator,
                           visits: dict[str, int]) -> Scenario:
    """Draw a few mutation candidates and keep the least-visited one.

    Single-field mutations frequently land in the parent's own cell;
    ranking a handful of candidates by projection visit count is what
    turns blind mutation into coverage-guided mutation."""
    best = None
    best_count = None
    for _ in range(MUTATION_TRIES):
        candidate = mutate_scenario(parent, rng)
        if rng.random() < STACK_PROBABILITY:
            candidate = mutate_scenario(candidate, rng)
        count = visits.get(_projection(candidate), 0)
        if count == 0:
            return candidate
        if best_count is None or count < best_count:
            best, best_count = candidate, count
    return best


def _mut_rate_fine(scenario: Scenario,
                   rng: np.random.Generator) -> Scenario:
    factor = float(rng.uniform(0.85, 1.15))
    rate = min(192.0, max(1.0, scenario.rate_mbps * factor))
    return dataclasses.replace(scenario, rate_mbps=rate)


def _mut_rtt_fine(scenario: Scenario,
                  rng: np.random.Generator) -> Scenario:
    factor = float(rng.uniform(0.85, 1.15))
    rtt = min(200.0, max(2.0, scenario.rtt_ms * factor))
    return dataclasses.replace(scenario, rtt_ms=rtt)


def _mutate_toward_minimum(parent: Scenario,
                           rng: np.random.Generator) -> Scenario:
    """Perturb only detector-relevant fields (seed, jitter, link
    shape) of a low-confidence probe parent -- hill-descending the
    confidence surface instead of jumping to a new cell.  The
    fine-grained rate/RTT steps are what let the descent settle
    arbitrarily close to the threshold; the coarse operators alone
    would orbit it."""
    from .fuzz import _mut_buffer, _mut_duration, _mut_jitter, _mut_seed
    ops = (_mut_seed, _mut_rate_fine, _mut_rate_fine, _mut_rtt_fine,
           _mut_rtt_fine, _mut_buffer, _mut_duration, _mut_jitter)
    for index in rng.permutation(len(ops)):
        mutated = ops[int(index)](parent, rng)
        if mutated is not None:
            return mutated
    return _mut_seed(parent, rng)


def _pick_minimize_parent(corpus: list["SearchEntry"],
                          rng: np.random.Generator
                          ) -> "SearchEntry | None":
    """A probe-family parent, weighted hard toward low confidence
    (quadratic: the descent should cluster around the current best,
    not sample the whole probe corpus)."""
    candidates = [e for e in corpus if e.confidence is not None]
    if not candidates:
        return None
    weights = np.array([1.0 / (0.02 + e.confidence) ** 2
                        for e in candidates])
    return candidates[int(rng.choice(len(candidates),
                                     p=weights / weights.sum()))]


def run_search(budget: int, seed: int = 0, workers: int | None = 1,
               threshold: float = 2.0,
               progress: Callable[[int, int], None] | None = None,
               qdisc_thresholds: dict[str, float] | None = None,
               evaluate: Callable[[list[Scenario]], list] | None = None
               ) -> SearchReport:
    """Run a ``budget``-scenario coverage-guided search campaign.

    Args:
        budget: candidate scenarios to evaluate (fluid runs; packet
            replays of failures are extra and not counted).
        seed: campaign seed; the report is a pure function of
            ``(seed, budget, threshold)``.
        workers: evaluation parallelism (wall-clock only; the report
            is bit-identical for any worker count).
        threshold: detector threshold the confidence buckets center on.
        progress: called as ``progress(evaluated, budget)``.
        qdisc_thresholds: per-qdisc threshold overrides for the
            confidence axis (see :class:`FeatureMap`).
        evaluate: batch evaluator ``fn(scenarios) -> [(outcome,
            findings), ...]`` in submission order; defaults to a local
            :class:`ParallelExecutor`.  This is the cluster seam
            (:func:`repro.cluster.cluster_evaluator`): generation
            stays sequential and local either way, so any evaluator
            that returns what :func:`_run_search_scenario` returns
            preserves the determinism contract byte for byte.
    """
    rng = np.random.default_rng(derive_seed(seed, 0, "qa-search"))
    fresh_seed = derive_seed(seed, 1, "qa-search-fresh")
    fmap = FeatureMap(threshold, qdisc_thresholds)
    report = SearchReport(seed=seed, budget=budget, threshold=threshold,
                          feature_map=fmap)
    fresh_index = 0
    visits: dict[str, int] = {}
    with contextlib.ExitStack() as stack:
        if evaluate is None:
            executor = stack.enter_context(
                ParallelExecutor(workers=workers))

            def evaluate(batch):
                return executor.map(_run_search_scenario, batch)
        while report.evaluated < budget:
            batch_size = min(SEARCH_BATCH, budget - report.evaluated)
            batch: list[Scenario] = []
            # Generation is strictly sequential: every rng draw
            # happens here, in submission order, with a fixed batch
            # size -- never in worker callbacks.
            for _ in range(batch_size):
                if not report.corpus or rng.random() < FRESH_FRACTION:
                    candidate = sample_scenario(fresh_index, fresh_seed)
                    fresh_index += 1
                    count = visits.get(_projection(candidate), 0)
                    for _ in range(FRESH_TRIES - 1):
                        if count == 0:
                            break
                        other = sample_scenario(fresh_index, fresh_seed)
                        fresh_index += 1
                        other_count = visits.get(_projection(other), 0)
                        if other_count < count:
                            candidate, count = other, other_count
                else:
                    minimize_parent = None
                    if rng.random() < MINIMIZE_FRACTION:
                        minimize_parent = _pick_minimize_parent(
                            report.corpus, rng)
                    if minimize_parent is not None:
                        minimize_parent.uses += 1
                        candidate = _mutate_toward_minimum(
                            minimize_parent.scenario, rng)
                    else:
                        weights = np.array([_entry_weight(e, fmap)
                                            for e in report.corpus])
                        parent = report.corpus[int(rng.choice(
                            len(report.corpus),
                            p=weights / weights.sum()))]
                        parent.uses += 1
                        candidate = _mutate_toward_novelty(
                            parent.scenario, rng, visits)
                candidate = _force_fluid(candidate)
                # Count the projection at generation time so one batch
                # doesn't pile onto the same "novel" projection.
                key = _projection(candidate)
                visits[key] = visits.get(key, 0) + 1
                batch.append(candidate)
            results = evaluate(batch)
            # State updates are applied sequentially in submission
            # order (the evaluator preserves order).
            for scenario, (outcome, findings) in zip(batch, results):
                report.evaluated += 1
                failed = bool(findings)
                cell, new_cell, new_min = fmap.observe(scenario, outcome,
                                                       failed=failed)
                if failed:
                    report.failures.append(
                        _replay_on_packet(scenario, findings, fmap))
                if new_cell or new_min:
                    report.corpus.append(SearchEntry(
                        scenario=scenario,
                        cell_id=cell.as_id(),
                        confidence=detector_confidence(
                            outcome,
                            fmap.threshold_for(scenario.qdisc))))
                if progress is not None:
                    progress(report.evaluated, budget)
    return report


def _replay_on_packet(scenario: Scenario,
                      findings: tuple[OracleFinding, ...],
                      fmap: FeatureMap) -> SearchFailure:
    """Replay a fluid-found failure on the packet backend.

    A failure counts as reproduced only if at least one of the same
    oracles fails on the packet run too; the packet outcome is folded
    into the feature map either way (it is a legitimate observation
    of a packet-backend cell).
    """
    packet_scenario = dataclasses.replace(scenario, backend="packet")
    packet_messages: list[str] = []
    try:
        packet_outcome = run_scenario(packet_scenario,
                                      check_invariants=True)
    except Exception as exc:  # a crash is its own reproduction
        packet_messages.append(f"packet replay crashed: {exc!r}")
        return SearchFailure(
            scenario=scenario,
            oracle=findings[0].oracle,
            messages=tuple(f.message for f in findings),
            packet_messages=tuple(packet_messages),
            reproduced=True)
    failed_names = []
    for name in dict.fromkeys(f.oracle for f in findings):
        oracle = _ORACLES_BY_NAME[name]
        if not oracle.applies(packet_scenario):
            continue
        messages = oracle.check(packet_scenario, packet_outcome,
                                run_scenario)
        if messages:
            failed_names.append(name)
            packet_messages.extend(f"[{name}] {m}" for m in messages)
    fmap.observe(packet_scenario, packet_outcome,
                 failed=bool(failed_names))
    return SearchFailure(
        scenario=scenario,
        oracle=(failed_names[0] if failed_names else findings[0].oracle),
        messages=tuple(f.message for f in findings),
        packet_messages=tuple(packet_messages),
        reproduced=bool(failed_names))


# -- the robustness-envelope artifact -------------------------------------

ENVELOPE_SCHEMA = 1


def build_envelope(report: SearchReport,
                   detector: ContentionDetector | None = None) -> dict:
    """The robustness-envelope artifact for one detector config.

    A cell *passes* when no failure was observed in it; the artifact
    carries the full confidence surface, so two envelopes from
    different PRs diff cell by cell (:func:`diff_envelopes`).

    The ``detectors`` matrix records the effective detector config per
    qdisc: the default config plus one entry for every per-qdisc
    threshold override the search ran with, so an envelope is
    self-describing about *which* detector each cell's confidence axis
    was judged against.
    """
    det = detector if detector is not None else ContentionDetector(
        threshold=report.threshold)
    surface = report.feature_map.to_dict()
    detectors = {"default": det.fingerprint_config()}
    for qdisc, value in sorted(
            report.feature_map.qdisc_thresholds.items()):
        detectors[qdisc] = ContentionDetector(
            threshold=value).fingerprint_config()
    payload = {
        "schema": ENVELOPE_SCHEMA,
        "kind": "qa-envelope",
        "suite": SUITE_VERSION,
        "seed": report.seed,
        "budget": report.budget,
        "detector": det.fingerprint_config(),
        "detectors": detectors,
        "qdisc_thresholds": surface["qdisc_thresholds"],
        "coverage": surface["coverage"],
        "min_confidence": surface["min_confidence"],
        "cells": {
            cell_id: {**stats, "pass": stats["failures"] == 0}
            for cell_id, stats in surface["cells"].items()
        },
        "failures": [f.to_dict() for f in report.failures],
    }
    payload["fingerprint"] = fingerprint(payload, kind="qa-envelope")
    return payload


def envelope_cache_key(budget: int, seed: int, threshold: float,
                       detector: ContentionDetector | None = None,
                       qdisc_thresholds: dict[str, float] | None = None
                       ) -> str:
    """Store key for a cached envelope (covers everything the artifact
    is a function of, including any injected fault)."""
    det = detector if detector is not None else ContentionDetector(
        threshold=threshold)
    config = {
        "kind": "qa-envelope-job",
        "suite": SUITE_VERSION,
        "seed": seed,
        "budget": budget,
        "threshold": threshold,
        "detector": det.fingerprint_config(),
        "fault": os.environ.get(FAULT_ENV, ""),
    }
    if qdisc_thresholds:
        # Only present when overridden, so plain-envelope keys are
        # unchanged by the feature's existence.
        config["qdisc_thresholds"] = dict(
            sorted((str(k), float(v))
                   for k, v in qdisc_thresholds.items()))
    return fingerprint(config, kind="qa-envelope-job")


def run_envelope(budget: int, seed: int = 0,
                 store: ArtifactStore | None = None,
                 workers: int | None = 1, threshold: float = 2.0,
                 detector: ContentionDetector | None = None,
                 progress: Callable[[int, int], None] | None = None,
                 qdisc_thresholds: dict[str, float] | None = None
                 ) -> tuple[dict, bool]:
    """Produce (or fetch) the robustness-envelope artifact.

    Returns:
        (artifact, cached): the envelope dict and whether it came out
        of the store instead of a fresh search.
    """
    key = envelope_cache_key(budget, seed, threshold, detector,
                             qdisc_thresholds)
    if store is not None:
        hit = store.get(key)
        if hit is not None:
            return hit, True
    report = run_search(budget, seed=seed, workers=workers,
                        threshold=threshold, progress=progress,
                        qdisc_thresholds=qdisc_thresholds)
    artifact = build_envelope(report, detector)
    if store is not None:
        store.put(key, artifact, kind="qa-envelope",
                  label=f"envelope seed={seed} budget={budget}")
    return artifact, False


def diff_envelopes(baseline: dict, current: dict) -> dict:
    """Cell-level diff of two envelope artifacts.

    Returns a dict with ``regressions`` (cells that passed in the
    baseline and fail now), ``fixed`` (the reverse), ``new_cells`` and
    ``lost_cells`` (coverage drift).  Only ``regressions`` should gate
    CI; coverage drift is informational.
    """
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})
    regressions = sorted(
        cell for cell, stats in cur_cells.items()
        if not stats["pass"] and base_cells.get(cell, {}).get("pass", True)
        and cell in base_cells)
    fixed = sorted(
        cell for cell, stats in cur_cells.items()
        if stats["pass"] and cell in base_cells
        and not base_cells[cell]["pass"])
    return {
        "regressions": regressions,
        "fixed": fixed,
        "new_cells": sorted(set(cur_cells) - set(base_cells)),
        "lost_cells": sorted(set(base_cells) - set(cur_cells)),
    }


# -- random baseline (the comparison yardstick) ---------------------------

def run_random_baseline(budget: int, seed: int = 0,
                        workers: int | None = 1,
                        threshold: float = 2.0) -> FeatureMap:
    """Feed ``budget`` *uniformly sampled* scenarios through the same
    feature map, oracles, and backend as the guided search.

    This is the control arm for the acceptance criterion: at equal
    budget and seed, guided search must cover more cells and find
    confidence minima at least as low.  Uses the same fresh-sample
    stream as the search (``derive_seed(seed, 1, "qa-search-fresh")``)
    so the two arms start from identical scenario distributions.
    """
    fresh_seed = derive_seed(seed, 1, "qa-search-fresh")
    fmap = FeatureMap(threshold)
    scenarios = [_force_fluid(sample_scenario(i, fresh_seed))
                 for i in range(budget)]
    with ParallelExecutor(workers=workers) as executor:
        results = executor.map(_run_search_scenario, scenarios)
    for scenario, (outcome, findings) in zip(scenarios, results):
        fmap.observe(scenario, outcome, failed=bool(findings))
    return fmap


# -- corpus promotion ------------------------------------------------------

def promote_failure(failure: SearchFailure, seed: int, created: str,
                    directory=DEFAULT_CORPUS_DIR,
                    max_runs: int = 80) -> tuple[CorpusCase, int]:
    """Shrink one search-found failure and commit it to the corpus.

    Reproduced failures are shrunk on the packet backend (the corpus
    replays there); fluid-only failures are shrunk as found.  Returns
    the saved case and the number of shrink runs spent.
    """
    oracle = _ORACLES_BY_NAME[failure.oracle]
    scenario = (dataclasses.replace(failure.scenario, backend="packet")
                if failure.reproduced else failure.scenario)
    result = shrink(scenario, oracle, run_scenario, max_runs=max_runs)
    origin = (f"search seed={seed} (shrunk, {result.runs} runs)"
              if result.steps else f"search seed={seed}")
    case = case_for(result.scenario, oracle=failure.oracle,
                    origin=origin, created=created)
    save_case(case, directory)
    return case, result.runs
