"""Smoke + shape tests for the experiment harness (reduced parameters).

The full-size paper-shape assertions live in the benchmarks; here every
experiment runs in seconds and its structural contract is checked:
text renders, metrics exist, CSV tables are well-formed, results save
to disk.
"""

import pytest

from repro.experiments import (EXPERIMENTS, access_link, bwe_isolation,
                               fig2, fq_ablation, subpacket, tbf_jitter,
                               tslp_vs_elasticity)
from repro.experiments.runner import ExperimentResult


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run(n_flows=400, seed=5)

    def test_metrics_shape(self, result):
        m = result.metrics
        assert m["fraction_filtered"] > 0.5
        assert m["fraction_possible_contention"] < 0.25
        assert 0.0 <= m["detector_precision"] <= 1.0

    def test_fractions_sum_to_one(self, result):
        m = result.metrics
        total = (m["fraction_app_limited"] + m["fraction_rwnd_limited"]
                 + m["fraction_cellular"] + m["fraction_remaining"])
        assert total == pytest.approx(1.0)

    def test_tables_exported(self, result):
        assert "categories" in result.tables
        assert "throughput_cdfs" in result.tables
        assert len(result.tables["categories"]) >= 4

    def test_text_mentions_categories(self, result):
        assert "app_limited" in result.text
        assert "remaining" in result.text

    def test_save_writes_artifacts(self, result, tmp_path):
        written = result.save(tmp_path)
        names = {p.name for p in written}
        assert {"report.txt", "metrics.json",
                "categories.csv"} <= names


class TestFqAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return fq_ablation.run(pairs=(("reno", "bbr"),), duration=15.0)

    def test_fq_is_fair(self, result):
        assert result.metrics["min_jain_fq"] > 0.95

    def test_droptail_less_fair_than_fq(self, result):
        assert result.metrics["min_jain_droptail"] \
            < result.metrics["min_jain_fq"]


class TestTbfJitter:
    @pytest.fixture(scope="class")
    def result(self):
        return tbf_jitter.run(burst_sizes_kb=(15.0, 500.0), duration=10.0)

    def test_tbf_burst_amplifies_jitter(self, result):
        assert result.metrics["span_amplification"] > 1.5

    def test_rows_cover_all_shapers(self, result):
        shapers = [r["shaper"] for r in result.tables["jitter"]]
        assert shapers[0] == "smooth"
        assert len(shapers) == 3

    def test_largest_burst_is_worst(self, result):
        rows = result.tables["jitter"]
        last, others = rows[-1], rows[1:-1]
        assert (all(last["jitter_ms"] >= r["jitter_ms"] for r in others)
                or all(last["delay_p99_ms"] >= r["delay_p99_ms"]
                       for r in others))


class TestSubpacket:
    @pytest.fixture(scope="class")
    def result(self):
        return subpacket.run(n_flows=8, duration=60.0, window=20.0)

    def test_subpacket_bdp_below_one(self, result):
        assert result.metrics["subpacket_bdp_packets"] < 1.0

    def test_starvation_on_subpacket_link_only(self, result):
        assert result.metrics["subpacket_starved_fraction"] \
            > result.metrics["healthy_starved_fraction"]
        assert result.metrics["subpacket_timeouts"] > 0


class TestAccessLink:
    @pytest.fixture(scope="class")
    def result(self):
        return access_link.run(duration=3.0,
                               load_fractions=(0.3, 0.8, 1.3))

    def test_allocation_matches_offered_load_below_saturation(self, result):
        assert result.metrics["max_error_below_saturation"] < 0.05

    def test_errors_appear_past_saturation(self, result):
        assert result.metrics["min_error_above_saturation"] > 0.05


class TestTslpVsElasticity:
    @pytest.fixture(scope="class")
    def result(self):
        return tslp_vs_elasticity.run(duration=15.0)

    def test_tslp_flags_both_loaded_paths(self, result):
        assert result.metrics["tslp_flags_contention"] == 1.0
        assert result.metrics["tslp_flags_aggregate"] == 1.0

    def test_probe_discriminates(self, result):
        assert result.metrics["probe_flags_contention"] == 1.0
        assert result.metrics["probe_flags_aggregate"] == 0.0


class TestBweIsolation:
    @pytest.fixture(scope="class")
    def result(self):
        return bwe_isolation.run(duration=8.0)

    def test_policy_enforced(self, result):
        assert abs(result.metrics["serving_share_managed"]
                   - 2.0 / 3.0) < 0.05

    def test_enforcement_tight(self, result):
        assert result.metrics["max_enforcement_error"] < 0.15


class TestElapsedRecorded:
    """Satellite audit: every registered experiment must time its run
    with Stopwatch and record ``elapsed_s`` on the result -- otherwise
    saved metrics.json artifacts silently report 0.0 s runs."""

    def test_every_run_wires_stopwatch_to_elapsed(self):
        import inspect

        for name, fn in sorted(EXPERIMENTS.items()):
            src = inspect.getsource(fn)
            assert "with Stopwatch() as watch" in src, (
                f"{name}.run() does not time itself with Stopwatch")
            assert "elapsed_s=watch.elapsed" in src, (
                f"{name}.run() never records elapsed_s from Stopwatch")

    def test_elapsed_present_at_runtime_and_in_saved_json(self, tmp_path):
        import json

        result = fig2.run(n_flows=60, seed=1)
        assert result.elapsed_s > 0.0
        result.save(tmp_path)
        payload = json.loads(
            (tmp_path / "fig2" / "metrics.json").read_text())
        assert payload["elapsed_s"] == result.elapsed_s


class TestRegistryAndResults:
    def test_registry_lists_all_experiments(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fq_ablation", "tbf_jitter", "subpacket",
            "fairness_matrix", "campaign_eval", "access_link",
            "tslp_vs_elasticity", "bwe_isolation", "cellular_robustness",
            "envelope", "robustness", "fig2_scale", "medium_contention"}

    def test_result_save_round_trip(self, tmp_path):
        result = ExperimentResult(
            experiment="demo", text="hello", metrics={"x": 1.0},
            tables={"rows": [{"a": 1, "b": 2}]}, params={"p": 3})
        written = result.save(tmp_path)
        report = (tmp_path / "demo" / "report.txt").read_text()
        assert "hello" in report
        csv_text = (tmp_path / "demo" / "rows.csv").read_text()
        assert csv_text.splitlines()[0] == "a,b"
        assert len(written) == 3
