"""Benchmark E2 / Figure 3: the elasticity proof of concept.

Regenerates the paper's headline figure: a Nimbus probe (mode switching
off, pulses on) on a 48 Mbit/s, 100 ms link, against five sequential
45-second cross-traffic phases.  Asserts the figure's shape: elasticity
clearly higher during the contending (Reno, BBR) phases than during
video / Poisson / CBR.
"""

from repro.experiments import fig3
from repro.traffic import FIGURE3_PHASES, Phase

from conftest import once


def test_fig3_paper_scale(benchmark, bench_scale):
    if bench_scale == "full":
        phases = FIGURE3_PHASES              # 5 x 45 s, as in the paper
    else:
        phases = tuple(Phase(p.name, 15.0) for p in FIGURE3_PHASES)
    result = once(benchmark, fig3.run, phases=phases)

    print()
    print(result.text)

    m = result.metrics
    # Loss-based contention is unambiguous (confidently contending).
    assert m["elasticity_reno"] > 3.0
    # Hard-inelastic traffic is confidently clean.
    assert m["elasticity_cbr"] < 1.5
    # Application-driven phases stay below the confident-contention
    # band; video's chunk transfers make it intermittently elastic, so
    # it may land in the inconclusive band but never above it.
    assert m["elasticity_poisson"] < 2.6
    assert m["elasticity_video"] < 2.6
    # BBRv1's rate-based smoothing mutes its pulse response: above the
    # confidently-clean band, typically inconclusive-or-better (the
    # documented finding in EXPERIMENTS.md).
    assert m["elasticity_bbr"] > 1.5
    # And ordering: the weakest contending phase is not dominated by
    # the strongest fully-application-limited phase (poisson/cbr).
    assert min(m["elasticity_reno"], m["elasticity_bbr"]) > max(
        m["elasticity_poisson"], m["elasticity_cbr"])
