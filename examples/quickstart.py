#!/usr/bin/env python3
"""Quickstart: is the cross traffic on a path contending with you?

Builds a 48 Mbit/s, 100 ms emulated path (the paper's Figure 3 link),
runs an elasticity probe against two kinds of cross traffic, and prints
the probe's verdicts -- the paper's measurement technique in ~20 lines.

Run:  python examples/quickstart.py
"""

from repro.core.detector import ContentionDetector
from repro.core.probe import ElasticityProbe
from repro.sim import Simulator, dumbbell
from repro.traffic import make_cross_traffic
from repro.units import mbps, ms, to_mbps


def probe_path(cross_traffic: str, duration: float = 30.0) -> None:
    sim = Simulator()
    path = dumbbell(sim, rate_bps=mbps(48), rtt=ms(100))

    probe = ElasticityProbe(sim, path, capacity_hint=mbps(48))
    probe.start()
    cross = make_cross_traffic(cross_traffic, sim, path, "cross")
    cross.start()

    sim.run(until=duration)

    report = probe.report()
    verdict = ContentionDetector().verdict(list(report.readings))
    print(f"cross traffic: {cross_traffic:8s} "
          f"mean elasticity: {report.mean_elasticity:6.2f}  "
          f"verdict: {verdict.category:12s}  "
          f"probe got {to_mbps(report.mean_throughput):.1f} Mbit/s")


def main() -> None:
    print(__doc__)
    # A backlogged Reno flow contends with the probe (confidently
    # "contending")...
    probe_path("reno")
    # ...constant-bitrate traffic confidently does not ("clean")...
    probe_path("cbr")
    # ...and adaptive video -- elastic only while a chunk is in
    # flight -- lands in the honest middle ("inconclusive").
    probe_path("video")


if __name__ == "__main__":
    main()
