"""Performance microbenchmarks (P1-P3): engine, estimator, detectors.

These measure the substrate itself (events/second, estimator update
cost, change-point throughput), with real pytest-benchmark repetition.
"""

import numpy as np

from repro.analysis import binary_segmentation, pelt
from repro.cca import RenoCca
from repro.core.elasticity import ElasticityEstimator, elasticity_series
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms


def test_perf_engine_event_throughput(benchmark):
    """P1: raw event scheduling/dispatch rate."""

    def run_events():
        sim = Simulator()

        def chain():
            if sim.now < 1.0:
                sim.schedule(1e-5, chain)

        for _ in range(10):
            sim.schedule(0.0, chain)
        sim.run()
        return sim.events_processed

    events = benchmark(run_events)
    assert events >= 10 * 100_000


def test_perf_packet_simulation_rate(benchmark):
    """P1b: full transport stack, packets simulated per second."""

    def run_transfer():
        sim = Simulator()
        path = dumbbell(sim, mbps(20), ms(20))
        conn = Connection(sim, path, "f", RenoCca())
        conn.sender.set_infinite_backlog()
        sim.run(until=5.0)
        return path.bottleneck.delivered_packets

    packets = benchmark(run_transfer)
    assert packets > 1_000


def test_perf_elasticity_estimator(benchmark):
    """P2: streaming estimator cost per 1k samples (with readings)."""
    rng = np.random.default_rng(0)
    samples = 1e6 + 1e5 * rng.normal(size=2_000)

    def feed():
        est = ElasticityEstimator(pulse_freq=5.0, sample_interval=0.01,
                                  window=5.0, update_interval=0.1)
        for i, z in enumerate(samples):
            est.add_sample(i * 0.01, float(z))
        return len(est.readings)

    readings = benchmark(feed)
    assert readings > 10


def test_perf_offline_elasticity(benchmark):
    """P2b: offline sliding-window analysis of a 60 s trace."""
    t = np.arange(0, 60.0, 0.01)
    z = 1e6 + 5e5 * np.sin(2 * np.pi * 5.0 * t)
    result = benchmark(elasticity_series, t, z)
    assert len(result) > 50


def test_perf_pelt(benchmark):
    """P3: PELT over a 2,000-point noisy step signal."""
    rng = np.random.default_rng(1)
    signal = np.concatenate([rng.normal(i * 10.0, 1.0, 500)
                             for i in range(4)])
    result = benchmark(pelt, signal)
    assert result.num_changes >= 3


def test_perf_binseg(benchmark):
    """P3b: binary segmentation over the same signal."""
    rng = np.random.default_rng(1)
    signal = np.concatenate([rng.normal(i * 10.0, 1.0, 500)
                             for i in range(4)])
    result = benchmark(binary_segmentation, signal)
    assert result.num_changes >= 3
