"""Topology builders.

Experiments in this repo overwhelmingly use a dumbbell: many senders
share one bottleneck link toward one receiving host, with ACKs
returning over an uncongested reverse path.  That matches both the
paper's Figure 3 setup (one emulated Mahimahi link) and the access-link
scenarios of §2.2-2.3.

The builders return a :class:`PathHandles` bundle; transport glue in
:mod:`repro.tcp` attaches flows to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError
from ..qdisc.base import Qdisc
from ..qdisc.fifo import DropTailQueue
from ..units import bdp_packets
from .engine import Simulator
from .link import DelayBox, Link, LossBox, TraceLink
from .node import Host


@dataclass
class PathHandles:
    """Handles for one direction-pair of a built topology.

    Attributes:
        sim: the simulator driving everything.
        entry: where senders inject data packets (the bottleneck).
        bottleneck: the bottleneck link itself (for stats/taps).
        src_host: host receiving ACKs (senders live here).
        dst_host: host receiving data (receivers live here).
        reverse_entry: where receivers inject ACKs.
        rtt: two-way propagation delay (excluding queueing).
    """

    sim: Simulator
    entry: object
    bottleneck: object
    src_host: Host
    dst_host: Host
    reverse_entry: object
    rtt: float
    extras: dict = field(default_factory=dict)


def default_buffer_packets(rate_bps: float, rtt: float,
                           multiplier: float = 1.0) -> int:
    """A bottleneck buffer of ``multiplier`` x BDP, at least 10 packets."""
    return max(10, int(round(bdp_packets(rate_bps, rtt) * multiplier)))


def dumbbell(sim: Simulator, rate_bps: float, rtt: float,
             qdisc: Optional[Qdisc] = None,
             buffer_multiplier: float = 1.0,
             reverse_rate_bps: Optional[float] = None,
             loss_rate: float = 0.0, seed: int = 0) -> PathHandles:
    """Build a single-bottleneck dumbbell.

    Forward path: entry -> bottleneck(rate, qdisc) -> delay(rtt/2) -> dst.
    Reverse path: reverse_entry -> fast link -> delay(rtt/2) -> src.

    Args:
        rate_bps: bottleneck rate, bytes/second.
        rtt: two-way propagation delay, seconds.
        qdisc: bottleneck queue (default: 1xBDP DropTail).
        buffer_multiplier: BDP multiple for the default queue size.
        reverse_rate_bps: ACK-path rate (default: 40x forward, effectively
            uncongested but still serializing).
        loss_rate: optional random loss on the forward path.
    """
    if rtt <= 0:
        raise ConfigError(f"rtt must be positive: {rtt}")
    if qdisc is None:
        qdisc = DropTailQueue(limit_packets=default_buffer_packets(
            rate_bps, rtt, buffer_multiplier))
    src = Host("src")
    dst = Host("dst")

    fwd_delay = DelayBox(sim, rtt / 2.0, sink=dst, name="fwd-delay")
    if loss_rate > 0:
        lossbox = LossBox(sim, loss_rate, sink=fwd_delay, seed=seed)
        bottleneck = Link(sim, rate_bps, sink=lossbox, qdisc=qdisc,
                          name="bottleneck")
    else:
        bottleneck = Link(sim, rate_bps, sink=fwd_delay, qdisc=qdisc,
                          name="bottleneck")

    rev_delay = DelayBox(sim, rtt / 2.0, sink=src, name="rev-delay")
    rev_rate = reverse_rate_bps if reverse_rate_bps is not None \
        else rate_bps * 40.0
    reverse = Link(sim, rev_rate, sink=rev_delay,
                   qdisc=DropTailQueue(limit_packets=10_000), name="reverse")

    return PathHandles(sim=sim, entry=bottleneck, bottleneck=bottleneck,
                       src_host=src, dst_host=dst, reverse_entry=reverse,
                       rtt=rtt)


def medium_dumbbell(sim: Simulator, rate_bps: float, rtt: float, spec,
                    qdisc_factory=None, seed: int = 0,
                    reverse_rate_bps: Optional[float] = None) -> PathHandles:
    """A dumbbell whose bottleneck is a CSMA/CA shared medium.

    Forward data crosses a :class:`~repro.sim.medium.MediumLink`
    (stations contending for airtime, per-station qdiscs built by
    ``qdisc_factory``); ACKs return over an ordinary fast link, as on
    an infrastructure WLAN where the AP's downlink is not the
    contended direction under study.

    Args:
        rate_bps: raw medium rate, bytes/second (goodput is lower --
            backoff, collisions, and MAC overhead burn airtime).
        rtt: two-way propagation delay, seconds.
        spec: a :class:`~repro.medium.config.MediumSpec`.
        qdisc_factory: builds one egress qdisc per station.
        seed: root seed for the per-station backoff RNG.
    """
    from .medium import MediumLink

    if rtt <= 0:
        raise ConfigError(f"rtt must be positive: {rtt}")
    src = Host("src")
    dst = Host("dst")
    fwd_delay = DelayBox(sim, rtt / 2.0, sink=dst, name="fwd-delay")
    bottleneck = MediumLink(sim, rate_bps, spec, sink=fwd_delay,
                            qdisc_factory=qdisc_factory, seed=seed,
                            name="bottleneck")
    rev_delay = DelayBox(sim, rtt / 2.0, sink=src, name="rev-delay")
    rev_rate = reverse_rate_bps if reverse_rate_bps is not None \
        else rate_bps * 40.0
    reverse = Link(sim, rev_rate, sink=rev_delay,
                   qdisc=DropTailQueue(limit_packets=10_000), name="reverse")
    return PathHandles(sim=sim, entry=bottleneck, bottleneck=bottleneck,
                       src_host=src, dst_host=dst, reverse_entry=reverse,
                       rtt=rtt, extras={"medium": bottleneck})


def trace_dumbbell(sim: Simulator, opportunities_ms: list[float], rtt: float,
                   qdisc: Optional[Qdisc] = None,
                   buffer_packets: int = 200) -> PathHandles:
    """A dumbbell whose bottleneck is a Mahimahi-style trace link."""
    if rtt <= 0:
        raise ConfigError(f"rtt must be positive: {rtt}")
    if qdisc is None:
        qdisc = DropTailQueue(limit_packets=buffer_packets)
    src = Host("src")
    dst = Host("dst")
    fwd_delay = DelayBox(sim, rtt / 2.0, sink=dst, name="fwd-delay")
    bottleneck = TraceLink(sim, opportunities_ms, sink=fwd_delay,
                           qdisc=qdisc, name="trace-bottleneck")
    rev_delay = DelayBox(sim, rtt / 2.0, sink=src, name="rev-delay")
    reverse = Link(sim, 1e9, sink=rev_delay,
                   qdisc=DropTailQueue(limit_packets=10_000), name="reverse")
    return PathHandles(sim=sim, entry=bottleneck, bottleneck=bottleneck,
                       src_host=src, dst_host=dst, reverse_entry=reverse,
                       rtt=rtt)


def two_hop_chain(sim: Simulator, rates_bps: tuple[float, float], rtt: float,
                  qdiscs: tuple[Optional[Qdisc], Optional[Qdisc]] = (None, None),
                  buffer_multiplier: float = 1.0) -> PathHandles:
    """Two links in series (e.g. a Wi-Fi hop behind an access link, §2.2).

    The smaller rate is the true bottleneck; the builder does not assume
    which one that is.
    """
    if rtt <= 0:
        raise ConfigError(f"rtt must be positive: {rtt}")
    src = Host("src")
    dst = Host("dst")
    q1, q2 = qdiscs
    if q2 is None:
        q2 = DropTailQueue(limit_packets=default_buffer_packets(
            rates_bps[1], rtt, buffer_multiplier))
    if q1 is None:
        q1 = DropTailQueue(limit_packets=default_buffer_packets(
            rates_bps[0], rtt, buffer_multiplier))
    fwd_delay = DelayBox(sim, rtt / 2.0, sink=dst, name="fwd-delay")
    second = Link(sim, rates_bps[1], sink=fwd_delay, qdisc=q2, name="hop2")
    first = Link(sim, rates_bps[0], sink=second, qdisc=q1, name="hop1")
    rev_delay = DelayBox(sim, rtt / 2.0, sink=src, name="rev-delay")
    reverse = Link(sim, max(rates_bps) * 40.0, sink=rev_delay,
                   qdisc=DropTailQueue(limit_packets=10_000), name="reverse")
    return PathHandles(sim=sim, entry=first, bottleneck=second,
                       src_host=src, dst_host=dst, reverse_entry=reverse,
                       rtt=rtt, extras={"hop1": first, "hop2": second})
