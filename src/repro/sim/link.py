"""Links: rate-limited transmission, propagation delay, trace-driven rates.

A link owns an egress qdisc and a transmitter loop: packets offered via
:meth:`Link.send` pass through the qdisc; the transmitter serializes one
packet at a time at the link rate and hands it to ``sink`` (the next
element on the path).  Propagation delay is modelled separately by
:class:`DelayBox` so queueing and propagation compose explicitly, as in
Mahimahi's ``delay`` and ``link`` shells.

Taps (observer callbacks) fire on every delivery; measurement code uses
them to compute ground-truth rates without touching the data path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Protocol

from ..errors import ConfigError
from ..obs.bus import BUS as _OBS, EventKind
from ..qdisc.base import Qdisc
from ..qdisc.fifo import DropTailQueue
from .engine import Simulator
from .packet import Packet, recycle


class PacketSink(Protocol):
    """Anything that can accept a packet (link, delay box, host)."""

    def send(self, packet: Packet) -> None: ...


Tap = Callable[[Packet, float], None]


class Link:
    """A fixed-rate serializing link with an egress qdisc.

    Args:
        sim: the owning simulator.
        rate: transmission rate in bytes/second.
        sink: downstream element receiving transmitted packets.
        qdisc: egress queue (default: 100-packet DropTail).
        name: label used in stats and debugging.
    """

    def __init__(self, sim: Simulator, rate: float,
                 sink: Optional[PacketSink] = None,
                 qdisc: Optional[Qdisc] = None, name: str = "link"):
        if rate <= 0:
            raise ConfigError(f"link rate must be positive: {rate}")
        self.sim = sim
        self._rate = float(rate)
        self.sink = sink
        self.qdisc = qdisc if qdisc is not None else DropTailQueue(
            limit_packets=100)
        self.name = name
        self._busy = False
        self._retry_event = None
        self._in_flight: Optional[Packet] = None
        self._taps: list[Tap] = []
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.busy_time = 0.0
        self._per_flow_bytes: dict[str, int] = {}

    # -- configuration ---------------------------------------------------

    @property
    def rate(self) -> float:
        """Current transmission rate (bytes/second)."""
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Change the link rate; takes effect at the next transmission."""
        if rate <= 0:
            raise ConfigError(f"link rate must be positive: {rate}")
        self._rate = float(rate)

    def add_tap(self, tap: Tap) -> None:
        """Register an observer called as ``tap(packet, now)`` on delivery."""
        self._taps.append(tap)

    # -- data path ---------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Offer a packet to the link's egress queue."""
        self.qdisc.enqueue(packet, self.sim.now)
        self._kick()

    def _kick(self) -> None:
        if self._busy:
            return
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None
        packet = self.qdisc.dequeue(self.sim.now)
        if packet is None:
            ready = self.qdisc.next_ready_time(self.sim.now)
            if ready is not None:
                # A token-gated queue told us when to look again; the
                # epsilon floor guards against zero-delay retry spins.
                delay = max(1e-6, ready - self.sim.now)
                self._retry_event = self.sim.schedule(delay, self._kick)
            return
        self._busy = True
        tx_time = packet.size / self._rate
        self.busy_time += tx_time
        # One packet serializes at a time (guarded by _busy), so a
        # single in-flight slot replaces a per-packet closure and the
        # completion event is never cancelled: the handle-free
        # call_later path applies.
        self._in_flight = packet
        self.sim.call_later(tx_time, self._complete)

    def _complete(self) -> None:
        packet = self._in_flight
        self._in_flight = None
        self._busy = False
        self._deliver(packet)
        self._kick()

    def _deliver(self, packet: Packet) -> None:
        now = self.sim.now
        self.delivered_packets += 1
        self.delivered_bytes += packet.size
        flow = packet.flow_id
        self._per_flow_bytes[flow] = (
            self._per_flow_bytes.get(flow, 0) + packet.size)
        if _OBS.enabled:
            _OBS.emit(now, EventKind.DELIVER, f"link:{self.name}", flow,
                      packet.size)
        for tap in self._taps:
            tap(packet, now)
        if self.sink is not None:
            self.sink.send(packet)

    # -- stats -------------------------------------------------------------

    def flow_bytes(self, flow_id: str) -> int:
        """Total bytes this link has delivered for ``flow_id``."""
        return self._per_flow_bytes.get(flow_id, 0)

    @property
    def queue_delay(self) -> float:
        """Instantaneous queueing delay at the current rate (seconds)."""
        return self.qdisc.byte_length / self._rate


class DelayBox:
    """Fixed propagation delay with infinite capacity (Mahimahi ``mm-delay``)."""

    def __init__(self, sim: Simulator, delay: float,
                 sink: Optional[PacketSink] = None, name: str = "delay"):
        if delay < 0:
            raise ConfigError(f"delay must be non-negative: {delay}")
        self.sim = sim
        self.delay = delay
        self.sink = sink
        self.name = name
        # Fixed delay means FIFO: arrivals leave in order, so a deque
        # plus a bound-method event replaces a per-packet closure.
        self._queue: deque[Packet] = deque()

    def send(self, packet: Packet) -> None:
        if self.sink is None:
            return
        self._queue.append(packet)
        self.sim.call_later(self.delay, self._deliver_next)

    def _deliver_next(self) -> None:
        packet = self._queue.popleft()
        sink = self.sink
        if sink is not None:
            sink.send(packet)


class LossBox:
    """Independent random loss (Mahimahi ``mm-loss``)."""

    def __init__(self, sim: Simulator, loss_rate: float,
                 sink: Optional[PacketSink] = None, seed: int = 0,
                 name: str = "loss"):
        if not 0 <= loss_rate < 1:
            raise ConfigError(f"loss_rate must be in [0, 1): {loss_rate}")
        import numpy as np
        self.sim = sim
        self.loss_rate = loss_rate
        self.sink = sink
        self.name = name
        self.dropped = 0
        self._rng = np.random.default_rng(seed)

    def send(self, packet: Packet) -> None:
        if self._rng.random() < self.loss_rate:
            self.dropped += 1
            recycle(packet)
            return
        if self.sink is not None:
            self.sink.send(packet)


class TraceLink:
    """Trace-driven variable-rate link (Mahimahi ``mm-link`` semantics).

    The trace is a sequence of delivery-opportunity timestamps
    (milliseconds); at each opportunity the link may transmit exactly
    one packet of up to MTU bytes.  The trace repeats forever with its
    final timestamp as the period.

    Delivery opportunities with an empty queue are wasted -- this is
    what makes trace links faithful models of cellular schedulers.
    """

    MTU = 1514

    def __init__(self, sim: Simulator, opportunities_ms: list[float],
                 sink: Optional[PacketSink] = None,
                 qdisc: Optional[Qdisc] = None, name: str = "tracelink"):
        if not opportunities_ms:
            raise ConfigError("trace must contain at least one opportunity")
        if any(b < a for a, b in zip(opportunities_ms, opportunities_ms[1:])):
            raise ConfigError("trace timestamps must be non-decreasing")
        if opportunities_ms[-1] <= 0:
            raise ConfigError("trace period must be positive")
        self.sim = sim
        self.trace = [t / 1000.0 for t in opportunities_ms]
        self.period = self.trace[-1]
        self.sink = sink
        self.qdisc = qdisc if qdisc is not None else DropTailQueue(
            limit_packets=100)
        self.name = name
        self._taps: list[Tap] = []
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.wasted_opportunities = 0
        self._per_flow_bytes: dict[str, int] = {}
        self._index = 0
        self._epoch = 0.0
        self._schedule_next()

    def add_tap(self, tap: Tap) -> None:
        self._taps.append(tap)

    def send(self, packet: Packet) -> None:
        self.qdisc.enqueue(packet, self.sim.now)

    def _schedule_next(self) -> None:
        when = self._epoch + self.trace[self._index]
        self.sim.schedule_at(max(when, self.sim.now), self._opportunity)

    def _opportunity(self) -> None:
        packet = self.qdisc.dequeue(self.sim.now)
        if packet is None:
            self.wasted_opportunities += 1
        else:
            self._deliver(packet)
        self._index += 1
        if self._index >= len(self.trace):
            self._index = 0
            self._epoch += self.period
        self._schedule_next()

    def _deliver(self, packet: Packet) -> None:
        now = self.sim.now
        self.delivered_packets += 1
        self.delivered_bytes += packet.size
        self._per_flow_bytes[packet.flow_id] = (
            self._per_flow_bytes.get(packet.flow_id, 0) + packet.size)
        if _OBS.enabled:
            _OBS.emit(now, EventKind.DELIVER, f"link:{self.name}",
                      packet.flow_id, packet.size)
        for tap in self._taps:
            tap(packet, now)
        if self.sink is not None:
            self.sink.send(packet)

    def flow_bytes(self, flow_id: str) -> int:
        """Total bytes this link has delivered for ``flow_id``."""
        return self._per_flow_bytes.get(flow_id, 0)
