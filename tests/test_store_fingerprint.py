"""Tests for deterministic config fingerprints (`repro.store.fingerprint`).

Satellite coverage from ISSUE 3: the same spec hashed in the parent
and in a fresh subprocess (different hash randomization) yields
identical digests; reordered dict params and float formatting do not
change the hash; bumping the code-version salt does.
"""

import functools
import os
import subprocess
import sys

import pytest

from repro.core.campaign import PathSpec
from repro.core.detector import ContentionDetector
from repro.errors import ConfigError
from repro.store import (CODE_VERSION, callable_config, canonical_json,
                         fingerprint, fingerprint_stream)


def spec(**overrides):
    base = dict(rate_mbps=48.0, rtt_ms=50.0, qdisc="droptail",
                cross_traffic="reno", seed=7)
    base.update(overrides)
    return PathSpec(**base)


class TestCanonicalization:
    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": [2, 3]}) \
            == fingerprint({"b": [2, 3], "a": 1})

    def test_tuple_and_list_identical(self):
        assert fingerprint((1, 2, 3)) == fingerprint([1, 2, 3])

    def test_float_formatting_irrelevant(self):
        assert fingerprint(0.5) == fingerprint(float("0.50"))
        assert fingerprint({"x": 1e2}) == fingerprint({"x": 100.0})

    def test_int_and_float_distinct(self):
        # 1 and 1.0 compare equal in Python but canonical JSON keeps
        # the distinction -- a config switching types should re-run.
        assert canonical_json(1) != canonical_json(1.0)

    def test_dataclass_hashes_as_field_dict(self):
        s = spec()
        as_dict = {"rate_mbps": 48.0, "rtt_ms": 50.0,
                   "qdisc": "droptail", "cross_traffic": "reno",
                   "buffer_multiplier": 1.0, "seed": 7,
                   "medium": "queue"}
        assert fingerprint(s) == fingerprint(as_dict)

    def test_fingerprint_config_hook(self):
        a = ContentionDetector(threshold=2.0)
        b = ContentionDetector(threshold=2.0)
        c = ContentionDetector(threshold=3.0)
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a) != fingerprint(c)

    def test_sets_hash_order_free(self):
        assert fingerprint({"s": {3, 1, 2}}) == fingerprint({"s": {2, 3, 1}})

    def test_numpy_values_canonicalize(self):
        import numpy as np
        assert fingerprint(np.float64(0.5)) == fingerprint(0.5)
        assert fingerprint(np.array([1.0, 2.0])) == fingerprint([1.0, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(ConfigError):
            fingerprint(float("nan"))

    def test_non_string_keys_rejected(self):
        with pytest.raises(ConfigError):
            fingerprint({1: "x"})

    def test_arbitrary_object_rejected(self):
        with pytest.raises(ConfigError):
            fingerprint(object())


class TestSaltAndKind:
    def test_kind_namespaces(self):
        assert fingerprint(1, kind="path") != fingerprint(1, kind="sweep")

    def test_salt_bump_invalidates(self):
        base = fingerprint({"x": 1})
        assert base == fingerprint({"x": 1}, salt=CODE_VERSION)
        assert base != fingerprint({"x": 1}, salt=CODE_VERSION + ".next")

    def test_stream_matches_no_concat_ambiguity(self):
        assert fingerprint_stream(["ab"]) != fingerprint_stream(["a", "b"])
        assert fingerprint_stream([1, 2]) == fingerprint_stream((1, 2))


class TestCrossProcessStability:
    """The same spec must hash identically in a worker subprocess."""

    def test_subprocess_digest_identical(self, tmp_path):
        parent = fingerprint(spec(), kind="path")
        code = (
            "from repro.store import fingerprint\n"
            "from repro.core.campaign import PathSpec\n"
            "s = PathSpec(rate_mbps=48.0, rtt_ms=50.0, qdisc='droptail',"
            " cross_traffic='reno', seed=7)\n"
            "print(fingerprint(s, kind='path'))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # A different hash seed proves the digest never depends on
        # Python's per-process hash randomization.
        env["PYTHONHASHSEED"] = "12345"
        child = subprocess.run(
            [sys.executable, "-c", code], env=env, text=True,
            capture_output=True, check=True).stdout.strip()
        assert child == parent


class TestCallableConfig:
    def test_partial_parameters_distinguish(self):
        from repro.core.campaign import run_path
        a = callable_config(functools.partial(run_path, duration=5.0))
        b = callable_config(functools.partial(run_path, duration=9.0))
        assert a["qualname"] == b["qualname"] == "run_path"
        assert fingerprint(a) != fingerprint(b)

    def test_nested_partials_flatten(self):
        from repro.core.campaign import run_path
        inner = functools.partial(run_path, duration=5.0)
        outer = functools.partial(inner, capacity_hint=False)
        config = callable_config(outer)
        assert config["kwargs"] == {"duration": 5.0,
                                   "capacity_hint": False}

    def test_closures_rejected(self):
        def local(x):
            return x

        with pytest.raises(ConfigError):
            callable_config(local)
