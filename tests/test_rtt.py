"""Unit tests for the RTT estimator and RTO."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.tcp import RttEstimator


def test_first_sample_initializes_srtt():
    est = RttEstimator()
    est.update(0.1)
    assert est.srtt == pytest.approx(0.1)
    assert est.rttvar == pytest.approx(0.05)


def test_min_rtt_tracks_minimum():
    est = RttEstimator()
    for rtt in (0.3, 0.1, 0.2):
        est.update(rtt)
    assert est.min_rtt == pytest.approx(0.1)


def test_rto_at_least_min_rto():
    est = RttEstimator(min_rto=0.2)
    for _ in range(20):
        est.update(0.01)
    assert est.rto >= 0.2


def test_rto_formula_for_stable_rtt():
    est = RttEstimator(min_rto=0.0001)
    for _ in range(100):
        est.update(0.1)
    # rttvar decays toward 0, so rto -> srtt.
    assert est.rto == pytest.approx(0.1, rel=0.2)


def test_variance_raises_rto():
    stable = RttEstimator()
    jittery = RttEstimator()
    for i in range(50):
        stable.update(0.1)
        jittery.update(0.05 if i % 2 else 0.15)
    assert jittery.rto > stable.rto


def test_backoff_doubles_and_clamps():
    est = RttEstimator(max_rto=3.0, initial_rto=1.0)
    est.backoff()
    assert est.rto == 2.0
    est.backoff()
    assert est.rto == 3.0
    est.backoff()
    assert est.rto == 3.0


def test_initial_rto_used_before_samples():
    est = RttEstimator(initial_rto=1.0)
    assert est.rto == 1.0


def test_rejects_bad_config_and_samples():
    with pytest.raises(ConfigError):
        RttEstimator(min_rto=0.5, max_rto=0.1)
    est = RttEstimator()
    with pytest.raises(ConfigError):
        est.update(0.0)


@given(st.lists(st.floats(min_value=1e-4, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=100))
def test_property_srtt_within_sample_range(samples):
    est = RttEstimator()
    for s in samples:
        est.update(s)
    assert min(samples) <= est.srtt <= max(samples) + 1e-12
    assert est.min_rtt == pytest.approx(min(samples))
    assert est.samples == len(samples)
