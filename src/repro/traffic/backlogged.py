"""Persistently backlogged flows -- the classic contending workload.

The paper's §2.3 names these ("software updates, etc") as the main
remaining source of genuine access-link contention; Figure 3 uses
backlogged Reno and BBR flows as its two elastic cross-traffic phases.
"""

from __future__ import annotations

from ..cca.base import CongestionControl
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..tcp.endpoint import Connection
from .base import TrafficSource


class BackloggedFlow(TrafficSource):
    """One long-running flow that always has data to send.

    Args:
        sim: the simulator.
        path: where the flow lives.
        flow_id: flow identifier.
        cca: congestion control instance (owned by this flow).
        user_id: subscriber identifier for per-user queueing.
        ecn: negotiate ECN on the connection (DCTCP needs this to see
            congestion marks instead of losses).
        jitter: optional :class:`~repro.sim.jitter.TimingJitter` for
            the endpoint clocks (CPU-contention axis).
    """

    def __init__(self, sim: Simulator, path: PathHandles, flow_id: str,
                 cca: CongestionControl, user_id: str = "",
                 rwnd_bytes: int | None = None, ecn: bool = False,
                 jitter=None):
        self.sim = sim
        self.path = path
        self.flow_id = flow_id
        self.connection = Connection(sim, path, flow_id, cca,
                                     user_id=user_id, rwnd_bytes=rwnd_bytes,
                                     ecn=ecn, jitter=jitter)
        self._stopped = False

    def start(self) -> None:
        self.connection.sender.set_infinite_backlog()

    def stop(self) -> None:
        """Detach the flow from the path (in-flight packets die)."""
        self._stopped = True
        self.path.dst_host.detach(self.flow_id)
        self.path.src_host.detach(self.flow_id)
        # Stop the retransmission timer so the dead flow doesn't spin.
        self.connection.sender._disarm_rto()
        self.connection.sender._infinite_backlog = False
        self.connection.sender._total_written = \
            self.connection.sender.snd_nxt

    @property
    def delivered_bytes(self) -> int:
        return self.connection.receiver.received_bytes

    def throughput(self, duration: float) -> float:
        """Mean goodput (bytes/second) over ``duration``."""
        return self.delivered_bytes / duration
