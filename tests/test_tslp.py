"""Tests for the TSLP latency prober and congestion-episode analysis."""

import numpy as np
import pytest

from repro.cca import CubicCca
from repro.core.tslp import (CongestionEpisodes, TslpProber,
                             detect_congestion_episodes)
from repro.errors import AnalysisError, ConfigError
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms


class TestAnalysis:
    def test_flat_rtts_no_episodes(self):
        t = np.arange(0, 30, 0.1)
        r = np.full_like(t, 0.05)
        result = detect_congestion_episodes(t, r)
        assert not result.congested
        assert result.episodes == ()
        assert result.baseline_rtt == pytest.approx(0.05)

    def test_sustained_inflation_detected(self):
        t = np.arange(0, 30, 0.1)
        r = np.where((t > 10) & (t < 20), 0.12, 0.05)
        result = detect_congestion_episodes(t, r)
        assert result.congested
        assert len(result.episodes) == 1
        start, end = result.episodes[0]
        assert start == pytest.approx(10.1, abs=0.3)
        assert end == pytest.approx(20.0, abs=0.3)

    def test_short_blips_ignored(self):
        t = np.arange(0, 30, 0.1)
        r = np.full_like(t, 0.05)
        r[50:53] = 0.2  # 0.3 s blip < min_episode
        result = detect_congestion_episodes(t, r, min_episode=1.0)
        assert result.episodes == ()

    def test_episode_running_to_end_counted(self):
        t = np.arange(0, 10, 0.1)
        r = np.where(t > 5, 0.15, 0.05)
        result = detect_congestion_episodes(t, r)
        assert len(result.episodes) == 1

    def test_too_few_samples_rejected(self):
        with pytest.raises(AnalysisError):
            detect_congestion_episodes([0, 1], [0.1, 0.1])


class TestProber:
    def test_idle_path_measures_base_rtt(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(20), ms(60))
        prober = TslpProber(sim, path, interval=0.1)
        prober.start()
        sim.run(until=10.0)
        times, rtts = prober.series()
        assert len(rtts) > 80
        assert np.median(rtts) == pytest.approx(0.06, abs=0.01)

    def test_bulk_flow_inflates_probe_rtt(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(20), ms(60), buffer_multiplier=2.0)
        prober = TslpProber(sim, path, interval=0.1)
        prober.start()
        bulk = Connection(sim, path, "bulk", CubicCca())
        bulk.sender.set_infinite_backlog()
        sim.run(until=20.0)
        times, rtts = prober.series()
        result = detect_congestion_episodes(times, rtts)
        assert result.congested

    def test_stop(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(20), ms(60))
        prober = TslpProber(sim, path, interval=0.1)
        prober.start()
        sim.run(until=2.0)
        prober.stop()
        n = len(prober.times)
        sim.run(until=4.0)
        assert len(prober.times) <= n + 2  # in-flight replies only

    def test_invalid_interval(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            TslpProber(sim, dumbbell(sim, mbps(10), ms(40)), interval=0)
