"""Unit and property tests for change-point detection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (binary_segmentation, pelt,
                            throughput_level_shift)
from repro.analysis.changepoint import L2Cost, NormalMeanVarCost
from repro.errors import AnalysisError


def noisy_steps(levels, seg_len=50, noise=0.5, seed=0):
    rng = np.random.default_rng(seed)
    signal = np.concatenate([
        np.full(seg_len, lvl) + rng.normal(0, noise, seg_len)
        for lvl in levels
    ])
    return signal


class TestL2Cost:
    def test_constant_segment_costs_zero(self):
        cost = L2Cost(np.full(20, 3.0))
        assert cost.cost(0, 20) == pytest.approx(0.0, abs=1e-9)

    def test_matches_direct_computation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=30)
        cost = L2Cost(x)
        seg = x[5:20]
        direct = float(np.sum((seg - seg.mean()) ** 2))
        assert cost.cost(5, 20) == pytest.approx(direct)

    def test_split_never_increases_cost(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=50)
        cost = L2Cost(x)
        whole = cost.cost(0, 50)
        for i in range(1, 50):
            assert cost.cost(0, i) + cost.cost(i, 50) <= whole + 1e-9


@pytest.mark.parametrize("detect", [pelt, binary_segmentation])
class TestDetectors:
    def test_no_change_in_constant_signal(self, detect):
        result = detect(noisy_steps([5.0], seg_len=200))
        assert result.num_changes == 0

    def test_finds_single_big_shift(self, detect):
        signal = noisy_steps([10.0, 20.0], seg_len=100, seed=3)
        result = detect(signal)
        assert result.num_changes >= 1
        # At least one breakpoint near the true change at index 100.
        assert any(abs(bp - 100) <= 5 for bp in result.breakpoints)

    def test_finds_two_shifts(self, detect):
        signal = noisy_steps([5.0, 15.0, 2.0], seg_len=80, seed=4)
        result = detect(signal)
        found = sorted(result.breakpoints)
        assert any(abs(bp - 80) <= 5 for bp in found)
        assert any(abs(bp - 160) <= 5 for bp in found)

    def test_short_signal_raises(self, detect):
        with pytest.raises(AnalysisError):
            detect([1.0, 2.0])

    def test_empty_signal_raises(self, detect):
        with pytest.raises(AnalysisError):
            detect([])

    def test_tiny_signal_raises_with_large_min_segment(self, detect):
        with pytest.raises(AnalysisError):
            detect([1.0] * 7, min_segment=4)

    def test_exactly_two_segments_accepted(self, detect):
        result = detect([1.0] * 8, min_segment=4)
        assert result.num_changes == 0

    def test_bad_min_segment_raises(self, detect):
        with pytest.raises(AnalysisError):
            detect([1.0] * 8, min_segment=0)

    def test_segments_partition_signal(self, detect):
        signal = noisy_steps([1.0, 9.0], seg_len=60, seed=5)
        result = detect(signal)
        segs = result.segments
        assert segs[0][0] == 0
        assert segs[-1][1] == len(signal)
        for (a, b), (c, d) in zip(segs, segs[1:]):
            assert b == c

    def test_high_penalty_suppresses_detection(self, detect):
        signal = noisy_steps([10.0, 10.5], seg_len=60, seed=6)
        result = detect(signal, penalty=1e9)
        assert result.num_changes == 0


class TestPeltSpecifics:
    def test_pelt_exactness_on_clean_steps(self):
        signal = np.concatenate([np.zeros(50), np.ones(50) * 10])
        result = pelt(signal, penalty=1.0)
        assert result.breakpoints == (50,)

    def test_normal_cost_detects_variance_change(self):
        rng = np.random.default_rng(7)
        signal = np.concatenate([
            rng.normal(0, 0.1, 150),
            rng.normal(0, 3.0, 150),
        ])
        result = pelt(signal, penalty=10.0, cost_class=NormalMeanVarCost,
                      min_segment=5)
        assert any(abs(bp - 150) <= 10 for bp in result.breakpoints)


class TestCostBatch:
    """The vectorized cost paths must match the scalar ones exactly --
    PELT's pruning decisions (hence its breakpoints) depend on it."""

    @pytest.mark.parametrize("cost_class", [L2Cost, NormalMeanVarCost])
    def test_batch_matches_scalar(self, cost_class):
        rng = np.random.default_rng(11)
        x = rng.normal(size=40)
        cost = cost_class(x)
        ends = 37
        starts = np.arange(0, ends - 1)
        batch = cost.cost_batch(starts, ends)
        for s, value in zip(starts, batch):
            assert value == cost.cost(int(s), ends)

    def test_batch_varying_ends(self):
        rng = np.random.default_rng(12)
        cost = L2Cost(rng.normal(size=30))
        ends = np.arange(6, 30)
        batch = cost.cost_batch(3, ends)
        for e, value in zip(ends, batch):
            assert value == cost.cost(3, int(e))


def _exact_partition(x, penalty, min_segment=2):
    """Brute-force optimal segmentation by O(n^2) dynamic programming
    (no pruning) -- the reference PELT must reproduce exactly."""
    cost = L2Cost(x)
    n = len(x)
    f = [0.0] + [float("inf")] * n
    prev = [0] * (n + 1)
    for t in range(min_segment, n + 1):
        for s in [0] + list(range(min_segment, t - min_segment + 1)):
            value = f[s] + cost.cost(s, t) + penalty
            if value < f[t]:
                f[t], prev[t] = value, s
    bps, t = [], n
    while t > 0:
        if prev[t] > 0:
            bps.append(prev[t])
        t = prev[t]
    return tuple(sorted(bps))


class TestPeltExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_unpruned_dp(self, seed):
        rng = np.random.default_rng(seed)
        levels = rng.choice([0.0, 5.0, 12.0], size=3)
        x = np.concatenate([rng.normal(lvl, 1.0, 25) for lvl in levels])
        penalty = 8.0
        assert pelt(x, penalty=penalty).breakpoints \
            == _exact_partition(x, penalty)


class TestLevelShiftFilter:
    def test_small_shift_filtered_out(self):
        signal = noisy_steps([100.0, 104.0], seg_len=100, noise=0.5, seed=8)
        result = throughput_level_shift(signal, min_relative_shift=0.2)
        assert result.num_changes == 0

    def test_large_shift_kept(self):
        signal = noisy_steps([100.0, 40.0], seg_len=100, noise=0.5, seed=9)
        result = throughput_level_shift(signal, min_relative_shift=0.2)
        assert result.num_changes >= 1


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100,
                          allow_nan=False), min_size=4, max_size=120))
def test_property_breakpoints_sorted_and_in_range(values):
    result = pelt(values)
    bps = result.breakpoints
    assert list(bps) == sorted(bps)
    assert all(0 < bp < len(values) for bp in bps)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=10, max_value=60),
       st.floats(min_value=5.0, max_value=50.0),
       st.integers(min_value=0, max_value=1000))
def test_property_detects_planted_shift(seg_len, magnitude, seed):
    signal = noisy_steps([0.0, magnitude], seg_len=seg_len,
                         noise=0.2, seed=seed)
    result = pelt(signal)
    assert result.num_changes >= 1
    assert any(abs(bp - seg_len) <= max(3, seg_len // 10)
               for bp in result.breakpoints)
