"""Smoke tests: the example scripts run end to end.

Each example's ``main()`` is executed in-process (importing by path)
so failures surface as ordinary test failures with real tracebacks.
The slowest examples are exercised with their module-level entry only.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart", "elasticity_probe", "home_network_isolation",
            "mlab_style_study", "video_vs_bulk",
            "campaign_study"} <= names


def test_quickstart_runs(capsys):
    module = load_example("quickstart")
    module.probe_path("reno", duration=30.0)
    module.probe_path("cbr", duration=30.0)
    out = capsys.readouterr().out
    assert "contending" in out   # reno: confidently contending
    assert "clean" in out        # cbr: confidently clean


def test_mlab_style_study_runs(capsys):
    module = load_example("mlab_style_study")
    module.main()
    out = capsys.readouterr().out
    assert "category" in out
    assert "level shifts" in out


def test_video_vs_bulk_single_race(capsys):
    module = load_example("video_vs_bulk")
    row = module.race(50.0)
    assert row["video_mbps"] > 5.0
    assert row["bulk_mbps"] > 10.0


def test_home_network_isolation_single_household():
    module = load_example("home_network_isolation")
    row = module.run_household("fq")
    assert row["gaming_mbps"] > 5.0
    assert row["update_mbps"] > 5.0
    assert row["web_pages"] >= 1
