"""`repro.store`: content-addressed result store + resumable scheduling.

The paper's headline artifacts are embarrassingly parallel sweeps over
deterministic seeded configs -- exactly the workload where a cache and
a checkpointing scheduler turn "rerun everything" into "rerun only what
changed".  This package provides:

* :mod:`~repro.store.fingerprint` -- canonical config fingerprints
  (SHA-256 over canonical JSON, salted with the code version).
* :mod:`~repro.store.artifacts` -- :class:`ArtifactStore`, the
  content-addressed on-disk store (``$REPRO_STORE`` or
  ``~/.cache/repro``) with atomic writes, a JSON accounting index, and
  age/LRU pruning.
* :mod:`~repro.store.scheduler` -- :class:`ResumableScheduler`, which
  consults the store before dispatching, checkpoints every completed
  task, quarantines persistent failures, and resumes interrupted runs.
* :mod:`~repro.store.atomic` -- the crash-safe write helpers everything
  above (and the experiment report writers) share.

Cache policy
------------
Library entry points (``Campaign.run``, ``sweep``, ``run_pipeline``)
take an explicit ``store=`` argument; when it is omitted they fall back
to the **ambient store**: enabled when ``REPRO_CACHE=1`` (rooted at
``$REPRO_STORE``), otherwise off, so plain library use and the test
suite stay side-effect-free.  The CLI turns the ambient store on for
``repro run`` / ``repro metrics`` / ``repro trace`` unless
``--no-cache`` is given.
"""

from __future__ import annotations

import contextlib
import os

from .artifacts import STORE_ENV, ArtifactStore, default_root
from .atomic import (atomic_open, atomic_write_bytes, atomic_write_json,
                     atomic_write_text)
from .fingerprint import (CODE_VERSION, STORE_SCHEMA_VERSION,
                          callable_config, canonical_json, canonicalize,
                          fingerprint, fingerprint_stream)
from .scheduler import ResumableScheduler, SchedulerReport

#: When "1"/"true"/"yes", library calls without an explicit ``store=``
#: use the ambient store automatically.
CACHE_ENV = "REPRO_CACHE"

_UNSET = object()
_active: object = _UNSET


def set_active_store(store: ArtifactStore | None) -> None:
    """Set (or, with ``None``, disable) the process's ambient store."""
    global _active
    _active = store


def clear_active_store() -> None:
    """Back to environment-driven resolution (``REPRO_CACHE``)."""
    global _active
    _active = _UNSET


def active_store() -> ArtifactStore | None:
    """The ambient store, or ``None`` when caching is off.

    Resolution: an explicit :func:`set_active_store` value wins;
    otherwise ``REPRO_CACHE`` truthiness decides, with the store rooted
    per ``$REPRO_STORE`` / ``~/.cache/repro``.
    """
    if _active is not _UNSET:
        return _active  # type: ignore[return-value]
    if os.environ.get(CACHE_ENV, "").lower() in ("1", "true", "yes"):
        return ArtifactStore()
    return None


@contextlib.contextmanager
def using_store(store: ArtifactStore | None):
    """Scoped :func:`set_active_store`; restores the prior state."""
    global _active
    prior = _active
    _active = store
    try:
        yield store
    finally:
        _active = prior


__all__ = [
    "ArtifactStore", "ResumableScheduler", "SchedulerReport",
    "STORE_ENV", "CACHE_ENV", "CODE_VERSION", "STORE_SCHEMA_VERSION",
    "default_root", "fingerprint", "fingerprint_stream",
    "canonical_json", "canonicalize", "callable_config",
    "atomic_open", "atomic_write_text", "atomic_write_bytes",
    "atomic_write_json",
    "active_store", "set_active_store", "clear_active_store",
    "using_store",
]
