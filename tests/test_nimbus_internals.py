"""Unit tests for NimbusCca's internal machinery (no network)."""

import math

import pytest

from repro.cca.base import AckSample
from repro.cca.nimbus import NimbusCca
from repro.errors import ConfigError


def ack(now, acked=1448, rtt=0.1, min_rtt=0.1, srtt=0.1,
        inflight=100_000, rate=None, delivered=0):
    return AckSample(now=now, acked_bytes=acked, rtt=rtt, min_rtt=min_rtt,
                     srtt=srtt, inflight_bytes=inflight,
                     delivery_rate=rate, delivery_rate_app_limited=False,
                     delivered_total=delivered, in_recovery=False)


class TestConfig:
    def test_delay_target_scales_with_amplitude_and_freq(self):
        a = NimbusCca(pulse_freq=5.0, pulse_amplitude=0.25)
        expected = min(2.0 * 0.25 / (math.pi * 5.0), 0.05)
        assert a.delay_target == pytest.approx(expected)

    def test_delay_target_clamped(self):
        slow = NimbusCca(pulse_freq=0.5, pulse_amplitude=0.25)
        assert slow.delay_target == pytest.approx(0.05)

    def test_estimator_window_grows_for_slow_pulses(self):
        fast = NimbusCca(pulse_freq=5.0)
        slow = NimbusCca(pulse_freq=1.0)
        assert slow.estimator.window_samples \
            > fast.estimator.window_samples

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            NimbusCca(delay_target=-0.1)
        with pytest.raises(ConfigError):
            NimbusCca(fixed_mode="plaid")
        with pytest.raises(ConfigError):
            NimbusCca(elasticity_high=1.0, elasticity_low=2.0)


class TestRateBins:
    def test_bins_accumulate_and_close(self):
        cca = NimbusCca(capacity_hint=6e6)
        cca.on_packet_sent(0.001, 1448, False)
        cca.on_packet_sent(0.005, 1448, False)
        assert cca._send_in_bin == 2 * 1448
        cca.on_packet_sent(0.015, 1448, False)  # closes bin 0
        assert len(cca._send_bins) == 1
        assert cca._send_bins[0] == 2 * 1448

    def test_z_samples_feed_estimator(self):
        cca = NimbusCca(capacity_hint=6e6)
        for i in range(200):
            t = i * 0.005
            cca.on_packet_sent(t, 1448, False)
            cca.on_ack(ack(t + 0.001))
        assert len(cca.estimator.window_values) > 50

    def test_z_clipped_at_capacity_multiple(self):
        cca = NimbusCca(capacity_hint=6e6)
        # Send a lot, ack almost nothing: raw ẑ would explode.
        for i in range(300):
            cca.on_packet_sent(i * 0.01, 14_480, False)
        cca.on_ack(ack(3.0, acked=100))
        assert max(cca.estimator.window_values) <= 1.5 * 6e6 + 1e-6

    def test_mu_from_hint_or_filter(self):
        hinted = NimbusCca(capacity_hint=5e6)
        assert hinted.mu == 5e6
        learned = NimbusCca(capacity_hint=None, initial_rate=1e6)
        assert learned.mu == 1e6  # falls back to base rate
        learned.on_ack(ack(0.1, rate=4e6))
        assert learned.mu == 4e6


class TestDelayControl:
    def test_rate_floor_enforced(self):
        cca = NimbusCca(capacity_hint=6e6, min_rate_frac=0.25)
        # Report a huge queueing delay: controller wants near zero.
        for i in range(5):
            cca.on_ack(ack(0.1 * i, rtt=0.5, min_rtt=0.1, srtt=0.5))
        assert cca.pacing_rate >= 0.25 * 6e6 * 0.9

    def test_rate_rises_when_queue_below_target(self):
        cca = NimbusCca(capacity_hint=6e6)
        cca._z_smoothed = 0.0
        cca.on_ack(ack(0.1, rtt=0.1, min_rtt=0.1, srtt=0.1))  # no queue
        assert cca._base_rate > 6e6  # pushes to build the target queue

    def test_cwnd_caps_not_clocks(self):
        cca = NimbusCca(capacity_hint=6e6)
        cca.on_ack(ack(0.1))
        # cwnd is ~2x the pacing BDP, so pacing is the binding control.
        assert cca.cwnd * cca.mss > 1.5 * cca.pacing_rate * 0.1

    def test_pulses_modulate_pacing(self):
        cca = NimbusCca(capacity_hint=6e6, pulse_freq=5.0,
                        pulse_amplitude=0.25)
        rates = []
        for i in range(40):
            t = 0.005 * i
            cca.on_ack(ack(t, rtt=0.1 + cca.delay_target,
                           min_rtt=0.1, srtt=0.1 + cca.delay_target))
            rates.append(cca.pacing_rate)
        spread = max(rates) - min(rates)
        assert spread > 0.3 * 6e6  # ~2 x 0.25 amplitude visible
