"""Packet model.

Packets are plain mutable objects with ``__slots__`` -- the simulator
creates millions of them, so attribute storage matters more than
immutability here.  A packet carries enough header state for a TCP-like
transport (sequence/ack numbers, SACK-ish loss hints, ECN) and generic
bookkeeping used by queues and analysis (enqueue/dequeue timestamps).
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from ..units import ACK_SIZE, DEFAULT_PACKET_SIZE


class PacketKind(enum.Enum):
    """What role a packet plays on the wire."""

    DATA = "data"
    ACK = "ack"


_packet_ids = itertools.count(1)


class Packet:
    """One packet on the wire.

    Attributes:
        flow_id: opaque identifier of the owning flow (used by fair
            queueing, per-flow accounting, and receivers for dispatch).
        user_id: identifier of the owning subscriber/user; per-user
            isolation mechanisms (HTB classes, policers) key on this.
        kind: DATA or ACK.
        size: bytes occupied on the wire, headers included.
        seq: for DATA, the byte offset of the first payload byte.
        end_seq: for DATA, one past the last payload byte.
        ack: for ACK, the cumulative acknowledgement (next byte expected).
        sacked: for ACK, highest selectively-acked byte (simplified SACK).
        ecn_capable / ecn_marked: ECN negotiation and CE mark.
        sent_time: when the transport handed the packet to the network.
        enqueue_time: when the bottleneck queue accepted the packet
            (set by qdiscs; used for queueing-delay analysis).
        ack_of_sent_time: for ACK, echo of the data packet's sent_time
            (an exact RTT timestamp, like TCP timestamps).
        app_limited: the sender was application-limited when this packet
            left, so rate samples derived from it are not trustworthy.
    """

    __slots__ = (
        "packet_id", "flow_id", "user_id", "kind", "size",
        "seq", "end_seq", "ack", "sacked",
        "ecn_capable", "ecn_marked",
        "sent_time", "enqueue_time", "ack_of_sent_time",
        "app_limited", "retransmit", "rwnd", "ecn_echo", "sack_blocks",
    )

    def __init__(self, flow_id: str, kind: PacketKind = PacketKind.DATA,
                 size: int = DEFAULT_PACKET_SIZE, seq: int = 0,
                 end_seq: int = 0, ack: int = 0, user_id: str = "",
                 ecn_capable: bool = False):
        self.packet_id = next(_packet_ids)
        self.flow_id = flow_id
        self.user_id = user_id or flow_id
        self.kind = kind
        self.size = size
        self.seq = seq
        self.end_seq = end_seq
        self.ack = ack
        self.sacked = 0
        self.ecn_capable = ecn_capable
        self.ecn_marked = False
        self.sent_time = 0.0
        self.enqueue_time = 0.0
        self.ack_of_sent_time: Optional[float] = None
        self.app_limited = False
        self.retransmit = False
        #: for ACKs: advertised receive window in bytes (None = no limit)
        self.rwnd: Optional[int] = None
        #: for ACKs: echo of an ECN congestion-experienced mark
        self.ecn_echo = False
        #: for ACKs: selective-ack blocks, tuple of (start, end) pairs
        self.sack_blocks: tuple[tuple[int, int], ...] = ()

    @property
    def payload(self) -> int:
        """Payload bytes carried (zero for ACKs)."""
        if self.kind is PacketKind.ACK:
            return 0
        return self.end_seq - self.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is PacketKind.DATA:
            detail = f"seq={self.seq}..{self.end_seq}"
        else:
            detail = f"ack={self.ack}"
        return f"<Packet {self.flow_id} {self.kind.value} {detail} {self.size}B>"


# -- free-list pool --------------------------------------------------------
#
# A long simulation creates millions of short-lived packets; almost all
# of them die at a terminal host within one path traversal.  Network-
# internal consumption points (``Host.send`` dispatch, ``CountingSink``,
# ``LossBox`` drops) hand dead packets back via :func:`recycle`, and
# :func:`make_data` / :func:`make_ack` reset-and-reuse them instead of
# allocating.  ``packet_id == 0`` marks a packet currently sitting in
# the pool: a recycled packet must never be recycled again (double-free
# guard), and every reuse stamps a fresh id so identity-based analysis
# never confuses two wire lifetimes.

_FREE: list[Packet] = []
_POOL_LIMIT = 4096


def recycle(packet: Packet) -> None:
    """Return a dead packet to the free list.

    Safe to call twice (the second call is a no-op) and safe to skip
    entirely -- an un-recycled packet is simply garbage-collected.
    Callers must not retain references past this call.
    """
    if packet.packet_id == 0:
        return
    packet.packet_id = 0
    if len(_FREE) < _POOL_LIMIT:
        _FREE.append(packet)


def pool_size() -> int:
    """Number of packets currently pooled (for tests/introspection)."""
    return len(_FREE)


def _acquire(flow_id: str, kind: PacketKind, size: int, seq: int,
             end_seq: int, ack: int, user_id: str,
             ecn_capable: bool) -> Packet:
    if _FREE:
        packet = _FREE.pop()
        packet.packet_id = next(_packet_ids)
        packet.flow_id = flow_id
        packet.user_id = user_id or flow_id
        packet.kind = kind
        packet.size = size
        packet.seq = seq
        packet.end_seq = end_seq
        packet.ack = ack
        packet.sacked = 0
        packet.ecn_capable = ecn_capable
        packet.ecn_marked = False
        packet.sent_time = 0.0
        packet.enqueue_time = 0.0
        packet.ack_of_sent_time = None
        packet.app_limited = False
        packet.retransmit = False
        packet.rwnd = None
        packet.ecn_echo = False
        packet.sack_blocks = ()
        return packet
    return Packet(flow_id, kind, size, seq=seq, end_seq=end_seq,
                  ack=ack, user_id=user_id, ecn_capable=ecn_capable)


def make_data(flow_id: str, seq: int, payload: int,
              size: int | None = None, user_id: str = "",
              ecn_capable: bool = False) -> Packet:
    """Build a DATA packet carrying ``payload`` bytes starting at ``seq``."""
    wire = size if size is not None else payload + 52
    return _acquire(flow_id, PacketKind.DATA, wire, seq, seq + payload,
                    0, user_id, ecn_capable)


def make_ack(flow_id: str, ack: int, user_id: str = "") -> Packet:
    """Build a bare ACK acknowledging everything before ``ack``."""
    return _acquire(flow_id, PacketKind.ACK, ACK_SIZE, 0, 0, ack,
                    user_id, False)
