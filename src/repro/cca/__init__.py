"""Congestion control algorithms.

Loss-based (:class:`RenoCca`, :class:`NewRenoCca`, :class:`CubicCca`),
delay-based (:class:`VegasCca`, :class:`CopaCca`), model-based
(:class:`BbrCca`), non-reactive (:class:`CbrCca`), and the paper's
measurement vehicle, Nimbus (:class:`NimbusCca` in
:mod:`repro.cca.nimbus`).
"""

from .base import AckSample, CongestionControl
from .bbr import BbrCca
from .cbr import CbrCca
from .copa import CopaCca
from .cubic import CubicCca
from .dctcp import DctcpCca
from .filters import WindowedExtremum
from .ledbat import LedbatCca
from .reno import NewRenoCca, RenoCca
from .vegas import VegasCca

__all__ = [
    "CongestionControl", "AckSample", "WindowedExtremum",
    "RenoCca", "NewRenoCca", "CubicCca", "VegasCca", "CopaCca",
    "BbrCca", "CbrCca", "DctcpCca", "LedbatCca", "make_cca",
    "CCA_REGISTRY",
]

#: Factories for building CCAs by name (CLI and experiment configs).
#: ``cbr`` requires an explicit ``rate=`` kwarg (it has no sensible
#: default); every other entry builds with defaults.
CCA_REGISTRY = {
    "reno": RenoCca,
    "newreno": NewRenoCca,
    "cubic": CubicCca,
    "vegas": VegasCca,
    "copa": CopaCca,
    "bbr": BbrCca,
    "cbr": CbrCca,
    "dctcp": DctcpCca,
    "ledbat": LedbatCca,
}


def make_cca(name: str, **kwargs) -> CongestionControl:
    """Build a CCA by registry name.

    Nimbus is intentionally excluded here to avoid an import cycle with
    :mod:`repro.core`; build it directly via
    :class:`repro.cca.nimbus.NimbusCca`.
    """
    try:
        factory = CCA_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(CCA_REGISTRY))
        raise KeyError(f"unknown CCA {name!r}; known: {known}") from None
    return factory(**kwargs)
