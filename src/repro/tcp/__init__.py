"""TCP-like reliable transport.

SACK-based loss recovery (RFC 6675-style scoreboard with FACK loss
marking and pipe accounting), RFC 6298 retransmission timeouts with
go-back-N, optional pacing driven by the CCA, BBR-style delivery-rate
sampling (SACKed bytes count as delivered when SACKed), and
Linux-``tcp_info`` limit-state instrumentation -- the fields M-Lab NDT
archives and §3.1 analyses.
"""

from .endpoint import (DUPACK_THRESHOLD, Connection, TcpReceiver, TcpSender,
                       UNLIMITED_RWND)
from .rtt import RttEstimator
from .tcp_info import LimitState, TcpInfoSnapshot, TcpInfoTracker

__all__ = [
    "TcpSender", "TcpReceiver", "Connection", "RttEstimator",
    "LimitState", "TcpInfoSnapshot", "TcpInfoTracker",
    "DUPACK_THRESHOLD", "UNLIMITED_RWND",
]
