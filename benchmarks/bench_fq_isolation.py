"""Benchmark E3: fair queueing eliminates CCA contention (§2.1).

Asserts the paper-shape result: under DropTail, aggressive pairings
(BBR vs loss-based CCAs at a 1xBDP bottleneck) skew the allocation;
under per-flow fair queueing, every pairing is near-perfectly fair
regardless of CCA.
"""

from repro.experiments import fq_ablation

from conftest import once


def test_fq_ablation(benchmark, bench_scale):
    duration = 30.0 if bench_scale == "full" else 12.0
    result = once(benchmark, fq_ablation.run, duration=duration)

    print()
    print(result.text)

    m = result.metrics
    # FQ: Jain ~ 1.0 for every pairing.
    assert m["min_jain_fq"] > 0.95
    # DropTail: at least one pairing visibly skewed.
    assert m["min_jain_droptail"] < 0.9
    # FQ strictly dominates DropTail on fairness.
    assert m["mean_jain_fq"] > m["mean_jain_droptail"]
