"""Shared experiment scaffolding.

Each experiment module exposes ``run(**params) -> ExperimentResult``;
the CLI and benchmarks call it with defaults (or scaled-down "smoke"
parameters).  Results carry printable text, tabular rows for CSV
export, and a metrics dict that tests and EXPERIMENTS.md assertions key
on.

All report artifacts are written atomically (tmp + ``os.replace`` via
:mod:`repro.store.atomic`), so a run killed mid-save never leaves a
truncated ``report.txt`` or ``metrics.json``; and saving over an
existing result either versions the new files (``report.1.txt``) or
requires ``force=True``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from ..core.report import write_csv, write_json
from ..errors import SweepPointError
from ..runtime import parallel_map
from ..store.atomic import atomic_write_text


def versioned_path(path: Path, version: int) -> Path:
    """``report.txt`` -> ``report.3.txt`` for version 3 (0 = as-is)."""
    if version <= 0:
        return path
    return path.with_name(f"{path.stem}.{version}{path.suffix}")


@dataclass
class ExperimentResult:
    """Uniform experiment output.

    Attributes:
        experiment: experiment id (e.g. "fig3").
        text: human-readable rendering (charts + tables).
        metrics: headline numbers, for assertions and EXPERIMENTS.md.
        tables: named row-sets to export as CSV.
        params: the parameters the run used.
        attachments: named JSON-able payloads saved alongside the
            report (e.g. the ``metrics_registry`` snapshot from
            :mod:`repro.obs.metrics`).
    """

    experiment: str
    text: str
    metrics: dict[str, float]
    tables: dict[str, list[Mapping]] = field(default_factory=dict)
    params: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    attachments: dict[str, Mapping] = field(default_factory=dict)

    def save(self, out_dir: str | Path, force: bool = False) -> list[Path]:
        """Write text, metrics, and CSV tables under ``out_dir``.

        A prior result in the target directory is never silently
        overwritten: with ``force=True`` the new files replace it
        (atomically); otherwise they are written under the next free
        version suffix (``report.1.txt``, ``metrics.1.json``, ...)
        and the prior artifacts stay untouched.
        """
        out = Path(out_dir) / self.experiment
        out.mkdir(parents=True, exist_ok=True)
        version = 0
        if not force and (out / "report.txt").exists():
            version = 1
            while versioned_path(out / "report.txt", version).exists():
                version += 1
        written = []
        text_path = versioned_path(out / "report.txt", version)
        atomic_write_text(text_path, self.text + "\n")
        written.append(text_path)
        metrics_path = versioned_path(out / "metrics.json", version)
        write_json(metrics_path, {"experiment": self.experiment,
                                  "params": self.params,
                                  "metrics": self.metrics,
                                  "elapsed_s": self.elapsed_s})
        written.append(metrics_path)
        for name, rows in self.tables.items():
            csv_path = versioned_path(out / f"{name}.csv", version)
            write_csv(csv_path, rows)
            written.append(csv_path)
        for name, payload in self.attachments.items():
            json_path = versioned_path(out / f"{name}.json", version)
            write_json(json_path, payload)
            written.append(json_path)
        return written


class Stopwatch:
    """Context manager timing an experiment run."""

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self._start
        return False


class _SweepPoint:
    """Picklable sweep-task wrapper that names the failing value.

    The pool transfers worker exceptions by pickling, which drops
    ``__cause__`` chains and tracebacks -- so without this wrapper a
    failed parallel sweep cannot say *which* value broke.  The wrapper
    raises :class:`SweepPointError` whose message carries the value;
    on the serial path the original exception is also chained.
    """

    def __init__(self, run_fn, label: str):
        self.run_fn = run_fn
        self.label = label

    def __call__(self, value):
        try:
            return self.run_fn(value)
        except SweepPointError:
            raise
        except Exception as exc:
            raise SweepPointError(
                f"sweep point {self.label}={value!r} failed: "
                f"{type(exc).__name__}: {exc}") from exc


def sweep(values: Sequence, run_fn, label: str = "value",
          workers: int | None = None, progress=None,
          store=None) -> list[dict]:
    """Run ``run_fn(v)`` for each value, collecting metric rows.

    Sweep points are independent, so they are fanned out over worker
    processes when ``run_fn`` is picklable (a module-level function or
    ``functools.partial`` of one); closures fall back to the serial
    loop.  Rows come back in ``values`` order either way.

    A failing sweep point raises :class:`repro.errors.SweepPointError`
    naming the value that broke (in both serial and pool mode).

    Args:
        values: the sweep points.
        run_fn: ``fn(value) -> ExperimentResult``.
        label: column name for the sweep value.
        workers: worker processes; ``None`` defers to ``REPRO_WORKERS``
            then the CPU count; ``1`` forces serial.
        progress: optional ``fn(done, total)`` completion callback.
        store: a :class:`repro.store.ArtifactStore` caching one
            :class:`ExperimentResult` per (run_fn config, value); only
            uncached points execute.  ``None`` disables caching
            (``run_fn`` closures cannot be cached -- their config has
            no canonical fingerprint).
    """
    task = _SweepPoint(run_fn, label)
    if store is None:
        results = parallel_map(task, values, workers=workers,
                               chunk_size=1, progress=progress)
    else:
        results = _sweep_cached(task, values, label, store,
                                workers=workers, progress=progress)
    rows = []
    for v, result in zip(values, results):
        row = {label: v}
        row.update(result.metrics)
        rows.append(row)
    return rows


def _sweep_cached(task: _SweepPoint, values: Sequence, label: str,
                  store, workers: int | None, progress) -> list:
    """Store-backed sweep body: compute only the uncached points."""
    from ..store import callable_config, fingerprint

    fn_config = callable_config(task.run_fn)
    keys = [fingerprint({"fn": fn_config, "label": label, "value": v},
                        kind="sweep") for v in values]
    results: list = [None] * len(values)
    pending: list[int] = []
    sentinel = object()
    for i, key in enumerate(keys):
        cached = store.get(key, sentinel)
        if cached is sentinel:
            pending.append(i)
        else:
            results[i] = cached
    done_base = len(values) - len(pending)
    if progress is not None and done_base:
        progress(done_base, len(values))
    if pending:
        computed = parallel_map(
            task, [values[i] for i in pending], workers=workers,
            chunk_size=1,
            progress=(None if progress is None else
                      lambda done, _: progress(done_base + done,
                                               len(values))))
        for i, result in zip(pending, computed):
            store.put(keys[i], result, kind="sweep",
                      label=f"{label}={values[i]!r}")
            results[i] = result
    return results
