"""A compact Figure 3 run: the centerpiece experiment, reduced phases.

The full 5 x 45 s reproduction with shape assertions lives in
``benchmarks/bench_fig3_elasticity.py``; this checks the experiment
machinery (phase sequencing, per-phase accounting, artifact tables) on
a short three-phase plan.
"""

import pytest

from repro.experiments import fig3
from repro.traffic import Phase


@pytest.fixture(scope="module")
def result():
    phases = (Phase("reno", 15.0), Phase("video", 15.0),
              Phase("cbr", 15.0))
    return fig3.run(phases=phases, settle=6.0)


def test_phase_rows_cover_plan(result):
    rows = result.tables["phases"]
    assert [r["phase"] for r in rows] == ["reno", "video", "cbr"]
    assert rows[0]["start_s"] == 0.0
    assert rows[-1]["end_s"] == 45.0


def test_contending_phase_scores_highest(result):
    m = result.metrics
    assert m["elasticity_reno"] > m["elasticity_video"]
    assert m["elasticity_reno"] > m["elasticity_cbr"]
    assert m["elasticity_reno"] > 2.0


def test_series_table_nonempty_and_ordered(result):
    series = result.tables["elasticity_series"]
    assert len(series) > 20
    times = [r["time_s"] for r in series]
    assert times == sorted(times)


def test_cross_traffic_throughput_recorded(result):
    rows = {r["phase"]: r for r in result.tables["phases"]}
    # Reno grabbed real bandwidth; CBR held its configured 12 Mbit/s.
    assert rows["reno"]["cross_mbps"] > 5.0
    assert rows["cbr"]["cross_mbps"] == pytest.approx(12.0, rel=0.25)


def test_probe_kept_measuring_throughout(result):
    rows = result.tables["phases"]
    assert all(r["probe_mbps"] > 3.0 for r in rows)
