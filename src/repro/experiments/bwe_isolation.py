"""Experiment E10: centralized allocation eliminates contention (§2.1).

"hyperscalers deploy private WANs [...] BwE integrates with
applications that report their bandwidth demand to centrally determine
bandwidth allocations across the entire network.  This isolates
applications from each other and eliminates inter-flow contention."

Setup: two application groups (a weight-2 "serving" group of two flows
and a weight-1 "batch" group of two flows) share a private-WAN link.
Run A lets their CCAs contend on a FIFO; run B adds a BwE controller
that paces every flow to its hierarchical weighted max-min share.

Expected shape: under BwE, measured throughputs match the computed
allocations almost exactly (allocation error ~ 0) and the weighted
group split is enforced; under pure CCA contention, the split is
whatever the CCA dynamics happen to produce.
"""

from __future__ import annotations

from .. import viz
from ..alloc.bwe import BweController
from ..cca import make_cca
from ..cca.cbr import CbrCca
from ..sim.engine import Simulator
from ..sim.network import dumbbell
from ..tcp.endpoint import Connection
from ..units import mbps, ms, to_mbps
from .runner import ExperimentResult, Stopwatch

#: (flow name, group, weight, CCA when contending)
FLOWS = (
    ("serving-a", "serving", 2.0, "cubic"),
    ("serving-b", "serving", 2.0, "bbr"),
    ("batch-a", "batch", 1.0, "cubic"),
    ("batch-b", "batch", 1.0, "reno"),
)


def _run_contention(rate_mbps: float, duration: float) -> dict[str, float]:
    sim = Simulator()
    path = dumbbell(sim, mbps(rate_mbps), ms(30), buffer_multiplier=2.0)
    conns = {}
    for name, _group, _weight, cca in FLOWS:
        conns[name] = Connection(sim, path, name, make_cca(cca))
        conns[name].sender.set_infinite_backlog()
    sim.run(until=duration)
    return {name: conn.receiver.received_bytes / duration
            for name, conn in conns.items()}


def _run_bwe(rate_mbps: float, duration: float
             ) -> tuple[dict[str, float], dict[str, float]]:
    sim = Simulator()
    path = dumbbell(sim, mbps(rate_mbps), ms(30), buffer_multiplier=2.0)
    controller = BweController(sim, capacity=mbps(rate_mbps) * 0.98,
                               period=0.5)
    conns = {}
    for name, group, weight, _cca in FLOWS:
        cca = CbrCca(rate=mbps(1.0))  # paced by the controller
        conn = Connection(sim, path, name, cca)
        conn.sender.set_infinite_backlog()
        conns[name] = conn
        controller.register(
            name,
            demand_fn=lambda: mbps(rate_mbps),  # all backlogged
            enforce_fn=lambda rate, c=cca: setattr(c, "rate",
                                                   max(rate, 1000.0)),
            group=group, group_weight=weight)
    controller.start()
    sim.run(until=duration)
    achieved = {name: conn.receiver.received_bytes / duration
                for name, conn in conns.items()}
    return achieved, dict(controller.allocations)


def run(rate_mbps: float = 100.0, duration: float = 20.0
        ) -> ExperimentResult:
    """Compare CCA contention against BwE-managed allocation."""
    with Stopwatch() as watch:
        contended = _run_contention(rate_mbps, duration)
        managed, allocations = _run_bwe(rate_mbps, duration)

    serving_share_contended = (
        sum(v for k, v in contended.items() if k.startswith("serving"))
        / sum(contended.values()))
    serving_share_managed = (
        sum(v for k, v in managed.items() if k.startswith("serving"))
        / sum(managed.values()))
    errors = [abs(managed[name] - allocations[name])
              / max(allocations[name], 1.0)
              for name, *_ in FLOWS]

    rows = [{
        "flow": name,
        "contended_mbps": round(to_mbps(contended[name]), 2),
        "bwe_mbps": round(to_mbps(managed[name]), 2),
        "bwe_allocated_mbps": round(to_mbps(allocations[name]), 2),
    } for name, *_ in FLOWS]

    parts = [
        f"E10: four backlogged flows on a {rate_mbps:.0f} Mbit/s "
        f"private-WAN link: CCA contention vs BwE allocation "
        f"(serving group weight 2, batch weight 1)",
        "",
        viz.table(
            [(r["flow"], r["contended_mbps"], r["bwe_mbps"],
              r["bwe_allocated_mbps"]) for r in rows],
            header=("flow", "contended Mbit/s", "BwE Mbit/s",
                    "BwE allocation")),
        "",
        f"serving-group share: contended {serving_share_contended:.1%} "
        f"(CCA-determined), BwE {serving_share_managed:.1%} "
        f"(policy says 66.7%)",
        f"max BwE enforcement error: {max(errors):.2%}",
    ]
    metrics = {
        "serving_share_contended": serving_share_contended,
        "serving_share_managed": serving_share_managed,
        "max_enforcement_error": max(errors),
    }
    return ExperimentResult(
        experiment="bwe_isolation",
        text="\n".join(parts),
        metrics=metrics,
        tables={"flows": rows},
        params={"rate_mbps": rate_mbps, "duration": duration},
        elapsed_s=watch.elapsed,
    )
