"""Unit tests for fairness and harm metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (harm, jain_index, max_min_fair_allocation,
                            throughput_shares)
from repro.errors import AnalysisError


class TestJain:
    def test_equal_allocation_is_one(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_known_value(self):
        # x = [1, 2, 3]: (6)^2 / (3 * 14) = 36/42
        assert jain_index([1, 2, 3]) == pytest.approx(36 / 42)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            jain_index([1, -1])

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_property_bounds(self, alloc):
        idx = jain_index(alloc)
        assert 1.0 / len(alloc) - 1e-9 <= idx <= 1.0 + 1e-9

    @given(st.floats(min_value=0.01, max_value=1e3),
           st.integers(min_value=1, max_value=20))
    def test_property_scale_invariant(self, scale, n):
        base = list(range(1, n + 1))
        scaled = [scale * v for v in base]
        assert jain_index(base) == pytest.approx(jain_index(scaled))


class TestShares:
    def test_shares_sum_to_one(self):
        shares = throughput_shares([2, 6])
        assert shares == [0.25, 0.75]

    def test_zero_total_rejected(self):
        with pytest.raises(AnalysisError):
            throughput_shares([0, 0])


class TestHarm:
    def test_no_harm_when_unchanged(self):
        assert harm(10.0, 10.0) == 0.0

    def test_half_throughput_is_half_harm(self):
        assert harm(10.0, 5.0) == pytest.approx(0.5)

    def test_improvement_clamped_to_zero(self):
        assert harm(10.0, 12.0) == 0.0

    def test_latency_direction(self):
        # Solo latency 10ms, contended 40ms -> harm 0.75.
        assert harm(0.010, 0.040, more_is_better=False) == pytest.approx(0.75)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            harm(0.0, 1.0)


class TestMaxMin:
    def test_all_demands_fit(self):
        assert max_min_fair_allocation([1, 2], 10) == [1, 2]

    def test_fair_split_of_scarce_capacity(self):
        alloc = max_min_fair_allocation([10, 10], 10)
        assert alloc == [5, 5]

    def test_small_demand_protected(self):
        alloc = max_min_fair_allocation([1, 100], 10)
        assert alloc[0] == pytest.approx(1.0)
        assert alloc[1] == pytest.approx(9.0)

    def test_three_way_waterfill(self):
        alloc = max_min_fair_allocation([2, 8, 8], 12)
        assert alloc[0] == pytest.approx(2.0)
        assert alloc[1] == pytest.approx(5.0)
        assert alloc[2] == pytest.approx(5.0)

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    min_size=1, max_size=10),
           st.floats(min_value=0, max_value=500, allow_nan=False))
    def test_property_never_exceeds_demand_or_capacity(self, demands, cap):
        alloc = max_min_fair_allocation(demands, cap)
        assert sum(alloc) <= cap + 1e-6
        for a, d in zip(alloc, demands):
            assert a <= d + 1e-6
