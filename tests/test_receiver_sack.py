"""Unit tests for receiver reassembly, SACK generation, and sender
scoreboard interaction (driven directly, no network)."""

import pytest

from repro.cca import RenoCca
from repro.sim import Simulator
from repro.sim.packet import Packet, PacketKind, make_data
from repro.tcp.endpoint import TcpReceiver, TcpSender


def data(seq, payload=1000, flow="f", retransmit=False, sent_time=0.0):
    p = make_data(flow, seq=seq, payload=payload)
    p.retransmit = retransmit
    p.sent_time = sent_time
    return p


class TestReceiverReassembly:
    def make(self):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(sim, "f", transmit=acks.append)
        return sim, receiver, acks

    def test_in_order_advances(self):
        sim, rx, acks = self.make()
        rx.on_packet(data(0))
        rx.on_packet(data(1000))
        assert rx.rcv_nxt == 2000
        assert [a.ack for a in acks] == [1000, 2000]

    def test_gap_holds_cumulative_ack(self):
        sim, rx, acks = self.make()
        rx.on_packet(data(0))
        rx.on_packet(data(2000))  # hole at 1000
        assert rx.rcv_nxt == 1000
        assert acks[-1].ack == 1000
        assert acks[-1].sack_blocks == ((2000, 3000),)

    def test_hole_fill_jumps_ack(self):
        sim, rx, acks = self.make()
        rx.on_packet(data(0))
        rx.on_packet(data(2000))
        rx.on_packet(data(3000))
        rx.on_packet(data(1000))  # fills the hole
        assert rx.rcv_nxt == 4000
        assert acks[-1].ack == 4000
        assert acks[-1].sack_blocks == ()

    def test_multiple_disjoint_holes(self):
        sim, rx, acks = self.make()
        rx.on_packet(data(0))
        rx.on_packet(data(2000))
        rx.on_packet(data(4000))
        assert len(acks[-1].sack_blocks) == 2
        assert (2000, 3000) in acks[-1].sack_blocks
        assert (4000, 5000) in acks[-1].sack_blocks

    def test_sack_blocks_capped_at_three(self):
        sim, rx, acks = self.make()
        for seq in (1000, 3000, 5000, 7000, 9000):
            rx.on_packet(data(seq))
        assert len(acks[-1].sack_blocks) == 3

    def test_duplicate_counted_not_delivered_twice(self):
        sim, rx, acks = self.make()
        rx.on_packet(data(0))
        rx.on_packet(data(0))
        assert rx.received_bytes == 1000
        assert rx.duplicate_packets == 1

    def test_karn_no_echo_for_retransmits(self):
        sim, rx, acks = self.make()
        rx.on_packet(data(0, retransmit=True, sent_time=5.0))
        assert acks[-1].ack_of_sent_time is None
        rx.on_packet(data(1000, sent_time=6.0))
        assert acks[-1].ack_of_sent_time == 6.0

    def test_on_data_callback_gets_in_order_bytes_only(self):
        sim = Simulator()
        got = []
        rx = TcpReceiver(sim, "f", transmit=lambda p: None,
                         on_data=lambda n, t: got.append(n))
        rx.on_packet(data(1000))  # out of order: nothing delivered
        assert got == []
        rx.on_packet(data(0))     # delivers 2000 contiguous bytes
        assert got == [2000]

    def test_rwnd_advertised_relative_to_rcv_nxt(self):
        sim = Simulator()
        acks = []
        rx = TcpReceiver(sim, "f", transmit=acks.append,
                         rwnd_bytes=10_000)
        rx.on_packet(data(0))
        assert acks[-1].rwnd == 11_000

    def test_ignores_ack_packets(self):
        sim, rx, acks = self.make()
        p = Packet("f", PacketKind.ACK, ack=500)
        rx.on_packet(p)
        assert rx.rcv_nxt == 0
        assert acks == []


class TestSenderScoreboard:
    def make(self):
        sim = Simulator()
        sent = []
        sender = TcpSender(sim, "f", RenoCca(initial_cwnd=50.0),
                           transmit=sent.append, mss=1000)
        return sim, sender, sent

    def ack_packet(self, ack, sacks=()):
        p = Packet("f", PacketKind.ACK, ack=ack)
        p.sack_blocks = tuple(sacks)
        return p

    def test_pipe_tracks_sends_and_acks(self):
        sim, tx, sent = self.make()
        tx.write(5000)
        assert tx.pipe_bytes == 5000
        tx.on_packet(self.ack_packet(2000))
        assert tx.pipe_bytes == 3000
        assert tx.snd_una == 2000

    def test_sack_reduces_pipe_without_advancing_una(self):
        sim, tx, sent = self.make()
        tx.write(5000)
        tx.on_packet(self.ack_packet(0, sacks=[(2000, 3000)]))
        assert tx.snd_una == 0
        assert tx.pipe_bytes == 4000

    def test_fack_loss_marking_triggers_retransmit(self):
        sim, tx, sent = self.make()
        tx.write(10_000)
        assert len(sent) == 10
        # SACK far above seq 0: segments 0..6000 are FACK-lost
        # (threshold = 10000 - 3*1000).
        tx.on_packet(self.ack_packet(0, sacks=[(9000, 10_000)]))
        assert tx.in_recovery
        retx = [p for p in sent if p.retransmit]
        assert retx and retx[0].seq == 0

    def test_one_md_per_window(self):
        sim, tx, sent = self.make()
        cca = tx.cca
        tx.write(10_000)
        before = cca.cwnd
        tx.on_packet(self.ack_packet(0, sacks=[(9000, 10_000)]))
        after_first = cca.cwnd
        assert after_first < before
        # Another SACK for the same window: no further decrease.
        tx.on_packet(self.ack_packet(0, sacks=[(8000, 10_000)]))
        assert cca.cwnd == after_first

    def test_delivered_counts_sacked_bytes_once(self):
        sim, tx, sent = self.make()
        tx.write(5000)
        tx.on_packet(self.ack_packet(0, sacks=[(2000, 3000)]))
        assert tx.delivered == 1000
        tx.on_packet(self.ack_packet(5000))
        assert tx.delivered == 5000

    def test_recovery_exits_at_recover_point(self):
        sim, tx, sent = self.make()
        tx.write(10_000)
        tx.on_packet(self.ack_packet(0, sacks=[(9000, 10_000)]))
        assert tx.in_recovery
        tx.on_packet(self.ack_packet(10_000))
        assert not tx.in_recovery
        assert tx.pipe_bytes == 0
