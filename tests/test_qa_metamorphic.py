"""Worker-count invariance: the determinism contract the caching and
resume layers depend on.

``Campaign.run`` fans path simulations out over a process pool; the
results must be bit-identical to a serial run (same fingerprints, not
just statistically similar), because the store serves a ``--workers 8``
result to a ``--workers 1`` request and vice versa.
"""

import pytest

from repro.core.campaign import Campaign
from repro.store.fingerprint import fingerprint


@pytest.fixture(scope="module")
def small_campaign_results():
    # duration must exceed the probe's warmup (6 s) + window (5 s) so
    # the detector verdicts being compared are non-vacuous.  Seed 1
    # samples one clean path and one reno-contended path, both at
    # modest rates, so the comparison covers both verdict polarities.
    campaign = Campaign(n_paths=2, seed=1, duration=12.0)
    serial = campaign.run(workers=1, store=None)
    parallel = campaign.run(workers=4, store=None)
    return serial, parallel


def test_workers_do_not_change_fingerprints(small_campaign_results):
    serial, parallel = small_campaign_results
    assert (fingerprint(serial, kind="campaign")
            == fingerprint(parallel, kind="campaign"))


def test_workers_do_not_change_order_or_verdicts(small_campaign_results):
    serial, parallel = small_campaign_results
    assert len(serial.results) == len(parallel.results) == 2
    for a, b in zip(serial.results, parallel.results):
        assert a.spec == b.spec
        assert a.verdict.contending == b.verdict.contending
        assert a.verdict.mean_elasticity == b.verdict.mean_elasticity
        assert a.verdict.n_readings > 0  # non-vacuous comparison


@pytest.mark.slow
def test_workers_invariance_larger_campaign():
    campaign = Campaign(n_paths=8, seed=11, duration=15.0)
    serial = campaign.run(workers=1, store=None)
    parallel = campaign.run(workers=4, store=None)
    assert (fingerprint(serial, kind="campaign")
            == fingerprint(parallel, kind="campaign"))
