"""TCP Reno / NewReno congestion control.

Classic AIMD: slow start doubles the window every RTT until
``ssthresh``; congestion avoidance adds one packet per RTT; fast
retransmit halves the window; a timeout collapses it to one segment.

The endpoint implements NewReno-style recovery mechanics (partial-ACK
retransmission, pipe deflation); this class owns only the window
arithmetic, which Reno and NewReno share.  ECN echoes are treated as
loss signals at most once per RTT (RFC 3168).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..obs.bus import EventKind
from ..units import DEFAULT_MSS
from .base import AckSample, CongestionControl


class RenoCca(CongestionControl):
    """Reno AIMD window management.

    Args:
        initial_cwnd: initial window (packets); RFC 6928's IW10 default.
        ssthresh: initial slow-start threshold (packets).
        min_cwnd: floor for multiplicative decrease.
    """

    name = "reno"

    def __init__(self, mss: int = DEFAULT_MSS, initial_cwnd: float = 10.0,
                 ssthresh: float = float("inf"), min_cwnd: float = 2.0):
        super().__init__(mss=mss)
        if initial_cwnd < 1:
            raise ConfigError(f"initial_cwnd must be >= 1: {initial_cwnd}")
        self._cwnd = float(initial_cwnd)
        self.ssthresh = float(ssthresh)
        self.min_cwnd = float(min_cwnd)
        self._last_ecn_reaction = float("-inf")

    @property
    def cwnd(self) -> float:
        return self._cwnd

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self.ssthresh

    def on_ack(self, sample: AckSample) -> None:
        if sample.in_recovery:
            return
        if sample.ecn_echo:
            self._react_to_ecn(sample)
            return
        # RFC 3465 appropriate byte counting: a cumulative ACK that jumps
        # a SACK-repaired hole may cover dozens of packets; cap the
        # window growth credit at 2 segments per ACK.
        acked_packets = min(sample.acked_bytes / self.mss, 2.0)
        if self.in_slow_start:
            self._cwnd += acked_packets
            if self._cwnd > self.ssthresh:
                self._cwnd = self.ssthresh
        else:
            self._cwnd += acked_packets / self._cwnd

    def _react_to_ecn(self, sample: AckSample) -> None:
        rtt = sample.srtt if sample.srtt is not None else 0.1
        if sample.now - self._last_ecn_reaction >= rtt:
            self._last_ecn_reaction = sample.now
            self._multiplicative_decrease()

    def _multiplicative_decrease(self) -> None:
        self.ssthresh = max(self._cwnd / 2.0, self.min_cwnd)
        self._cwnd = self.ssthresh

    def on_loss(self, now: float, lost_bytes: int) -> None:
        self._multiplicative_decrease()
        self._trace(now, EventKind.CWND, self._cwnd, {"cause": "loss"})

    def on_rto(self, now: float) -> None:
        self.ssthresh = max(self._cwnd / 2.0, self.min_cwnd)
        self._cwnd = 1.0
        self._trace(now, EventKind.CWND, self._cwnd, {"cause": "rto"})


class NewRenoCca(RenoCca):
    """NewReno: Reno window arithmetic + the endpoint's partial-ACK
    recovery (which all senders in this package get).  Kept as its own
    class so experiment configs can name the algorithm precisely."""

    name = "newreno"
