"""Streaming, out-of-core §3.1 pipeline.

:func:`repro.ndt.pipeline.run_pipeline` materializes the whole
dataset; at M-Lab's actual monthly scale (millions of NDT rows) that
is gigabytes of snapshots.  This module runs the same analysis in
bounded memory:

1. The population is cut into :class:`ShardSpec`\\ s -- *descriptions*
   of dataset slices, a few integers each.  Per-flow seeding in
   :class:`~repro.ndt.synth.SyntheticNdtGenerator` means any shard is
   regenerable in isolation, on any process or machine.
2. :func:`analyse_shard` renders one shard, runs categorize +
   change-point per flow, and folds the flows into a flowless
   :class:`~repro.ndt.pipeline.Fig2Result` partial (integer counts,
   CDF sketches, quality tallies).  Peak memory is one chunk of
   records, regardless of the population size.
3. :func:`run_pipeline_streaming` fans shards out with
   :func:`~repro.runtime.parallel_map` -- or, given a store, through
   the checkpointing :class:`~repro.store.ResumableScheduler`, making
   million-flow runs resumable at shard granularity -- and merges the
   partials.  Merging is commutative/associative/idempotent, so the
   result is byte-identical to the materialized path's aggregates
   (``aggregate_fingerprint()``) for any chunk size or worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import AnalysisError, ConfigError
from ..obs.metrics import REGISTRY as _METRICS
from ..runtime import FaultPolicy, parallel_map
from .pipeline import Fig2Result, analyse_flow
from .synth import DEFAULT_CHUNK_SIZE, PopulationModel, SyntheticNdtGenerator

_AUTO = object()


@dataclass(frozen=True)
class ShardSpec:
    """A regenerable slice of a synthetic NDT population.

    The spec *is* the data: a worker holding only these fields can
    reproduce records [start, start+count) bit-for-bit and analyse
    them.  Its fingerprint (:meth:`key`) content-addresses the shard's
    :class:`~repro.ndt.pipeline.Fig2Result` partial in the store.
    """

    seed: int
    start: int
    count: int
    min_relative_shift: float = 0.25
    model: PopulationModel = PopulationModel()

    def __post_init__(self):
        if self.start < 0:
            raise ConfigError(f"shard start must be >= 0: {self.start}")
        if self.count <= 0:
            raise ConfigError(
                f"shard count must be positive: {self.count}")

    @property
    def shard_id(self) -> str:
        return f"shard-{self.start:09d}+{self.count}"

    def key(self) -> str:
        """Store fingerprint of this shard's analysis result."""
        from ..store import fingerprint
        return fingerprint(self, kind="fig2-shard")


def shard_specs(n_flows: int, seed: int = 0,
                model: PopulationModel | None = None,
                chunk_size: int = DEFAULT_CHUNK_SIZE,
                min_relative_shift: float = 0.25) -> list[ShardSpec]:
    """Cut an ``n_flows`` population into shard specs."""
    if n_flows <= 0:
        raise ConfigError(f"n_flows must be positive: {n_flows}")
    if chunk_size <= 0:
        raise ConfigError(f"chunk_size must be positive: {chunk_size}")
    model = model if model is not None else PopulationModel()
    return [
        ShardSpec(seed=seed, start=start,
                  count=min(chunk_size, n_flows - start),
                  min_relative_shift=min_relative_shift, model=model)
        for start in range(0, n_flows, chunk_size)
    ]


def analyse_shard(spec: ShardSpec) -> Fig2Result:
    """Render and analyse one shard; returns a flowless partial.

    Pure function of the spec -- the unit of work the scheduler
    checkpoints and cluster nodes execute.
    """
    generator = SyntheticNdtGenerator(model=spec.model, seed=spec.seed)
    dataset = generator.generate_shard(spec.start, spec.count)
    flows = [analyse_flow(record,
                          min_relative_shift=spec.min_relative_shift)
             for record in dataset.records]
    return Fig2Result.from_flows(flows, shard_id=spec.shard_id,
                                 start=spec.start, keep_flows=False)


def merge_partials(partials: Sequence[Fig2Result]) -> Fig2Result:
    """Fold shard partials into one result (any order, duplicates ok)."""
    result = Fig2Result.empty()
    for partial in partials:
        result = result.merge(partial)
    return result


def stream_run_key(specs: Sequence[ShardSpec]) -> str:
    """Fingerprint of a whole streaming run's config."""
    from ..store import fingerprint
    return fingerprint({"shards": [spec.key() for spec in specs]},
                       kind="fig2-stream")


def run_pipeline_streaming(n_flows: int, seed: int = 0,
                           model: PopulationModel | None = None,
                           chunk_size: int = DEFAULT_CHUNK_SIZE,
                           min_relative_shift: float = 0.25,
                           workers: int | None = None,
                           store=_AUTO, resume: bool = False,
                           policy: FaultPolicy | None = None,
                           progress=None) -> Fig2Result:
    """Run the §3.1 pipeline over ``n_flows`` synthetic flows, out of
    core.

    Aggregates are byte-identical to
    ``run_pipeline(generator.generate(n_flows))`` for any
    ``chunk_size``/``workers`` (compare ``aggregate_fingerprint()``),
    but peak memory is one shard, so populations far beyond RAM run on
    a laptop.

    Args:
        n_flows: population size (the paper's month of NDT is ~10M).
        seed: population seed.
        model: population model (default :class:`PopulationModel`).
        chunk_size: flows per shard -- the memory/checkpoint unit.
        min_relative_shift: level-shift significance threshold.
        workers: shard-level fan-out (``None`` defers to
            ``REPRO_WORKERS`` then the CPU count).
        store: artifact store for per-shard checkpoints and the merged
            result; defaults to the ambient store, ``None`` disables
            persistence (pure parallel_map).
        resume: resume a prior interrupted run's manifest -- finished
            shards become cache hits, only the remainder executes.
        policy: fault policy for shard execution (store path only).
        progress: optional ``fn(done, total)`` over shards.
    """
    if store is _AUTO:
        from ..store import active_store
        store = active_store()
    specs = shard_specs(n_flows, seed=seed, model=model,
                        chunk_size=chunk_size,
                        min_relative_shift=min_relative_shift)

    if store is None:
        partials = parallel_map(analyse_shard, specs, workers=workers,
                                chunk_size=1, progress=progress)
        return merge_partials(partials)

    run_key = stream_run_key(specs)
    cached = store.get(run_key)
    if cached is not None:
        _METRICS.counter("ndt.stream.merged_hits").inc()
        if progress is not None:
            progress(len(specs), len(specs))
        return cached

    from ..store import ResumableScheduler
    scheduler = ResumableScheduler(store, run_key, resume=resume,
                                   kind="fig2-shard")
    report = scheduler.run(
        analyse_shard, specs, [spec.key() for spec in specs],
        labels=[spec.shard_id for spec in specs], workers=workers,
        policy=policy if policy is not None else FaultPolicy(),
        progress=progress)
    _METRICS.counter("ndt.stream.shards_cached").inc(report.hits)
    _METRICS.counter("ndt.stream.shards_computed").inc(report.computed)
    if report.failed:
        names = ", ".join(o.label for o in report.failed[:5])
        raise AnalysisError(
            f"{len(report.failed)} shard(s) failed ({names}...); "
            "re-run to retry, or resume=True to skip quarantined "
            "shards explicitly")
    result = merge_partials(report.results)
    store.put(run_key, result, kind="fig2-stream",
              label=f"fig2 streamed n={n_flows} chunk={chunk_size}")
    return result
