"""Unit tests for the packet model."""

from repro.sim.packet import Packet, PacketKind, make_ack, make_data
from repro.units import ACK_SIZE


def test_data_packet_payload():
    p = make_data("f1", seq=1000, payload=1448)
    assert p.kind is PacketKind.DATA
    assert p.seq == 1000
    assert p.end_seq == 2448
    assert p.payload == 1448
    assert p.size == 1500


def test_ack_packet_has_zero_payload():
    p = make_ack("f1", ack=5000)
    assert p.kind is PacketKind.ACK
    assert p.ack == 5000
    assert p.payload == 0
    assert p.size == ACK_SIZE


def test_packet_ids_are_unique():
    a = make_data("f1", seq=0, payload=100)
    b = make_data("f1", seq=0, payload=100)
    assert a.packet_id != b.packet_id


def test_user_id_defaults_to_flow_id():
    p = make_data("flow-7", seq=0, payload=10)
    assert p.user_id == "flow-7"


def test_user_id_override():
    p = make_data("flow-7", seq=0, payload=10, user_id="alice")
    assert p.user_id == "alice"


def test_explicit_wire_size():
    p = make_data("f", seq=0, payload=100, size=1500)
    assert p.size == 1500
    assert p.payload == 100


def test_ecn_flags_default_off():
    p = make_data("f", seq=0, payload=100)
    assert not p.ecn_capable
    assert not p.ecn_marked


def test_repr_mentions_flow(capsys):
    p = make_data("myflow", seq=0, payload=10)
    assert "myflow" in repr(p)
