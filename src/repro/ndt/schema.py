"""M-Lab NDT record schema.

M-Lab's NDT (network diagnostic test) archives one row per measurement
with periodic Linux ``TCPInfo`` snapshots.  The paper's §3.1 queries a
month of these rows and keys on a handful of fields; we model exactly
those, reusing :class:`repro.tcp.tcp_info.TcpInfoSnapshot` as the
snapshot type so records collected from our simulator and records
synthesized by :mod:`repro.ndt.synth` are interchangeable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..errors import AnalysisError
from ..tcp.tcp_info import TcpInfoSnapshot

#: Client access technologies; "cellular" is what §3.1 tries to infer
#: and exclude.
ACCESS_TYPES = ("fiber", "cable", "dsl", "wifi", "cellular", "satellite")


@dataclass(frozen=True)
class NdtRecord:
    """One NDT measurement (one flow).

    Attributes:
        uuid: measurement identifier.
        duration_s: test duration.
        access_type: client access technology (M-Lab infers this from
            the client network; we carry it as metadata).
        access_rate_bps: provisioned access rate (ground truth in
            synthetic data; unknown, 0, in collected data).
        snapshots: TCPInfo snapshot stream, in time order.
        true_class: hidden ground-truth behaviour label (synthetic data
            only, for validating the pipeline; empty otherwise).
        true_contention: ground truth: did another flow's CCA actually
            contend with this one (synthetic only).
        cca: server-side congestion-control algorithm ("cubic", "bbr",
            ...; M-Lab logs this in the TCPInfo row).  Empty when
            unknown, e.g. records collected before the field existed.
    """

    uuid: str
    duration_s: float
    access_type: str
    access_rate_bps: float
    snapshots: tuple[TcpInfoSnapshot, ...]
    true_class: str = ""
    true_contention: bool = False
    cca: str = ""

    def __post_init__(self):
        if self.access_type not in ACCESS_TYPES:
            raise AnalysisError(
                f"unknown access type {self.access_type!r}")
        if len(self.snapshots) < 2:
            raise AnalysisError("a record needs at least two snapshots")

    # -- §3.1 observable fields -------------------------------------------

    @property
    def final(self) -> TcpInfoSnapshot:
        return self.snapshots[-1]

    @property
    def app_limited_us(self) -> float:
        """The AppLimited field §3.1 filters on (> 0 means limited)."""
        return self.final.app_limited_us

    @property
    def rwnd_limited_us(self) -> float:
        """The RWndLimited field §3.1 filters on."""
        return self.final.rwnd_limited_us

    @property
    def mean_throughput_bps(self) -> float:
        elapsed = self.final.elapsed_time_us / 1e6
        if elapsed <= 0:
            return 0.0
        return self.final.bytes_acked / elapsed

    def throughput_series(self) -> np.ndarray:
        """Per-interval throughput (bytes/second) between snapshots."""
        acked = np.array([s.bytes_acked for s in self.snapshots],
                         dtype=float)
        times = np.array([s.elapsed_time_us for s in self.snapshots],
                         dtype=float) / 1e6
        dt = np.diff(times)
        if np.any(dt <= 0):
            raise AnalysisError(f"{self.uuid}: snapshots not increasing")
        return np.diff(acked) / dt

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        payload = asdict(self)
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "NdtRecord":
        payload = json.loads(text)
        snapshots = tuple(TcpInfoSnapshot(**s)
                          for s in payload.pop("snapshots"))
        return cls(snapshots=snapshots, **payload)


@dataclass
class NdtDataset:
    """A collection of NDT records plus provenance."""

    records: list[NdtRecord] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.records)

    def save_jsonl(self, path) -> None:
        with open(path, "w") as f:
            for record in self.records:
                f.write(record.to_json() + "\n")

    @classmethod
    def load_jsonl(cls, path, description: str = "") -> "NdtDataset":
        records = []
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    records.append(NdtRecord.from_json(line))
        return cls(records=records, description=description)
