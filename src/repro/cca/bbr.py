"""BBR (v1-style) congestion control.

A model of Google's BBRv1 state machine faithful to the published
design: STARTUP's 2.89x pacing gain until bandwidth plateaus, DRAIN
back to one BDP, the 8-phase PROBE_BW pacing-gain cycle
[1.25, 0.75, 1 x 6], and periodic PROBE_RTT floors.  Bandwidth is the
windowed max of delivery-rate samples (app-limited samples excluded);
RTprop is the windowed min RTT.

This is the CCA shown by Ware et al. (IMC '19) -- cited in the paper's
introduction -- to take more than its fair share against loss-based
CCAs in deep buffers; experiment E6 reproduces that shape, and it
serves as elastic-but-not-loss-based cross traffic in Figure 3.
"""

from __future__ import annotations

from ..obs.bus import EventKind
from ..units import DEFAULT_MSS
from .base import AckSample, CongestionControl
from .filters import WindowedExtremum

STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
PROBE_RTT_INTERVAL = 10.0     # seconds between PROBE_RTT visits
PROBE_RTT_DURATION = 0.2      # seconds spent at the cwnd floor
BW_WINDOW_ROUNDS = 10         # bandwidth filter window, in round trips
CWND_GAIN = 2.0
MIN_CWND_PACKETS = 4.0


class BbrCca(CongestionControl):
    """BBRv1-style model-based congestion control."""

    name = "bbr"

    def __init__(self, mss: int = DEFAULT_MSS, initial_cwnd: float = 10.0,
                 initial_rate: float = 1_000_000.0):
        super().__init__(mss=mss)
        self._state = "STARTUP"
        self._cwnd = float(initial_cwnd)
        self._pacing_rate = float(initial_rate)
        self._bw_filter = WindowedExtremum(BW_WINDOW_ROUNDS, mode="max")
        self._rtprop: float | None = None
        self._rtprop_stamp = 0.0
        self._round_count = 0
        self._round_end_delivered = 0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._probe_rtt_done_stamp: float | None = None
        self._prior_cwnd = 0.0

    # -- knobs ---------------------------------------------------------------

    @property
    def cwnd(self) -> float:
        return self._cwnd

    @property
    def pacing_rate(self) -> float:
        return self._pacing_rate

    @property
    def state(self) -> str:
        return self._state

    @property
    def bandwidth(self) -> float:
        """Current bottleneck-bandwidth estimate (bytes/second)."""
        return self._bw_filter.value or 0.0

    def _bdp_packets(self, gain: float = 1.0) -> float:
        bw = self.bandwidth
        if bw <= 0 or self._rtprop is None:
            return self._cwnd
        return gain * bw * self._rtprop / self.mss

    # -- event handling --------------------------------------------------------

    def on_ack(self, sample: AckSample) -> None:
        now = sample.now
        state_before = self._state
        self._update_round(sample)
        if (sample.delivery_rate is not None
                and (not sample.delivery_rate_app_limited
                     or sample.delivery_rate > self.bandwidth)):
            self._bw_filter.update(self._round_count, sample.delivery_rate)
        if sample.rtt is not None:
            if (self._rtprop is None or sample.rtt <= self._rtprop
                    or now - self._rtprop_stamp > PROBE_RTT_INTERVAL):
                self._rtprop = sample.rtt
                self._rtprop_stamp = now

        if self._state == "STARTUP":
            self._check_full_pipe()
            if self._state == "STARTUP":
                self._apply_gains(STARTUP_GAIN, STARTUP_GAIN)
        if self._state == "DRAIN":
            self._apply_gains(DRAIN_GAIN, STARTUP_GAIN)
            if sample.inflight_bytes <= self._bdp_packets() * self.mss:
                self._enter_probe_bw(now)
        if self._state == "PROBE_BW":
            self._advance_cycle(now, sample)
            gain = PROBE_BW_GAINS[self._cycle_index]
            self._apply_gains(gain, CWND_GAIN)
        if self._state == "PROBE_RTT":
            self._handle_probe_rtt(now, sample)
        self._maybe_enter_probe_rtt(now)
        if self._state != state_before:
            self._trace(now, EventKind.MODE, meta={
                "from": state_before, "to": self._state})

    def _update_round(self, sample: AckSample) -> None:
        if sample.delivered_total >= self._round_end_delivered:
            self._round_count += 1
            self._round_end_delivered = (
                sample.delivered_total + sample.inflight_bytes)

    def _check_full_pipe(self) -> None:
        bw = self.bandwidth
        if bw > self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_rounds = 0
            return
        self._full_bw_rounds += 1
        if self._full_bw_rounds >= 3:
            self._state = "DRAIN"

    def _enter_probe_bw(self, now: float) -> None:
        self._state = "PROBE_BW"
        self._cycle_index = 1  # start at the 0.75 phase after DRAIN
        self._cycle_stamp = now

    def _advance_cycle(self, now: float, sample: AckSample) -> None:
        rtprop = self._rtprop if self._rtprop is not None else 0.1
        gain = PROBE_BW_GAINS[self._cycle_index]
        elapsed = now - self._cycle_stamp
        advance = elapsed > rtprop
        if gain == 0.75:
            # Leave the drain phase as soon as the queue is drained.
            advance = advance or (
                sample.inflight_bytes <= self._bdp_packets() * self.mss)
        if advance:
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
            self._cycle_stamp = now

    def _maybe_enter_probe_rtt(self, now: float) -> None:
        if self._state in ("PROBE_RTT", "STARTUP", "DRAIN"):
            return
        if self._rtprop is None:
            return
        if now - self._rtprop_stamp > PROBE_RTT_INTERVAL:
            self._state = "PROBE_RTT"
            self._prior_cwnd = self._cwnd
            self._cwnd = MIN_CWND_PACKETS
            self._probe_rtt_done_stamp = None

    def _handle_probe_rtt(self, now: float, sample: AckSample) -> None:
        self._cwnd = MIN_CWND_PACKETS
        if self._probe_rtt_done_stamp is None:
            if sample.inflight_bytes <= MIN_CWND_PACKETS * self.mss:
                self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION
        elif now >= self._probe_rtt_done_stamp:
            self._rtprop_stamp = now
            self._cwnd = max(self._prior_cwnd, MIN_CWND_PACKETS)
            self._enter_probe_bw(now)

    def _apply_gains(self, pacing_gain: float, cwnd_gain: float) -> None:
        bw = self.bandwidth
        if bw <= 0 or self._rtprop is None:
            return
        self._pacing_rate = pacing_gain * bw
        if self._state != "PROBE_RTT":
            self._cwnd = max(self._bdp_packets(cwnd_gain), MIN_CWND_PACKETS)

    # BBR ignores individual losses (no multiplicative decrease); an RTO
    # still resets conservatively, as Linux BBR does.
    def on_rto(self, now: float) -> None:
        self._cwnd = MIN_CWND_PACKETS
