"""Public API surface checks.

Every name in each package's ``__all__`` must resolve, and the
package-level quicklook convenience must work (it is the README's
first code sample, minus the simulation time).
"""

import importlib

import pytest

PACKAGES = [
    "repro", "repro.sim", "repro.qdisc", "repro.tcp", "repro.cca",
    "repro.core", "repro.traffic", "repro.ndt", "repro.analysis",
    "repro.alloc", "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert getattr(module, name, None) is not None, \
            f"{package}.{name} in __all__ but not importable"


@pytest.mark.parametrize("package", PACKAGES)
def test_packages_have_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_quicklook_facade_runs_short():
    from repro import quicklook_elasticity
    result = quicklook_elasticity(cross_traffic="none", duration=12.0)
    assert result.cross_traffic == "none"
    assert result.probe_throughput_mbps > 20.0
    assert result.verdict is False


def test_lazy_core_exports():
    import repro.core as core
    assert core.ElasticityProbe.__name__ == "ElasticityProbe"
    assert core.Campaign.__name__ == "Campaign"
    with pytest.raises(AttributeError):
        core.does_not_exist
