"""Time-series latency probes (TSLP).

The paper's §4 discusses Dhamdhere et al.'s TSLP technique (SIGCOMM
'18): send periodic small latency probes across a link and flag
sustained queueing-delay inflation as congestion.  The paper's point:
TSLP "cannot discriminate between cases where individual flows contend
for bandwidth and cases where aggregates consisting of shorter and
application-limited flows overwhelm a given link" -- both inflate
delay.  Experiment E9 demonstrates exactly that, side by side with the
elasticity probe, which *can* discriminate.

Implementation: a :class:`TslpProber` injects tiny probe packets on the
forward path; a responder at the destination bounces a reply over the
(uncongested) reverse path, echoing the send timestamp, so each probe
yields one RTT sample dominated by forward queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, ConfigError
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..sim.packet import Packet, PacketKind, make_ack


class TslpProber:
    """Periodic latency prober over a path.

    Args:
        sim: the simulator.
        path: the path whose bottleneck queueing is being watched.
        interval: probe spacing (seconds); TSLP uses sparse probes so
            the measurement itself adds negligible load.
        probe_size: probe packet size (bytes).
    """

    def __init__(self, sim: Simulator, path: PathHandles,
                 flow_id: str = "tslp", interval: float = 0.1,
                 probe_size: int = 64):
        if interval <= 0:
            raise ConfigError(f"interval must be positive: {interval}")
        self.sim = sim
        self.path = path
        self.flow_id = flow_id
        self.interval = interval
        self.probe_size = probe_size
        self.times: list[float] = []
        self.rtts: list[float] = []
        self._running = False
        self._seq = 0
        path.dst_host.attach(flow_id, self._bounce)
        path.src_host.attach(flow_id, self._on_reply)

    def start(self) -> None:
        self._running = True
        self._send_probe()

    def stop(self) -> None:
        self._running = False

    def _send_probe(self) -> None:
        if not self._running:
            return
        probe = Packet(self.flow_id, PacketKind.DATA,
                       size=self.probe_size, seq=self._seq,
                       end_seq=self._seq + 1)
        probe.sent_time = self.sim.now
        self._seq += 1
        self.path.entry.send(probe)
        self.sim.schedule(self.interval, self._send_probe)

    def _bounce(self, packet: Packet) -> None:
        reply = make_ack(self.flow_id, ack=packet.end_seq)
        reply.ack_of_sent_time = packet.sent_time
        self.path.reverse_entry.send(reply)

    def _on_reply(self, packet: Packet) -> None:
        if packet.ack_of_sent_time is None:
            return
        self.times.append(self.sim.now)
        self.rtts.append(self.sim.now - packet.ack_of_sent_time)

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.rtts)


@dataclass(frozen=True)
class CongestionEpisodes:
    """TSLP analysis result.

    Attributes:
        baseline_rtt: the uncongested floor (low quantile of samples).
        congested_fraction: fraction of samples with inflated delay.
        episodes: (start, end) times of sustained inflation.
    """

    baseline_rtt: float
    congested_fraction: float
    episodes: tuple[tuple[float, float], ...]

    @property
    def congested(self) -> bool:
        """TSLP's verdict: was the link congested a meaningful
        fraction of the time?"""
        return self.congested_fraction > 0.1


def detect_congestion_episodes(times, rtts,
                               baseline_quantile: float = 0.1,
                               inflation_threshold: float = 0.005,
                               min_episode: float = 1.0
                               ) -> CongestionEpisodes:
    """Dhamdhere-style analysis: flag periods of inflated queueing delay.

    Args:
        baseline_quantile: quantile of the RTT samples taken as the
            uncongested floor.
        inflation_threshold: seconds above baseline that counts as
            congested.
        min_episode: minimum sustained duration for an episode.
    """
    t = np.asarray(times, dtype=float)
    r = np.asarray(rtts, dtype=float)
    if len(t) != len(r) or len(t) < 5:
        raise AnalysisError("need at least five aligned samples")
    baseline = float(np.quantile(r, baseline_quantile))
    inflated = r > baseline + inflation_threshold

    episodes: list[tuple[float, float]] = []
    start: float | None = None
    for time, bad in zip(t, inflated):
        if bad and start is None:
            start = float(time)
        elif not bad and start is not None:
            if time - start >= min_episode:
                episodes.append((start, float(time)))
            start = None
    if start is not None and t[-1] - start >= min_episode:
        episodes.append((start, float(t[-1])))

    return CongestionEpisodes(
        baseline_rtt=baseline,
        congested_fraction=float(np.mean(inflated)),
        episodes=tuple(episodes),
    )
