"""Deficit round-robin fair queueing (per-flow or per-user).

This is the mechanism the paper's §2.1 argues would "entirely eliminate
the role of CCA dynamics in determining bandwidth allocations": each
flow (or user) gets its own sub-queue served in deficit round-robin
order, which enforces (approximate) max-min fairness regardless of how
aggressive each flow's CCA is.

On overflow the packet at the tail of the *longest* sub-queue is dropped
(as in fq_codel), so a flow cannot hurt others by overfilling.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Optional

from ..errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.packet import Packet
from .base import Qdisc


def by_flow(packet: Packet) -> str:
    """Classify packets per flow (the default)."""
    return packet.flow_id


def by_user(packet: Packet) -> str:
    """Classify packets per user, modelling per-subscriber isolation."""
    return packet.user_id


class _SubQueue:
    __slots__ = ("packets", "bytes", "deficit")

    def __init__(self):
        self.packets: deque[Packet] = deque()
        self.bytes = 0
        self.deficit = 0.0


class DrrFairQueue(Qdisc):
    """Deficit round-robin scheduler over dynamically created sub-queues.

    Args:
        limit_packets: total packet budget across all sub-queues.
        quantum: bytes added to a sub-queue's deficit per round; one MTU
            gives byte-accurate fairness for MTU-sized packets.
        classify: maps a packet to its sub-queue key (flow or user).
    """

    def __init__(self, limit_packets: int = 1000, quantum: int = 1514,
                 classify: Callable[[Packet], str] = by_flow):
        super().__init__()
        if limit_packets <= 0 or quantum <= 0:
            raise ConfigError("limit_packets and quantum must be positive")
        self.limit_packets = limit_packets
        self.quantum = quantum
        self.classify = classify
        self._subqueues: "OrderedDict[str, _SubQueue]" = OrderedDict()
        self._active: deque[str] = deque()
        self._total_packets = 0
        self._total_bytes = 0

    def _drop_from_longest(self, now: float) -> None:
        longest_key = max(self._subqueues,
                          key=lambda k: self._subqueues[k].bytes)
        sub = self._subqueues[longest_key]
        victim = sub.packets.pop()
        sub.bytes -= victim.size
        self._total_packets -= 1
        self._total_bytes -= victim.size
        self._record_drop(victim, now, enqueued=True)
        if not sub.packets:
            self._deactivate(longest_key)

    def _deactivate(self, key: str) -> None:
        try:
            self._active.remove(key)
        except ValueError:
            pass
        del self._subqueues[key]

    def enqueue(self, packet: Packet, now: float) -> bool:
        key = self.classify(packet)
        sub = self._subqueues.get(key)
        if sub is None:
            sub = _SubQueue()
            self._subqueues[key] = sub
            sub.deficit = 0.0
        if not sub.packets:
            if key in self._active:
                self._active.remove(key)
            self._active.append(key)
        packet.enqueue_time = now
        sub.packets.append(packet)
        sub.bytes += packet.size
        self._total_packets += 1
        self._total_bytes += packet.size
        self._record_enqueue(packet, now)
        dropped_self = False
        while self._total_packets > self.limit_packets:
            longest_key = max(self._subqueues,
                              key=lambda k: self._subqueues[k].bytes)
            if longest_key == key and self._subqueues[key].packets[-1] is packet:
                dropped_self = True
            self._drop_from_longest(now)
        return not dropped_self

    def dequeue(self, now: float) -> Optional[Packet]:
        while self._active:
            key = self._active[0]
            sub = self._subqueues.get(key)
            if sub is None or not sub.packets:
                self._active.popleft()
                if sub is not None:
                    del self._subqueues[key]
                continue
            head = sub.packets[0]
            if sub.deficit < head.size:
                sub.deficit += self.quantum
                self._active.rotate(-1)
                continue
            sub.packets.popleft()
            sub.bytes -= head.size
            sub.deficit -= head.size
            self._total_packets -= 1
            self._total_bytes -= head.size
            if not sub.packets:
                sub.deficit = 0.0
                self._active.popleft()
                del self._subqueues[key]
            self._record_dequeue(head, now)
            return head
        return None

    def __len__(self) -> int:
        return self._total_packets

    @property
    def byte_length(self) -> int:
        return self._total_bytes

    @property
    def active_queues(self) -> int:
        """Number of sub-queues with packets waiting."""
        return len(self._subqueues)
