"""Integration tests: AQM disciplines under real transport load."""

import pytest

from repro.cca import CubicCca, RenoCca
from repro.qdisc import CoDelQueue, DropTailQueue, RedQueue
from repro.sim import QueueMonitor, Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms, to_mbps


def run_bulk(qdisc, duration=15.0, rate=10.0, rtt=40.0, ecn=False):
    sim = Simulator()
    path = dumbbell(sim, mbps(rate), ms(rtt), qdisc=qdisc)
    monitor = QueueMonitor(sim, path.bottleneck.qdisc, interval=0.05)
    monitor.start()
    conn = Connection(sim, path, "f", CubicCca(), ecn=ecn)
    conn.sender.set_infinite_backlog()
    sim.run(until=duration)
    goodput = to_mbps(conn.receiver.received_bytes / duration)
    return goodput, monitor.occupancy_stats(), conn


def test_codel_keeps_queue_short_at_similar_goodput():
    deep = DropTailQueue(limit_packets=300)
    goodput_tail, stats_tail, _ = run_bulk(deep)
    codel = CoDelQueue(limit_packets=300)
    goodput_codel, stats_codel, _ = run_bulk(codel)
    assert goodput_codel > goodput_tail * 0.85
    assert stats_codel["p95_packets"] < stats_tail["p95_packets"] * 0.6


def test_red_ecn_marks_instead_of_dropping():
    red = RedQueue(min_thresh=10, max_thresh=30, limit_packets=100,
                   ecn=True, seed=1)
    red.set_service_rate_hint(mbps(10))
    goodput, stats, conn = run_bulk(red, ecn=True)
    assert goodput > 8.0
    assert red.marks > 0
    assert conn.sender.tracker.retransmits < red.marks


def test_red_without_ecn_drops():
    red = RedQueue(min_thresh=10, max_thresh=30, limit_packets=100,
                   seed=2)
    red.set_service_rate_hint(mbps(10))
    goodput, stats, conn = run_bulk(red, ecn=False)
    assert goodput > 7.0
    assert red.drops > 0
    assert red.marks == 0


def test_aqm_fairness_two_flows():
    red = RedQueue(min_thresh=10, max_thresh=40, limit_packets=150,
                   seed=3)
    sim = Simulator()
    path = dumbbell(sim, mbps(20), ms(40), qdisc=red)
    a = Connection(sim, path, "a", RenoCca())
    b = Connection(sim, path, "b", RenoCca())
    a.sender.set_infinite_backlog()
    b.sender.set_infinite_backlog()
    sim.run(until=30.0)
    got = sorted([a.receiver.received_bytes, b.receiver.received_bytes])
    assert got[1] / got[0] < 2.5  # random early drops de-synchronize
