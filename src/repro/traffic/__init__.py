"""Workload generators: the traffic mixes of §2.2 and Figure 3."""

from .backlogged import BackloggedFlow
from .base import TrafficSource
from .cbr import CbrSource
from .gaming import CloudGamingStream
from .mix import (CROSS_TRAFFIC_IS_ELASTIC, CROSS_TRAFFIC_REGISTRY,
                  FIGURE3_PHASES, IdleSource, Phase, make_cross_traffic)
from .poisson import FlowRecord, PoissonShortFlows
from .video import DEFAULT_LADDER_MBPS, VideoStats, VideoStream
from .web import WebBrowsingUser

__all__ = [
    "TrafficSource", "BackloggedFlow", "VideoStream", "VideoStats",
    "DEFAULT_LADDER_MBPS", "PoissonShortFlows", "FlowRecord", "CbrSource",
    "CloudGamingStream", "WebBrowsingUser", "IdleSource", "Phase",
    "FIGURE3_PHASES", "CROSS_TRAFFIC_REGISTRY", "CROSS_TRAFFIC_IS_ELASTIC",
    "make_cross_traffic",
]
