#!/usr/bin/env python3
"""A miniature Figure 3: watch elasticity react to changing cross traffic.

Runs the paper's five cross-traffic phases (shortened to 20 s each) on
the 48 Mbit/s / 100 ms link and renders the elasticity time series as
an ASCII chart with phase markers -- contending phases (reno, bbr)
should stand clearly above the others.

Run:  python examples/elasticity_probe.py
"""

from repro import viz
from repro.experiments.fig3 import run
from repro.traffic import FIGURE3_PHASES, Phase


def main() -> None:
    print(__doc__)
    phases = tuple(Phase(p.name, 20.0) for p in FIGURE3_PHASES)
    result = run(phases=phases)
    print(result.text)
    print()
    means = [(f"elasticity_{p.name}", result.metrics[f"elasticity_{p.name}"])
             for p in phases]
    print(viz.bar_chart([name for name, _ in means],
                        [value for _, value in means],
                        title="Mean elasticity per phase"))


if __name__ == "__main__":
    main()
