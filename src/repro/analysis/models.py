"""Analytic TCP throughput models.

The testbed-analysis literature the paper surveys in §3.1 (e.g. Philip
et al., IMC '21, "Revisiting TCP Congestion Control Throughput Models")
evaluates CCAs against closed-form models.  We implement the two
classics and use them to validate the simulator's Reno implementation
(benchmark P4): a substrate whose Reno matches the Mathis model is
credible ground for the paper's contention experiments.

* :func:`mathis_throughput` -- the SQRT model (Mathis et al. 1997):
  ``T = (MSS / RTT) * C / sqrt(p)``.
* :func:`padhye_throughput` -- the PFTK model (Padhye et al. 1998),
  adding timeout effects and receiver-window clamping.
* :func:`reno_steady_state_loss_rate` -- the deterministic sawtooth
  inverse (what loss rate a link must impose for a window ``W``).
"""

from __future__ import annotations

import math

from ..errors import AnalysisError

#: Mathis constant for periodic loss with delayed-ack disabled.
MATHIS_C = math.sqrt(3.0 / 2.0)


def mathis_throughput(mss: int, rtt: float, loss_rate: float,
                      c: float = MATHIS_C) -> float:
    """Mathis SQRT model throughput in bytes/second.

    Valid for small loss rates where timeouts are negligible.
    """
    if mss <= 0 or rtt <= 0:
        raise AnalysisError("mss and rtt must be positive")
    if not 0 < loss_rate < 1:
        raise AnalysisError(f"loss_rate must be in (0, 1): {loss_rate}")
    return (mss / rtt) * c / math.sqrt(loss_rate)


def padhye_throughput(mss: int, rtt: float, loss_rate: float,
                      rto: float = 0.2,
                      rwnd_bytes: float = float("inf")) -> float:
    """PFTK full model throughput in bytes/second.

    T = min(Wmax/RTT,
            MSS / (RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p^2)))

    with b = 1 (no delayed acks in our receiver).
    """
    if mss <= 0 or rtt <= 0 or rto <= 0:
        raise AnalysisError("mss, rtt, and rto must be positive")
    if not 0 < loss_rate < 1:
        raise AnalysisError(f"loss_rate must be in (0, 1): {loss_rate}")
    b = 1.0
    p = loss_rate
    denom = (rtt * math.sqrt(2.0 * b * p / 3.0)
             + rto * min(1.0, 3.0 * math.sqrt(3.0 * b * p / 8.0))
             * p * (1.0 + 32.0 * p * p))
    model = mss / denom
    return min(rwnd_bytes / rtt, model)


def reno_steady_state_loss_rate(window_packets: float) -> float:
    """Loss rate implied by a deterministic Reno sawtooth peaking at
    ``window_packets``: one loss per 3/8 W^2 delivered packets."""
    if window_packets <= 0:
        raise AnalysisError("window must be positive")
    return 1.0 / (3.0 / 8.0 * window_packets ** 2)
