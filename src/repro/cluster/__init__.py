"""repro.cluster: federated work-sharing across ``repro serve`` nodes.

A coordinator shards campaign, sweep, and qa-search workloads over a
static list of serve nodes, steals work from stragglers, and merges
results back into the local content-addressed store -- where identical
fingerprints collapse, so replayed or duplicated work is free.

The pieces:

* :mod:`~repro.cluster.membership` -- node list parsing and liveness
  probing with exponential-backoff mark-down.
* :mod:`~repro.cluster.coordinator` -- sharding, rendezvous placement,
  bounded dispatch, work stealing, and the high-level entry points
  (:func:`run_clustered_campaign`, :func:`run_clustered_search`).
* :mod:`~repro.cluster.merge` -- pulling store objects and metrics
  snapshots back from nodes.
* :mod:`~repro.cluster.journal` -- the per-run manifest that makes an
  interrupted cluster run resumable.
"""

from .coordinator import (ClusterTask, Coordinator, TaskRecord,
                          cluster_evaluator, run_clustered_campaign,
                          run_clustered_fig2, run_clustered_search,
                          shard_indices, task_for)
from .journal import ClusterJournal, journal_dir, list_journals
from .membership import (DEFAULT_PORT, Membership, Node, parse_cluster)
from .merge import collect_metrics, pull_objects

__all__ = [
    "ClusterJournal",
    "ClusterTask",
    "Coordinator",
    "DEFAULT_PORT",
    "Membership",
    "Node",
    "TaskRecord",
    "cluster_evaluator",
    "collect_metrics",
    "journal_dir",
    "list_journals",
    "parse_cluster",
    "pull_objects",
    "run_clustered_campaign",
    "run_clustered_fig2",
    "run_clustered_search",
    "shard_indices",
    "task_for",
]
