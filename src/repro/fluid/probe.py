"""Fluid Nimbus probe: the paper's elasticity measurement, rate-based.

The control law, pulse shape, ẑ estimator, and spectral pipeline are
the same as :class:`repro.cca.nimbus.NimbusCca` -- this class re-uses
:class:`repro.core.elasticity.ElasticityEstimator` and
:class:`~repro.core.elasticity.PulseGenerator` directly so the
readings feed the identical FFT and the identical
:class:`repro.core.detector.ContentionDetector`.

The one structural difference is feedback latency.  In the packet
backend the probe sees its delivery rate one RTT after sending, so
Nimbus lags its send-rate window by srtt to phase-align S with R.  In
the fluid model feedback is instantaneous except for the queueing
delay the cohort FIFO imposes, so the send-rate lag here is the
(smoothed) queue delay.  With that alignment, ẑ = μ·S/R - S over a
busy cohort FIFO reads exactly the cross arrival rate at enqueue
time -- no echo of the probe's own pulse (DESIGN.md, "The fluid
backend").
"""

from __future__ import annotations

import math

from ..core.elasticity import (ElasticityEstimator, PulseGenerator,
                               cross_traffic_estimate)
from ..units import DEFAULT_MSS
from .flows import Feedback, FluidFlow

#: Mirrors NimbusCca's rate-smoothing window (seconds).
RATE_SMOOTHING = 0.06


class FluidProbe(FluidFlow):
    """Nimbus delay-mode probe as a fluid flow.

    Args:
        mu: bottleneck capacity (bytes/second) -- the capacity hint.
        base_rtt: two-way propagation delay (seconds).
        buffer_delay: bottleneck buffer depth in seconds (buffer bytes
            over the drain rate).  The packet probe learns this from
            its first loss and retargets its standing queue and pulse
            amplitude to fit; the fluid probe knows the topology and
            applies the same retargeting a priori (a documented
            deviation -- it only skips the pre-first-loss transient).
        pulse_freq / pulse_amplitude / warmup / min_rate_frac /
        sample_interval: as in :class:`repro.core.probe.ElasticityProbe`.
    """

    QUEUE_GAIN = 0.5
    GAIN_REFERENCE_DELAY = 0.05

    def __init__(self, mu: float, base_rtt: float, buffer_delay: float,
                 flow_id: str = "probe", pulse_freq: float = 5.0,
                 pulse_amplitude: float = 0.35, warmup: float = 6.0,
                 min_rate_frac: float = 0.25,
                 sample_interval: float = 0.01, mss: int = DEFAULT_MSS):
        super().__init__(flow_id, base_rtt)
        self.mu = mu
        self.warmup = warmup
        self.min_rate_frac = min_rate_frac
        self.sample_interval = sample_interval
        self.pulses = PulseGenerator(pulse_freq, pulse_amplitude)
        base_target = min(2.0 * pulse_amplitude / (math.pi * pulse_freq),
                          0.05)
        # NimbusCca._retarget: fit the standing queue and pulse swing
        # into the buffer so up-pulses do not graze the drop limit.
        self.delay_target = base_target
        if 0.4 * buffer_delay < base_target:
            self.delay_target = max(0.4 * buffer_delay, 0.004)
            max_amp = 0.25 * buffer_delay * math.pi * pulse_freq
            self.pulses.amplitude_frac = min(pulse_amplitude,
                                             max(max_amp, 0.02))
        self._amp_scale = self.pulses.amplitude_frac / pulse_amplitude
        self.estimator = ElasticityEstimator(
            pulse_freq=pulse_freq, sample_interval=sample_interval,
            window=max(5.0, 10.0 / pulse_freq), update_interval=0.5,
            band=(min(1.0, pulse_freq / 4.0), 12.0))
        self.estimator.scale = mu * self._amp_scale
        self._base_rate = min_rate_frac * mu
        self.rate = self._base_rate + self.pulses.offset(0.0, mu)
        self._z_smoothed = 0.0
        self._q_smoothed = 0.0
        self._send_hist: list[float] = []
        self._recv_hist: list[float] = []
        self._next_sample = sample_interval

    def _window_mean(self, hist: list[float], end: int, k: int) -> float:
        lo = max(0, end - k)
        if end <= lo:
            return 0.0
        return sum(hist[lo:end]) / (end - lo)

    def advance(self, now: float, dt: float, fb: Feedback) -> None:
        super().advance(now, dt, fb)
        self._send_hist.append(self.rate)
        self._recv_hist.append(fb.delivered_rate)
        self._q_smoothed += 0.1 * (fb.queue_delay - self._q_smoothed)

        if now + dt >= self._next_sample:
            self._next_sample += self.sample_interval
            n = len(self._send_hist)
            k = max(1, int(round(RATE_SMOOTHING / dt)))
            lag = int(round(self._q_smoothed / dt))
            send = self._window_mean(self._send_hist, n - lag, k)
            recv = self._window_mean(self._recv_hist, n, k)
            z = cross_traffic_estimate(self.mu, send, recv)
            z = min(z, 1.5 * self.mu)
            self._z_smoothed += 0.1 * (z - self._z_smoothed)
            self.estimator.add_sample(now + dt, z)

        # Delay-mode control law (NimbusCca._update_control).
        fair_share = max(0.0, self.mu - self._z_smoothed)
        queue_term = (self.QUEUE_GAIN * self.mu
                      * (self.delay_target - fb.queue_delay)
                      / self.GAIN_REFERENCE_DELAY)
        self._base_rate = min(max(fair_share + queue_term,
                                  self.min_rate_frac * self.mu),
                              1.2 * self.mu)
        self.rate = max(self._base_rate + self.pulses.offset(now + dt,
                                                             self.mu),
                        self.min_rate_frac * self.mu)

    @property
    def readings(self):
        return self.estimator.readings
