"""Queue and rate-limit unit tests (no server, no sockets)."""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.serve.limits import ClientRateLimiter, RateLimited, TokenBucket
from repro.serve.protocol import Job, JobRequest, JobState
from repro.serve.queue import (RETRY_AFTER_MAX, RETRY_AFTER_MIN, JobQueue,
                               QueueFull)


def _job(priority=5, tag="x"):
    req = JobRequest("pipeline", {"tag": tag}, priority=priority)
    return Job(request=req, key=req.fingerprint())


class TestJobQueue:
    def test_priority_order_fifo_within_priority(self):
        q = JobQueue(maxsize=10)
        first_low = _job(priority=7, tag="a")
        urgent = _job(priority=0, tag="b")
        second_low = _job(priority=7, tag="c")
        for job in (first_low, urgent, second_low):
            q.put_nowait(job)

        async def drain():
            return [await q.get() for _ in range(3)]

        got = asyncio.run(drain())
        assert got == [urgent, first_low, second_low]

    def test_queue_full(self):
        q = JobQueue(maxsize=2)
        q.put_nowait(_job(tag="a"))
        q.put_nowait(_job(tag="b"))
        with pytest.raises(QueueFull) as exc:
            q.put_nowait(_job(tag="c"))
        assert exc.value.depth == 2
        assert RETRY_AFTER_MIN <= exc.value.retry_after_s <= RETRY_AFTER_MAX

    def test_retry_after_tracks_observed_latency(self):
        q = JobQueue(maxsize=10, concurrency=1)
        for _ in range(20):
            q.observe_latency(60.0)  # EWMA converges toward 60s/job
        q.put_nowait(_job(tag="a"))
        q.put_nowait(_job(tag="b"))
        # ~3 jobs x ~60s each on one worker, clamped at the max
        assert q.retry_after() == RETRY_AFTER_MAX
        fast = JobQueue(maxsize=10, concurrency=4)
        for _ in range(20):
            fast.observe_latency(0.01)
        assert fast.retry_after() == RETRY_AFTER_MIN

    def test_get_skips_cancelled_jobs(self):
        q = JobQueue(maxsize=10)
        dead = _job(tag="dead")
        live = _job(tag="live")
        q.put_nowait(dead)
        q.put_nowait(live)
        dead.transition(JobState.CANCELLED, 0.0)

        async def one():
            return await q.get()

        assert asyncio.run(one()) is live

    def test_get_waits_for_put(self):
        q = JobQueue(maxsize=10)
        job = _job()

        async def scenario():
            getter = asyncio.ensure_future(q.get())
            await asyncio.sleep(0.01)
            assert not getter.done()
            q.put_nowait(job)
            return await asyncio.wait_for(getter, timeout=1.0)

        assert asyncio.run(scenario()) is job

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            JobQueue(maxsize=0)
        with pytest.raises(ConfigError):
            JobQueue(maxsize=1, concurrency=0)


class TestTokenBucket:
    def test_burst_then_paced(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert bucket.acquire(0.0) is None
        assert bucket.acquire(0.0) is None
        assert bucket.acquire(0.0) is None
        delay = bucket.acquire(0.0)
        assert delay == pytest.approx(0.5)  # 1 token / 2 per second
        # after the suggested wait, exactly one token is back
        assert bucket.acquire(delay) is None
        assert bucket.acquire(delay) is not None

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.acquire(0.0)
        bucket.acquire(0.0)
        # a long idle period refills to burst, not beyond
        assert bucket.acquire(100.0) is None
        assert bucket.acquire(100.0) is None
        assert bucket.acquire(100.0) is not None


class TestClientRateLimiter:
    def _limiter(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("clock", lambda: self.now)
        return ClientRateLimiter(**kwargs)

    def test_burst_exhaustion_raises_with_retry_after(self):
        limiter = self._limiter(rate=1.0, burst=2.0)
        limiter.check("alice")
        limiter.check("alice")
        with pytest.raises(RateLimited) as exc:
            limiter.check("alice")
        assert exc.value.retry_after_s == pytest.approx(1.0)
        # waiting the suggested delay makes the next admission pass
        self.now += exc.value.retry_after_s
        limiter.check("alice")

    def test_clients_are_independent(self):
        limiter = self._limiter(rate=1.0, burst=1.0)
        limiter.check("alice")
        limiter.check("bob")
        with pytest.raises(RateLimited):
            limiter.check("alice")

    def test_lru_bound(self):
        limiter = self._limiter(rate=1.0, burst=1.0, max_clients=2)
        limiter.check("a")
        limiter.check("b")
        limiter.check("c")  # evicts "a"
        assert len(limiter) == 2
        limiter.check("a")  # fresh bucket again: admission passes
        with pytest.raises(RateLimited):
            limiter.check("a")

    def test_disabled(self):
        limiter = self._limiter(rate=0.0)
        assert not limiter.enabled
        for _ in range(100):
            limiter.check("anyone")

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            ClientRateLimiter(rate=1.0, burst=0.5)
        with pytest.raises(ConfigError):
            ClientRateLimiter(max_clients=0)
