"""Benchmark E10: BwE-style central allocation eliminates contention.

Asserts the §2.1 claim: with a central allocator pacing hosts, measured
throughputs match policy (weighted max-min) almost exactly, where CCA
contention had produced an arbitrary split.
"""

from repro.experiments import bwe_isolation

from conftest import once


def test_bwe_isolation(benchmark, bench_scale):
    duration = 20.0 if bench_scale == "full" else 8.0
    result = once(benchmark, bwe_isolation.run, duration=duration)

    print()
    print(result.text)

    m = result.metrics
    # Policy says serving gets 2/3; BwE delivers it within 3 points.
    assert abs(m["serving_share_managed"] - 2.0 / 3.0) < 0.03
    # Enforcement is tight.
    assert m["max_enforcement_error"] < 0.10
    # The contended split differs from policy (CCA dynamics decided it).
    assert abs(m["serving_share_contended"] - 2.0 / 3.0) > 0.03
