"""The §3.1 passive-measurement pipeline (Figure 2).

Filter app-limited / receiver-limited / cellular flows, then search the
remaining flows' throughput snapshots for level shifts that *might*
indicate CCA contention.  Because our dataset carries ground truth, the
pipeline also reports how good this passive inference actually is --
the question the paper raises when it notes passive approaches "cannot
conclusively determine the presence (or absence) of CCA contention".
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from ..analysis.changepoint import throughput_level_shift
from ..errors import AnalysisError
from ..runtime import parallel_map
from ..analysis.stats import Cdf, CdfSketch, bootstrap_ci
from .filters import FlowCategory, categorize
from .schema import NdtDataset, NdtRecord


@dataclass(frozen=True)
class FlowAnalysis:
    """Pipeline outcome for one flow."""

    uuid: str
    category: FlowCategory
    num_level_shifts: int
    mean_throughput_bps: float
    inferred_contention: bool
    true_contention: bool
    true_class: str


@dataclass(frozen=True)
class QualityTally:
    """Commutative detector-quality counts against ground truth.

    Pure integers, so tallies from any sharding of a dataset merge to
    the same result in any order.
    """

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    lost_to_filters: int = 0

    @classmethod
    def of(cls, flows) -> "QualityTally":
        tp = fp = fn = lost = 0
        for f in flows:
            if f.category is FlowCategory.REMAINING:
                if f.inferred_contention:
                    if f.true_contention:
                        tp += 1
                    else:
                        fp += 1
                elif f.true_contention:
                    fn += 1
            elif f.true_contention:
                lost += 1
        return cls(true_positives=tp, false_positives=fp,
                   false_negatives=fn, lost_to_filters=lost)

    def merge(self, other: "QualityTally") -> "QualityTally":
        return QualityTally(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            false_negatives=self.false_negatives + other.false_negatives,
            lost_to_filters=self.lost_to_filters + other.lost_to_filters)


@dataclass(frozen=True)
class ShardRow:
    """Per-shard aggregate retained for cluster-bootstrap CIs.

    Category keys are stored as strings (enum values) so shard rows
    fingerprint canonically.
    """

    shard_id: str
    start: int
    count: int
    counts: tuple[tuple[str, int], ...]
    remaining_with_shifts: int
    quality: QualityTally


@dataclass
class Fig2Result:
    """Aggregate results backing Figure 2 -- a mergeable monoid.

    Both pipeline paths produce one: the materialized path
    (:func:`run_pipeline`) keeps every per-flow analysis, the streaming
    path (:func:`repro.ndt.stream.run_pipeline_streaming`) folds
    per-shard partials with :meth:`merge` and drops the flows.  All
    aggregate state (integer counts, :class:`QualityTally`,
    :class:`CdfSketch`) merges commutatively and associatively, so the
    folded aggregates are byte-identical to the materialized ones --
    :meth:`aggregate_fingerprint` is the equality oracle the test
    harness and benchmarks gate on.

    Attributes:
        total: number of flows analysed.
        counts: flows per §3.1 category.
        remaining_with_shifts: remaining flows showing >= 1 level shift.
        flows: per-flow analyses; empty when streamed out of core.
        quality: ground-truth detector tallies.
        sketches: per-category mean-throughput CDF sketches.
        shards: per-shard aggregate rows (population CIs, merge
            bookkeeping); a materialized run is one shard.
    """

    total: int
    counts: dict[FlowCategory, int]
    remaining_with_shifts: int
    flows: list[FlowAnalysis] = field(default_factory=list)
    quality: QualityTally | None = None
    sketches: dict[FlowCategory, CdfSketch] | None = None
    shards: tuple[ShardRow, ...] = ()

    def __post_init__(self):
        if self.quality is None:
            self.quality = QualityTally.of(self.flows)
        if self.sketches is None:
            self.sketches = _sketches_of(self.flows)
        if not self.shards and self.total:
            self.shards = (ShardRow(
                shard_id=f"shard-{0:09d}+{self.total}", start=0,
                count=self.total,
                counts=tuple(sorted((cat.value, n)
                                    for cat, n in self.counts.items())),
                remaining_with_shifts=self.remaining_with_shifts,
                quality=self.quality),)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_flows(cls, flows, shard_id: str | None = None,
                   start: int = 0,
                   keep_flows: bool = True) -> "Fig2Result":
        """Aggregate a list of per-flow analyses into one result.

        Args:
            flows: :class:`FlowAnalysis` items, in dataset order.
            shard_id: merge-identity of this partial (defaults to the
                ``shard-<start>+<count>`` convention).
            start: dataset position of the first flow.
            keep_flows: retain the per-flow list (materialized mode);
                streaming shards pass False to stay out of core.
        """
        flows = list(flows)
        if not flows:
            return cls.empty()
        counts: dict[FlowCategory, int] = {}
        for f in flows:
            counts[f.category] = counts.get(f.category, 0) + 1
        remaining_with_shifts = sum(
            1 for f in flows
            if f.category is FlowCategory.REMAINING
            and f.inferred_contention)
        quality = QualityTally.of(flows)
        shard = ShardRow(
            shard_id=(shard_id if shard_id is not None
                      else f"shard-{start:09d}+{len(flows)}"),
            start=start, count=len(flows),
            counts=tuple(sorted((cat.value, n)
                                for cat, n in counts.items())),
            remaining_with_shifts=remaining_with_shifts,
            quality=quality)
        return cls(total=len(flows), counts=counts,
                   remaining_with_shifts=remaining_with_shifts,
                   flows=flows if keep_flows else [],
                   quality=quality, sketches=_sketches_of(flows),
                   shards=(shard,))

    @classmethod
    def empty(cls) -> "Fig2Result":
        """The merge identity: zero flows, no shards."""
        return cls(total=0, counts={}, remaining_with_shifts=0,
                   quality=QualityTally(), sketches={}, shards=())

    def merge(self, other: "Fig2Result") -> "Fig2Result":
        """Combine two partials over disjoint shard sets.

        Idempotent: merging a result whose shards are already included
        returns self unchanged (and symmetrically), so replayed or
        duplicated shard deliveries are harmless.  Partially
        overlapping shard sets raise :class:`AnalysisError` -- sketches
        cannot subtract, so a partial overlap is unrecoverable
        double-counting.
        """
        mine = {s.shard_id for s in self.shards}
        theirs = {s.shard_id for s in other.shards}
        if theirs <= mine:
            return self
        if mine <= theirs:
            return other
        if mine & theirs:
            raise AnalysisError(
                "cannot merge partially overlapping shard sets: "
                f"{sorted(mine & theirs)} appear on both sides")
        counts = dict(self.counts)
        for cat, n in other.counts.items():
            counts[cat] = counts.get(cat, 0) + n
        sketches = dict(self.sketches)
        for cat, sketch in other.sketches.items():
            sketches[cat] = (sketches[cat].merge(sketch)
                             if cat in sketches else sketch)
        flows: list[FlowAnalysis] = []
        if (self.flows and other.flows
                and len(self.flows) == self.total
                and len(other.flows) == other.total):
            first, second = sorted(
                (self, other), key=lambda r: r.shards[0].start)
            flows = first.flows + second.flows
        return Fig2Result(
            total=self.total + other.total, counts=counts,
            remaining_with_shifts=(self.remaining_with_shifts
                                   + other.remaining_with_shifts),
            flows=flows, quality=self.quality.merge(other.quality),
            sketches=sketches,
            shards=tuple(sorted(self.shards + other.shards,
                                key=lambda s: (s.start, s.shard_id))))

    # -- headline fractions ---------------------------------------------------

    def fraction(self, category: FlowCategory) -> float:
        if not self.total:
            raise AnalysisError(
                "empty dataset: no flows to take a fraction of")
        return self.counts.get(category, 0) / self.total

    @property
    def fraction_filtered(self) -> float:
        """Flows removed by the §3.1 filters."""
        return 1.0 - self.fraction(FlowCategory.REMAINING)

    @property
    def fraction_possible_contention(self) -> float:
        """Flows that survive filtering AND show a level shift -- the
        paper's upper bound on passively-visible contention."""
        if not self.total:
            raise AnalysisError(
                "empty dataset: no flows to take a fraction of")
        return self.remaining_with_shifts / self.total

    def throughput_cdf(self, category: FlowCategory | None = None) -> Cdf:
        """Exact mean-throughput CDF (materialized results only)."""
        if len(self.flows) != self.total:
            raise AnalysisError(
                "per-flow analyses were streamed out of core; use "
                "throughput_sketch() for the mergeable summary")
        samples = [f.mean_throughput_bps for f in self.flows
                   if category is None or f.category is category]
        return Cdf.from_samples(samples)

    def throughput_sketch(self, category: FlowCategory | None = None
                          ) -> CdfSketch:
        """Mergeable mean-throughput CDF sketch (any result).

        ``None`` merges every category's sketch into the population
        sketch -- exact, because sketch merging just adds counts.
        """
        if category is not None:
            if category not in self.sketches:
                raise AnalysisError(
                    f"no flows in category {category.value!r}")
            return self.sketches[category]
        merged = CdfSketch()
        for sketch in self.sketches.values():
            merged = merged.merge(sketch)
        if merged.total == 0:
            raise AnalysisError("empty dataset: no throughput sketch")
        return merged

    # -- population confidence intervals --------------------------------------

    def fraction_ci(self, category: FlowCategory | None = None,
                    confidence: float = 0.95, n_resamples: int = 1000,
                    seed: int = 0) -> tuple[float, float, float]:
        """Cluster-bootstrap CI for a headline fraction.

        Resamples whole shards with replacement (shards are the
        independent units the streaming run retains), so it needs a
        result with >= 2 shards.  ``category=None`` gives the CI of
        :attr:`fraction_possible_contention`.

        Returns:
            (point_estimate, ci_low, ci_high).
        """
        if len(self.shards) < 2:
            raise AnalysisError(
                "population CIs need >= 2 shards: re-run streamed "
                f"with a smaller chunk size (have {len(self.shards)})")

        if category is None:
            hits = [float(s.remaining_with_shifts) for s in self.shards]
        else:
            hits = [float(dict(s.counts).get(category.value, 0))
                    for s in self.shards]
        sizes = [float(s.count) for s in self.shards]
        ratio = _ShardRatio(tuple(hits), tuple(sizes))
        return bootstrap_ci(range(len(self.shards)), statistic=ratio,
                            confidence=confidence,
                            n_resamples=n_resamples, seed=seed)

    # -- ground-truth validation (synthetic datasets only) ----------------------

    def detector_quality(self) -> dict[str, float]:
        """Precision/recall of "level shift => contention" on the
        remaining flows, measured against synthetic ground truth."""
        q = self.quality
        tp, fp, fn = (q.true_positives, q.false_positives,
                      q.false_negatives)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        return {
            "true_positives": float(tp),
            "false_positives": float(fp),
            "false_negatives": float(fn),
            "precision": precision,
            "recall": recall,
            "contending_flows_lost_to_filters": float(q.lost_to_filters),
        }

    def summary_rows(self) -> list[tuple[str, int, float]]:
        """(category, count, fraction) rows for the Figure 2 table."""
        rows = [(cat.value, self.counts.get(cat, 0), self.fraction(cat))
                for cat in FlowCategory]
        rows.append(("remaining_with_level_shift",
                     self.remaining_with_shifts,
                     self.fraction_possible_contention))
        return rows

    def aggregate_fingerprint(self) -> str:
        """Fingerprint of the order-free aggregates.

        Deliberately excludes the flow list and the shard bookkeeping:
        a streamed run (many shards, no flows) and a materialized run
        (one shard, all flows) over the same population hash equal.
        """
        from ..store import fingerprint
        return fingerprint({
            "total": self.total,
            "counts": {cat.value: n for cat, n in self.counts.items()},
            "remaining_with_shifts": self.remaining_with_shifts,
            "quality": self.quality,
            "sketches": {cat.value: sketch
                         for cat, sketch in self.sketches.items()},
        }, kind="fig2-aggregate")


class _ShardRatio:
    """Picklable ratio-of-sums statistic over resampled shard indices."""

    def __init__(self, hits: tuple[float, ...], sizes: tuple[float, ...]):
        self.hits = hits
        self.sizes = sizes

    def __call__(self, indices) -> float:
        idx = [int(i) for i in indices]
        denom = sum(self.sizes[i] for i in idx)
        if denom == 0:
            return 0.0
        return sum(self.hits[i] for i in idx) / denom


def _sketches_of(flows) -> dict[FlowCategory, CdfSketch]:
    samples: dict[FlowCategory, list[float]] = {}
    for f in flows:
        samples.setdefault(f.category, []).append(f.mean_throughput_bps)
    return {cat: CdfSketch().add_samples(vals)
            for cat, vals in samples.items()}


def analyse_flow(record: NdtRecord,
                 min_relative_shift: float = 0.25) -> FlowAnalysis:
    """Run the §3.1 analysis on one flow."""
    category = categorize(record)
    shifts = 0
    if category is FlowCategory.REMAINING:
        result = throughput_level_shift(
            record.throughput_series(),
            min_relative_shift=min_relative_shift)
        shifts = result.num_changes
    return FlowAnalysis(
        uuid=record.uuid,
        category=category,
        num_level_shifts=shifts,
        mean_throughput_bps=record.mean_throughput_bps,
        inferred_contention=shifts > 0,
        true_contention=record.true_contention,
        true_class=record.true_class,
    )


def dataset_fingerprint(dataset: NdtDataset,
                        min_relative_shift: float) -> str:
    """Store fingerprint of a whole pipeline run's config.

    Hashes every record incrementally (datasets run to tens of
    thousands of flows) plus the analysis parameters, so any change to
    the data or the threshold invalidates the cached result.
    """
    from ..store import fingerprint_stream
    return fingerprint_stream(
        [{"min_relative_shift": min_relative_shift}]
        + list(dataset.records), kind="fig2-pipeline")


_AUTO = object()


def run_pipeline(dataset: NdtDataset,
                 min_relative_shift: float = 0.25,
                 workers: int | None = None,
                 chunk_size: int | None = None,
                 progress=None, store=_AUTO) -> Fig2Result:
    """Run the full §3.1 pipeline over a dataset.

    Per-flow analysis (categorize + change-point detection) is
    independent across flows, so it is fanned out over worker
    processes; flow order and every result are bit-for-bit identical
    to the serial run for any ``workers`` value.

    Args:
        dataset: the flows to analyse.
        min_relative_shift: level-shift significance threshold.
        workers: worker processes; ``None`` defers to ``REPRO_WORKERS``
            then the CPU count; ``1`` forces serial.
        chunk_size: flows per dispatched task (default: automatic).
        progress: optional ``fn(done, total)`` completion callback.
        store: a :class:`repro.store.ArtifactStore` caching the whole
            :class:`Fig2Result` keyed by dataset content + parameters
            (per-flow tasks are too cheap to cache individually).
            Defaults to the ambient store
            (:func:`repro.store.active_store`); pass ``None`` to
            disable caching.
    """
    if store is _AUTO:
        from ..store import active_store
        store = active_store()
    key = None
    if store is not None:
        key = dataset_fingerprint(dataset, min_relative_shift)
        cached = store.get(key)
        if cached is not None:
            if progress is not None:
                progress(len(dataset.records), len(dataset.records))
            return cached
    job = functools.partial(analyse_flow,
                            min_relative_shift=min_relative_shift)
    flows = parallel_map(job, dataset.records, workers=workers,
                         chunk_size=chunk_size, progress=progress)
    result = Fig2Result.from_flows(flows)
    if store is not None and key is not None:
        store.put(key, result, kind="fig2",
                  label=f"fig2 n={len(flows)}")
    return result
