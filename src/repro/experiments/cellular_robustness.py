"""Experiment E11 (ablation): elasticity probing on variable-rate links.

§2.3 leaves low-bandwidth/variable links as "an open question", and
cellular capacity variation is the obvious confounder for the §3.2
technique: the available bandwidth moves on its own, so does a probe
mistake capacity variation for elastic cross traffic?

Setup: trace-driven (Mahimahi-style) cellular links with increasing
volatility, probed (a) idle and (b) with a backlogged Reno competitor.

Finding (this reproduction's answer to the open question): the
technique is reliable up to moderate volatility (sigma ~ 0.1 per
sqrt-second of log-rate random walk) and degrades beyond it in *both*
directions -- capacity variation leaks into ẑ through the stale
capacity estimate (false alarms on idle links), and the loss-immune
probe starves loss-based competitors on crash-prone links (missed
detections).  The experiment charts that boundary; the §2.3 caution is
warranted.
"""

from __future__ import annotations

from .. import viz
from ..cca.reno import RenoCca
from ..core.detector import ContentionDetector
from ..core.probe import ElasticityProbe
from ..sim.engine import Simulator
from ..sim.network import trace_dumbbell
from ..sim.trace import cellular_trace
from ..tcp.endpoint import Connection
from ..units import mbps, ms, to_mbps
from .runner import ExperimentResult, Stopwatch


def _run(volatility: float, contended: bool, mean_mbps: float,
         rtt_ms_val: float, duration: float, seed: int) -> dict:
    sim = Simulator()
    trace = cellular_trace(mean_mbps, duration_ms=20_000,
                           volatility=volatility, seed=seed)
    path = trace_dumbbell(sim, trace, ms(rtt_ms_val),
                          buffer_packets=400)
    probe = ElasticityProbe(sim, path, capacity_hint=mbps(mean_mbps))
    probe.start()
    if contended:
        rival = Connection(sim, path, "rival", RenoCca())
        rival.sender.set_infinite_backlog()
    sim.run(until=duration)
    report = probe.report()
    verdict = ContentionDetector().verdict(list(report.readings))
    return {
        "volatility": volatility,
        "contended": contended,
        "elasticity": round(verdict.mean_elasticity, 3),
        "verdict": verdict.contending,
        "probe_mbps": round(to_mbps(report.mean_throughput), 2),
    }


def run(volatilities: tuple = (0.0, 0.05, 0.1, 0.2, 0.3),
        mean_mbps: float = 48.0, rtt_ms_val: float = 80.0,
        duration: float = 40.0, seed: int = 0,
        reliable_below: float = 0.12) -> ExperimentResult:
    """Sweep link volatility, idle and contended.

    ``reliable_below`` splits the sweep into the regime where the
    technique is expected to work and the regime where its degradation
    is the documented finding.
    """
    with Stopwatch() as watch:
        rows = []
        for vol in volatilities:
            rows.append(_run(vol, False, mean_mbps, rtt_ms_val,
                             duration, seed))
            rows.append(_run(vol, True, mean_mbps, rtt_ms_val,
                             duration, seed))

    low = [r for r in rows if r["volatility"] <= reliable_below]
    high = [r for r in rows if r["volatility"] > reliable_below]

    def correctness(subset):
        if not subset:
            return 1.0
        right = sum(1 for r in subset if r["verdict"] == r["contended"])
        return right / len(subset)

    parts = [
        f"E11: elasticity probing on cellular-style variable links "
        f"(mean {mean_mbps:.0f} Mbit/s)",
        "",
        viz.table(
            [(r["volatility"], "yes" if r["contended"] else "no",
              r["elasticity"], "yes" if r["verdict"] else "no",
              r["probe_mbps"]) for r in rows],
            header=("volatility", "contended?", "elasticity",
                    "detector says", "probe Mbit/s")),
        "",
        f"verdict correctness, volatility <= {reliable_below}: "
        f"{correctness(low):.0%}",
        f"verdict correctness, volatility >  {reliable_below}: "
        f"{correctness(high):.0%}",
        "",
        "Finding: reliable at low-to-moderate volatility; beyond it the "
        "stale capacity estimate leaks link variation into ẑ (idle "
        "false alarms) and crash-prone links starve the loss-based "
        "competitor (missed detections) -- the §2.3 open question has "
        "a real boundary.",
    ]
    metrics = {
        "correctness_low_volatility": correctness(low),
        "correctness_high_volatility": correctness(high),
        "n_low": float(len(low)),
        "n_high": float(len(high)),
    }
    return ExperimentResult(
        experiment="cellular_robustness",
        text="\n".join(parts),
        metrics=metrics,
        tables={"sweep": rows},
        params={"volatilities": list(volatilities),
                "mean_mbps": mean_mbps, "duration": duration,
                "seed": seed},
        elapsed_s=watch.elapsed,
    )
