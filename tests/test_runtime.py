"""Tests for the parallel execution layer (`repro.runtime`).

Covers the pool mechanics (ordering, chunking, progress, fallbacks,
error propagation) and the determinism contract on the real workloads:
``Campaign.run`` and ``run_pipeline`` must produce bit-for-bit
identical results for any worker count and across repeated runs.
"""

import os
import pickle

import pytest

from repro.errors import ConfigError
from repro.runtime import (DEFAULT_WORKERS_ENV, ParallelExecutor,
                           derive_seed, parallel_map, resolve_workers)
from repro.runtime.pool import _IN_WORKER_ENV, _auto_chunk_size, _chunks


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom on {x}")


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_var_used(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_WORKERS_ENV, raising=False)
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_clamped_to_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, "lots")
        with pytest.raises(ConfigError):
            resolve_workers(None)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 0) == derive_seed(1, 0)

    def test_distinct_per_index_and_base(self):
        seeds = {derive_seed(base, i)
                 for base in range(3) for i in range(50)}
        assert len(seeds) == 150

    def test_in_numpy_seed_range(self):
        assert 0 <= derive_seed(12345, 999) < 2**63


class TestChunking:
    def test_auto_chunk_small_workloads_stay_fine_grained(self):
        assert _auto_chunk_size(48, 4) == 1

    def test_auto_chunk_large_workloads_amortize(self):
        assert _auto_chunk_size(10_000, 4) == 312

    def test_chunks_cover_items_in_order(self):
        items = list(range(10))
        chunks = _chunks(items, 3)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert [x for c in chunks for x in c] == items

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigError):
            ParallelExecutor(workers=2, chunk_size=0)


class TestParallelMapSerial:
    def test_results_in_order(self):
        assert parallel_map(square, range(8), workers=1) \
            == [x * x for x in range(8)]

    def test_empty_items(self):
        assert parallel_map(square, [], workers=1) == []

    def test_progress_reports_completions(self):
        seen = []
        parallel_map(square, range(3), workers=1,
                     progress=lambda done, n: seen.append((done, n)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_exception_propagates(self):
        with pytest.raises(ValueError, match="boom on 0"):
            parallel_map(boom, range(4), workers=1)


class TestParallelMapPool:
    def test_results_in_order(self):
        assert parallel_map(square, range(40), workers=2, chunk_size=3) \
            == [x * x for x in range(40)]

    def test_progress_counts_all_items(self):
        seen = []
        parallel_map(square, range(10), workers=2, chunk_size=4,
                     progress=lambda done, n: seen.append((done, n)))
        assert seen[-1] == (10, 10)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(boom, range(4), workers=2, chunk_size=1)

    def test_unpicklable_fn_falls_back_to_serial(self):
        calls = []

        def closure(x):  # not picklable: local function
            calls.append(x)
            return -x

        assert parallel_map(closure, [1, 2, 3], workers=2) == [-1, -2, -3]
        assert calls == [1, 2, 3]  # ran in this process

    def test_single_item_stays_serial(self):
        marker = []
        assert parallel_map(lambda x: marker.append(x) or x,
                            [9], workers=8) == [9]
        assert marker == [9]

    def test_nested_maps_degrade_to_serial(self, monkeypatch):
        monkeypatch.setenv(_IN_WORKER_ENV, "1")
        assert ParallelExecutor(workers=4).serial

    def test_executor_reusable_across_maps(self):
        with ParallelExecutor(workers=2, chunk_size=2) as ex:
            assert ex.map(square, range(6)) == [x * x for x in range(6)]
            assert ex.map(abs, [-1, -2]) == [1, 2]

    def test_executor_close_idempotent(self):
        ex = ParallelExecutor(workers=2)
        ex.map(square, range(4))
        ex.close()
        ex.close()


class TestWorkloadDeterminism:
    """Satellite: bit-for-bit identical results for workers=1 vs
    parallel and across repeated runs with the same seed."""

    def test_campaign_identical_across_worker_counts(self):
        from repro.core.campaign import Campaign

        def metrics(workers):
            result = Campaign(n_paths=3, seed=2,
                              duration=4.0).run(workers=workers)
            return result.results, result.detector_quality()

        serial_results, serial_quality = metrics(workers=1)
        again_results, again_quality = metrics(workers=1)
        parallel_results, parallel_quality = metrics(workers=4)
        assert serial_results == again_results      # repeatable
        assert serial_results == parallel_results   # worker-invariant
        assert serial_quality == again_quality == parallel_quality

    def test_pipeline_identical_across_worker_counts(self):
        from repro.ndt.pipeline import run_pipeline
        from repro.ndt.synth import SyntheticNdtGenerator

        dataset = SyntheticNdtGenerator(seed=11).generate(120)
        serial = run_pipeline(dataset, workers=1)
        again = run_pipeline(dataset, workers=1)
        parallel = run_pipeline(dataset, workers=4)
        assert serial.flows == again.flows
        assert serial.flows == parallel.flows
        assert serial.counts == parallel.counts
        assert serial.remaining_with_shifts \
            == parallel.remaining_with_shifts
        assert serial.detector_quality() == parallel.detector_quality()

    def test_sweep_parallel_matches_serial(self):
        from repro.experiments import fig2
        from repro.experiments.runner import sweep
        import functools

        def run_one(n_flows):
            return fig2.run(n_flows=n_flows, seed=3, workers=1)

        values = (40, 60)
        # Closure: exercised via serial fallback.
        serial_rows = sweep(values, run_one, label="n_flows", workers=1)
        # Picklable partial: exercised via the pool.
        pool_rows = sweep(
            values,
            functools.partial(fig2.run, seed=3, workers=1),
            label="n_flows", workers=2)
        assert serial_rows == pool_rows


class TestCampaignJobPicklability:
    """The campaign's worker payload must stay picklable, or the pool
    silently degrades to serial -- pin it."""

    def test_run_path_job_is_picklable(self):
        import functools
        from repro.core.campaign import run_path, sample_paths
        from repro.core.detector import ContentionDetector

        job = functools.partial(run_path, duration=5.0,
                                detector=ContentionDetector())
        assert pickle.loads(pickle.dumps(job))
        assert pickle.loads(pickle.dumps(sample_paths(2, seed=1)[0]))

    def test_ndt_record_is_picklable(self):
        from repro.ndt.synth import SyntheticNdtGenerator

        record = SyntheticNdtGenerator(seed=1).generate(1).records[0]
        assert pickle.loads(pickle.dumps(record)).uuid == record.uuid


class TestTaskDeadline:
    """SIGALRM deadlines only work on the POSIX main thread; anywhere
    else they must degrade to a no-op with a one-time warning instead
    of crashing the worker (the serve executor threads hit this)."""

    def test_enforced_on_main_thread(self):
        import time

        from repro.runtime.pool import TaskTimeout, _task_deadline

        with pytest.raises(TaskTimeout):
            with _task_deadline(0.05):
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    pass  # CPU-bound: only a signal can interrupt this

    def test_none_is_a_noop_anywhere(self):
        from repro.runtime.pool import _task_deadline

        with _task_deadline(None):
            pass

    def test_degrades_off_main_thread_with_one_warning(self, monkeypatch):
        import threading
        import warnings

        from repro.runtime import pool

        monkeypatch.setattr(pool, "_DEADLINE_WARNED", False)
        caught = []

        def body():
            with warnings.catch_warnings(record=True) as batch:
                warnings.simplefilter("always")
                with pool._task_deadline(0.01):
                    pass  # must not raise, must not alarm
                with pool._task_deadline(0.01):
                    pass  # second use: already warned, stays silent
            caught.extend(batch)

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=10)
        assert not thread.is_alive()
        warned = [w for w in caught
                  if issubclass(w.category, RuntimeWarning)]
        assert len(warned) == 1
        assert "cannot be enforced" in str(warned[0].message)
        assert pool._DEADLINE_WARNED
