#!/usr/bin/env python3
"""Why video traffic doesn't contend (§2.2).

The paper argues most bytes are adaptive video whose demand is bounded
by the bitrate ladder, so it yields rather than contends.  We race an
ABR video stream against a backlogged Cubic download on links of
decreasing capacity and watch the video's ABR ladder -- not CCA
dynamics -- set its share.

Run:  python examples/video_vs_bulk.py
"""

from repro import viz
from repro.cca import CubicCca
from repro.sim import Simulator, dumbbell
from repro.traffic import BackloggedFlow, VideoStream
from repro.units import mbps, ms, to_mbps

DURATION = 40.0


def race(link_mbps: float) -> dict:
    sim = Simulator()
    path = dumbbell(sim, mbps(link_mbps), ms(30), buffer_multiplier=2.0)
    video = VideoStream(sim, path, "video")
    bulk = BackloggedFlow(sim, path, "bulk", CubicCca())
    video.start()
    bulk.start()
    sim.run(until=DURATION)
    return {
        "link_mbps": link_mbps,
        "video_mbps": to_mbps(video.delivered_bytes / DURATION),
        "video_bitrate_mbps": video.stats.mean_bitrate * 8 / 1e6,
        "video_stalls": video.stats.stalls,
        "bulk_mbps": to_mbps(bulk.delivered_bytes / DURATION),
    }


def main() -> None:
    print(__doc__)
    rows = [race(cap) for cap in (100.0, 50.0, 25.0, 12.0)]
    print(viz.table(
        [(f"{r['link_mbps']:.0f}", f"{r['video_mbps']:.1f}",
          f"{r['video_bitrate_mbps']:.1f}", r["video_stalls"],
          f"{r['bulk_mbps']:.1f}") for r in rows],
        header=("link Mb/s", "video Mb/s", "chosen bitrate Mb/s",
                "stalls", "bulk Mb/s")))
    print()
    print("On fast links the video takes only what its top bitrate "
          "needs and the bulk flow absorbs the rest; the video's share "
          "is set by its application (ABR), not by Cubic-vs-Cubic "
          "contention.  Only on the slowest link do the two genuinely "
          "contend.")


if __name__ == "__main__":
    main()
