"""Wire-protocol unit tests: request validation, fingerprints, jobs."""

import pytest

from repro.errors import ConfigError
from repro.serve.protocol import Job, JobRequest, JobState


class TestJobRequestValidation:
    def test_minimal_request(self):
        req = JobRequest("pipeline")
        assert req.params == {}
        assert req.priority == 5
        assert req.client == "anonymous"

    @pytest.mark.parametrize("kind", ["", None, 3, ["campaign"]])
    def test_bad_kind(self, kind):
        with pytest.raises(ConfigError):
            JobRequest(kind)

    @pytest.mark.parametrize("priority", [-1, 10, 2.5, "5", True])
    def test_bad_priority(self, priority):
        with pytest.raises(ConfigError):
            JobRequest("pipeline", priority=priority)

    @pytest.mark.parametrize("client", ["", None, "x" * 121])
    def test_bad_client(self, client):
        with pytest.raises(ConfigError):
            JobRequest("pipeline", client=client)

    def test_params_must_be_mapping(self):
        with pytest.raises(ConfigError):
            JobRequest("pipeline", params=[("flows", 10)])

    def test_non_canonical_params_rejected_at_admission(self):
        with pytest.raises(Exception):
            JobRequest("pipeline", params={"flows": object()})


class TestFromDict:
    def test_round_trip(self):
        req = JobRequest("campaign", {"n_paths": 4}, priority=2,
                         client="ci")
        assert JobRequest.from_dict(req.to_dict()) == req

    def test_missing_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            JobRequest.from_dict({"params": {}})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError, match="bogus"):
            JobRequest.from_dict({"kind": "pipeline", "bogus": 1})

    def test_non_object_body(self):
        with pytest.raises(ConfigError):
            JobRequest.from_dict([1, 2, 3])


class TestFingerprint:
    def test_deterministic(self):
        a = JobRequest("pipeline", {"flows": 100, "seed": 1})
        b = JobRequest("pipeline", {"seed": 1, "flows": 100})
        assert a.fingerprint() == b.fingerprint()

    def test_kind_and_params_participate(self):
        base = JobRequest("pipeline", {"flows": 100})
        assert base.fingerprint() != \
            JobRequest("campaign", {"flows": 100}).fingerprint()
        assert base.fingerprint() != \
            JobRequest("pipeline", {"flows": 200}).fingerprint()

    def test_priority_and_client_excluded(self):
        a = JobRequest("pipeline", {"flows": 100}, priority=0,
                       client="alice")
        b = JobRequest("pipeline", {"flows": 100}, priority=9,
                       client="bob")
        assert a.fingerprint() == b.fingerprint()

    def test_workers_excluded(self):
        """The determinism contract makes results worker-count
        invariant, so ``workers`` must share one cache entry."""
        a = JobRequest("campaign", {"n_paths": 4, "workers": 1})
        b = JobRequest("campaign", {"n_paths": 4, "workers": 8})
        c = JobRequest("campaign", {"n_paths": 4})
        assert a.fingerprint() == b.fingerprint() == c.fingerprint()


class TestJob:
    def _job(self):
        req = JobRequest("pipeline", {"flows": 10})
        return Job(request=req, key=req.fingerprint(), created=100.0)

    def test_auto_id_is_unique(self):
        a, b = self._job(), self._job()
        assert a.id != b.id
        assert a.key[:8] in a.id

    def test_transition_stamps_and_versions(self):
        job = self._job()
        v0 = job.version
        job.transition(JobState.RUNNING, 101.0)
        assert job.started == 101.0 and not job.terminal
        job.transition(JobState.DONE, 105.0)
        assert job.finished == 105.0 and job.terminal
        assert job.version == v0 + 2
        # terminal stamps never move
        job.transition(JobState.DONE, 999.0)
        assert job.finished == 105.0

    def test_to_dict_summary_only_when_terminal(self):
        job = self._job()
        job.summary = {"total": 10}
        assert "summary" not in job.to_dict()
        job.transition(JobState.DONE, 1.0)
        assert job.to_dict()["summary"] == {"total": 10}

    def test_to_dict_error_fields(self):
        job = self._job()
        assert "error" not in job.to_dict()
        job.error, job.error_type = "boom", "RuntimeError"
        job.transition(JobState.FAILED, 1.0)
        doc = job.to_dict()
        assert doc["error"] == "boom"
        assert doc["error_type"] == "RuntimeError"
        assert doc["state"] == "failed"
