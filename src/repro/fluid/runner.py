"""Adapters: run scenarios and campaign paths on the fluid backend.

These functions mirror :func:`repro.qa.scenario.run_scenario` and
:func:`repro.core.campaign.run_path` -- same inputs, same result
types -- so everything downstream (detectors, campaigns, the store,
the HTTP service, the QA oracles) is backend-agnostic.
"""

from __future__ import annotations

from ..core.detector import ContentionDetector
from ..core.probe import ProbeReport
from ..errors import ConfigError
from ..medium.config import parse_medium
from ..sim.network import default_buffer_packets
from ..units import DEFAULT_PACKET_SIZE, mbps, ms
from .flows import make_cross_traffic, make_flow_cca
from .model import FluidModel
from .probe import FluidProbe


def _probe_report(probe: FluidProbe, duration: float) -> ProbeReport:
    lo = probe.warmup
    readings = tuple(r for r in probe.readings if lo <= r.time < duration)
    if readings:
        values = [r.elasticity for r in readings]
        mean_e = sum(values) / len(values)
        peak_e = max(values)
    else:
        mean_e = 0.0
        peak_e = 0.0
    throughput = probe.delivered_bytes / max(duration, 1e-9)
    return ProbeReport(readings=readings, mean_elasticity=mean_e,
                       peak_elasticity=peak_e,
                       mean_throughput=throughput,
                       duration=duration - lo)


def run_scenario_fluid(scenario, check_invariants: bool = True):
    """Fluid counterpart of :func:`repro.qa.scenario.run_scenario`.

    ``check_invariants`` is accepted for interface parity; the fluid
    backend has no packet trace to audit, so ``violations`` is always
    empty (cross-backend checking is the agreement oracle's job).
    """
    from ..qa.scenario import ScenarioOutcome

    rate = mbps(scenario.rate_mbps)
    rtt = ms(scenario.rtt_ms)
    buffer_bytes = default_buffer_packets(
        rate, rtt, scenario.buffer_multiplier) * DEFAULT_PACKET_SIZE

    flows = []
    names = []
    probe = None
    ecn = False
    if scenario.family == "probe":
        probe = FluidProbe(rate, rtt, buffer_bytes / rate)
        flows.append(probe)
        names.append("probe")
    else:
        for i, spec in enumerate(scenario.flows):
            flows.append(make_flow_cca(
                spec.cca, f"flow-{i}", rtt, rate,
                rate_frac=spec.rate_frac, start=spec.start))
            names.append(f"flow-{i}")
            ecn = ecn or spec.ecn
    if scenario.family == "probe" or scenario.cross_traffic != "none":
        cross = make_cross_traffic(scenario.cross_traffic, "cross", rtt,
                                   seed=scenario.seed)
        if cross is not None:
            flows.append(cross)
            names.append("cross")

    if not flows:
        raise ConfigError(f"scenario has no flows: {scenario.label()}")
    model = FluidModel(flows, rate, buffer_bytes,
                       qdisc=scenario.qdisc, ecn=ecn,
                       jitter=scenario.timing_jitter,
                       jitter_seed=scenario.seed,
                       jitter_mask=[name != "cross" for name in names],
                       medium=parse_medium(getattr(scenario, "medium",
                                                   "queue")))
    model.run(scenario.duration)

    delivered = {name: int(round(flow.delivered_bytes))
                 for name, flow in zip(names, flows)}
    probe_summary = None
    if probe is not None:
        report = _probe_report(probe, scenario.duration)
        verdict = ContentionDetector().verdict(list(report.readings))
        probe_summary = {
            "mean_elasticity": verdict.mean_elasticity,
            "contending": verdict.contending,
            "category": verdict.category,
            "n_readings": verdict.n_readings,
        }
    return ScenarioOutcome(
        scenario=scenario,
        delivered=delivered,
        qdisc_stats=model.qdisc_stats(),
        events_processed=model.ticks,
        clock=model.now,
        violations=[],
        probe=probe_summary,
    )


def run_path_fluid(spec, duration: float = 30.0,
                   detector: ContentionDetector | None = None,
                   capacity_hint: bool = True):
    """Fluid counterpart of :func:`repro.core.campaign.run_path`.

    ``capacity_hint`` is accepted for interface parity: the fluid
    probe's control law always knows the drain rate (it is a model
    parameter, not a measurement), so the flag has no effect here.
    """
    from ..core.campaign import PathResult

    det = detector if detector is not None else ContentionDetector()
    rate = mbps(spec.rate_mbps)
    rtt = ms(spec.rtt_ms)
    buffer_bytes = default_buffer_packets(
        rate, rtt, spec.buffer_multiplier) * DEFAULT_PACKET_SIZE

    probe = FluidProbe(rate, rtt, buffer_bytes / rate)
    flows = [probe]
    cross = make_cross_traffic(spec.cross_traffic, "cross", rtt,
                               seed=spec.seed)
    if cross is not None:
        flows.append(cross)
    model = FluidModel(flows, rate, buffer_bytes, qdisc=spec.qdisc,
                       medium=parse_medium(getattr(spec, "medium",
                                                   "queue")))
    model.run(duration)

    report = _probe_report(probe, duration)
    verdict = det.verdict(list(report.readings))
    return PathResult(spec=spec, report=report, verdict=verdict)
