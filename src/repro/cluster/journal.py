"""The cluster-run manifest: resumable bookkeeping under
``store/cluster/``.

One JSON file per cluster run, keyed by the run's deterministic
fingerprint (a clustered campaign uses the campaign fingerprint, so
re-invoking the same ``repro run ... --cluster`` command after an
interruption finds its own manifest).  The journal records every
task's terminal state; on resume, tasks recorded ``done`` whose
artifacts are all present in the local store are skipped without
re-dispatch, and only unfinished fingerprints go back on the wire.

The artifact store remains the source of truth for *results* (content
addressing makes re-pulling idempotent); the journal only saves the
coordinator from re-asking nodes about work it already merged.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..store.artifacts import ArtifactStore
from ..store.atomic import atomic_write_json

JOURNAL_VERSION = 1


def journal_dir(store: ArtifactStore) -> Path:
    return store.root / "cluster"


class ClusterJournal:
    """Atomic per-run task ledger.

    Args:
        store: the coordinator's local artifact store (the journal
            lives under its root, next to the objects it refers to).
        run_key: deterministic identity of the cluster run.
    """

    def __init__(self, store: ArtifactStore, run_key: str):
        self.store = store
        self.run_key = run_key
        self.path = journal_dir(store) / f"{run_key}.json"
        self._doc = {
            "version": JOURNAL_VERSION,
            "run": run_key,
            "created": time.time(),
            "status": "running",
            "tasks": {},
        }

    # -- persistence -----------------------------------------------------

    def load(self) -> dict[str, dict]:
        """Read the prior manifest's task table ({} when absent or
        unreadable -- a torn journal only costs re-dispatch)."""
        try:
            with open(self.path) as f:
                doc = json.load(f)
            if doc.get("version") != JOURNAL_VERSION:
                raise ValueError("journal version mismatch")
            tasks = doc.get("tasks")
            if not isinstance(tasks, dict):
                raise ValueError("journal tasks table missing")
        except (OSError, ValueError):
            return {}
        self._doc = doc
        self._doc["status"] = "running"
        return {k: dict(v) for k, v in tasks.items()
                if isinstance(v, dict)}

    def _save(self) -> None:
        atomic_write_json(self.path, self._doc)

    # -- recording -------------------------------------------------------

    def record(self, key: str, status: str, node: str = "",
               error: str = "") -> None:
        """Record one task transition (terminal states persist)."""
        entry = {"status": status, "node": node,
                 "updated": time.time()}
        if error:
            entry["error"] = error
        self._doc["tasks"][key] = entry
        self._save()

    def finish(self, clean: bool) -> None:
        self._doc["status"] = "complete" if clean else "partial"
        self._doc["finished"] = time.time()
        self._save()

    # -- resume ----------------------------------------------------------

    def resumable_done(self, artifact_keys_by_task: dict[str, tuple]
                       ) -> set[str]:
        """Task keys safe to skip: journaled ``done`` AND every
        artifact they were responsible for is in the local store."""
        prior = self.load()
        done = set()
        for key, entry in prior.items():
            if entry.get("status") != "done":
                continue
            needed = artifact_keys_by_task.get(key)
            if needed is None:
                continue
            if all(k in self.store for k in (key, *needed)):
                done.add(key)
        return done


def list_journals(store: ArtifactStore) -> list[dict]:
    """Summaries of every cluster-run manifest under the store
    (``repro cluster status``)."""
    directory = journal_dir(store)
    if not directory.is_dir():
        return []
    rows = []
    for path in sorted(directory.glob("*.json")):
        try:
            with open(path) as f:
                doc = json.load(f)
            tasks = doc.get("tasks", {})
            if not isinstance(tasks, dict):
                raise ValueError
        except (OSError, ValueError):
            continue
        by_status: dict[str, int] = {}
        for entry in tasks.values():
            status = (entry.get("status", "?")
                      if isinstance(entry, dict) else "?")
            by_status[status] = by_status.get(status, 0) + 1
        rows.append({
            "run": doc.get("run", path.stem),
            "status": doc.get("status", "?"),
            "created": doc.get("created", 0.0),
            "tasks": sum(by_status.values()),
            "by_status": dict(sorted(by_status.items())),
        })
    return rows
