"""Seeded endpoint-timing jitter: the CPU-contention axis.

2BRobust (PAPERS.md) shows that contention for endpoint CPU -- not
the network -- perturbs a sender's pacing clock and a receiver's ACK
clock enough to degrade BBR-family behaviour.  :class:`TimingJitter`
models that axis for the packet backend: a deterministic, seeded
stream of perturbations applied to the two clocks an endpoint owns:

* **Pacing**: each inter-send gap is multiplied by a factor drawn
  uniformly from ``[1 - a, 1 + a]``, with an occasional scheduler
  stall (probability :data:`STALL_PROBABILITY`) stretching the gap by
  several amplitudes -- bursts after stalls, as a busy CPU produces.
* **ACK clocking**: each ACK is delayed by up to
  ``a * ACK_DELAY_MAX_S`` seconds (scheduler-quantum scale), with
  dispatch kept monotone so a busy receiver process drains its ACK
  backlog in order.

Amplitude ``a`` is the scenario's ``timing_jitter`` field (0 disables
everything, and no :class:`TimingJitter` is even constructed).  The
stream derives from the scenario seed through the same SHA-256 scheme
as :mod:`repro.sim.rng`, so runs are bit-reproducible and independent
of other RNG consumers.
"""

from __future__ import annotations

import hashlib
import random

from ..errors import ConfigError

#: Largest supported amplitude (a gap may stretch by several times
#: this through a stall; beyond 0.5 the model stops being "jitter").
MAX_AMPLITUDE = 0.5

#: Probability that one pacing gap hits a scheduler stall.
STALL_PROBABILITY = 0.02

#: Extra gap stretch (in amplitudes) a stall adds.
STALL_AMPLITUDES = 8.0

#: Upper bound of the ACK delay at amplitude 1.0 (seconds) -- the
#: scale of an OS scheduling quantum.
ACK_DELAY_MAX_S = 0.004


def _derive(seed: int, stream: str) -> int:
    """Stable 63-bit child seed (same scheme as :mod:`repro.sim.rng`)."""
    digest = hashlib.sha256(f"jitter:{seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


class TimingJitter:
    """One endpoint's seeded timing-perturbation stream.

    Args:
        amplitude: perturbation amplitude in ``(0, MAX_AMPLITUDE]``.
        seed: base seed (typically the scenario seed).
        stream: stream name (typically the flow id) so each flow's
            perturbations are independent.
    """

    __slots__ = ("amplitude", "_rng")

    def __init__(self, amplitude: float, seed: int, stream: str = "flow"):
        if not 0.0 < amplitude <= MAX_AMPLITUDE:
            raise ConfigError(
                f"jitter amplitude must be in (0, {MAX_AMPLITUDE}]: "
                f"{amplitude}")
        self.amplitude = amplitude
        self._rng = random.Random(_derive(seed, stream))

    def pacing_factor(self) -> float:
        """Multiplier for one inter-send pacing gap (mean ~1)."""
        rng = self._rng
        factor = 1.0 + self.amplitude * (2.0 * rng.random() - 1.0)
        if rng.random() < STALL_PROBABILITY:
            factor += STALL_AMPLITUDES * self.amplitude
        return factor

    def ack_delay(self) -> float:
        """Extra delay (seconds) before one ACK is handed to the wire."""
        return self.amplitude * ACK_DELAY_MAX_S * self._rng.random()
