"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


class InvariantViolation(SimulationError):
    """A runtime invariant check (``REPRO_CHECK_INVARIANTS=1``) failed.

    Raised by the :mod:`repro.obs.invariants` checkers in strict mode;
    indicates a bug in the simulator or its instrumentation, never a
    user configuration problem.
    """


class ConfigError(ReproError):
    """An experiment, component, or CLI configuration is invalid."""


class TraceFormatError(ReproError):
    """A Mahimahi-style link trace could not be parsed."""


class TransportError(ReproError):
    """A transport endpoint violated a protocol invariant."""


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class SweepPointError(ReproError):
    """One sweep point's ``run_fn`` raised.

    The message names the failing sweep value, because worker-process
    re-raises lose the original exception's context; the original is
    chained as ``__cause__`` on the serial path.
    """


class StoreError(ReproError):
    """The artifact store encountered an unrecoverable condition."""


class ClusterError(ReproError):
    """A clustered run cannot make progress (no live nodes, or a task
    exhausted its attempts on every reachable node)."""
