"""repro: a reproduction of "How I Learned to Stop Worrying About CCA
Contention" (Brown et al., HotNets '23).

The package provides, bottom-up:

* :mod:`repro.sim` -- a packet-level discrete-event network simulator
  (the stand-in for Mahimahi and real Internet paths).
* :mod:`repro.qdisc` -- the in-network bandwidth-management toolbox the
  paper argues now governs allocations: FIFO, RED, CoDel, fair queueing,
  token-bucket shaping, policing, per-user HTB plans.
* :mod:`repro.tcp` -- a TCP-like reliable transport with Linux-style
  ``TCPInfo`` instrumentation (the fields M-Lab NDT records).
* :mod:`repro.cca` -- congestion control algorithms: Reno, NewReno,
  Cubic, BBR, Vegas, Copa, Nimbus, and a non-reactive CBR sender.
* :mod:`repro.core` -- the paper's contribution: Nimbus-style elasticity
  probing as an *active measurement* of CCA contention, plus campaign
  and hypothesis-evaluation machinery (§3.2).
* :mod:`repro.traffic` -- workload generators (backlogged, ABR video,
  Poisson short flows, CBR, cloud gaming, web browsing).
* :mod:`repro.ndt` -- a synthetic M-Lab NDT dataset and the passive
  analysis pipeline of §3.1.
* :mod:`repro.analysis` -- change-point detection, fairness metrics,
  time-series and distribution statistics.
* :mod:`repro.experiments` -- runnable reproductions of the paper's
  figures and the ablations DESIGN.md calls out.
* :mod:`repro.runtime` -- the process-pool parallel map the campaign,
  the NDT pipeline, and parameter sweeps fan out over (deterministic:
  serial and parallel runs are bit-for-bit identical), plus
  fault-tolerant task execution (retry, backoff, timeout, quarantine).
* :mod:`repro.store` -- the content-addressed result store and
  resumable campaign scheduler: deterministic config fingerprints,
  atomic on-disk artifacts (``$REPRO_STORE``/``~/.cache/repro``),
  per-task checkpointing, and cache-aware reruns that only execute
  what changed.
* :mod:`repro.serve` -- the always-on experiment service
  (``repro serve``): a stdlib asyncio HTTP server with idempotent
  fingerprint-based admission (store cache hits, in-flight request
  coalescing), a bounded priority queue with 429 + Retry-After
  backpressure, per-client token-bucket rate limiting, and graceful
  SIGTERM drain with journal-based resume (see SERVING.md).

Quickstart::

    from repro import quicklook_elasticity
    result = quicklook_elasticity(cross_traffic="reno")
    print(result.mean_elasticity, result.verdict)
"""

from .errors import (AnalysisError, ConfigError, ReproError, SimulationError,
                     TraceFormatError, TransportError)
from .units import mbps, ms, to_mbps, to_ms

__version__ = "1.0.0"

__all__ = [
    "ReproError", "SimulationError", "ConfigError", "TraceFormatError",
    "TransportError", "AnalysisError",
    "mbps", "ms", "to_mbps", "to_ms",
    "quicklook_elasticity",
    "__version__",
]


def quicklook_elasticity(cross_traffic: str = "reno", duration: float = 30.0,
                         seed: int = 0):
    """Run a small single-path elasticity probe and return its report.

    A convenience wrapper around :class:`repro.core.probe.ElasticityProbe`
    for interactive exploration; see :mod:`repro.experiments.fig3` for
    the full Figure 3 reproduction.
    """
    from .core.quicklook import run_quicklook
    return run_quicklook(cross_traffic=cross_traffic, duration=duration,
                         seed=seed)
