"""Unit tests for the elasticity estimator and pulse generator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.elasticity import (ElasticityEstimator, PulseGenerator,
                                   cross_traffic_estimate,
                                   elasticity_series)
from repro.errors import AnalysisError, ConfigError


class TestCrossTrafficEstimate:
    def test_alone_on_busy_link_is_zero(self):
        # R == S and mu == S: z = mu*S/R - S = 0 when we have it all.
        assert cross_traffic_estimate(10e6, 10e6, 10e6) == 0.0

    def test_half_share_implies_equal_cross(self):
        # We send 5, receive 5, on a 10 link: z = 10*1 - 5 = 5.
        assert cross_traffic_estimate(10e6, 5e6, 5e6) == pytest.approx(5e6)

    def test_proportional_service(self):
        # Send 2, receive 2 on a busy 10 link: z = 8.
        assert cross_traffic_estimate(10e6, 2e6, 2e6) == pytest.approx(8e6)

    def test_never_negative(self):
        # Receiving more than our share estimate implies z < 0: clamp.
        assert cross_traffic_estimate(10e6, 5e6, 9e6) == pytest.approx(
            max(0.0, 10e6 * 5 / 9 - 5e6))

    def test_zero_rates_give_zero(self):
        assert cross_traffic_estimate(10e6, 0.0, 5e6) == 0.0
        assert cross_traffic_estimate(10e6, 5e6, 0.0) == 0.0

    @given(st.floats(min_value=1e5, max_value=1e9),
           st.floats(min_value=1e3, max_value=1e9),
           st.floats(min_value=1e3, max_value=1e9))
    def test_property_non_negative_finite(self, mu, s, r):
        z = cross_traffic_estimate(mu, s, r)
        assert z >= 0.0
        assert math.isfinite(z)


class TestPulseGenerator:
    def test_zero_mean_over_period(self):
        gen = PulseGenerator(frequency=5.0, amplitude_frac=0.25)
        ts = np.linspace(0, 0.2, 1000, endpoint=False)
        offsets = [gen.offset(t, 1e6) for t in ts]
        assert abs(np.mean(offsets)) < 1e3

    def test_peak_amplitude(self):
        gen = PulseGenerator(frequency=5.0, amplitude_frac=0.25)
        peak = max(abs(gen.offset(t, 1e6))
                   for t in np.linspace(0, 0.2, 1000))
        assert peak == pytest.approx(0.25e6, rel=0.01)

    def test_periodicity(self):
        gen = PulseGenerator(frequency=4.0)
        assert gen.offset(0.1, 1e6) == pytest.approx(
            gen.offset(0.35, 1e6))

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            PulseGenerator(frequency=0)
        with pytest.raises(ConfigError):
            PulseGenerator(amplitude_frac=1.5)


def synthetic_z(duration=10.0, dt=0.01, base=2e6, tone_freq=None,
                tone_amp=0.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(0, duration, dt)
    z = np.full_like(t, base)
    if tone_freq is not None:
        z = z + tone_amp * np.sin(2 * np.pi * tone_freq * t)
    if noise > 0:
        z = z + rng.normal(0, noise, len(t))
    return t, z


class TestElasticitySeries:
    def test_tone_at_pulse_freq_scores_high(self):
        t, z = synthetic_z(tone_freq=5.0, tone_amp=1e6, noise=5e4)
        readings = elasticity_series(t, z, pulse_freq=5.0)
        assert readings
        assert np.mean([r.elasticity for r in readings]) > 5.0

    def test_flat_signal_scores_low(self):
        t, z = synthetic_z(noise=5e4)
        readings = elasticity_series(t, z, pulse_freq=5.0)
        assert np.mean([r.elasticity for r in readings]) < 3.0

    def test_tone_at_other_freq_scores_low(self):
        t, z = synthetic_z(tone_freq=2.0, tone_amp=1e6, noise=5e4)
        readings = elasticity_series(t, z, pulse_freq=5.0)
        assert np.mean([r.elasticity for r in readings]) < 3.0

    def test_elasticity_scale_invariant(self):
        t, z = synthetic_z(tone_freq=5.0, tone_amp=1e6, noise=5e4)
        a = elasticity_series(t, z, pulse_freq=5.0)
        b = elasticity_series(t, z * 7.0, pulse_freq=5.0)
        assert a[0].elasticity == pytest.approx(b[0].elasticity, rel=1e-6)

    def test_mean_cross_rate_reported(self):
        t, z = synthetic_z(base=3e6)
        readings = elasticity_series(t, z, pulse_freq=5.0)
        assert readings[0].mean_cross_rate == pytest.approx(3e6)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            elasticity_series([0, 1], [1.0], pulse_freq=5.0)

    def test_uneven_spacing_rejected(self):
        with pytest.raises(AnalysisError):
            elasticity_series([0.0, 0.01, 0.5], [1.0, 1.0, 1.0])


class TestStreamingEstimator:
    def test_emits_after_window_fills(self):
        est = ElasticityEstimator(pulse_freq=5.0, sample_interval=0.01,
                                  window=2.0, update_interval=0.5)
        emitted = []
        t = 0.0
        for i in range(400):
            t = i * 0.01
            reading = est.add_sample(t, 1e6 + 5e5 * np.sin(
                2 * np.pi * 5.0 * t))
            if reading is not None:
                emitted.append(reading)
        assert emitted
        assert emitted[0].time >= 2.0 - 0.02
        assert emitted[-1].elasticity > 5.0

    def test_update_interval_spacing(self):
        est = ElasticityEstimator(pulse_freq=5.0, sample_interval=0.01,
                                  window=2.0, update_interval=1.0)
        for i in range(1000):
            est.add_sample(i * 0.01, 1e6)
        times = [r.time for r in est.readings]
        assert all(b - a >= 1.0 - 1e-6 for a, b in zip(times, times[1:]))

    def test_significance_floor_suppresses_tiny_signals(self):
        kwargs = dict(pulse_freq=5.0, sample_interval=0.01, window=2.0,
                      update_interval=0.5)
        loud = ElasticityEstimator(**kwargs)
        gated = ElasticityEstimator(**kwargs)
        gated.scale = 50e6  # tone of 1e4 << 2% of scale
        for i in range(400):
            t = i * 0.01
            z = 1e4 * np.sin(2 * np.pi * 5.0 * t)
            loud.add_sample(t, z)
            gated.add_sample(t, z)
        assert gated.readings[-1].elasticity \
            < loud.readings[-1].elasticity
        assert gated.readings[-1].elasticity < 1.0

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            ElasticityEstimator(pulse_freq=5.0, window=0.1)
        with pytest.raises(ConfigError):
            ElasticityEstimator(pulse_freq=5.0, sample_interval=0.5)


@settings(max_examples=10, deadline=None)
@given(st.floats(min_value=2.0, max_value=8.0),
       st.floats(min_value=2e5, max_value=2e6))
def test_property_detects_planted_tone(freq, amp):
    t, z = synthetic_z(duration=8.0, tone_freq=freq, tone_amp=amp,
                       noise=1e4, seed=1)
    readings = elasticity_series(t, z, pulse_freq=freq, window=4.0)
    assert readings[-1].elasticity > 4.0
