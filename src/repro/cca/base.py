"""Congestion control algorithm (CCA) interface.

The transport endpoint owns reliability (loss detection, RTO,
retransmission); the CCA owns *how much* may be in flight and *how
fast* it leaves.  A CCA exposes two knobs:

* :attr:`CongestionControl.cwnd` -- congestion window in packets
  (float; fractional windows matter for AIMD at small BDPs).
* :attr:`CongestionControl.pacing_rate` -- bytes/second, or None for
  pure window-based ACK clocking.

and receives per-event callbacks with an :class:`AckSample` carrying
the delivery-rate sample machinery rate-based CCAs (BBR, Nimbus) need.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..obs.bus import BUS as _OBS
from ..units import DEFAULT_MSS


@dataclass(frozen=True)
class AckSample:
    """Everything a CCA may want to know about one incoming ACK.

    Attributes:
        now: arrival time of the ACK.
        acked_bytes: payload bytes newly cumulatively acknowledged.
        rtt: RTT sample from this ACK (None if not measurable, e.g. for
            an ACK of a retransmitted segment).
        min_rtt: connection's minimum RTT so far (None before the first
            sample).
        srtt: smoothed RTT (None before the first sample).
        inflight_bytes: payload bytes still outstanding after this ACK.
        delivery_rate: BBR-style delivery rate sample (bytes/second),
            None when not computable.
        delivery_rate_app_limited: the rate sample was taken while the
            sender was application-limited, so it underestimates the
            path (BBR ignores such samples for its max filter).
        delivered_total: total payload bytes delivered so far.
        in_recovery: the endpoint is in fast recovery.
        ecn_echo: the ACK echoes an ECN congestion mark.
    """

    now: float
    acked_bytes: int
    rtt: float | None
    min_rtt: float | None
    srtt: float | None
    inflight_bytes: int
    delivery_rate: float | None
    delivery_rate_app_limited: bool
    delivered_total: int
    in_recovery: bool
    ecn_echo: bool = False


class CongestionControl(abc.ABC):
    """Base class for congestion control algorithms."""

    #: human-readable algorithm name (subclasses override)
    name = "base"

    #: flow label attached to trace events; set via :meth:`bind_flow`
    _obs_flow = ""

    def __init__(self, mss: int = DEFAULT_MSS):
        self.mss = mss

    # -- observability -----------------------------------------------------

    def bind_flow(self, flow_id: str) -> None:
        """Label this CCA's trace events with the owning flow's id.

        Called by the transport endpoint at construction; harmless to
        skip (events then carry an empty flow field).
        """
        self._obs_flow = flow_id

    def _trace(self, now: float, kind: str, value: float = 0.0,
               meta: dict | None = None) -> None:
        """Emit a trace event attributed to this CCA, if tracing is on."""
        if _OBS.enabled:
            _OBS.emit(now, kind, f"cca:{self.name}", self._obs_flow,
                      value, meta)

    # -- knobs the endpoint reads ----------------------------------------

    @property
    @abc.abstractmethod
    def cwnd(self) -> float:
        """Congestion window, in packets."""

    @property
    def pacing_rate(self) -> float | None:
        """Pacing rate in bytes/second; None disables pacing."""
        return None

    @property
    def allows_retransmission(self) -> bool:
        """Whether the endpoint should provide reliability.

        Unreliable senders (CBR/UDP models) return False: no
        retransmissions and no RTO.
        """
        return True

    # -- event callbacks ---------------------------------------------------

    def on_connection_start(self, now: float) -> None:
        """Connection established; initialize state."""

    def on_ack(self, sample: AckSample) -> None:
        """New data was cumulatively acknowledged."""

    def on_dup_ack(self, now: float) -> None:
        """A duplicate ACK arrived (before loss is declared)."""

    def on_loss(self, now: float, lost_bytes: int) -> None:
        """Loss detected via fast retransmit (entering recovery)."""

    def on_recovery_exit(self, now: float) -> None:
        """Fast recovery completed."""

    def on_rto(self, now: float) -> None:
        """Retransmission timeout fired."""

    def on_packet_sent(self, now: float, bytes_sent: int,
                       app_limited: bool) -> None:
        """A data segment left the sender."""

    # -- introspection -----------------------------------------------------

    def cwnd_bytes(self) -> float:
        """Congestion window in bytes."""
        return self.cwnd * self.mss

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pacing = self.pacing_rate
        pacing_str = f", pacing={pacing:.0f}B/s" if pacing else ""
        return f"<{type(self).__name__} cwnd={self.cwnd:.2f}{pacing_str}>"
