"""CI smoke for the shared-medium subsystem.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/medium_smoke.py

Gates, in order:

1. **Bianchi gate**: the slotted CSMA/CA DES's saturated goodput at
   n in {2, 5} stations stays within 10% of Bianchi's renewal-cycle
   closed form (the tier-1 tests pin 5%; CI boxes get headroom).
2. **Both backends, both regimes**: the calibrated elastic probe cell
   (reno cross at 20 Mbit/s / 20 ms) runs under ``medium="queue"``
   and ``medium="csma-2"`` on the packet *and* fluid backends, and
   every run reads contending -- the medium changes the mechanism
   (MAC fairness vs queue sharing), not this cell's verdict.
3. **Determinism**: the packet CSMA run repeats byte-identically
   (same outcome fingerprint) and is invariant-clean under the
   medium-state checker.
4. **Cross-backend airtime agreement**: packet and fluid give the
   probe delivered-byte shares within 0.15 on the contention cell
   (the medium-airtime-agreement oracle's gate).
"""

import sys

DURATION = 20.0
RATE_MBPS = 20.0
RTT_MS = 20.0
SHARE_TOLERANCE = 0.15
BIANCHI_TOLERANCE = 0.10


def check(label, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}{': ' + detail if detail else ''}")
    if not condition:
        raise SystemExit(f"medium smoke failed: {label} ({detail})")


def bianchi_gate():
    from repro.medium import ACCESS_CLASSES, parse_medium
    from repro.medium.bianchi import saturation_throughput
    from repro.sim.engine import Simulator
    from repro.sim.medium import MediumLink
    from repro.sim.packet import Packet

    rate, size, duration = 2.5e6, 1500, 8.0
    print("Bianchi gate (saturated DES vs closed form)")
    for n in (2, 5):
        sim = Simulator()
        link = MediumLink(sim, rate, parse_medium(f"csma-{n}"), seed=7)
        link.add_tap(lambda pkt, now: link.send(
            Packet(pkt.flow_id, size=size)))
        for i in range(n):
            for _ in range(10):
                link.send(Packet(f"f{i}", size=size))
        sim.run(until=duration)
        measured = link.delivered_bytes / duration
        predicted = saturation_throughput(
            n, rate, size, ACCESS_CLASSES["best_effort"])
        error = abs(measured - predicted) / predicted
        check(f"n={n} within {BIANCHI_TOLERANCE:.0%}",
              error <= BIANCHI_TOLERANCE,
              f"DES {measured / 1e6:.3f} MB/s vs Bianchi "
              f"{predicted / 1e6:.3f} MB/s ({error:.1%})")


def scenario(backend, medium):
    from repro.qa.scenario import Scenario
    return Scenario(family="probe", rate_mbps=RATE_MBPS, rtt_ms=RTT_MS,
                    qdisc="droptail", duration=DURATION, seed=1,
                    cross_traffic="reno", backend=backend,
                    medium=medium)


def probe_share(outcome):
    total = sum(outcome.delivered.values())
    return outcome.delivered.get("probe", 0) / total if total else 0.0


def main() -> int:
    bianchi_gate()

    from repro.qa.scenario import run_scenario

    print("probe cell on both backends, both regimes")
    outcomes = {}
    for backend in ("packet", "fluid"):
        for medium in ("queue", "csma-2"):
            outcome = run_scenario(scenario(backend, medium))
            outcomes[backend, medium] = outcome
            probe = outcome.probe or {}
            check(f"{backend}/{medium} reads contending",
                  bool(probe.get("contending")),
                  f"mean elasticity "
                  f"{probe.get('mean_elasticity', 0.0):.2f}")

    print("determinism (packet csma-2 repeated)")
    again = run_scenario(scenario("packet", "csma-2"))
    check("outcome fingerprint identical",
          again.fingerprint()
          == outcomes["packet", "csma-2"].fingerprint(),
          again.fingerprint()[:16])

    print("cross-backend airtime agreement on csma-2")
    p_share = probe_share(outcomes["packet", "csma-2"])
    f_share = probe_share(outcomes["fluid", "csma-2"])
    check(f"probe shares within {SHARE_TOLERANCE}",
          abs(p_share - f_share) <= SHARE_TOLERANCE,
          f"packet {p_share:.3f} vs fluid {f_share:.3f}")

    print("medium smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
