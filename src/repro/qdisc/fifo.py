"""DropTail FIFO queue -- the Internet's default discipline.

Limits may be expressed in packets, bytes, or both; an arriving packet
that would exceed either limit is dropped (tail drop).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.packet import Packet
from .base import Qdisc


class DropTailQueue(Qdisc):
    """Tail-drop FIFO with packet and/or byte limits.

    Args:
        limit_packets: maximum queued packets (None = unlimited).
        limit_bytes: maximum queued bytes (None = unlimited).

    At least one limit must be set: an unbounded bottleneck queue makes
    loss-based CCAs fill memory forever.
    """

    def __init__(self, limit_packets: int | None = None,
                 limit_bytes: int | None = None):
        super().__init__()
        if limit_packets is None and limit_bytes is None:
            raise ConfigError("DropTailQueue needs a packet or byte limit")
        if limit_packets is not None and limit_packets <= 0:
            raise ConfigError(f"limit_packets must be positive: {limit_packets}")
        if limit_bytes is not None and limit_bytes <= 0:
            raise ConfigError(f"limit_bytes must be positive: {limit_bytes}")
        self.limit_packets = limit_packets
        self.limit_bytes = limit_bytes
        self._queue: deque[Packet] = deque()
        self._bytes = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.limit_packets is not None and len(self._queue) >= self.limit_packets:
            self._record_drop(packet, now)
            return False
        if (self.limit_bytes is not None
                and self._bytes + packet.size > self.limit_bytes):
            self._record_drop(packet, now)
            return False
        packet.enqueue_time = now
        self._queue.append(packet)
        self._bytes += packet.size
        self._record_enqueue(packet, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self._record_dequeue(packet, now)
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_length(self) -> int:
        return self._bytes
