#!/usr/bin/env python3
"""The measurement study the paper proposes (§3.2 + §5), in miniature.

Samples a population of emulated paths (rates, RTTs, queue
disciplines, cross-traffic types), points an elasticity probe at each,
aggregates the verdicts, and evaluates the paper's hypothesis: is CCA
contention common?  Because the paths are synthetic we also get ground
truth, so the study reports its own detector quality -- the part a
real wide-area deployment could never check.

Run:  python examples/campaign_study.py   (~2-4 minutes)
"""

from repro import viz
from repro.core.campaign import Campaign
from repro.core.hypothesis import evaluate_hypothesis


def main() -> None:
    print(__doc__)
    campaign = Campaign(n_paths=16, seed=7, duration=25.0,
                        fq_fraction=0.3)
    print(f"probing {len(campaign.specs)} paths...")
    result = campaign.run(
        progress=lambda done, n: print(f"  {done}/{n} paths", end="\r"))
    print()

    groups = result.by_cross_traffic()
    print(viz.table(
        [(name, len(vals), f"{sum(vals) / len(vals):.2f}")
         for name, vals in sorted(groups.items())],
        header=("cross traffic", "paths", "mean elasticity")))
    print()

    quality = result.detector_quality()
    print(f"detector: precision {quality['precision']:.2f}, "
          f"recall {quality['recall']:.2f}, "
          f"accuracy {quality['accuracy']:.2f}")

    evaluation = evaluate_hypothesis(result, threshold=0.3)
    print()
    print(evaluation.describe())
    print()
    print("Interpretation: with isolation (fair queueing) on a third "
          "of paths and mostly application-limited traffic on the "
          "rest, contention shows up on only a minority of paths -- "
          "the world the paper hypothesizes.  Re-run with "
          "fq_fraction=0.0 and a bulkier cross-traffic mix to build "
          "the opposite world and watch the hypothesis fail.")


if __name__ == "__main__":
    main()
