"""Distribution statistics: empirical CDFs, percentiles, bootstrap CIs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF.

    Attributes:
        values: sorted sample values.
        fractions: cumulative fraction at each value (ends at 1.0).
    """

    values: np.ndarray
    fractions: np.ndarray

    @classmethod
    def from_samples(cls, samples) -> "Cdf":
        x = np.sort(np.asarray(samples, dtype=float))
        if len(x) == 0:
            raise AnalysisError("cannot build a CDF from no samples")
        frac = np.arange(1, len(x) + 1, dtype=float) / len(x)
        return cls(values=x, fractions=frac)

    def quantile(self, q: float) -> float:
        """Value at cumulative fraction ``q`` (0 < q <= 1)."""
        if not 0 < q <= 1:
            raise AnalysisError(f"quantile must be in (0, 1]: {q}")
        idx = int(np.searchsorted(self.fractions, q))
        idx = min(idx, len(self.values) - 1)
        return float(self.values[idx])

    def fraction_below(self, value: float) -> float:
        """Fraction of samples <= ``value``."""
        return float(np.searchsorted(self.values, value, side="right")
                     / len(self.values))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def points(self, max_points: int = 200) -> list[tuple[float, float]]:
        """Downsampled (value, fraction) pairs for plotting/CSV export."""
        n = len(self.values)
        if n <= max_points:
            idx = np.arange(n)
        else:
            idx = np.unique(np.linspace(0, n - 1, max_points).astype(int))
        return [(float(self.values[i]), float(self.fractions[i]))
                for i in idx]


def percentile(samples, q: float) -> float:
    """The ``q``-th percentile (0-100) of ``samples``."""
    if not 0 <= q <= 100:
        raise AnalysisError(f"percentile must be in [0, 100]: {q}")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def bootstrap_ci(samples, statistic=np.mean, confidence: float = 0.95,
                 n_resamples: int = 1000, seed: int = 0
                 ) -> tuple[float, float, float]:
    """Bootstrap confidence interval.

    Returns:
        (point_estimate, ci_low, ci_high).
    """
    x = np.asarray(samples, dtype=float)
    if len(x) == 0:
        raise AnalysisError("cannot bootstrap no samples")
    if not 0 < confidence < 1:
        raise AnalysisError(f"confidence must be in (0, 1): {confidence}")
    rng = np.random.default_rng(seed)
    estimates = np.array([
        statistic(rng.choice(x, size=len(x), replace=True))
        for _ in range(n_resamples)
    ])
    alpha = (1.0 - confidence) / 2.0
    return (float(statistic(x)),
            float(np.quantile(estimates, alpha)),
            float(np.quantile(estimates, 1.0 - alpha)))


def summarize(samples) -> dict[str, float]:
    """Mean/median/p10/p90/min/max summary of a sample set."""
    x = np.asarray(samples, dtype=float)
    if len(x) == 0:
        raise AnalysisError("cannot summarize no samples")
    return {
        "n": float(len(x)),
        "mean": float(np.mean(x)),
        "median": float(np.median(x)),
        "p10": float(np.percentile(x, 10)),
        "p90": float(np.percentile(x, 90)),
        "min": float(np.min(x)),
        "max": float(np.max(x)),
        "std": float(np.std(x)),
    }
