"""Deterministic random-number management for simulations.

Every stochastic component draws from its own named stream derived from a
single experiment seed, so adding a new component (or reordering draws
inside one) does not perturb the randomness seen by the others.  This is
what makes parameter sweeps comparable across configurations.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stream_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A registry of named, independently seeded random generators.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("sizes")
    >>> a is rngs.stream("arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if necessary) the generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                _stream_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(_stream_seed(self.seed, f"fork:{name}"))
