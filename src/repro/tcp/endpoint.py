"""TCP-like transport endpoints.

:class:`TcpSender` provides a reliable byte stream with pluggable
congestion control: cumulative + selective ACKs, RFC 6675-style SACK
loss recovery with FACK loss marking and pipe accounting, an RFC 6298
retransmission timer with go-back-N on expiry, optional pacing,
BBR-style delivery-rate sampling, and Linux-``tcp_info``-style
limit-state accounting.

:class:`TcpReceiver` reassembles the stream, advertises a receive
window, and generates immediate ACKs carrying SACK blocks and exact
RTT-timestamp echoes (suppressed for retransmitted segments, per Karn's
algorithm).

:class:`Connection` wires a sender/receiver pair onto a
:class:`~repro.sim.network.PathHandles` topology.
"""

from __future__ import annotations

import bisect
import functools
from collections import deque
from typing import Callable, Optional

from ..cca.base import AckSample, CongestionControl
from ..errors import TransportError
from ..obs.bus import BUS as _OBS, EventKind
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..sim.packet import Packet, PacketKind, make_ack, make_data
from ..units import DEFAULT_MSS
from .rtt import RttEstimator
from .tcp_info import LimitState, TcpInfoTracker

#: Loss is declared when this many segment-sizes of data above a
#: segment have been selectively acknowledged (FACK-style IsLost).
DUPACK_THRESHOLD = 3

#: Effectively-unlimited receive window.
UNLIMITED_RWND = 1 << 48

#: Maximum SACK blocks carried per ACK (as in real TCP options).
MAX_SACK_BLOCKS = 3


class _Segment:
    """Scoreboard entry for one in-flight data segment."""

    __slots__ = ("seq", "end", "wire_size", "sent_time", "retransmitted",
                 "retx_inflight", "sacked", "lost", "delivered_at_send",
                 "app_limited")

    def __init__(self, seq: int, end: int, wire_size: int, sent_time: float,
                 delivered_at_send: int, app_limited: bool):
        self.seq = seq
        self.end = end
        self.wire_size = wire_size
        self.sent_time = sent_time
        self.retransmitted = False
        self.retx_inflight = False
        self.sacked = False
        self.lost = False
        self.delivered_at_send = delivered_at_send
        self.app_limited = app_limited

    @property
    def payload(self) -> int:
        return self.end - self.seq


class TcpSender:
    """Reliable stream sender with pluggable congestion control.

    Args:
        sim: the simulator.
        flow_id: flow identifier carried on every packet.
        cca: the congestion control algorithm instance (owned).
        transmit: callable injecting packets into the network.
        mss: payload bytes per segment.
        user_id: subscriber identifier (for per-user qdiscs).
        header_bytes: wire overhead per segment.
        ecn: negotiate ECN (packets marked capable; reacts to echoes).
        jitter: optional :class:`~repro.sim.jitter.TimingJitter`
            perturbing the pacing clock (endpoint CPU contention).
    """

    def __init__(self, sim: Simulator, flow_id: str, cca: CongestionControl,
                 transmit: Callable[[Packet], None], mss: int = DEFAULT_MSS,
                 user_id: str = "", header_bytes: int = 52,
                 ecn: bool = False, jitter=None):
        self.sim = sim
        self.flow_id = flow_id
        self.cca = cca
        self.transmit = transmit
        self.mss = mss
        self.user_id = user_id or flow_id
        self.header_bytes = header_bytes
        self.ecn = ecn
        self.jitter = jitter

        self.snd_una = 0
        self.snd_nxt = 0
        self._total_written = 0
        self._infinite_backlog = False
        self._closed = False
        self._completed = False
        #: invoked once, as ``fn(now)``, when a closed stream is fully acked
        self.on_complete: Optional[Callable[[float], None]] = None

        # Scoreboard: seq -> segment, plus an ordered queue of lost
        # segments awaiting retransmission and a running pipe estimate.
        # `_order` holds outstanding seqs in (monotone) send order with
        # `_head` as its logical start and `_scan` as the loss-marking
        # pointer -- this keeps SACK processing amortized O(1) per ACK
        # instead of O(window), which matters when a BBR-sized window
        # (thousands of segments) is in flight.
        self._segments: dict[int, _Segment] = {}
        self._by_end: dict[int, int] = {}
        self._order: list[int] = []
        self._head = 0
        self._scan = 0
        self._lost_queue: deque[int] = deque()
        self._pipe_bytes = 0
        self._highest_sacked = 0

        self._in_recovery = False
        self._recover_point = 0
        self._peer_rwnd = UNLIMITED_RWND
        self.dupacks_total = 0

        self.rtt = RttEstimator()
        self.tracker = TcpInfoTracker(start_time=sim.now)
        self._rto_event = None
        # The pacing pump is never cancelled, only guarded against
        # double-scheduling, so a boolean flag plus the handle-free
        # call_at path replaces an Event allocation per pacing tick.
        self._pump_scheduled = False
        self._next_tx_time = 0.0

        # BBR-style delivery accounting.
        self.delivered = 0
        self.delivered_time = sim.now

        self.fast_retransmits = 0
        self.timeouts = 0

        cca.bind_flow(flow_id)
        cca.on_connection_start(sim.now)

    # -- application interface -------------------------------------------

    def write(self, nbytes: int) -> None:
        """Append ``nbytes`` to the stream."""
        if nbytes < 0:
            raise TransportError(f"cannot write negative bytes: {nbytes}")
        if self._closed:
            raise TransportError("write after close")
        self._total_written += nbytes
        self._pump()

    def set_infinite_backlog(self) -> None:
        """Model a persistently backlogged application."""
        self._infinite_backlog = True
        self._pump()

    def close(self) -> None:
        """No more writes; ``on_complete`` fires when all data is acked."""
        self._closed = True
        self._maybe_complete()

    @property
    def backlog(self) -> int:
        """Bytes written but not yet (first-)transmitted."""
        if self._infinite_backlog:
            return 1 << 60
        return max(0, self._total_written - self.snd_nxt)

    @property
    def inflight_bytes(self) -> int:
        """Payload bytes sent and not yet cumulatively acked."""
        return self.snd_nxt - self.snd_una

    @property
    def pipe_bytes(self) -> int:
        """RFC 6675 pipe: bytes estimated to still be in the network."""
        return self._pipe_bytes

    @property
    def in_recovery(self) -> bool:
        return self._in_recovery

    @property
    def completed(self) -> bool:
        return self._completed

    # -- window/pipe arithmetic --------------------------------------------

    def _window_bytes(self) -> float:
        return min(self.cca.cwnd * self.mss, float(self._peer_rwnd))

    def _window_open(self) -> bool:
        return self._pipe_bytes + self.mss <= self._window_bytes() + 1e-9

    def _can_transmit(self) -> bool:
        if not self._window_open():
            return False
        return bool(self._lost_queue) or self.backlog > 0

    # -- transmission -------------------------------------------------------

    def _pump(self) -> None:
        if self._pump_scheduled:
            return
        now = self.sim.now
        while self._can_transmit():
            if self._next_tx_time > now + 1e-12:
                self._pump_scheduled = True
                self.sim.call_at(self._next_tx_time, self._pump_fire)
                break
            if self._lost_queue:
                self._send_retransmission()
            else:
                self._send_new_segment()
        self._update_limit_state()

    def _pump_fire(self) -> None:
        self._pump_scheduled = False
        self._pump()

    def _send_new_segment(self) -> None:
        now = self.sim.now
        payload = min(self.mss, self.backlog)
        seq = self.snd_nxt
        packet = make_data(self.flow_id, seq=seq, payload=payload,
                           size=payload + self.header_bytes,
                           user_id=self.user_id, ecn_capable=self.ecn)
        packet.sent_time = now
        self.snd_nxt = seq + payload
        app_limited = (not self._infinite_backlog) and self.backlog == 0
        packet.app_limited = app_limited
        self._segments[seq] = _Segment(
            seq, seq + payload, packet.size, now, self.delivered, app_limited)
        self._by_end[seq + payload] = seq
        self._order.append(seq)
        self._pipe_bytes += payload
        self.tracker.bytes_sent += payload
        self._advance_pacing_clock(packet.size)
        self.cca.on_packet_sent(now, payload, app_limited)
        self._arm_rto()
        self.transmit(packet)

    def _send_retransmission(self) -> None:
        seq = self._lost_queue.popleft()
        segment = self._segments.get(seq)
        if segment is None or segment.sacked or segment.retx_inflight:
            return
        now = self.sim.now
        payload = segment.payload
        packet = make_data(self.flow_id, seq=segment.seq, payload=payload,
                           size=segment.wire_size, user_id=self.user_id,
                           ecn_capable=self.ecn)
        packet.sent_time = now
        packet.retransmit = True
        segment.retransmitted = True
        segment.retx_inflight = True
        segment.sent_time = now
        self._pipe_bytes += payload
        self.tracker.bytes_retrans += payload
        self.tracker.retransmits += 1
        self._advance_pacing_clock(packet.size)
        self._arm_rto()
        self.transmit(packet)

    def _advance_pacing_clock(self, wire_size: int) -> None:
        rate = self.cca.pacing_rate
        now = self.sim.now
        if rate is None or rate <= 0:
            self._next_tx_time = now
            return
        base = max(now, self._next_tx_time)
        gap = wire_size / rate
        if self.jitter is not None:
            # A contended sender CPU stretches or squeezes each pacing
            # gap; the mean stays ~1 so the configured rate holds.
            gap *= self.jitter.pacing_factor()
        self._next_tx_time = base + gap

    # -- ACK processing ------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Entry point for packets arriving from the network (ACKs)."""
        if packet.kind is not PacketKind.ACK:
            return
        now = self.sim.now
        if packet.rwnd is not None:
            self._peer_rwnd = max(0, packet.rwnd - self.snd_una)

        self._apply_sack_blocks(packet.sack_blocks)
        if packet.ack > self.snd_una:
            self._on_new_ack(packet, now)
        elif packet.ack == self.snd_una and self.inflight_bytes > 0:
            self.dupacks_total += 1
            self.cca.on_dup_ack(now)
        self._detect_losses(now)
        self._maybe_exit_recovery(now)
        self._pump()

    def _apply_sack_blocks(self,
                           blocks: tuple[tuple[int, int], ...]) -> None:
        for lo, hi in blocks:
            if hi > self._highest_sacked:
                self._highest_sacked = hi
            idx = bisect.bisect_left(self._order, lo, lo=self._head)
            while idx < len(self._order):
                seq = self._order[idx]
                if seq >= hi:
                    break
                idx += 1
                seg = self._segments.get(seq)
                if seg is None or seg.sacked:
                    continue
                if seg.seq >= lo and seg.end <= hi:
                    seg.sacked = True
                    # Count delivery at SACK time (as Linux tcp_rate
                    # does): otherwise the cumulative ACK that later
                    # repairs the hole below looks like a multi-MB
                    # instantaneous delivery and poisons rate samples.
                    self.delivered += seg.payload
                    self.delivered_time = self.sim.now
                    if seg.lost:
                        # Original was marked lost; only an in-flight
                        # retransmission still counts toward pipe.
                        if seg.retx_inflight:
                            self._pipe_bytes -= seg.payload
                            seg.retx_inflight = False
                    else:
                        self._pipe_bytes -= seg.payload

    def _detect_losses(self, now: float) -> None:
        threshold = self._highest_sacked - DUPACK_THRESHOLD * self.mss
        newly_lost_max: int | None = None
        if self._scan < self._head:
            self._scan = self._head
        while self._scan < len(self._order):
            seq = self._order[self._scan]
            seg = self._segments.get(seq)
            if seg is None or seg.sacked or seg.lost:
                self._scan += 1
                continue
            if seg.end > threshold:
                break
            seg.lost = True
            self._pipe_bytes -= seg.payload
            self._lost_queue.append(seq)  # scan order is seq order
            newly_lost_max = seq
            self._scan += 1
        if newly_lost_max is None or self._in_recovery:
            return
        # One congestion response per window of data (RFC 6582/6675):
        # a late-detected loss from before the previous recovery point
        # still gets retransmitted, but must not trigger another
        # multiplicative decrease.
        if newly_lost_max >= self._recover_point:
            self._in_recovery = True
            self._recover_point = self.snd_nxt
            self.fast_retransmits += 1
            if _OBS.enabled:
                _OBS.emit(now, EventKind.LOSS, f"tcp:{self.flow_id}",
                          self.flow_id, float(self.mss))
            self.cca.on_loss(now, self.mss)

    def _maybe_exit_recovery(self, now: float) -> None:
        if self._in_recovery and self.snd_una >= self._recover_point:
            self._in_recovery = False
            self.cca.on_recovery_exit(now)

    def _on_new_ack(self, packet: Packet, now: float) -> None:
        acked = packet.ack - self.snd_una
        self.snd_una = packet.ack
        if self.snd_nxt < self.snd_una:
            # A late cumulative ACK can outrun snd_nxt after a go-back-N
            # reset (the receiver already held the data out of order).
            self.snd_nxt = self.snd_una
        self.tracker.bytes_acked += acked

        rtt_sample: float | None = None
        if packet.ack_of_sent_time is not None:
            candidate = now - packet.ack_of_sent_time
            if candidate > 0:
                self.rtt.update(candidate)
                rtt_sample = candidate

        # Grab the rate-sample candidate before its segment is dropped.
        sample_seq = self._by_end.get(packet.ack)
        sample_seg = self._segments.get(sample_seq) \
            if sample_seq is not None else None

        # Delivery accounting: bytes already counted when SACKed are
        # not re-counted; bytes with no scoreboard entry (post-RTO
        # go-back-N races) are credited from the ACK itself.
        newly_delivered, covered = self._drop_acked_segments(packet.ack)
        self.delivered += newly_delivered + max(0, acked - covered)
        self.delivered_time = now

        delivery_rate, rate_app_limited = self._delivery_rate_sample(
            sample_seg, now)

        sample = AckSample(
            now=now, acked_bytes=acked, rtt=rtt_sample,
            min_rtt=self.rtt.min_rtt, srtt=self.rtt.srtt,
            inflight_bytes=self.inflight_bytes,
            delivery_rate=delivery_rate,
            delivery_rate_app_limited=rate_app_limited,
            delivered_total=self.delivered,
            in_recovery=self._in_recovery and self.snd_una < self._recover_point,
            ecn_echo=packet.ecn_echo,
        )
        self.cca.on_ack(sample)
        if _OBS.enabled:
            pacing = self.cca.pacing_rate
            _OBS.emit(now, EventKind.CWND, f"tcp:{self.flow_id}",
                      self.flow_id, self.cca.cwnd,
                      {"pacing_rate": pacing} if pacing is not None else None)

        if self.inflight_bytes > 0:
            self._arm_rto(restart=True)
        else:
            self._disarm_rto()
        self._maybe_complete()

    def _delivery_rate_sample(self, candidate: _Segment | None, now: float
                              ) -> tuple[float | None, bool]:
        # The candidate is the segment ending exactly at the new ack.
        if candidate is None or candidate.retransmitted:
            return None, False
        elapsed = now - candidate.sent_time
        # A segment cannot be acknowledged in less than the path's min
        # RTT.  If this "ack" arrived faster, the cumulative ack was
        # really triggered by older data (e.g. a post-RTO duplicate
        # resend the receiver already held) and the sample would divide
        # a large delivered delta by a near-zero interval.
        min_rtt = self.rtt.min_rtt
        if elapsed <= 0 or (min_rtt is not None and elapsed < min_rtt):
            return None, False
        rate = (self.delivered - candidate.delivered_at_send) / elapsed
        return rate, candidate.app_limited

    def _drop_acked_segments(self, ack: int) -> tuple[int, int]:
        """Remove segments below ``ack``.

        Returns:
            (newly_delivered, covered): payload bytes not previously
            counted as delivered via SACK, and total payload bytes of
            the removed segments.
        """
        newly_delivered = 0
        covered = 0
        while self._head < len(self._order):
            seq = self._order[self._head]
            seg = self._segments.get(seq)
            if seg is None:
                self._head += 1
                continue
            if seg.end > ack:
                break
            self._head += 1
            del self._segments[seq]
            self._by_end.pop(seg.end, None)
            covered += seg.payload
            if not seg.sacked:
                newly_delivered += seg.payload
                if not seg.lost:
                    self._pipe_bytes -= seg.payload
                elif seg.retx_inflight:
                    self._pipe_bytes -= seg.payload
        if self._head > 4096 and self._head > len(self._order) // 2:
            del self._order[:self._head]
            self._scan = max(0, self._scan - self._head)
            self._head = 0
        while self._lost_queue and self._lost_queue[0] not in self._segments:
            # Cumulatively-acked entries sit at the front (lowest seqs).
            self._lost_queue.popleft()
        return newly_delivered, covered

    # -- RTO -------------------------------------------------------------------

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_event is not None:
            if not restart:
                return
            self._rto_event.cancel()
        self._rto_event = self.sim.schedule(self.rtt.rto, self._on_rto)

    def _disarm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.inflight_bytes <= 0:
            return
        now = self.sim.now
        self.timeouts += 1
        if _OBS.enabled:
            _OBS.emit(now, EventKind.RTO, f"tcp:{self.flow_id}",
                      self.flow_id, float(self.inflight_bytes))
        self.rtt.backoff()
        # Go-back-N: everything outstanding is presumed lost.
        self._segments.clear()
        self._by_end.clear()
        self._order.clear()
        self._head = 0
        self._scan = 0
        self._lost_queue.clear()
        self._pipe_bytes = 0
        self._highest_sacked = 0
        self.snd_nxt = self.snd_una
        self._in_recovery = False
        self._next_tx_time = now
        self.cca.on_rto(now)
        self._pump()
        if self.inflight_bytes > 0 or self.backlog > 0:
            self._arm_rto(restart=True)

    # -- accounting ---------------------------------------------------------

    def _update_limit_state(self) -> None:
        now = self.sim.now
        if self.backlog <= 0 and self.inflight_bytes == 0:
            state = LimitState.IDLE if self._closed else LimitState.APP_LIMITED
        elif self.backlog <= 0 and not self._lost_queue:
            state = LimitState.APP_LIMITED
        elif self._can_transmit() or self._pump_scheduled:
            state = LimitState.BUSY
        elif self._peer_rwnd < self.cca.cwnd * self.mss:
            state = LimitState.RWND_LIMITED
        else:
            state = LimitState.CWND_LIMITED
        if state is not self.tracker.state:
            self.tracker.set_state(state, now)

    def _maybe_complete(self) -> None:
        if (self._closed and not self._completed
                and not self._infinite_backlog
                and self.snd_una >= self._total_written
                and self.backlog <= 0):
            self._completed = True
            if self.on_complete is not None:
                self.on_complete(self.sim.now)

    def snapshot(self):
        """Current :class:`~repro.tcp.tcp_info.TcpInfoSnapshot`."""
        self._update_limit_state()
        return self.tracker.snapshot(self.sim.now, min_rtt_s=self.rtt.min_rtt,
                                     smoothed_rtt_s=self.rtt.srtt)


class TcpReceiver:
    """Stream reassembly, receive-window advertisement, and ACK generation.

    Args:
        sim: the simulator.
        flow_id: flow identifier.
        transmit: callable injecting ACKs into the reverse path.
        rwnd_bytes: advertised receive window (None = unlimited); a
            small fixed window models receiver-limited flows.
        on_data: optional ``fn(new_bytes, now)`` delivery callback fired
            as in-order data arrives.
        jitter: optional :class:`~repro.sim.jitter.TimingJitter`
            delaying ACK dispatch (contended receiver CPU); delayed
            ACKs stay in order via a monotone dispatch clock.
    """

    def __init__(self, sim: Simulator, flow_id: str,
                 transmit: Callable[[Packet], None],
                 rwnd_bytes: int | None = None,
                 on_data: Optional[Callable[[int, float], None]] = None,
                 user_id: str = "", jitter=None):
        self.sim = sim
        self.flow_id = flow_id
        self.transmit = transmit
        self.rwnd_bytes = rwnd_bytes
        self.on_data = on_data
        self.user_id = user_id or flow_id
        self.jitter = jitter
        self._next_ack_time = 0.0
        self.rcv_nxt = 0
        self._ooo: list[tuple[int, int]] = []
        self.received_bytes = 0
        self.duplicate_packets = 0

    def on_packet(self, packet: Packet) -> None:
        """Entry point for packets arriving from the network (DATA)."""
        if packet.kind is not PacketKind.DATA:
            return
        now = self.sim.now
        before = self.rcv_nxt
        if packet.end_seq <= self.rcv_nxt:
            self.duplicate_packets += 1
        else:
            self._insert(packet.seq, packet.end_seq)
        advanced = self.rcv_nxt - before
        if advanced > 0:
            self.received_bytes += advanced
            if self.on_data is not None:
                self.on_data(advanced, now)
        self._send_ack(packet, now)

    def _insert(self, seq: int, end: int) -> None:
        seq = max(seq, self.rcv_nxt)
        intervals = self._ooo + [(seq, end)]
        intervals.sort()
        merged: list[tuple[int, int]] = []
        for lo, hi in intervals:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        # Advance rcv_nxt over any leading contiguous interval.
        while merged and merged[0][0] <= self.rcv_nxt:
            self.rcv_nxt = max(self.rcv_nxt, merged[0][1])
            merged.pop(0)
        self._ooo = merged

    def _send_ack(self, data_packet: Packet, now: float) -> None:
        ack = make_ack(self.flow_id, ack=self.rcv_nxt, user_id=self.user_id)
        ack.sent_time = now
        if not data_packet.retransmit:
            # Karn's algorithm: never derive RTT from retransmissions.
            ack.ack_of_sent_time = data_packet.sent_time
        if self._ooo:
            ack.sack_blocks = tuple(self._ooo[-MAX_SACK_BLOCKS:])
        if self.rwnd_bytes is not None:
            ack.rwnd = self.rcv_nxt + self.rwnd_bytes
        if data_packet.ecn_marked:
            ack.ecn_echo = True
        if self.jitter is not None:
            when = max(now + self.jitter.ack_delay(), self._next_ack_time)
            self._next_ack_time = when
            self.sim.call_at(when, functools.partial(self.transmit, ack))
        else:
            self.transmit(ack)


class Connection:
    """A sender/receiver pair attached to a built topology."""

    def __init__(self, sim: Simulator, path: PathHandles, flow_id: str,
                 cca: CongestionControl, mss: int = DEFAULT_MSS,
                 rwnd_bytes: int | None = None, user_id: str = "",
                 on_data: Optional[Callable[[int, float], None]] = None,
                 ecn: bool = False, jitter=None):
        self.flow_id = flow_id
        self.sender = TcpSender(
            sim, flow_id, cca, transmit=path.entry.send, mss=mss,
            user_id=user_id, ecn=ecn, jitter=jitter)
        self.receiver = TcpReceiver(
            sim, flow_id, transmit=path.reverse_entry.send,
            rwnd_bytes=rwnd_bytes, on_data=on_data, user_id=user_id,
            jitter=jitter)
        path.dst_host.attach(flow_id, self.receiver.on_packet)
        path.src_host.attach(flow_id, self.sender.on_packet)

    @property
    def cca(self) -> CongestionControl:
        return self.sender.cca
