"""Parallel execution substrate.

The paper-scale workloads in this repo are embarrassingly parallel --
one independent probe simulation per sampled path (E7), one independent
categorize + change-point run per NDT flow (Figure 2), one independent
experiment run per sweep point -- yet they were originally executed
serially.  :mod:`repro.runtime` provides the process-pool map they all
share:

* :func:`parallel_map` / :class:`ParallelExecutor` -- ordered,
  chunked, process-pool ``map`` with progress callbacks and an
  automatic serial fallback (``workers <= 1``, unpicklable work, or an
  unavailable pool all degrade gracefully to the plain loop).
* :meth:`ParallelExecutor.run_tasks` / :meth:`ParallelExecutor.imap_tasks`
  -- fault-tolerant execution under a :class:`FaultPolicy` (per-task
  retry with exponential backoff, per-task timeout, deterministic
  ``REPRO_FAULT_RATE`` fault injection); failures come back as
  ``ok=False`` :class:`TaskOutcome` records instead of exceptions, so
  the :mod:`repro.store` scheduler can quarantine them.
* :func:`resolve_workers` -- worker-count policy: explicit argument,
  then the ``REPRO_WORKERS`` environment variable, then the CPU count.
* :func:`derive_seed` -- per-task deterministic child seeds.

Determinism contract: every task function used with this module must be
a pure function of its item (each item carries its own seed), so the
result list is bit-for-bit identical for any worker count -- results
are always reassembled in submission order.
"""

from .pool import (DEFAULT_WORKERS_ENV, FAULT_RATE_ENV, FaultPolicy,
                   InjectedFault, ParallelExecutor, TaskOutcome,
                   TaskTimeout, derive_seed, fault_rate, parallel_map,
                   resolve_workers)

__all__ = ["DEFAULT_WORKERS_ENV", "FAULT_RATE_ENV", "FaultPolicy",
           "InjectedFault", "ParallelExecutor", "TaskOutcome",
           "TaskTimeout", "derive_seed", "fault_rate", "parallel_map",
           "resolve_workers"]
