"""The shared-medium subsystem: axis grammar, Bianchi's closed form,
and the slotted CSMA/CA DES validated against it (satellite: the
Bianchi validation tests and the medium-state invariant checker)."""

import pytest

from repro.errors import ConfigError
from repro.medium import (ACCESS_CLASSES, MEDIUM_DEFAULT, MediumSpec,
                          parse_medium)
from repro.medium.bianchi import (airtime_shares, expected_service_time,
                                  saturation_throughput,
                                  transmit_probabilities)
from repro.medium.config import MacClass, medium_names
from repro.obs import capture
from repro.obs.bus import EventKind, TraceEvent
from repro.obs.invariants import MediumChecker, check_trace
from repro.sim.engine import Simulator
from repro.sim.medium import MediumLink
from repro.sim.packet import Packet

BEST_EFFORT = ACCESS_CLASSES["best_effort"]
VOICE = ACCESS_CLASSES["voice"]


# -- the axis grammar ------------------------------------------------------

def test_parse_medium_grammar():
    assert parse_medium("queue") is None
    spec = parse_medium("csma-4")
    assert spec == MediumSpec(n_stations=4, priority="uniform")
    assert spec.name() == "csma-4"
    prio = parse_medium("csma-8-prio")
    assert prio == MediumSpec(n_stations=8, priority="mixed")
    assert prio.name() == "csma-8-prio"
    for bad in ("csma-1", "csma-65", "csma-", "tdma-4", "csma-4-voice",
                "CSMA-4", ""):
        with pytest.raises(ConfigError):
            parse_medium(bad)


def test_station_class_layout():
    uniform = parse_medium("csma-4")
    assert all(uniform.station_class(i) is BEST_EFFORT for i in range(4))
    mixed = parse_medium("csma-4-prio")
    assert mixed.station_class(0) is BEST_EFFORT
    assert mixed.station_class(1) is VOICE
    assert mixed.station_class(2) is BEST_EFFORT
    assert mixed.station_class(3) is VOICE


def test_medium_names_sweep():
    names = medium_names(station_counts=(2, 4), with_priority=True)
    assert names == ("queue", "csma-2", "csma-4", "csma-2-prio",
                     "csma-4-prio")
    for name in names:
        parse_medium(name)  # every sweep value is parseable


def test_mac_class_validation():
    with pytest.raises(ConfigError):
        MacClass("bad", aifsn=0, cw_min=7, cw_max=15)
    with pytest.raises(ConfigError):
        MacClass("bad", aifsn=2, cw_min=31, cw_max=15)
    with pytest.raises(ConfigError):
        MediumSpec(n_stations=1)
    with pytest.raises(ConfigError):
        MediumSpec(n_stations=4, priority="upside_down")


# -- Bianchi's closed form -------------------------------------------------

def test_bianchi_fixed_point_properties():
    for n in (2, 5, 10, 20):
        taus = transmit_probabilities([BEST_EFFORT] * n)
        assert len(taus) == n
        # Homogeneous stations share one tau, strictly inside (0, 1),
        # decreasing in n (more contention -> wider windows).
        assert max(taus) - min(taus) < 1e-9
        assert 0.0 < taus[0] < 1.0
    tau2 = transmit_probabilities([BEST_EFFORT] * 2)[0]
    tau20 = transmit_probabilities([BEST_EFFORT] * 20)[0]
    assert tau20 < tau2


def test_bianchi_efficiency_below_one_and_declines_past_optimum():
    payload_time = 1500 / 2.5e6  # 1500 B at 20 Mbit/s
    small = sum(airtime_shares([BEST_EFFORT] * 5, payload_time))
    large = sum(airtime_shares([BEST_EFFORT] * 50, payload_time))
    assert 0.0 < large < small < 1.0


def test_bianchi_priority_classes_split_airtime_unevenly():
    payload_time = 1500 / 2.5e6
    shares = airtime_shares([BEST_EFFORT, VOICE], payload_time)
    # The tight voice window wins far more transmission opportunities.
    assert shares[1] > 2.0 * shares[0]


def test_bianchi_service_time_is_inverse_success_rate():
    payload_time = 1500 / 2.5e6
    classes = [BEST_EFFORT] * 5
    service = expected_service_time(classes, payload_time, station=0)
    shares = airtime_shares(classes, payload_time)
    # share = payload_time / service, by the renewal argument.
    assert shares[0] == pytest.approx(payload_time / service, rel=1e-9)


def test_bianchi_input_validation():
    with pytest.raises(ConfigError):
        transmit_probabilities([])
    with pytest.raises(ConfigError):
        airtime_shares([BEST_EFFORT], -1.0)
    with pytest.raises(ConfigError):
        saturation_throughput(0, 2.5e6, 1500, BEST_EFFORT)
    with pytest.raises(ConfigError):
        saturation_throughput(2, 0.0, 1500, BEST_EFFORT)


# -- the DES against the closed form --------------------------------------

RATE = 2.5e6          # 20 Mbit/s in bytes/second
PACKET_SIZE = 1500


def _saturated_medium(n: int, duration: float, seed: int = 7,
                      medium: str | None = None):
    """Run ``n`` always-backlogged stations and return the link."""
    sim = Simulator()
    spec = parse_medium(medium or f"csma-{n}")
    link = MediumLink(sim, RATE, spec, seed=seed)
    # Refill on delivery so every station stays saturated: classic
    # Bianchi conditions without a transport loop in the way.
    link.add_tap(lambda pkt, now: link.send(Packet(pkt.flow_id,
                                                   size=PACKET_SIZE)))
    for i in range(n):
        for _ in range(10):
            link.send(Packet(f"f{i}", size=PACKET_SIZE))
    sim.run(until=duration)
    return link


@pytest.mark.parametrize("n", (2, 5, 10))
def test_medium_link_matches_bianchi_saturation(n):
    # The satellite acceptance gate: slotted DES goodput within 5% of
    # Bianchi's renewal-cycle closed form at matched constants.
    duration = 10.0
    link = _saturated_medium(n, duration)
    measured = link.delivered_bytes / duration
    predicted = saturation_throughput(n, RATE, PACKET_SIZE, BEST_EFFORT)
    assert measured == pytest.approx(predicted, rel=0.05)
    # And the shares are near-fair across homogeneous stations.
    shares = [link.flow_bytes(f"f{i}") / link.delivered_bytes
              for i in range(n)]
    assert sum(shares) == pytest.approx(1.0)
    assert max(shares) < 2.5 * min(shares)


def test_medium_link_collisions_scale_with_stations():
    few = _saturated_medium(2, 5.0)
    many = _saturated_medium(10, 5.0)
    assert few.collisions < many.collisions
    assert many.collisions > 0


def test_medium_link_priority_mix_favors_voice():
    link = _saturated_medium(4, 5.0, medium="csma-4-prio")
    voice = link.flow_bytes("f1") + link.flow_bytes("f3")
    best_effort = link.flow_bytes("f0") + link.flow_bytes("f2")
    assert voice > 2.0 * best_effort


def test_medium_link_is_deterministic_and_seed_sensitive():
    a = _saturated_medium(3, 3.0, seed=7)
    b = _saturated_medium(3, 3.0, seed=7)
    c = _saturated_medium(3, 3.0, seed=8)
    per_flow = lambda link: [link.flow_bytes(f"f{i}") for i in range(3)]
    assert per_flow(a) == per_flow(b)
    assert (per_flow(a), a.collisions) != (per_flow(c), c.collisions)


def test_medium_link_rejects_bad_rate():
    sim = Simulator()
    with pytest.raises(ConfigError):
        MediumLink(sim, 0.0, parse_medium("csma-2"))


# -- golden trace (satellite: 3-station medium-state regression) ----------

#: Pinned digest for the 3-station saturated scenario below.  If a
#: deliberate MAC change moves these numbers, re-pin them in the same
#: commit and say why in the commit message.
GOLDEN_DIGEST = {
    "delivered_packets": 3319,
    "delivered_bytes": 4978500,
    "collisions": 196,
    "txops": 3319,
    "txop_events": 3319,
    "collision_events": 394,
    "backoff_events": 3713,
}


def test_three_station_golden_trace():
    with capture() as trace:
        link = _saturated_medium(3, 3.0, seed=7)
    counts = trace.counts_by_kind()
    digest = {
        "delivered_packets": link.delivered_packets,
        "delivered_bytes": link.delivered_bytes,
        "collisions": link.collisions,
        "txops": link.txops,
        "txop_events": counts.get(EventKind.MEDIUM_TXOP, 0),
        "collision_events": counts.get(EventKind.MEDIUM_COLLISION, 0),
        "backoff_events": counts.get(EventKind.MEDIUM_BACKOFF, 0),
    }
    assert digest == GOLDEN_DIGEST
    # Every successful txop emits exactly one event; every collision
    # emits one per collider (>= 2).
    assert digest["txop_events"] == digest["txops"]
    assert digest["collision_events"] >= 2 * digest["collisions"]
    # The trace is invariant-clean, including the medium-state checker.
    events = [e for e in trace.events]
    assert check_trace(events, qdiscs=link.station_qdiscs) == []


# -- the medium-state invariant checker ------------------------------------

def _txop(t, duration, src="medium:m"):
    return TraceEvent(t, EventKind.MEDIUM_TXOP, src, "f0", 1500.0,
                      meta={"station": 0, "duration": duration})


def _collision(t, duration, station=0, src="medium:m"):
    return TraceEvent(t, EventKind.MEDIUM_COLLISION, src, "f0", 1500.0,
                      meta={"station": station, "duration": duration,
                            "colliders": 2})


def _violations(events):
    checker = MediumChecker()
    for event in events:
        checker.observe(event)
    checker.finalize()
    return checker.violations


def test_medium_checker_accepts_disjoint_txops():
    assert _violations([_txop(0.0, 0.01), _txop(0.011, 0.01)]) == []


def test_medium_checker_flags_overlapping_txops():
    violations = _violations([_txop(0.0, 0.02), _txop(0.01, 0.02)])
    assert violations
    assert "overlapping" in violations[0].message


def test_medium_checker_flags_airtime_over_window():
    # A double-grant charges both raw durations into the same 1s
    # window (1.6s of airtime): over-granted, on top of the overlap.
    violations = _violations([_txop(0.0, 0.8), _txop(0.3, 0.8)])
    assert any("airtime" in v.message for v in violations)
    # Disjoint txops filling the window exactly stay legal.
    assert _violations([_txop(0.0, 0.5), _txop(0.5, 0.5)]) == []


def test_medium_checker_charges_collisions_once():
    # One collision emits an event per collider over the same airtime;
    # union-clamping must charge it once, not per collider.
    events = [_collision(0.0, 0.6, station=0),
              _collision(0.0, 0.6, station=1)]
    assert _violations(events) == []


def test_medium_checker_flags_negative_duration():
    violations = _violations([_txop(0.0, -0.01)])
    assert violations
    assert "negative" in violations[0].message


def test_medium_checker_resets_on_sim_start():
    events = [_txop(0.0, 0.02),
              TraceEvent(0.0, EventKind.SIM_START, "sim"),
              _txop(0.01, 0.02)]  # would overlap without the reset
    assert _violations(events) == []
