"""Property harness for the streaming NDT pipeline.

Three equivalence laws guard the out-of-core refactor:

1. **Chunk invariance** -- chunked/sharded synthesis reproduces the
   monolithic dataset record for record, at any chunk size.
2. **Merge laws** -- ``Fig2Result.merge`` is commutative, associative,
   and idempotent over any partition of the population into shards.
3. **Worker invariance** -- streamed runs are aggregate-fingerprint
   identical for any worker count and byte-identical to the
   materialized pipeline.

All generators are seeded (Hypothesis-style randomized cases, fully
deterministic re-runs).
"""

import os
import random
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.analysis.stats import CdfSketch
from repro.errors import AnalysisError, ConfigError
from repro.ndt import (Fig2Result, PopulationModel, ShardSpec,
                       SyntheticNdtGenerator, analyse_flow, analyse_shard,
                       merge_partials, run_pipeline,
                       run_pipeline_streaming, shard_specs)
from repro.ndt.stream import stream_run_key
from repro.store import ArtifactStore

SEED = 20230601
N = 600


@pytest.fixture(scope="module")
def dataset():
    return SyntheticNdtGenerator(seed=SEED).generate(N)


@pytest.fixture(scope="module")
def partials():
    """Twelve 50-flow shard partials covering the population."""
    return [analyse_shard(s)
            for s in shard_specs(N, seed=SEED, chunk_size=50)]


@pytest.fixture(scope="module")
def golden(dataset):
    return run_pipeline(dataset, store=None)


class TestChunkInvariance:
    def test_random_chunk_sizes_reproduce_monolithic(self, dataset):
        gen = SyntheticNdtGenerator(seed=SEED)
        rng = random.Random(0)
        for chunk_size in [1, 7, N, N + 13] + \
                [rng.randrange(2, N) for _ in range(3)]:
            chunks = list(gen.generate_chunks(N, chunk_size))
            assert sum(len(c) for c in chunks) == N
            flat = [r for c in chunks for r in c.records]
            assert flat == dataset.records, f"chunk_size={chunk_size}"

    def test_any_shard_regenerates_in_isolation(self, dataset):
        rng = random.Random(1)
        for _ in range(5):
            start = rng.randrange(0, N - 1)
            count = rng.randrange(1, N - start)
            shard = SyntheticNdtGenerator(seed=SEED) \
                .generate_shard(start, count)
            assert shard.records == dataset.records[start:start + count]

    def test_records_carry_calibrated_cca(self, dataset):
        ccas = {r.cca for r in dataset.records}
        assert ccas <= {"cubic", "bbr", "reno", "other"}
        fractions = {c: sum(r.cca == c for r in dataset.records) / N
                     for c in ccas}
        assert fractions["cubic"] == pytest.approx(0.64, abs=0.08)
        assert fractions["bbr"] == pytest.approx(0.22, abs=0.08)

    def test_different_seeds_differ(self):
        a = SyntheticNdtGenerator(seed=1).generate_record(5)
        b = SyntheticNdtGenerator(seed=2).generate_record(5)
        assert a != b

    def test_bad_shard_args_raise(self):
        gen = SyntheticNdtGenerator(seed=0)
        with pytest.raises(ConfigError):
            gen.generate_shard(-1, 5)
        with pytest.raises(ConfigError):
            gen.generate_shard(0, 0)
        with pytest.raises(ConfigError):
            list(gen.generate_chunks(10, 0))


class TestMergeLaws:
    def test_commutative_over_random_partitions(self, partials, golden):
        want = golden.aggregate_fingerprint()
        rng = random.Random(2)
        for _ in range(6):
            shuffled = partials[:]
            rng.shuffle(shuffled)
            merged = merge_partials(shuffled)
            assert merged.aggregate_fingerprint() == want
            assert merged.total == N

    def test_associative(self, partials):
        a, b, c = (merge_partials(partials[0:4]),
                   merge_partials(partials[4:8]),
                   merge_partials(partials[8:12]))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.aggregate_fingerprint() \
            == right.aggregate_fingerprint()
        assert left.shards == right.shards

    def test_idempotent_under_replayed_shards(self, partials, golden):
        rng = random.Random(3)
        replayed = partials + rng.choices(partials, k=5)
        merged = merge_partials(replayed)
        assert merged.total == N
        assert merged.aggregate_fingerprint() \
            == golden.aggregate_fingerprint()

    def test_empty_is_identity(self, partials):
        one = partials[0]
        assert Fig2Result.empty().merge(one) is one
        assert one.merge(Fig2Result.empty()) is one

    def test_random_partition_boundaries(self, dataset, golden):
        """Uneven, randomly cut partitions all fold to the golden."""
        flows = [analyse_flow(r) for r in dataset.records]
        rng = random.Random(4)
        for _ in range(4):
            n_cuts = rng.randrange(1, 9)
            cuts = sorted(rng.sample(range(1, N), n_cuts))
            bounds = [0] + cuts + [N]
            parts = [
                Fig2Result.from_flows(flows[lo:hi], start=lo,
                                      keep_flows=False)
                for lo, hi in zip(bounds, bounds[1:])
            ]
            rng.shuffle(parts)
            assert merge_partials(parts).aggregate_fingerprint() \
                == golden.aggregate_fingerprint()

    def test_partial_overlap_raises(self, partials):
        a = merge_partials(partials[0:3])
        b = merge_partials(partials[2:5])  # shares shard 2
        with pytest.raises(AnalysisError, match="overlapping"):
            a.merge(b)

    def test_merged_flows_survive_when_both_complete(self, dataset):
        flows = [analyse_flow(r) for r in dataset.records]
        a = Fig2Result.from_flows(flows[:200], start=0)
        b = Fig2Result.from_flows(flows[200:], start=200)
        merged = b.merge(a)  # out of order on purpose
        assert merged.flows == flows
        assert merged.throughput_cdf().values.shape == (N,)


class TestStreamedEqualsMaterialized:
    def test_aggregates_byte_identical(self, golden):
        streamed = run_pipeline_streaming(N, seed=SEED, chunk_size=64,
                                          store=None, workers=1)
        assert streamed.aggregate_fingerprint() \
            == golden.aggregate_fingerprint()
        assert streamed.counts == golden.counts
        assert streamed.detector_quality() == golden.detector_quality()
        assert streamed.flows == []  # out of core: flows dropped

    def test_chunk_size_invariant(self):
        fps = {
            run_pipeline_streaming(150, seed=3, chunk_size=cs,
                                   store=None, workers=1)
            .aggregate_fingerprint()
            for cs in (11, 50, 150, 500)
        }
        assert len(fps) == 1

    def test_workers_1_vs_4_fingerprint_identical(self):
        one = run_pipeline_streaming(300, seed=SEED, chunk_size=30,
                                     store=None, workers=1)
        four = run_pipeline_streaming(300, seed=SEED, chunk_size=30,
                                      store=None, workers=4)
        assert one.aggregate_fingerprint() \
            == four.aggregate_fingerprint()
        assert one.shards == four.shards

    def test_streamed_store_roundtrip_hits_cache(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = run_pipeline_streaming(120, seed=5, chunk_size=40,
                                       store=store, workers=1)
        from repro.obs.metrics import REGISTRY
        before = REGISTRY.counter("ndt.stream.shards_computed").value
        again = run_pipeline_streaming(120, seed=5, chunk_size=40,
                                       store=store, workers=1)
        after = REGISTRY.counter("ndt.stream.shards_computed").value
        assert after == before  # merged-result hit: zero shards re-run
        assert again.aggregate_fingerprint() \
            == first.aggregate_fingerprint()

    def test_sketch_quantiles_track_exact_cdf(self, golden):
        from repro.ndt.filters import FlowCategory
        exact = golden.throughput_cdf(FlowCategory.REMAINING)
        sketch = golden.throughput_sketch(FlowCategory.REMAINING)
        for q in (0.25, 0.5, 0.9):
            assert sketch.quantile(q) \
                == pytest.approx(exact.quantile(q), rel=0.08)
        assert sketch.vmin == exact.values[0]
        assert sketch.vmax == exact.values[-1]


class TestEmptyDatasetGuards:
    def test_fraction_raises_on_empty(self):
        from repro.ndt.filters import FlowCategory
        empty = Fig2Result.empty()
        with pytest.raises(AnalysisError, match="empty dataset"):
            empty.fraction(FlowCategory.REMAINING)
        with pytest.raises(AnalysisError, match="empty dataset"):
            empty.fraction_possible_contention

    def test_fraction_ok_on_populated(self, golden):
        from repro.ndt.filters import FlowCategory
        assert 0.0 <= golden.fraction(FlowCategory.REMAINING) <= 1.0
        assert 0.0 <= golden.fraction_possible_contention <= 1.0

    def test_ci_needs_two_shards(self, golden):
        with pytest.raises(AnalysisError, match=">= 2 shards"):
            golden.fraction_ci()  # materialized: one shard


class TestCdfSketch:
    def test_merge_matches_bulk(self):
        rng = np.random.default_rng(0)
        x = rng.lognormal(15, 2, 4000)
        whole = CdfSketch().add_samples(x)
        parts = [CdfSketch().add_samples(x[i::7]) for i in range(7)]
        rng2 = random.Random(0)
        rng2.shuffle(parts)
        merged = parts[0]
        for p in parts[1:]:
            merged = merged.merge(p)
        assert merged == whole

    def test_binning_mismatch_raises(self):
        with pytest.raises(AnalysisError, match="binning"):
            CdfSketch().merge(CdfSketch(bins=64))

    def test_empty_queries_raise(self):
        s = CdfSketch()
        with pytest.raises(AnalysisError):
            s.quantile(0.5)
        with pytest.raises(AnalysisError):
            s.fraction_below(1.0)
        with pytest.raises(AnalysisError):
            s.points()

    def test_out_of_range_samples_clamp_to_extrema(self):
        s = CdfSketch().add_samples([1e-3, 1e12, 1e6])
        assert s.total == 3
        assert s.vmin == 1e-3
        assert s.vmax == 1e12
        assert s.quantile(1.0) == 1e12
        assert s.quantile(1e-9) == 1e-3

    def test_nonfinite_rejected(self):
        with pytest.raises(AnalysisError):
            CdfSketch().add_samples([1.0, float("nan")])


_KILL_MODEL = "PopulationModel(test_duration=10.0, snapshot_interval=0.05)"

_CHILD_SRC = f"""
import sys
sys.path.insert(0, {repr(os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))})
from repro.ndt import PopulationModel, run_pipeline_streaming
from repro.store import ArtifactStore
run_pipeline_streaming(120, seed=11, chunk_size=20,
                       model={_KILL_MODEL},
                       workers=1, store=ArtifactStore(), resume=True)
"""


class TestKillResume:
    """SIGKILL a streaming run mid-shard; resume must re-execute only
    the unfinished shards and converge byte-identically."""

    @pytest.mark.slow
    def test_sigkill_mid_shard_resumes_exactly(self, tmp_path):
        import json

        store_root = tmp_path / "store"
        store = ArtifactStore(store_root)
        model = PopulationModel(test_duration=10.0,
                                snapshot_interval=0.05)
        specs = shard_specs(120, seed=11, chunk_size=20, model=model)
        manifest = store.checkpoint_path(stream_run_key(specs))

        env = dict(os.environ, REPRO_STORE=str(store_root),
                   REPRO_WORKERS="1")
        child = subprocess.Popen([sys.executable, "-c", _CHILD_SRC],
                                 env=env)
        try:
            # Wait until some (not all) shards are checkpointed.
            deadline = time.time() + 120
            done = 0
            while time.time() < deadline:
                if manifest.exists():
                    try:
                        done = len(json.loads(
                            manifest.read_text()).get("done", {}))
                    except ValueError:
                        done = 0
                    if done >= 2:
                        break
                if child.poll() is not None:
                    pytest.fail("child finished before it could be "
                                "killed; slow the kill model down")
                time.sleep(0.01)
            assert done >= 2, "child never checkpointed a shard"
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        checkpointed = len(json.loads(
            manifest.read_text()).get("done", {}))
        assert 2 <= checkpointed < len(specs), \
            "kill landed outside the mid-run window"

        # Resume: only the unfinished shards may execute.
        from repro.obs.metrics import REGISTRY
        computed_before = REGISTRY.counter(
            "ndt.stream.shards_computed").value
        resumed = run_pipeline_streaming(
            120, seed=11, chunk_size=20, model=model, workers=1,
            store=store, resume=True)
        computed = REGISTRY.counter(
            "ndt.stream.shards_computed").value - computed_before
        assert computed == len(specs) - checkpointed

        # Byte-identical to an uninterrupted run in a fresh store.
        golden = run_pipeline_streaming(
            120, seed=11, chunk_size=20, model=model, workers=1,
            store=ArtifactStore(tmp_path / "golden"))
        assert resumed.aggregate_fingerprint() \
            == golden.aggregate_fingerprint()
        assert resumed.shards == golden.shards
