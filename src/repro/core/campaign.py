"""Measurement campaigns: fleets of elasticity probes over a synthetic
path population.

The paper proposes "a measurement technique and study to settle this
question": point the §3.2 probe at many Internet paths and measure how
often cross traffic is elastic.  Lacking a wide-area vantage, we sample
paths (rate, RTT, qdisc, cross-traffic type) from configurable
distributions, run one simulated probe per path, and aggregate -- the
identical campaign logic a real study would run, with ground truth
attached.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, fields

import numpy as np

from ..errors import ConfigError
from ..medium.config import MEDIUM_DEFAULT, parse_medium
from ..runtime import FaultPolicy, parallel_map
from ..qdisc.fifo import DropTailQueue
from ..qdisc.fq import DrrFairQueue
from ..sim.engine import Simulator
from ..sim.network import default_buffer_packets, dumbbell, medium_dumbbell
from ..traffic.mix import CROSS_TRAFFIC_IS_ELASTIC, make_cross_traffic
from ..units import mbps, ms
from .detector import ContentionDetector, DetectorVerdict, confusion_counts
from .probe import ElasticityProbe, ProbeReport


@dataclass(frozen=True)
class PathSpec:
    """One sampled path.

    Attributes:
        rate_mbps: bottleneck rate.
        rtt_ms: two-way propagation delay.
        qdisc: "droptail" or "fq".
        cross_traffic: a name from the cross-traffic registry.
        buffer_multiplier: bottleneck buffer, in BDPs.
        seed: per-path seed.
        medium: bottleneck access regime -- ``"queue"`` (a plain
            serializing link) or a CSMA/CA shared medium such as
            ``"csma-4"`` (see :func:`repro.medium.parse_medium`).
    """

    rate_mbps: float
    rtt_ms: float
    qdisc: str
    cross_traffic: str
    buffer_multiplier: float = 1.0
    seed: int = 0
    medium: str = MEDIUM_DEFAULT

    def __post_init__(self):
        if self.rate_mbps <= 0 or self.rtt_ms <= 0:
            raise ConfigError(f"invalid path spec: {self}")
        if self.qdisc not in ("droptail", "fq"):
            raise ConfigError(f"unknown qdisc {self.qdisc!r}")
        parse_medium(self.medium)  # raises ConfigError on bad values

    @property
    def truly_contending(self) -> bool:
        """Ground truth: elastic cross traffic behind a shared FIFO.

        Under per-flow fair queueing the probe is isolated, so even an
        elastic competitor cannot contend with it for bandwidth -- the
        paper's §2.1 argument, encoded as ground truth.
        """
        return (CROSS_TRAFFIC_IS_ELASTIC[self.cross_traffic]
                and self.qdisc == "droptail")

    @property
    def isolation_masked(self) -> bool:
        """Paths where the instrument cannot see the truth.

        A backlogged elastic competitor behind per-flow FQ pins the
        probe's delivery rate at its fair share; ẑ = μ·S/R - S then
        mirrors the probe's own pulses and the path reads as
        contending even though FQ -- not CCA dynamics -- decides the
        allocation.  The §3.2 technique cannot, by itself, distinguish
        CCA contention from fair-queue capping; a deployment of the
        paper's study must treat such paths as a separate bucket
        (see EXPERIMENTS.md, E7).
        """
        return (CROSS_TRAFFIC_IS_ELASTIC[self.cross_traffic]
                and self.qdisc == "fq")


def _spec_config(spec: PathSpec) -> dict:
    """``spec`` as a fingerprint payload.

    Hashes identically to the bare dataclass for queue-regime paths
    (the ``medium`` key is omitted at its default), so every
    pre-medium cache entry stays addressable.
    """
    config = {f.name: getattr(spec, f.name) for f in fields(spec)}
    if config["medium"] == MEDIUM_DEFAULT:
        del config["medium"]
    return config


@dataclass(frozen=True)
class PathResult:
    """Probe outcome on one path."""

    spec: PathSpec
    report: ProbeReport
    verdict: DetectorVerdict


@dataclass(frozen=True)
class FailedPath:
    """A path quarantined by the fault-tolerant scheduler.

    Attributes:
        spec: the path that kept failing.
        error: the last attempt's failure message.
        error_type: the last attempt's exception class name.
        attempts: attempts consumed before quarantine.
    """

    spec: PathSpec
    error: str
    error_type: str
    attempts: int


@dataclass
class CampaignResult:
    """All per-path results plus aggregate quality measures.

    ``failed`` lists paths the fault-tolerant scheduler quarantined
    (empty on the default raising path); aggregate measures are over
    the successful ``results`` only.
    """

    results: list[PathResult] = field(default_factory=list)
    failed: list[FailedPath] = field(default_factory=list)

    @property
    def fraction_contending(self) -> float:
        """The campaign's headline number: fraction of paths where the
        probe found contending cross traffic."""
        if not self.results:
            return 0.0
        return (sum(1 for r in self.results if r.verdict.contending)
                / len(self.results))

    @property
    def true_fraction_contending(self) -> float:
        if not self.results:
            return 0.0
        return (sum(1 for r in self.results if r.spec.truly_contending)
                / len(self.results))

    def detector_quality(self, exclude_masked: bool = True
                         ) -> dict[str, float]:
        """Detector precision/recall/accuracy vs ground truth.

        ``exclude_masked`` (default) scores only paths the instrument
        can see (see :attr:`PathSpec.isolation_masked`); the masked
        bucket is reported by :meth:`masked_summary`.
        """
        subset = [r for r in self.results
                  if not (exclude_masked and r.spec.isolation_masked)]
        if not subset:
            return confusion_counts([], [])
        return confusion_counts(
            [r.verdict.contending for r in subset],
            [r.spec.truly_contending for r in subset])

    def masked_summary(self) -> dict[str, float]:
        """How the isolation-masked paths (elastic cross behind FQ)
        actually read -- documenting the instrument artifact."""
        masked = [r for r in self.results if r.spec.isolation_masked]
        reads_contending = sum(1 for r in masked if r.verdict.contending)
        return {
            "n_masked": float(len(masked)),
            "reads_contending": float(reads_contending),
            "fraction_reads_contending":
                reads_contending / len(masked) if masked else 0.0,
        }

    def by_cross_traffic(self) -> dict[str, list[float]]:
        """Mean elasticity values grouped by cross-traffic type."""
        groups: dict[str, list[float]] = {}
        for r in self.results:
            groups.setdefault(r.spec.cross_traffic, []).append(
                r.verdict.mean_elasticity)
        return groups


def sample_paths(n_paths: int, seed: int = 0,
                 cross_traffic_mix: tuple[tuple[str, float], ...] = (
                     ("none", 0.25), ("video", 0.15), ("poisson", 0.15),
                     ("cbr", 0.10), ("reno", 0.20), ("bbr", 0.15)),
                 fq_fraction: float = 0.3,
                 medium: str = MEDIUM_DEFAULT) -> list[PathSpec]:
    """Sample a path population.

    Args:
        n_paths: how many paths.
        cross_traffic_mix: (name, probability) pairs.
        fq_fraction: fraction of paths with per-flow fair queueing at
            the bottleneck (the §2.1 isolation deployment knob).
        medium: bottleneck access regime for every path ("queue", or a
            CSMA/CA medium name -- a last-hop WLAN study population).
    """
    parse_medium(medium)  # raises ConfigError on bad values
    if n_paths <= 0:
        raise ConfigError(f"n_paths must be positive: {n_paths}")
    probs = [p for _, p in cross_traffic_mix]
    if abs(sum(probs) - 1.0) > 1e-9:
        raise ConfigError("cross_traffic_mix probabilities must sum to 1")
    rng = np.random.default_rng(seed)
    names = [n for n, _ in cross_traffic_mix]
    specs = []
    for i in range(n_paths):
        specs.append(PathSpec(
            rate_mbps=float(rng.choice([20, 48, 100, 200])),
            rtt_ms=float(rng.choice([20, 50, 100, 150])),
            qdisc="fq" if rng.random() < fq_fraction else "droptail",
            cross_traffic=str(names[rng.choice(len(names), p=probs)]),
            buffer_multiplier=float(rng.choice([0.5, 1.0, 2.0])),
            seed=int(rng.integers(0, 2**31)),
            medium=medium,
        ))
    return specs


def run_path(spec: PathSpec, duration: float = 30.0,
             detector: ContentionDetector | None = None,
             capacity_hint: bool = True,
             backend: str = "packet") -> PathResult:
    """Run one probe over one path.

    ``backend`` selects the simulation engine: ``"packet"`` (the
    event-driven reference) or ``"fluid"`` (the O(flows)-per-tick
    rate-based model in :mod:`repro.fluid` -- same result types,
    20-50x faster; see DESIGN.md for its validity envelope).
    """
    if backend == "fluid":
        from ..fluid import run_path_fluid
        return run_path_fluid(spec, duration=duration, detector=detector,
                              capacity_hint=capacity_hint)
    if backend != "packet":
        raise ConfigError(f"unknown backend {backend!r}")
    det = detector if detector is not None else ContentionDetector()
    sim = Simulator()
    rate = mbps(spec.rate_mbps)
    rtt = ms(spec.rtt_ms)
    buffer_packets = default_buffer_packets(rate, rtt,
                                            spec.buffer_multiplier)

    def make_qdisc():
        if spec.qdisc == "fq":
            return DrrFairQueue(limit_packets=buffer_packets)
        return DropTailQueue(limit_packets=buffer_packets)

    medium_spec = parse_medium(getattr(spec, "medium", MEDIUM_DEFAULT))
    if medium_spec is None:
        path = dumbbell(sim, rate, rtt, qdisc=make_qdisc())
    else:
        path = medium_dumbbell(sim, rate, rtt, medium_spec,
                               qdisc_factory=make_qdisc, seed=spec.seed)
    probe = ElasticityProbe(
        sim, path, capacity_hint=rate if capacity_hint else None)
    probe.start()
    cross = make_cross_traffic(spec.cross_traffic, sim, path, "cross",
                               seed=spec.seed)
    cross.start()
    sim.run(until=duration)
    report = probe.report()
    verdict = det.verdict(list(report.readings))
    return PathResult(spec=spec, report=report, verdict=verdict)


#: Default sentinel: ``run(store=...)`` omitted means "use the ambient
#: store from :func:`repro.store.active_store`".
_AUTO = object()


class Campaign:
    """A full measurement study over a sampled path population.

    >>> campaign = Campaign(n_paths=10, seed=1, duration=20.0)
    >>> result = campaign.run()            # doctest: +SKIP
    >>> result.fraction_contending         # doctest: +SKIP
    """

    def __init__(self, n_paths: int = 40, seed: int = 0,
                 duration: float = 30.0,
                 detector: ContentionDetector | None = None,
                 fq_fraction: float = 0.3,
                 cross_traffic_mix=None,
                 backend: str = "packet",
                 medium: str = MEDIUM_DEFAULT):
        if backend not in ("packet", "fluid"):
            raise ConfigError(f"unknown backend {backend!r}")
        kwargs = {}
        if cross_traffic_mix is not None:
            kwargs["cross_traffic_mix"] = cross_traffic_mix
        self.specs = sample_paths(n_paths, seed=seed,
                                  fq_fraction=fq_fraction,
                                  medium=medium, **kwargs)
        self.duration = duration
        self.backend = backend
        self.detector = detector if detector is not None \
            else ContentionDetector()

    # -- store fingerprints ----------------------------------------------

    def _task_config(self, spec: PathSpec) -> dict:
        config = {"spec": _spec_config(spec), "duration": self.duration,
                  "detector": self.detector.fingerprint_config()}
        # The packet backend is the historical default; omitting the
        # key keeps every pre-fluid cache entry addressable.
        if self.backend != "packet":
            config["backend"] = self.backend
        return config

    def path_key(self, spec: PathSpec) -> str:
        """The store fingerprint of one path's full task config."""
        from ..store import fingerprint
        return fingerprint(self._task_config(spec), kind="path")

    def fingerprint(self) -> str:
        """The whole campaign's config fingerprint (names the
        checkpoint manifest)."""
        from ..store import fingerprint
        config = {"specs": [_spec_config(s) for s in self.specs],
                  "duration": self.duration,
                  "detector": self.detector.fingerprint_config()}
        if self.backend != "packet":
            config["backend"] = self.backend
        return fingerprint(config, kind="campaign")

    # -- execution -------------------------------------------------------

    def run(self, progress=None, workers: int | None = None,
            chunk_size: int | None = None, store=_AUTO,
            resume: bool = False,
            policy: FaultPolicy | None = None) -> CampaignResult:
        """Run every path, optionally across worker processes.

        Each path simulation is independent and carries its own seed,
        so the result is bit-for-bit identical for any ``workers``
        value -- and, because cached results are the pickled originals,
        also identical between fresh, cached, and resumed runs; per-path
        results stay in ``self.specs`` order.

        Args:
            progress: optional ``fn(done, total)`` completion callback.
            workers: worker processes; ``None`` defers to the
                ``REPRO_WORKERS`` environment variable, then the CPU
                count.  ``workers=1`` forces the serial path.
            chunk_size: paths per dispatched task (default: automatic;
                1 when a store is active, so every completed path
                checkpoints immediately).
            store: a :class:`repro.store.ArtifactStore`; omitted means
                the ambient store (``REPRO_CACHE``), ``None`` disables
                caching outright.  With a store, completed paths are
                cached and checkpointed, failures are quarantined into
                :attr:`CampaignResult.failed`, and an interrupted
                campaign re-executes only its unfinished paths.
            resume: with a store, additionally honor the prior
                checkpoint manifest's quarantine list instead of
                retrying known-failed paths.
            policy: retry/timeout policy for the fault-tolerant path
                (store runs only; default :class:`FaultPolicy`).
        """
        job = functools.partial(run_path, duration=self.duration,
                                detector=self.detector,
                                backend=self.backend)
        if store is _AUTO:
            from ..store import active_store
            store = active_store()
        if store is None:
            # Default raising path: no cache, first failure propagates.
            results = parallel_map(job, self.specs, workers=workers,
                                   chunk_size=chunk_size,
                                   progress=progress)
            return CampaignResult(results=results)
        from ..store import ResumableScheduler
        labels = [f"path[{i}] {s.cross_traffic}@{s.qdisc} "
                  f"{s.rate_mbps:g}mbps/{s.rtt_ms:g}ms seed={s.seed}"
                  for i, s in enumerate(self.specs)]
        scheduler = ResumableScheduler(store, self.fingerprint(),
                                       resume=resume, kind="path")
        report = scheduler.run(
            job, self.specs, [self.path_key(s) for s in self.specs],
            labels=labels, workers=workers, chunk_size=chunk_size,
            policy=policy if policy is not None else FaultPolicy(),
            progress=progress)
        failed = [FailedPath(spec=self.specs[o.index], error=o.error,
                             error_type=o.error_type,
                             attempts=o.attempts)
                  for o in report.failed]
        return CampaignResult(
            results=[r for r in report.results if r is not None],
            failed=failed)
