"""Experiment E9: TSLP detects congestion; elasticity detects contention.

§4: time-series latency probes (Dhamdhere et al.) identify inflated
queueing delay but "cannot discriminate between cases where individual
flows contend for bandwidth and cases where aggregates consisting of
shorter and application-limited flows overwhelm a given link."

We run both instruments side by side on three paths:

* ``contention``  -- a backlogged Reno flow shares the link.
* ``aggregate``   -- a heavy Poisson short-flow aggregate loads the
  link (congestion without long-flow contention).
* ``idle``        -- nothing else.

Expected shape: TSLP flags *both* loaded paths as congested; the
elasticity probe confidently reports contention only on the true
contention path (the heavy aggregate -- transiently elastic TCP slow
starts -- lands at most in the inconclusive band).
"""

from __future__ import annotations

from .. import viz
from ..cca.reno import RenoCca
from ..core.detector import ContentionDetector
from ..core.probe import ElasticityProbe
from ..core.tslp import TslpProber, detect_congestion_episodes
from ..sim.engine import Simulator
from ..sim.network import dumbbell
from ..tcp.endpoint import Connection
from ..traffic.poisson import PoissonShortFlows
from ..units import mbps, ms, to_mbps, to_ms
from .runner import ExperimentResult, Stopwatch


def _add_scenario_traffic(scenario: str, sim, path, rate_mbps: float,
                          seed: int) -> None:
    if scenario == "contention":
        rival = Connection(sim, path, "rival", RenoCca())
        rival.sender.set_infinite_backlog()
    elif scenario == "aggregate":
        # >80% offered load of application-limited short flows: the
        # Dhamdhere-style overwhelmed-by-aggregates link (no long
        # flow ever leaves slow start).
        flows = PoissonShortFlows(sim, path, arrival_rate=100.0,
                                  mean_size=rate_mbps * 1250 / 2.0,
                                  seed=seed, prefix="agg")
        flows.start()
    elif scenario != "idle":
        raise ValueError(f"unknown scenario {scenario!r}")


def _run_scenario(scenario: str, rate_mbps: float, rtt_ms_val: float,
                  duration: float, seed: int) -> dict:
    # Each instrument measures the scenario in its own simulation: the
    # elasticity probe is load-bearing by design, and letting TSLP
    # watch the probe's standing queue would measure the instrument,
    # not the path.
    sim1 = Simulator()
    path1 = dumbbell(sim1, mbps(rate_mbps), ms(rtt_ms_val),
                     buffer_multiplier=1.0)
    tslp = TslpProber(sim1, path1, interval=0.05)
    tslp.start()
    _add_scenario_traffic(scenario, sim1, path1, rate_mbps, seed)
    sim1.run(until=duration)
    times, rtts = tslp.series()
    # Skip the ramp-up third: TSLP longitudinal studies judge steady
    # state, and TCP takes several seconds to fill a high-BDP pipe.
    warm = times >= duration / 3.0
    episodes = detect_congestion_episodes(times[warm], rtts[warm])

    sim2 = Simulator()
    path2 = dumbbell(sim2, mbps(rate_mbps), ms(rtt_ms_val),
                     buffer_multiplier=1.0)
    probe = ElasticityProbe(sim2, path2, capacity_hint=mbps(rate_mbps))
    probe.start()
    _add_scenario_traffic(scenario, sim2, path2, rate_mbps, seed)
    sim2.run(until=duration)
    verdict = ContentionDetector().verdict(list(probe.report().readings))

    return {
        "scenario": scenario,
        "tslp_congested": episodes.congested,
        "tslp_congested_fraction": round(episodes.congested_fraction, 3),
        "tslp_baseline_rtt_ms": round(to_ms(episodes.baseline_rtt), 2),
        "tslp_episodes": len(episodes.episodes),
        "elasticity": round(verdict.mean_elasticity, 3),
        "contention_verdict": verdict.contending,
        "category": verdict.category,
        "probe_mbps": round(to_mbps(
            probe.connection.receiver.received_bytes / duration), 2),
    }


def run(rate_mbps: float = 48.0, rtt_ms_val: float = 50.0,
        duration: float = 30.0, seed: int = 0) -> ExperimentResult:
    """Run the three scenarios and compare the instruments."""
    with Stopwatch() as watch:
        rows = [_run_scenario(s, rate_mbps, rtt_ms_val, duration, seed)
                for s in ("idle", "aggregate", "contention")]

    by_name = {r["scenario"]: r for r in rows}
    parts = [
        f"E9: TSLP vs elasticity probing on a {rate_mbps:.0f} Mbit/s, "
        f"{rtt_ms_val:.0f} ms link",
        "",
        viz.table(
            [(r["scenario"],
              "yes" if r["tslp_congested"] else "no",
              f"{r['tslp_congested_fraction']:.1%}",
              f"{r['elasticity']:.2f}", r["category"])
             for r in rows],
            header=("scenario", "TSLP: congested?", "inflated frac",
                    "elasticity", "probe verdict")),
        "",
        "Shape check: TSLP flags both loaded paths (it measures "
        "queueing); only the elasticity probe confidently separates "
        "the contending path from the overwhelmed-by-aggregates path "
        "(§4).",
    ]
    metrics = {
        "tslp_flags_aggregate": 1.0 if by_name["aggregate"][
            "tslp_congested"] else 0.0,
        "tslp_flags_contention": 1.0 if by_name["contention"][
            "tslp_congested"] else 0.0,
        "elasticity_aggregate": by_name["aggregate"]["elasticity"],
        "elasticity_contention": by_name["contention"]["elasticity"],
        "probe_flags_aggregate": 1.0 if by_name["aggregate"][
            "category"] == "contending" else 0.0,
        "probe_flags_contention": 1.0 if by_name["contention"][
            "category"] == "contending" else 0.0,
    }
    return ExperimentResult(
        experiment="tslp_vs_elasticity",
        text="\n".join(parts),
        metrics=metrics,
        tables={"scenarios": rows},
        params={"rate_mbps": rate_mbps, "rtt_ms": rtt_ms_val,
                "duration": duration, "seed": seed},
        elapsed_s=watch.elapsed,
    )
