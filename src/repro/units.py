"""Unit conventions and conversion helpers.

Internal conventions used throughout the package:

* time        -- seconds (float)
* data        -- bytes (int where possible)
* rate        -- bytes per second (float)
* cwnd        -- packets (float; fractional windows are meaningful for AIMD)

External interfaces (CLI flags, experiment configs, the paper's prose) speak
in megabits per second and milliseconds; these helpers translate at the
boundary so the core never mixes units.
"""

from __future__ import annotations

BITS_PER_BYTE = 8

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

#: Default maximum segment size (payload bytes per packet), matching the
#: common Ethernet MTU minus typical TCP/IP headers.
DEFAULT_MSS = 1448

#: Default full packet size on the wire (MSS plus 52 bytes of headers).
DEFAULT_PACKET_SIZE = 1500

#: Size of a bare ACK segment on the wire.
ACK_SIZE = 64


def mbps(value: float) -> float:
    """Convert megabits/second to bytes/second."""
    return value * MEGA / BITS_PER_BYTE


def to_mbps(rate_bps: float) -> float:
    """Convert bytes/second to megabits/second."""
    return rate_bps * BITS_PER_BYTE / MEGA


def kbps(value: float) -> float:
    """Convert kilobits/second to bytes/second."""
    return value * KILO / BITS_PER_BYTE


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / 1_000.0


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1_000.0


def usec(value: float) -> float:
    """Convert microseconds to seconds."""
    return value / 1_000_000.0


def to_usec(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1_000_000.0


def bdp_bytes(rate_bps: float, rtt_s: float) -> float:
    """Bandwidth-delay product in bytes."""
    return rate_bps * rtt_s


def bdp_packets(rate_bps: float, rtt_s: float,
                packet_size: int = DEFAULT_PACKET_SIZE) -> float:
    """Bandwidth-delay product in packets of ``packet_size`` bytes."""
    return bdp_bytes(rate_bps, rtt_s) / packet_size
