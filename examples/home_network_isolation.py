#!/usr/bin/env python3
"""A home access link, with and without isolation (§2.1 / §2.3).

Scenario: one household, a 100 Mbit/s access link, four concurrent
activities -- a 4K video stream, a cloud-gaming session, a bulk
download (software update, backlogged BBR), and web browsing.

We run the same household three times:

1. DropTail FIFO at the access link (everyone contends),
2. per-flow fair queueing (the paper's "cheap and easy" fix),
3. per-user HTB plans (two subscribers sharing the link).

and compare each application's throughput and the gamer's latency.

Run:  python examples/home_network_isolation.py
"""

from repro import viz
from repro.analysis import DelayMeter, jitter_metrics
from repro.cca import BbrCca
from repro.qdisc import DropTailQueue, DrrFairQueue
from repro.sim import Simulator, dumbbell
from repro.sim.network import default_buffer_packets
from repro.traffic import (BackloggedFlow, CloudGamingStream, VideoStream,
                           WebBrowsingUser)
from repro.units import mbps, ms, to_mbps, to_ms

RATE = mbps(100)
RTT = ms(20)
DURATION = 30.0


def run_household(qdisc_name: str) -> dict:
    sim = Simulator()
    buffer_packets = default_buffer_packets(RATE, RTT, 2.0)
    if qdisc_name == "fq":
        qdisc = DrrFairQueue(limit_packets=buffer_packets)
    else:
        qdisc = DropTailQueue(limit_packets=buffer_packets)
    path = dumbbell(sim, RATE, RTT, qdisc=qdisc)

    gaming_delay = DelayMeter(flow_filter=lambda f: f == "gaming")
    path.bottleneck.add_tap(gaming_delay.on_packet)

    video = VideoStream(sim, path, "video")
    gaming = CloudGamingStream(sim, path, "gaming", rtt_hint=RTT)
    update = BackloggedFlow(sim, path, "update", BbrCca())
    browsing = WebBrowsingUser(sim, path, think_time=3.0, prefix="web")
    for app in (video, gaming, update, browsing):
        app.start()
    sim.run(until=DURATION)

    _, delays = gaming_delay.as_arrays()
    jitter = jitter_metrics(delays[len(delays) // 5:])
    return {
        "qdisc": qdisc_name,
        "video_mbps": to_mbps(video.delivered_bytes / DURATION),
        "video_stalls": video.stats.stalls,
        "gaming_mbps": to_mbps(gaming.delivered_bytes / DURATION),
        "gaming_p99_delay_ms": to_ms(jitter["delay_p99"]),
        "update_mbps": to_mbps(update.delivered_bytes / DURATION),
        "web_pages": browsing.pages_loaded,
    }


def main() -> None:
    print(__doc__)
    rows = [run_household(q) for q in ("droptail", "fq")]
    print(viz.table(
        [(r["qdisc"], f"{r['video_mbps']:.1f}", r["video_stalls"],
          f"{r['gaming_mbps']:.1f}", f"{r['gaming_p99_delay_ms']:.1f}",
          f"{r['update_mbps']:.1f}", r["web_pages"])
         for r in rows],
        header=("qdisc", "video Mb/s", "stalls", "gaming Mb/s",
                "game p99 delay ms", "update Mb/s", "pages")))
    print()
    print("With FQ, the latency-sensitive apps keep their share and "
          "delay regardless of the backlogged BBR download -- the "
          "paper's point that isolation, not CCA dynamics, decides "
          "outcomes.")


if __name__ == "__main__":
    main()
