"""Benchmark P4: the parallel execution layer (serial vs parallel).

Measures wall-clock for the two paper-scale fan-outs -- the E7
campaign (one 30 s probe simulation per path) and the Figure 2 NDT
pipeline (categorize + change-point over 9,984 flows) -- serially and
with a worker pool, recording the speedup so the perf trajectory is
tracked across PRs.

One invariant is asserted regardless of machine size: parallel results
are **bit-for-bit identical** to serial results (each task carries its
own seed; results reassemble in submission order).

The >= 2x speedup assertion only applies on machines with >= 4 CPUs;
single-core CI boxes still verify determinism and record the numbers.
"""

import os
import time

from repro.core.campaign import Campaign
from repro.experiments import campaign_eval, fig2
from repro.ndt.pipeline import run_pipeline
from repro.ndt.synth import SyntheticNdtGenerator

from conftest import once

PARALLEL_WORKERS = 4
#: Speedup asserted at PARALLEL_WORKERS on machines with >= 4 CPUs.
MIN_SPEEDUP = 2.0


def _multicore() -> bool:
    return (os.cpu_count() or 1) >= 4


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def test_campaign_parallel_speedup_and_identity(benchmark, bench_scale):
    if bench_scale == "full":
        n_paths, duration = 48, 30.0
    else:
        n_paths, duration = 6, 5.0

    def both():
        wall_serial, serial = _timed(
            lambda: Campaign(n_paths=n_paths, seed=1,
                             duration=duration).run(workers=1))
        wall_par, parallel = _timed(
            lambda: Campaign(n_paths=n_paths, seed=1,
                             duration=duration)
            .run(workers=PARALLEL_WORKERS))
        return wall_serial, serial, wall_par, parallel

    wall_serial, serial, wall_par, parallel = once(benchmark, both)
    speedup = wall_serial / wall_par
    benchmark.extra_info["wall_serial_s"] = round(wall_serial, 3)
    benchmark.extra_info["wall_parallel_s"] = round(wall_par, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    print(f"\ncampaign {n_paths} paths: serial {wall_serial:.1f}s, "
          f"x{PARALLEL_WORKERS} {wall_par:.1f}s "
          f"(speedup {speedup:.2f})")

    # Determinism contract: bit-for-bit identical per-path results.
    assert serial.results == parallel.results
    assert serial.detector_quality() == parallel.detector_quality()
    if _multicore():
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x at {PARALLEL_WORKERS} workers "
            f"on {os.cpu_count()} CPUs, got {speedup:.2f}x")


def test_pipeline_parallel_speedup_and_identity(benchmark, bench_scale):
    n_flows = 9_984 if bench_scale == "full" else 1_000
    dataset = SyntheticNdtGenerator(seed=2023).generate(n_flows)

    def both():
        wall_serial, serial = _timed(
            lambda: run_pipeline(dataset, workers=1))
        wall_par, parallel = _timed(
            lambda: run_pipeline(dataset, workers=PARALLEL_WORKERS))
        return wall_serial, serial, wall_par, parallel

    wall_serial, serial, wall_par, parallel = once(benchmark, both)
    speedup = wall_serial / wall_par
    benchmark.extra_info["wall_serial_s"] = round(wall_serial, 3)
    benchmark.extra_info["wall_parallel_s"] = round(wall_par, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    print(f"\npipeline {n_flows} flows: serial {wall_serial:.1f}s, "
          f"x{PARALLEL_WORKERS} {wall_par:.1f}s "
          f"(speedup {speedup:.2f})")

    assert serial.flows == parallel.flows
    assert serial.counts == parallel.counts
    assert serial.remaining_with_shifts == parallel.remaining_with_shifts
    if _multicore():
        assert speedup >= MIN_SPEEDUP


def test_experiment_metrics_identical_across_workers(benchmark,
                                                     bench_scale):
    """The experiment-level metrics dicts (what EXPERIMENTS.md keys
    on) are bit-for-bit identical between serial and parallel runs."""
    if bench_scale == "full":
        n_paths, duration, n_flows = 12, 15.0, 2_000
    else:
        n_paths, duration, n_flows = 4, 5.0, 400

    def run_all():
        serial_c = campaign_eval.run(n_paths=n_paths, duration=duration,
                                     seed=1, workers=1)
        parallel_c = campaign_eval.run(n_paths=n_paths,
                                       duration=duration, seed=1,
                                       workers=PARALLEL_WORKERS)
        serial_f = fig2.run(n_flows=n_flows, seed=2023, workers=1)
        parallel_f = fig2.run(n_flows=n_flows, seed=2023,
                              workers=PARALLEL_WORKERS)
        return serial_c, parallel_c, serial_f, parallel_f

    serial_c, parallel_c, serial_f, parallel_f = once(benchmark, run_all)
    assert serial_c.metrics == parallel_c.metrics
    assert serial_c.tables == parallel_c.tables
    assert serial_f.metrics == parallel_f.metrics
    assert serial_f.tables == parallel_f.tables
