"""Turning elasticity readings into contention verdicts.

The probe emits a time series of elasticity values; a path is judged
to carry contending (elastic) cross traffic when the readings exceed a
threshold persistently.  The detector offers both the simple
mean-threshold rule and a fraction-above rule, and computes
precision/recall style quality measures against ground truth for the
campaign evaluation (E7).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .elasticity import ElasticityReading


@dataclass(frozen=True)
class DetectorVerdict:
    """One path's verdict.

    Attributes:
        contending: the detector's binary decision (confident band).
        category: three-way call -- "contending" (confidently elastic),
            "clean" (confidently not), or "inconclusive".  Two kinds of
            real traffic live in the gray zone by their nature:
            intermittently-elastic application traffic (ABR video's
            chunk transfers) and weakly pulse-reactive rate-based CCAs
            (BBRv1); an honest measurement study reports them as such
            rather than forcing a coin flip.
        mean_elasticity: mean over the readings considered.
        fraction_above: fraction of readings above threshold.
        n_readings: number of readings considered.
    """

    contending: bool
    category: str
    mean_elasticity: float
    fraction_above: float
    n_readings: int


class ContentionDetector:
    """Threshold detector over elasticity readings.

    Args:
        threshold: elasticity above this counts as elastic (the binary
            decision boundary, kept for simple callers).
        clean_below / contending_above: the three-way bands; between
            them the verdict category is "inconclusive".
        rule: "mean" (mean elasticity >= threshold) or "fraction"
            (>= ``min_fraction`` of readings above threshold).
        min_fraction: for the "fraction" rule.
        warmup: discard readings earlier than this time.
    """

    def __init__(self, threshold: float = 2.0, rule: str = "mean",
                 min_fraction: float = 0.3, warmup: float = 0.0,
                 clean_below: float = 1.5,
                 contending_above: float = 2.6):
        if threshold <= 0:
            raise ConfigError(f"threshold must be positive: {threshold}")
        if rule not in ("mean", "fraction"):
            raise ConfigError(f"unknown rule {rule!r}")
        if not 0 < min_fraction <= 1:
            raise ConfigError(f"min_fraction must be in (0, 1]: {min_fraction}")
        if not 0 < clean_below <= contending_above:
            raise ConfigError("need 0 < clean_below <= contending_above")
        self.threshold = threshold
        self.rule = rule
        self.min_fraction = min_fraction
        self.warmup = warmup
        self.clean_below = clean_below
        self.contending_above = contending_above

    def fingerprint_config(self) -> dict:
        """Canonical config for :mod:`repro.store` fingerprints: two
        detectors with equal parameters must hash identically."""
        return {
            "threshold": self.threshold,
            "rule": self.rule,
            "min_fraction": self.min_fraction,
            "warmup": self.warmup,
            "clean_below": self.clean_below,
            "contending_above": self.contending_above,
        }

    def verdict(self, readings: list[ElasticityReading] | tuple
                ) -> DetectorVerdict:
        """Judge one path's readings."""
        usable = [r for r in readings if r.time >= self.warmup]
        if not usable:
            return DetectorVerdict(contending=False, category="clean",
                                   mean_elasticity=0.0,
                                   fraction_above=0.0, n_readings=0)
        values = [r.elasticity for r in usable]
        mean = sum(values) / len(values)
        above = sum(1 for v in values if v >= self.threshold) / len(values)
        if self.rule == "mean":
            contending = mean >= self.threshold
        else:
            contending = above >= self.min_fraction
        if mean >= self.contending_above:
            category = "contending"
        elif mean < self.clean_below:
            category = "clean"
        else:
            category = "inconclusive"
        return DetectorVerdict(contending=contending, category=category,
                               mean_elasticity=mean,
                               fraction_above=above, n_readings=len(usable))


def confusion_counts(verdicts: list[bool], truths: list[bool]
                     ) -> dict[str, float]:
    """Precision/recall/accuracy of detector verdicts vs ground truth."""
    if len(verdicts) != len(truths):
        raise ConfigError("verdicts and truths must align")
    tp = sum(1 for v, t in zip(verdicts, truths) if v and t)
    fp = sum(1 for v, t in zip(verdicts, truths) if v and not t)
    tn = sum(1 for v, t in zip(verdicts, truths) if not v and not t)
    fn = sum(1 for v, t in zip(verdicts, truths) if not v and t)
    total = max(1, len(verdicts))
    return {
        "tp": float(tp), "fp": float(fp), "tn": float(tn), "fn": float(fn),
        "precision": tp / (tp + fp) if tp + fp else 1.0,
        "recall": tp / (tp + fn) if tp + fn else 1.0,
        "accuracy": (tp + tn) / total,
    }
