"""Crash-safe file writes: tmp file in the target directory + ``os.replace``.

Every artifact this package persists -- store objects, the JSON index,
checkpoint manifests, experiment reports -- goes through these helpers,
so a run killed mid-write (Ctrl-C, OOM, power loss) leaves either the
complete previous file or the complete new file, never a truncated mix.
The tmp file lives next to the target because ``os.replace`` is atomic
only within one filesystem.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path


@contextlib.contextmanager
def atomic_open(path: str | Path, mode: str = "w", **open_kwargs):
    """Open a temp file next to ``path``; atomically replace on success.

    Yields a file object.  If the body completes, the temp file is
    fsynced and renamed over ``path``; on any exception the temp file
    is removed and ``path`` is untouched.  Parent directories are
    created as needed.

    >>> import tempfile, pathlib
    >>> target = pathlib.Path(tempfile.mkdtemp()) / "x.txt"
    >>> with atomic_open(target) as f:
    ...     _ = f.write("done")
    >>> target.read_text()
    'done'
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, mode, **open_kwargs) as f:
            yield f
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically write ``text`` to ``path``; returns the path."""
    with atomic_open(path, "w") as f:
        f.write(text)
    return Path(path)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically write ``data`` to ``path``; returns the path."""
    with atomic_open(path, "wb") as f:
        f.write(data)
    return Path(path)


def atomic_write_json(path: str | Path, payload, *, indent: int | None = 2,
                      default=None) -> Path:
    """Atomically dump ``payload`` as JSON to ``path``; returns the path."""
    with atomic_open(path, "w") as f:
        json.dump(payload, f, indent=indent, default=default,
                  sort_keys=False)
        f.write("\n")
    return Path(path)
