"""Benchmark E4: token-bucket shaping causes jitter contention (§5.2).

Asserts: with bandwidth isolation held constant, a live stream's delay
jitter grows with the token-bucket burst size, and the largest burst is
much worse than a smooth shaper -- contention has moved to jitter.
"""

from repro.experiments import tbf_jitter

from conftest import once


def test_tbf_jitter(benchmark, bench_scale):
    duration = 20.0 if bench_scale == "full" else 8.0
    result = once(benchmark, tbf_jitter.run, duration=duration)

    print()
    print(result.text)

    m = result.metrics
    assert m["span_amplification"] > 2.0, (
        "big token-bucket bursts should amplify the live stream's "
        "RFC 3550 jitter well beyond the smooth shaper")
    rows = result.tables["jitter"]
    # The largest burst is the worst offender on at least one statistic.
    last = rows[-1]
    others = rows[1:-1]
    assert (all(last["jitter_ms"] >= r["jitter_ms"] for r in others)
            or all(last["delay_p99_ms"] >= r["delay_p99_ms"]
                   for r in others))
