"""Periodic samplers for link and queue state.

Experiments often need the bottleneck's occupancy/utilization over
time (standing-queue plots, buffer sizing studies).  These samplers
poll simulator objects on a fixed cadence and keep plain arrays.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError, ConfigError
from .engine import Simulator


class QueueMonitor:
    """Sample a qdisc's occupancy every ``interval`` seconds.

    Args:
        sim: the simulator.
        qdisc: any object with ``__len__`` and ``byte_length``.
        interval: sampling cadence.
    """

    def __init__(self, sim: Simulator, qdisc, interval: float = 0.05):
        if interval <= 0:
            raise ConfigError(f"interval must be positive: {interval}")
        self.sim = sim
        self.qdisc = qdisc
        self.interval = interval
        self.times: list[float] = []
        self.packets: list[int] = []
        self.bytes: list[int] = []
        self._running = False

    def start(self) -> None:
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.times.append(self.sim.now)
        self.packets.append(len(self.qdisc))
        self.bytes.append(self.qdisc.byte_length)
        self.sim.schedule(self.interval, self._tick)

    def occupancy_stats(self) -> dict[str, float]:
        """Mean/p95/max queue occupancy in packets and bytes."""
        if not self.times:
            raise AnalysisError("monitor has no samples; call start()")
        pkts = np.asarray(self.packets, dtype=float)
        byts = np.asarray(self.bytes, dtype=float)
        return {
            "mean_packets": float(pkts.mean()),
            "p95_packets": float(np.percentile(pkts, 95)),
            "max_packets": float(pkts.max()),
            "mean_bytes": float(byts.mean()),
            "p95_bytes": float(np.percentile(byts, 95)),
            "max_bytes": float(byts.max()),
        }

    def standing_delay(self, rate_bps: float) -> float:
        """Median queueing delay implied by occupancy at ``rate_bps``."""
        if not self.times:
            raise AnalysisError("monitor has no samples; call start()")
        return float(np.median(self.bytes)) / rate_bps


class UtilizationMonitor:
    """Sample a link's delivered-byte counter into utilization bins.

    Args:
        sim: the simulator.
        link: any object with ``delivered_bytes`` and ``rate``.
        interval: bin width.
    """

    def __init__(self, sim: Simulator, link, interval: float = 0.5):
        if interval <= 0:
            raise ConfigError(f"interval must be positive: {interval}")
        self.sim = sim
        self.link = link
        self.interval = interval
        self.times: list[float] = []
        self.utilization: list[float] = []
        self._last_bytes = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._last_bytes = self.link.delivered_bytes
        self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        delivered = self.link.delivered_bytes
        rate = (delivered - self._last_bytes) / self.interval
        self._last_bytes = delivered
        self.times.append(self.sim.now)
        self.utilization.append(rate / self.link.rate)
        self.sim.schedule(self.interval, self._tick)

    @property
    def mean_utilization(self) -> float:
        if not self.utilization:
            raise AnalysisError("monitor has no samples; call start()")
        return float(np.mean(self.utilization))
