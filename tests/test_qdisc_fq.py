"""Unit tests for DRR fair queueing and SFQ."""

from hypothesis import given, strategies as st

from repro.qdisc import DrrFairQueue, StochasticFairQueue, by_user
from repro.sim.packet import make_data


def pkt(flow, size=1500, user=""):
    return make_data(flow, seq=0, payload=size - 52, size=size,
                     user_id=user)


def drain(q, now=0.0):
    out = []
    while True:
        p = q.dequeue(now)
        if p is None:
            return out
        out.append(p)


def test_round_robin_between_two_flows():
    q = DrrFairQueue(limit_packets=100)
    for _ in range(3):
        q.enqueue(pkt("a"), 0.0)
    for _ in range(3):
        q.enqueue(pkt("b"), 0.0)
    order = [p.flow_id for p in drain(q)]
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_single_flow_passes_through():
    q = DrrFairQueue(limit_packets=10)
    packets = [pkt("only") for _ in range(4)]
    for p in packets:
        q.enqueue(p, 0.0)
    assert drain(q) == packets


def test_byte_fairness_with_unequal_packet_sizes():
    # Flow "small" sends 500B packets, flow "big" sends 1500B packets.
    # Over a full drain each should get ~equal bytes, i.e. small should
    # send ~3 packets per big packet.
    q = DrrFairQueue(limit_packets=1000, quantum=1500)
    for _ in range(90):
        q.enqueue(pkt("small", size=500), 0.0)
    for _ in range(30):
        q.enqueue(pkt("big", size=1500), 0.0)
    first_forty = drain(q)[:40]
    small_bytes = sum(p.size for p in first_forty if p.flow_id == "small")
    big_bytes = sum(p.size for p in first_forty if p.flow_id == "big")
    assert abs(small_bytes - big_bytes) <= 2 * 1500


def test_overflow_drops_from_longest_queue():
    q = DrrFairQueue(limit_packets=4)
    for _ in range(3):
        q.enqueue(pkt("hog"), 0.0)
    q.enqueue(pkt("mouse"), 0.0)
    q.enqueue(pkt("mouse"), 0.0)  # exceeds limit, hog should pay
    assert q.drops == 1
    flows = [p.flow_id for p in drain(q)]
    assert flows.count("hog") == 2
    assert flows.count("mouse") == 2


def test_enqueue_returns_false_when_own_packet_dropped():
    q = DrrFairQueue(limit_packets=2)
    q.enqueue(pkt("hog"), 0.0)
    q.enqueue(pkt("hog"), 0.0)
    # hog is the longest queue, so its own tail gets dropped.
    assert q.enqueue(pkt("hog"), 0.0) is False


def test_classify_by_user_isolates_users_not_flows():
    q = DrrFairQueue(limit_packets=100, classify=by_user)
    for i in range(4):
        q.enqueue(pkt(f"alice-flow-{i}", user="alice"), 0.0)
    q.enqueue(pkt("bob-flow", user="bob"), 0.0)
    order = [p.user_id for p in drain(q)[:2]]
    assert order == ["alice", "bob"]


def test_active_queue_count():
    q = DrrFairQueue(limit_packets=10)
    q.enqueue(pkt("a"), 0.0)
    q.enqueue(pkt("b"), 0.0)
    assert q.active_queues == 2
    drain(q)
    assert q.active_queues == 0


def test_sfq_hashes_flows_to_buckets():
    q = StochasticFairQueue(limit_packets=100, buckets=2, salt=1)
    flows = [f"flow{i}" for i in range(8)]
    for f in flows:
        q.enqueue(pkt(f), 0.0)
    assert q.active_queues <= 2
    assert len(drain(q)) == 8


def test_sfq_salt_changes_mapping():
    # With enough flows, different salts should produce different
    # interleavings at least sometimes; we only assert both drain fully.
    for salt in (0, 1):
        q = StochasticFairQueue(limit_packets=100, buckets=4, salt=salt)
        for i in range(10):
            q.enqueue(pkt(f"f{i}"), 0.0)
        assert len(drain(q)) == 10


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=60))
def test_property_work_conserving_no_losses(flows):
    q = DrrFairQueue(limit_packets=100)
    for f in flows:
        q.enqueue(pkt(f), 0.0)
    assert len(drain(q)) == len(flows)
    assert q.byte_length == 0
    assert len(q) == 0


@given(st.lists(st.sampled_from(["x", "y"]), min_size=10, max_size=60))
def test_property_per_flow_order_preserved(flows):
    q = DrrFairQueue(limit_packets=100)
    sent = {"x": [], "y": []}
    for f in flows:
        p = pkt(f)
        sent[f].append(p.packet_id)
        q.enqueue(p, 0.0)
    got = {"x": [], "y": []}
    for p in drain(q):
        got[p.flow_id].append(p.packet_id)
    assert got == sent
