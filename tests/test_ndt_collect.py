"""Tests for collecting NDT records from live simulations."""

import pytest

from repro.cca import CubicCca, RenoCca
from repro.ndt import NdtCollector, analyse_flow
from repro.ndt.filters import FlowCategory
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms, to_mbps


def collect(duration=10.0, rwnd=None, competitor_at=None,
            rate_mbps=50.0):
    sim = Simulator()
    path = dumbbell(sim, mbps(rate_mbps), ms(30))
    collector = NdtCollector(sim, path, "test", duration=duration,
                             cca=CubicCca(), rwnd_bytes=rwnd)
    collector.start()
    if competitor_at is not None:
        def rival():
            conn = Connection(sim, path, "rival", RenoCca())
            conn.sender.set_infinite_backlog()
        sim.schedule(competitor_at, rival)
    sim.run(until=duration + 0.5)
    return collector.record(access_rate_bps=mbps(rate_mbps))


class TestCollector:
    def test_snapshot_cadence(self):
        record = collect()
        assert len(record.snapshots) == 40  # 10 s / 250 ms
        elapsed = [s.elapsed_time_us for s in record.snapshots]
        assert elapsed == sorted(elapsed)

    def test_bulk_test_saturates_and_is_remaining(self):
        record = collect()
        assert to_mbps(record.mean_throughput_bps) > 35.0
        analysis = analyse_flow(record)
        assert analysis.category is FlowCategory.REMAINING

    def test_clean_path_shows_no_level_shift(self):
        record = collect()
        assert not analyse_flow(record).inferred_contention

    def test_competitor_arrival_shows_level_shift(self):
        record = collect(competitor_at=4.0)
        analysis = analyse_flow(record)
        assert analysis.inferred_contention

    def test_rwnd_limited_test_categorized(self):
        record = collect(rwnd=32_000)
        analysis = analyse_flow(record)
        assert analysis.category is FlowCategory.RWND_LIMITED

    def test_record_interoperates_with_schema(self):
        record = collect()
        clone = type(record).from_json(record.to_json())
        assert clone.mean_throughput_bps == pytest.approx(
            record.mean_throughput_bps)
