"""The scenario feature map: bucket functions, cell ids, and the
corpus-admission accounting guided search is built on."""

import pytest

from repro.errors import ConfigError
from repro.qa.features import (FeatureMap, buffer_bucket, cca_mix_class,
                               confidence_bucket, detector_confidence,
                               feature_cell, jitter_bucket, load_bucket,
                               probe_share_bucket,
                               queue_residency_bucket)
from repro.qa.scenario import FlowSpec, Scenario, run_scenario


def _flows_scenario(**kwargs) -> Scenario:
    base = dict(family="flows", rate_mbps=8.0, rtt_ms=20.0,
                qdisc="droptail", duration=3.0, seed=1,
                flows=(FlowSpec(cca="reno", rate_frac=0.5, user_id="a"),),
                backend="fluid")
    base.update(kwargs)
    return Scenario(**base)


def _probe_scenario(**kwargs) -> Scenario:
    base = dict(family="probe", rate_mbps=20.0, rtt_ms=20.0,
                qdisc="droptail", duration=12.0, seed=1,
                cross_traffic="none", backend="fluid")
    base.update(kwargs)
    return Scenario(**base)


def test_cca_mix_class():
    assert cca_mix_class(_probe_scenario()) == "probe"
    assert cca_mix_class(_flows_scenario()) == "loss"
    mixed = _flows_scenario(flows=(
        FlowSpec(cca="reno", rate_frac=0.3, user_id="a"),
        FlowSpec(cca="vegas", rate_frac=0.3, user_id="b")))
    assert cca_mix_class(mixed) == "mixed"
    same_class = _flows_scenario(flows=(
        FlowSpec(cca="reno", rate_frac=0.3, user_id="a"),
        FlowSpec(cca="cubic", rate_frac=0.3, user_id="b")))
    assert cca_mix_class(same_class) == "loss"


def test_scenario_side_buckets():
    assert buffer_bucket(_flows_scenario(buffer_multiplier=0.5)) \
        == "shallow"
    assert buffer_bucket(_flows_scenario(buffer_multiplier=1.0)) == "bdp"
    assert buffer_bucket(_flows_scenario(buffer_multiplier=4.0)) == "deep"
    assert jitter_bucket(_flows_scenario()) == "none"
    assert jitter_bucket(_flows_scenario(timing_jitter=0.1)) == "low"
    assert jitter_bucket(_flows_scenario(timing_jitter=0.3)) == "high"


def test_confidence_buckets():
    assert confidence_bucket(None) == "n/a"
    assert confidence_bucket(0.1) == "critical"
    assert confidence_bucket(0.5) == "low"
    assert confidence_bucket(2.0) == "mid"
    assert confidence_bucket(5.0) == "high"


def test_outcome_buckets_from_real_runs():
    flows = _flows_scenario()
    outcome = run_scenario(flows)
    assert load_bucket(flows, outcome) in ("light", "moderate",
                                           "heavy", "saturated")
    assert detector_confidence(outcome) is None
    assert probe_share_bucket(outcome) == "n/a"
    probe = _probe_scenario()
    probe_outcome = run_scenario(probe)
    confidence = detector_confidence(probe_outcome)
    assert confidence is not None and confidence >= 0.0
    share = probe_share_bucket(probe_outcome)
    assert "-" in share and share != "n/a"


def test_feature_cell_id_is_stable_and_complete():
    scenario = _probe_scenario()
    outcome = run_scenario(scenario)
    cell = feature_cell(scenario, outcome)
    parts = cell.as_id().split("|")
    assert len(parts) == 11
    assert parts[0] == "droptail"
    assert parts[1] == "probe"
    assert parts[2] == "none"
    assert parts[5] == "none"  # jitter component, position the
    assert parts[6] == "fluid"  # experiment's cell parser relies on
    assert parts[9] in ("empty", "transient", "standing", "full")
    assert parts[10] == "queue"  # medium is appended last (back-compat)
    assert cell == feature_cell(scenario, outcome)


def test_queue_residency_buckets():
    import dataclasses

    from repro.sim.network import default_buffer_packets
    from repro.units import mbps, ms

    scenario = _flows_scenario()
    outcome = run_scenario(scenario)
    buf = default_buffer_packets(mbps(scenario.rate_mbps),
                                 ms(scenario.rtt_ms),
                                 scenario.buffer_multiplier)

    def bucket(**stats):
        patched = dataclasses.replace(
            outcome, qdisc_stats={**outcome.qdisc_stats, **stats})
        return queue_residency_bucket(scenario, patched)

    assert bucket(residual_packets=0.0, drops=0.0) == "empty"
    assert bucket(residual_packets=0.0, drops=3.0) == "transient"
    assert bucket(residual_packets=0.05 * buf, drops=0.0) == "transient"
    assert bucket(residual_packets=0.5 * buf, drops=0.0) == "standing"
    assert bucket(residual_packets=1.0 * buf, drops=9.0) == "full"


def test_feature_map_accounting():
    fmap = FeatureMap()
    scenario = _probe_scenario()
    outcome = run_scenario(scenario)
    cell, new_cell, new_min = fmap.observe(scenario, outcome)
    assert new_cell and not new_min  # first sight is "new cell" only
    assert fmap.coverage == 1
    _, again_new, again_min = fmap.observe(scenario, outcome,
                                           failed=True)
    assert not again_new and not again_min  # same confidence: no min
    stats = fmap.cells[cell.as_id()]
    assert stats["hits"] == 2 and stats["failures"] == 1
    assert fmap.min_confidence() == detector_confidence(outcome)


def test_feature_map_new_minimum_detection():
    import dataclasses
    fmap = FeatureMap()
    scenario = _probe_scenario()
    real = run_scenario(scenario)
    # Pin the elasticity so both observations share a confidence
    # bucket (and thus a cell) while the confidence itself drops:
    # 3.5 and 3.2 are both distance >= 1.0 from the threshold ("mid").
    first = dataclasses.replace(
        real, probe={**real.probe, "mean_elasticity": 3.5})
    lower = dataclasses.replace(
        real, probe={**real.probe, "mean_elasticity": 3.2})
    cell, new_cell, new_min = fmap.observe(scenario, first)
    assert new_cell and not new_min
    got, again_new, again_min = fmap.observe(scenario, lower)
    assert got.as_id() == cell.as_id()
    assert not again_new and again_min
    assert fmap.cells[cell.as_id()]["min_confidence"] \
        == pytest.approx(1.2)
    # Moving back up never counts as a new minimum.
    _, _, worse_min = fmap.observe(scenario, first)
    assert not worse_min


def test_feature_map_to_dict_is_sorted_and_deterministic():
    fmap = FeatureMap()
    for seed in (5, 3, 9):
        scenario = _flows_scenario(seed=seed,
                                   qdisc=("fq" if seed == 3 else "red"))
        fmap.observe(scenario, run_scenario(scenario))
    payload = fmap.to_dict()
    assert list(payload["cells"]) == sorted(payload["cells"])
    assert payload["coverage"] == fmap.coverage
    import json
    assert json.dumps(payload, sort_keys=True) \
        == json.dumps(fmap.to_dict(), sort_keys=True)


def test_feature_map_rejects_bad_threshold():
    with pytest.raises(ConfigError):
        FeatureMap(threshold=0.0)
    with pytest.raises(ConfigError):
        FeatureMap(qdisc_thresholds={"codel": 0.0})
    with pytest.raises(ConfigError):
        FeatureMap(qdisc_thresholds={"codel": "hot"})


def test_per_qdisc_thresholds_override_bucketing():
    import dataclasses

    fmap = FeatureMap(threshold=2.0, qdisc_thresholds={"codel": 1.0})
    assert fmap.threshold_for("codel") == 1.0
    assert fmap.threshold_for("droptail") == 2.0
    assert fmap.to_dict()["qdisc_thresholds"] == {"codel": 1.0}

    scenario = _probe_scenario(qdisc="codel")
    real = run_scenario(scenario)
    pinned = dataclasses.replace(
        real, probe={**real.probe, "mean_elasticity": 3.5})
    # distance 1.5 from the default threshold ("mid"), but 2.5 from
    # the codel override -- the override must win the cell bucket.
    cell, _, _ = fmap.observe(scenario, pinned)
    assert cell.confidence == "high"
    default_cell, _, _ = FeatureMap(threshold=2.0).observe(scenario,
                                                           pinned)
    assert default_cell.confidence == "mid"
