"""Benchmark E1 / Figure 2: the §3.1 NDT pipeline at paper scale.

Regenerates the Figure 2 breakdown over 9,984 synthetic flows (the
paper's June 2023 sample size) and asserts the paper-shape results:
a large majority of flows filtered as app-/receiver-limited or
cellular, a small residual fraction with throughput level shifts, and
the policed-flow ambiguity that motivates §3.2.

Also ablates the change-point algorithm choice (PELT vs binary
segmentation), the design decision DESIGN.md calls out.
"""

import numpy as np

from repro.analysis import binary_segmentation, pelt
from repro.experiments import fig2
from repro.ndt import SyntheticNdtGenerator

from conftest import once


def test_fig2_paper_scale(benchmark, bench_scale):
    n_flows = 9_984 if bench_scale == "full" else 1_000
    result = once(benchmark, fig2.run, n_flows=n_flows, seed=2023)

    print()
    print(result.text)

    m = result.metrics
    # Paper shape: most flows removed by the §3.1 filters.
    assert m["fraction_filtered"] > 0.55
    # Only a small residual fraction shows level shifts.
    assert m["fraction_possible_contention"] < 0.20
    # The passive signal is imperfect: precision < 1 (policed flows),
    # which is the paper's argument for the active technique.
    assert m["detector_precision"] < 0.999
    assert m["detector_recall"] > 0.9


def test_fig2_changepoint_algorithm_ablation(benchmark):
    """PELT and binary segmentation agree on the headline fraction."""
    dataset = SyntheticNdtGenerator(seed=2023).generate(400)
    series = [r.throughput_series() for r in dataset.records]

    def run_both():
        pelt_changes = sum(
            1 for s in series if pelt(s, min_segment=4).num_changes)
        binseg_changes = sum(
            1 for s in series
            if binary_segmentation(s, min_segment=4).num_changes)
        return pelt_changes, binseg_changes

    pelt_n, binseg_n = once(benchmark, run_both)
    assert abs(pelt_n - binseg_n) <= 0.2 * max(pelt_n, binseg_n, 1)


def test_fig2_shift_threshold_sensitivity(benchmark):
    """The headline fraction is stable across reasonable shift
    thresholds (0.15-0.35): the conclusion is not knife-edge."""

    def sweep():
        return [fig2.run(n_flows=800, seed=2023,
                         min_relative_shift=s).metrics[
                             "fraction_possible_contention"]
                for s in (0.15, 0.25, 0.35)]

    fractions = once(benchmark, sweep)
    assert max(fractions) - min(fractions) < 0.10
    assert all(f < 0.2 for f in fractions)


def test_fig2_population_sensitivity(benchmark):
    """The Figure 2 conclusion (most flows filtered, small residual
    with shifts) is stable across plausible population mixes, not an
    artifact of the default calibration."""
    from repro.ndt import PopulationModel

    mixes = []
    for app_limited in (0.35, 0.45, 0.55):
        rest = 1.0 - app_limited - 0.14 - 0.07
        mixes.append(PopulationModel(class_mix=(
            ("app_limited", app_limited),
            ("rwnd_limited", 0.14),
            ("bulk_clean", round(rest * 0.7, 6)),
            ("bulk_contended", round(rest * 0.3, 6)),
            ("policed", 0.07),
        )))

    def sweep():
        return [fig2.run(n_flows=800, seed=2023, model=m).metrics
                for m in mixes]

    results = once(benchmark, sweep)
    for metrics in results:
        assert metrics["fraction_filtered"] > 0.5
        assert metrics["fraction_possible_contention"] < 0.2
