# Developer entry points.  Everything runs from the repo root with the
# in-tree sources (PYTHONPATH=src), no install step needed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick bench-full serve serve-smoke

## tier-1 test suite (the CI gate)
test:
	$(PYTHON) -m pytest -x -q

## full paper-scale benchmark suite (minutes; add -s to stream reports)
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## quick perf smoke: timing-disabled core benches + the built-in bench
bench-quick:
	REPRO_BENCH_SCALE=small $(PYTHON) -m pytest \
		benchmarks/bench_perf_core.py benchmarks/bench_parallel.py \
		--benchmark-disable -q
	$(PYTHON) -m repro bench

## paper-scale built-in bench (serial vs parallel wall clock)
bench-full:
	$(PYTHON) -m repro bench --full

## run the always-on experiment service (see SERVING.md)
serve:
	$(PYTHON) -m repro serve

## end-to-end service smoke: submit over HTTP, cache hit, clean drain
serve-smoke:
	$(PYTHON) benchmarks/serve_smoke.py
