"""Tests for the NDT schema, synthetic population, filters, and pipeline."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigError
from repro.ndt import (FlowCategory, NdtDataset, NdtRecord,
                       PopulationModel, SyntheticNdtGenerator, analyse_flow,
                       categorize, infer_cellular, is_app_limited,
                       is_rwnd_limited, run_pipeline)
from repro.tcp.tcp_info import TcpInfoSnapshot


def snap(elapsed_s, acked, app_us=0.0, rwnd_us=0.0, tput=1e6):
    return TcpInfoSnapshot(
        elapsed_time_us=elapsed_s * 1e6, bytes_acked=acked,
        bytes_sent=acked, bytes_retrans=0, busy_time_us=elapsed_s * 1e6,
        rwnd_limited_us=rwnd_us, app_limited_us=app_us,
        cwnd_limited_us=0.0, min_rtt_s=0.02, smoothed_rtt_s=0.03,
        throughput_bps=tput, retransmits=0)


def record(snaps=None, access="cable", app_us=0.0, rwnd_us=0.0,
           rates=None, true_contention=False):
    if snaps is None:
        rates = rates if rates is not None else [1e6] * 10
        acked, snaps, total = 0, [], 0.0
        for i, rate in enumerate(rates):
            total += 1.0
            acked += int(rate)
            snaps.append(snap(total, acked, app_us=app_us,
                              rwnd_us=rwnd_us, tput=rate))
    return NdtRecord(uuid="t", duration_s=10.0, access_type=access,
                     access_rate_bps=10e6, snapshots=tuple(snaps),
                     true_contention=true_contention)


class TestSchema:
    def test_throughput_series_from_snapshots(self):
        rec = record(rates=[1e6, 2e6, 3e6])
        series = rec.throughput_series()
        assert series == pytest.approx([2e6, 3e6])

    def test_mean_throughput(self):
        rec = record(rates=[2e6] * 10)
        assert rec.mean_throughput_bps == pytest.approx(2e6)

    def test_requires_two_snapshots(self):
        with pytest.raises(AnalysisError):
            NdtRecord(uuid="x", duration_s=1.0, access_type="cable",
                      access_rate_bps=1e6, snapshots=(snap(1.0, 100),))

    def test_unknown_access_type_rejected(self):
        with pytest.raises(AnalysisError):
            record(access="carrier-pigeon")

    def test_json_round_trip(self):
        rec = record(rates=[1e6, 2e6, 3e6], true_contention=True)
        clone = NdtRecord.from_json(rec.to_json())
        assert clone.uuid == rec.uuid
        assert clone.true_contention
        assert clone.throughput_series() == pytest.approx(
            rec.throughput_series())

    def test_dataset_jsonl_round_trip(self, tmp_path):
        ds = SyntheticNdtGenerator(seed=3).generate(20)
        path = tmp_path / "data.jsonl"
        ds.save_jsonl(path)
        loaded = NdtDataset.load_jsonl(path)
        assert len(loaded) == 20
        assert loaded.records[0].uuid == ds.records[0].uuid


class TestFilters:
    def test_app_limited_detection(self):
        assert is_app_limited(record(app_us=1.0))
        assert not is_app_limited(record())

    def test_rwnd_limited_detection(self):
        assert is_rwnd_limited(record(rwnd_us=1.0))
        assert not is_rwnd_limited(record())

    def test_cellular_by_metadata(self):
        assert infer_cellular(record(access="cellular"))
        assert infer_cellular(record(access="satellite"))

    def test_cellular_by_variability(self):
        rng = np.random.default_rng(0)
        wild = [5e6 * float(np.exp(rng.normal(0, 0.5)))
                for _ in range(20)]
        assert infer_cellular(record(access="cable", rates=wild))
        assert not infer_cellular(record(access="cable",
                                         rates=[5e6] * 20))

    def test_categorize_order(self):
        # App-limited wins even if also cellular.
        rec = record(access="cellular", app_us=5.0)
        assert categorize(rec) is FlowCategory.APP_LIMITED
        assert categorize(record(access="cellular")) \
            is FlowCategory.CELLULAR
        assert categorize(record()) is FlowCategory.REMAINING


class TestSynth:
    def test_generates_requested_count(self):
        assert len(SyntheticNdtGenerator(seed=1).generate(50)) == 50

    def test_deterministic_given_seed(self):
        a = SyntheticNdtGenerator(seed=9).generate(10)
        b = SyntheticNdtGenerator(seed=9).generate(10)
        for ra, rb in zip(a.records, b.records):
            assert ra.to_json() == rb.to_json()

    def test_seed_changes_data(self):
        a = SyntheticNdtGenerator(seed=1).generate(5)
        b = SyntheticNdtGenerator(seed=2).generate(5)
        assert any(ra.to_json() != rb.to_json()
                   for ra, rb in zip(a.records, b.records))

    def test_class_mix_roughly_respected(self):
        ds = SyntheticNdtGenerator(seed=5).generate(2000)
        counts = {}
        for rec in ds.records:
            counts[rec.true_class] = counts.get(rec.true_class, 0) + 1
        assert counts["app_limited"] / 2000 == pytest.approx(0.45,
                                                             abs=0.05)
        assert counts["policed"] / 2000 == pytest.approx(0.07, abs=0.03)

    def test_contended_flows_flagged(self):
        ds = SyntheticNdtGenerator(seed=5).generate(500)
        contended = [r for r in ds.records
                     if r.true_class == "bulk_contended"]
        assert contended
        assert all(r.true_contention for r in contended)
        others = [r for r in ds.records
                  if r.true_class != "bulk_contended"]
        assert not any(r.true_contention for r in others)

    def test_app_limited_records_have_positive_counter(self):
        ds = SyntheticNdtGenerator(seed=6).generate(300)
        for rec in ds.records:
            if rec.true_class == "app_limited":
                assert rec.app_limited_us > 0

    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigError):
            PopulationModel(class_mix=(("app_limited", 0.5),))

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticNdtGenerator().generate(0)


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        ds = SyntheticNdtGenerator(seed=42).generate(1000)
        return run_pipeline(ds)

    def test_counts_partition_dataset(self, result):
        assert sum(result.counts.values()) == result.total == 1000

    def test_majority_filtered(self, result):
        # Paper shape: most flows are app/rwnd-limited or cellular.
        assert result.fraction_filtered > 0.5

    def test_possible_contention_small(self, result):
        # Paper shape: only a small residual shows level shifts.
        assert result.fraction_possible_contention < 0.25

    def test_recall_on_clean_remaining_flows(self, result):
        quality = result.detector_quality()
        assert quality["recall"] > 0.9

    def test_policed_flows_are_false_positives(self, result):
        policed_hits = [f for f in result.flows
                        if f.true_class == "policed"
                        and f.inferred_contention]
        assert policed_hits, (
            "policed flows should trip the change-point detector -- "
            "that ambiguity is the paper's motivation for active "
            "measurement")

    def test_bulk_clean_rarely_flagged(self, result):
        clean = [f for f in result.flows
                 if f.true_class == "bulk_clean"
                 and f.category is FlowCategory.REMAINING]
        flagged = sum(1 for f in clean if f.inferred_contention)
        assert flagged / max(1, len(clean)) < 0.2

    def test_analyse_flow_on_contended_record(self):
        gen = SyntheticNdtGenerator(seed=7)
        ds = gen.generate(300)
        contended = [r for r in ds.records
                     if r.true_class == "bulk_contended"
                     and r.access_type not in ("cellular", "satellite")]
        hits = sum(1 for r in contended
                   if analyse_flow(r).inferred_contention)
        assert hits / len(contended) > 0.8
