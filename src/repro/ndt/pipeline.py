"""The §3.1 passive-measurement pipeline (Figure 2).

Filter app-limited / receiver-limited / cellular flows, then search the
remaining flows' throughput snapshots for level shifts that *might*
indicate CCA contention.  Because our dataset carries ground truth, the
pipeline also reports how good this passive inference actually is --
the question the paper raises when it notes passive approaches "cannot
conclusively determine the presence (or absence) of CCA contention".
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from ..analysis.changepoint import throughput_level_shift
from ..runtime import parallel_map
from ..analysis.stats import Cdf
from .filters import FlowCategory, categorize
from .schema import NdtDataset, NdtRecord


@dataclass(frozen=True)
class FlowAnalysis:
    """Pipeline outcome for one flow."""

    uuid: str
    category: FlowCategory
    num_level_shifts: int
    mean_throughput_bps: float
    inferred_contention: bool
    true_contention: bool
    true_class: str


@dataclass
class Fig2Result:
    """Aggregate results backing Figure 2.

    Attributes:
        total: number of flows analysed.
        counts: flows per §3.1 category.
        remaining_with_shifts: remaining flows showing >= 1 level shift.
        flows: per-flow analyses.
    """

    total: int
    counts: dict[FlowCategory, int]
    remaining_with_shifts: int
    flows: list[FlowAnalysis] = field(default_factory=list)

    # -- headline fractions ---------------------------------------------------

    def fraction(self, category: FlowCategory) -> float:
        return self.counts.get(category, 0) / self.total if self.total else 0.0

    @property
    def fraction_filtered(self) -> float:
        """Flows removed by the §3.1 filters."""
        return 1.0 - self.fraction(FlowCategory.REMAINING)

    @property
    def fraction_possible_contention(self) -> float:
        """Flows that survive filtering AND show a level shift -- the
        paper's upper bound on passively-visible contention."""
        return self.remaining_with_shifts / self.total if self.total else 0.0

    def throughput_cdf(self, category: FlowCategory | None = None) -> Cdf:
        samples = [f.mean_throughput_bps for f in self.flows
                   if category is None or f.category is category]
        return Cdf.from_samples(samples)

    # -- ground-truth validation (synthetic datasets only) ----------------------

    def detector_quality(self) -> dict[str, float]:
        """Precision/recall of "level shift => contention" on the
        remaining flows, measured against synthetic ground truth."""
        remaining = [f for f in self.flows
                     if f.category is FlowCategory.REMAINING]
        tp = sum(1 for f in remaining
                 if f.inferred_contention and f.true_contention)
        fp = sum(1 for f in remaining
                 if f.inferred_contention and not f.true_contention)
        fn = sum(1 for f in remaining
                 if not f.inferred_contention and f.true_contention)
        missed_by_filters = sum(
            1 for f in self.flows if f.true_contention
            and f.category is not FlowCategory.REMAINING)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        return {
            "true_positives": float(tp),
            "false_positives": float(fp),
            "false_negatives": float(fn),
            "precision": precision,
            "recall": recall,
            "contending_flows_lost_to_filters": float(missed_by_filters),
        }

    def summary_rows(self) -> list[tuple[str, int, float]]:
        """(category, count, fraction) rows for the Figure 2 table."""
        rows = [(cat.value, self.counts.get(cat, 0), self.fraction(cat))
                for cat in FlowCategory]
        rows.append(("remaining_with_level_shift",
                     self.remaining_with_shifts,
                     self.fraction_possible_contention))
        return rows


def analyse_flow(record: NdtRecord,
                 min_relative_shift: float = 0.25) -> FlowAnalysis:
    """Run the §3.1 analysis on one flow."""
    category = categorize(record)
    shifts = 0
    if category is FlowCategory.REMAINING:
        result = throughput_level_shift(
            record.throughput_series(),
            min_relative_shift=min_relative_shift)
        shifts = result.num_changes
    return FlowAnalysis(
        uuid=record.uuid,
        category=category,
        num_level_shifts=shifts,
        mean_throughput_bps=record.mean_throughput_bps,
        inferred_contention=shifts > 0,
        true_contention=record.true_contention,
        true_class=record.true_class,
    )


def dataset_fingerprint(dataset: NdtDataset,
                        min_relative_shift: float) -> str:
    """Store fingerprint of a whole pipeline run's config.

    Hashes every record incrementally (datasets run to tens of
    thousands of flows) plus the analysis parameters, so any change to
    the data or the threshold invalidates the cached result.
    """
    from ..store import fingerprint_stream
    return fingerprint_stream(
        [{"min_relative_shift": min_relative_shift}]
        + list(dataset.records), kind="fig2-pipeline")


_AUTO = object()


def run_pipeline(dataset: NdtDataset,
                 min_relative_shift: float = 0.25,
                 workers: int | None = None,
                 chunk_size: int | None = None,
                 progress=None, store=_AUTO) -> Fig2Result:
    """Run the full §3.1 pipeline over a dataset.

    Per-flow analysis (categorize + change-point detection) is
    independent across flows, so it is fanned out over worker
    processes; flow order and every result are bit-for-bit identical
    to the serial run for any ``workers`` value.

    Args:
        dataset: the flows to analyse.
        min_relative_shift: level-shift significance threshold.
        workers: worker processes; ``None`` defers to ``REPRO_WORKERS``
            then the CPU count; ``1`` forces serial.
        chunk_size: flows per dispatched task (default: automatic).
        progress: optional ``fn(done, total)`` completion callback.
        store: a :class:`repro.store.ArtifactStore` caching the whole
            :class:`Fig2Result` keyed by dataset content + parameters
            (per-flow tasks are too cheap to cache individually).
            Defaults to the ambient store
            (:func:`repro.store.active_store`); pass ``None`` to
            disable caching.
    """
    if store is _AUTO:
        from ..store import active_store
        store = active_store()
    key = None
    if store is not None:
        key = dataset_fingerprint(dataset, min_relative_shift)
        cached = store.get(key)
        if cached is not None:
            if progress is not None:
                progress(len(dataset.records), len(dataset.records))
            return cached
    job = functools.partial(analyse_flow,
                            min_relative_shift=min_relative_shift)
    flows = parallel_map(job, dataset.records, workers=workers,
                         chunk_size=chunk_size, progress=progress)
    counts: dict[FlowCategory, int] = {}
    for f in flows:
        counts[f.category] = counts.get(f.category, 0) + 1
    remaining_with_shifts = sum(
        1 for f in flows
        if f.category is FlowCategory.REMAINING and f.inferred_contention)
    result = Fig2Result(total=len(flows), counts=counts,
                        remaining_with_shifts=remaining_with_shifts,
                        flows=flows)
    if store is not None and key is not None:
        store.put(key, result, kind="fig2",
                  label=f"fig2 n={len(flows)}")
    return result
