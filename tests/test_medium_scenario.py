"""The ``medium`` scenario axis end to end: fingerprint back-compat,
both backends, and the QA-harness integration (features, mutators,
oracles, shrinker, campaign specs) around it."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.qa.scenario import FlowSpec, Scenario, run_scenario

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _probe(backend: str, medium: str = "queue",
           cross: str = "none") -> Scenario:
    return Scenario(family="probe", rate_mbps=20.0, rtt_ms=20.0,
                    qdisc="droptail", duration=20.0, seed=1,
                    cross_traffic=cross, backend=backend,
                    medium=medium)


# -- fingerprint back-compat (satellite) -----------------------------------

def test_fingerprints_are_backward_compatible():
    # medium="queue" must serialize exactly like a pre-medium scenario,
    # or every corpus case and cached verdict is orphaned.
    scenario = _probe("packet")
    assert "medium" not in scenario.to_dict()
    assert Scenario.from_dict(scenario.to_dict()) == scenario
    shared = _probe("packet", medium="csma-4")
    assert shared.to_dict()["medium"] == "csma-4"
    assert Scenario.from_dict(shared.to_dict()) == shared
    assert "medium=csma-4" in shared.label()
    assert "medium" not in scenario.label()


def test_scenario_rejects_bad_medium():
    for bad in ("csma-1", "csma-99", "wifi", "csma-4-hi"):
        with pytest.raises(ConfigError):
            _probe("packet", medium=bad)


# -- both backends ---------------------------------------------------------

@pytest.mark.parametrize("backend", ("packet", "fluid"))
def test_medium_changes_the_outcome_deterministically(backend):
    base = run_scenario(_probe(backend, cross="reno"))
    shared = run_scenario(_probe(backend, medium="csma-2", cross="reno"))
    again = run_scenario(_probe(backend, medium="csma-2", cross="reno"))
    assert shared.fingerprint() == again.fingerprint()
    assert shared.fingerprint() != base.fingerprint()


@pytest.mark.parametrize("backend", ("packet", "fluid"))
def test_priority_mix_runs_on_flows_family(backend):
    scenario = Scenario(family="flows", rate_mbps=8.0, rtt_ms=20.0,
                        qdisc="droptail", duration=4.0, seed=1,
                        flows=(FlowSpec(cca="reno", rate_frac=0.5,
                                        user_id="a"),
                               FlowSpec(cca="bbr", rate_frac=0.5,
                                        user_id="b")),
                        backend=backend, medium="csma-4-prio")
    outcome = run_scenario(scenario)
    assert sum(outcome.delivered.values()) > 0


# -- QA-harness integration ------------------------------------------------

def test_suite_version_bumped_for_medium_axis():
    from repro.qa.oracles import SUITE_VERSION
    assert SUITE_VERSION >= 4


def test_medium_mutator_is_registered_and_moves_the_axis():
    import numpy as np
    from repro.qa.fuzz import _MUTATION_MEDIUMS, _mut_medium, MUTATORS
    assert _mut_medium in MUTATORS
    rng = np.random.default_rng(0)
    scenario = _probe("packet")
    for _ in range(20):
        mutated = _mut_medium(scenario, rng)
        assert mutated.medium != scenario.medium
        assert mutated.medium in _MUTATION_MEDIUMS
        scenario = mutated


def test_feature_cell_has_a_medium_axis():
    from repro.qa.features import feature_cell, medium_bucket
    assert medium_bucket(_probe("packet")) == "queue"
    assert medium_bucket(_probe("packet", medium="csma-2")) == "csma-2"
    assert medium_bucket(_probe("packet", medium="csma-3")) == "csma-4"
    assert medium_bucket(_probe("packet", medium="csma-16")) \
        == "csma-many"
    assert medium_bucket(_probe("packet", medium="csma-8-prio")) \
        == "csma-8-prio"
    outcome = run_scenario(_probe("fluid", medium="csma-2"))
    cell = feature_cell(_probe("fluid", medium="csma-2"), outcome)
    assert cell.medium == "csma-2"
    # New axes append at the end so positional consumers of older ids
    # keep working (the FeatureCell back-compat contract).
    assert cell.as_id().endswith("|csma-2")


def test_search_projection_separates_mediums():
    from repro.qa.search import _projection
    assert _projection(_probe("packet")) \
        != _projection(_probe("packet", medium="csma-2"))


def test_shrinker_offers_medium_removal():
    from repro.qa.shrink import _candidates
    shared = _probe("packet", medium="csma-4")
    candidates = dict(_candidates(shared))
    assert candidates["replace shared medium with queue"].medium \
        == "queue"
    assert "replace shared medium with queue" \
        not in dict(_candidates(_probe("packet")))


def test_elastic_oracle_gates_to_the_medium_envelope():
    from repro.qa.oracles import ElasticCrossOracle
    oracle = ElasticCrossOracle()
    assert oracle.applies(_probe("packet", medium="csma-2",
                                 cross="reno"))
    # Priority mixes starve the probe and are deliberately unjudged.
    assert not oracle.applies(_probe("packet", medium="csma-4-prio",
                                     cross="reno"))
    # Outside the calibrated medium envelope: unjudged.
    outside = dataclasses.replace(_probe("packet", medium="csma-2",
                                         cross="reno"), rate_mbps=48.0)
    assert not oracle.applies(outside)


def test_inelastic_oracle_skips_idle_csma_paths():
    # E16: MAC overhead makes an *idle* CSMA medium read contending,
    # so the idle-path-reads-clean oracle only judges queue media.
    from repro.qa.oracles import InelasticCrossOracle
    oracle = InelasticCrossOracle()
    assert oracle.applies(_probe("packet"))
    assert not oracle.applies(_probe("packet", medium="csma-2"))
    cbr = dataclasses.replace(_probe("packet", medium="csma-2",
                                     cross="cbr"), rate_mbps=48.0)
    assert oracle.applies(cbr)


def test_agreement_oracles_split_by_medium():
    from repro.qa.oracles import (FluidPacketAgreementOracle,
                                  MediumAirtimeAgreementOracle)
    queue = _probe("packet", cross="reno")
    shared = _probe("packet", medium="csma-2", cross="reno")
    assert FluidPacketAgreementOracle().applies(queue)
    assert not FluidPacketAgreementOracle().applies(shared)
    medium_oracle = MediumAirtimeAgreementOracle()
    assert medium_oracle.applies(shared)
    assert not medium_oracle.applies(queue)
    assert not medium_oracle.applies(
        dataclasses.replace(shared, backend="fluid"))
    assert not medium_oracle.applies(
        dataclasses.replace(shared, timing_jitter=0.2))


def test_medium_airtime_agreement_holds_on_calibrated_cell():
    # The satellite acceptance spot-check: fluid and packet divide
    # airtime the same way on an elastic contention cell.
    from repro.qa.oracles import MediumAirtimeAgreementOracle
    scenario = _probe("packet", medium="csma-2", cross="reno")
    outcome = run_scenario(scenario)
    problems = MediumAirtimeAgreementOracle().check(
        scenario, outcome, run_scenario)
    assert problems == []


# -- campaign specs ---------------------------------------------------------

def test_path_spec_fingerprints_are_backward_compatible():
    from dataclasses import fields
    from repro.core.campaign import PathSpec, _spec_config
    from repro.store.fingerprint import fingerprint
    spec = PathSpec(rate_mbps=20.0, rtt_ms=20.0, qdisc="droptail",
                    cross_traffic="reno", seed=3)
    legacy = {f.name: getattr(spec, f.name) for f in fields(spec)
              if f.name != "medium"}
    assert fingerprint(_spec_config(spec), kind="path") \
        == fingerprint(legacy, kind="path")
    shared = dataclasses.replace(spec, medium="csma-4")
    assert _spec_config(shared)["medium"] == "csma-4"
    assert fingerprint(_spec_config(shared), kind="path") \
        != fingerprint(legacy, kind="path")
    with pytest.raises(ConfigError):
        dataclasses.replace(spec, medium="csma-0")


def test_campaign_medium_param_reaches_every_spec():
    from repro.core.campaign import Campaign
    default = Campaign(n_paths=4, seed=0, duration=5.0)
    shared = Campaign(n_paths=4, seed=0, duration=5.0, medium="csma-4")
    assert {s.medium for s in default.specs} == {"queue"}
    assert {s.medium for s in shared.specs} == {"csma-4"}
    assert shared.fingerprint() != default.fingerprint()


def test_serve_campaign_params_accept_medium():
    from repro.serve.jobs import campaign_from_params
    base = {"n_paths": 4, "seed": 0, "duration": 5.0}
    default = campaign_from_params(dict(base))
    explicit = campaign_from_params({**base, "medium": "queue"})
    assert default.fingerprint() == explicit.fingerprint()
    shared = campaign_from_params({**base, "medium": "csma-4"})
    assert shared.fingerprint() != default.fingerprint()
    with pytest.raises(ConfigError):
        campaign_from_params({**base, "medium": "token-ring"})
    with pytest.raises(ConfigError):
        campaign_from_params({**base, "medium": 4})
