"""RTT estimation and retransmission timeout (RFC 6298)."""

from __future__ import annotations

from ..errors import ConfigError


class RttEstimator:
    """Jacobson/Karels smoothed RTT with RFC 6298 RTO computation.

    Args:
        min_rto: lower clamp on the RTO (Linux uses 200 ms).
        max_rto: upper clamp on the RTO.
        initial_rto: RTO before the first RTT sample (RFC 6298: 1 s).
    """

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(self, min_rto: float = 0.2, max_rto: float = 60.0,
                 initial_rto: float = 1.0):
        if not 0 < min_rto <= max_rto:
            raise ConfigError("need 0 < min_rto <= max_rto")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: float | None = None
        self.rttvar: float | None = None
        self.min_rtt: float | None = None
        self.latest_rtt: float | None = None
        self._rto = initial_rto
        self.samples = 0

    def update(self, rtt: float) -> None:
        """Fold one RTT sample (seconds) into the estimator."""
        if rtt <= 0:
            raise ConfigError(f"rtt sample must be positive: {rtt}")
        self.latest_rtt = rtt
        self.samples += 1
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = ((1 - self.BETA) * self.rttvar
                           + self.BETA * abs(self.srtt - rtt))
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        raw = self.srtt + self.K * self.rttvar
        self._rto = min(max(raw, self.min_rto), self.max_rto)

    @property
    def rto(self) -> float:
        """Current retransmission timeout (seconds)."""
        return self._rto

    def backoff(self) -> None:
        """Exponential RTO backoff after a timeout fires."""
        self._rto = min(self._rto * 2.0, self.max_rto)
