"""End-to-end HTTP tests against a live :class:`ServerThread`.

Covers the acceptance criteria of the serve subsystem:

* a campaign submitted over HTTP produces a result whose fingerprint
  and stored payload are identical to a direct :meth:`Campaign.run`;
* two concurrent identical submissions execute once and both receive
  the result;
* a server killed mid-job resumes the job from its store checkpoint
  on restart;
* queue-full and rate-limited requests get 429 + Retry-After;
* ``/metrics`` reflects admit/coalesce/reject counts.
"""

import pickle
import threading

import pytest

from repro.serve import jobs as jobs_mod
from repro.serve import (ClientRateLimiter, JobManager, ServeClient,
                         ServeError, ServerThread)
from repro.store import ArtifactStore

#: Fast-but-real campaign config (~1s of simulated paths).
CAMPAIGN_PARAMS = {"n_paths": 2, "seed": 3, "duration": 1.0}


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """The obs registry is process-global; serve counters must start
    at zero for each test's assertions."""
    from repro.obs.metrics import REGISTRY
    REGISTRY.reset()
    yield
    REGISTRY.reset()


def open_limiter():
    """A limiter that never rejects (tests that target the queue)."""
    return ClientRateLimiter(rate=1000.0, burst=1000.0)


@pytest.fixture
def block(monkeypatch):
    release = threading.Event()
    started = threading.Event()

    def execute_block(params, store, workers):
        started.set()
        if not release.wait(timeout=30.0):
            raise TimeoutError("block executor never released")
        return {"blocked": params.get("tag", "")}, params

    monkeypatch.setitem(jobs_mod.EXECUTORS, "block", execute_block)
    yield type("Block", (), {"release": release, "started": started})
    release.set()


class TestEndToEnd:
    def test_campaign_matches_direct_run(self):
        """HTTP result == direct Campaign.run, byte for byte."""
        from repro.core.campaign import Campaign
        from repro.store import fingerprint

        store = ArtifactStore()
        with ServerThread(store=store, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="e2e")
            result = client.submit_and_wait("campaign", CAMPAIGN_PARAMS,
                                            timeout=120)
            assert result["state"] == "done"
            served = store.get(result["key"])

        direct = Campaign(**CAMPAIGN_PARAMS).run(store=None)
        outcome = [{"contending": r.verdict.contending,
                    "category": r.verdict.category,
                    "mean_elasticity": r.verdict.mean_elasticity}
                   for r in direct.results]
        assert result["summary"]["result_fingerprint"] == \
            fingerprint(outcome, kind="campaign-outcome")
        assert result["summary"]["fraction_contending"] == \
            direct.fraction_contending
        # the stored payload is the same object a direct run produces
        assert pickle.dumps(served["payload"].results) == \
            pickle.dumps(direct.results)

    def test_concurrent_identical_submissions_execute_once(self, block):
        with ServerThread(store=None, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="race")
            results, errors = [], []

            def submit():
                try:
                    results.append(client.submit("block", {"tag": "x"}))
                except Exception as exc:  # surface in the main thread
                    errors.append(exc)

            threads = [threading.Thread(target=submit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert len({r["id"] for r in results}) == 1, \
                "identical submissions must coalesce onto one job"
            block.release.set()
            done = client.wait(results[0]["id"], timeout=30)
            assert done["summary"] == {"blocked": "x"}
            assert done["waiters"] == 4
            metrics = client.metrics()
            assert metrics["serve.jobs_admitted"]["value"] == 1
            assert metrics["serve.jobs_coalesced"]["value"] == 3
            assert metrics["serve.jobs_executed"]["value"] == 1

    def test_resubmit_after_restart_is_a_cache_hit(self):
        store = ArtifactStore()
        with ServerThread(store=store, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="warm")
            first = client.submit_and_wait("pipeline", {"flows": 200},
                                           timeout=60)
        # a *new* server over the same store answers without executing
        with ServerThread(store=store, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="warm")
            second = client.submit("pipeline", {"flows": 200})
            assert second["disposition"] == "cached"
            assert second["summary"] == first["summary"]
            assert server.manager._metrics is not None
            assert client.metrics()["serve.jobs_cached"]["value"] >= 1

    def test_kill_mid_job_resumes_on_restart(self, block):
        """A dirty shutdown leaves the journal; the next server start
        re-admits the job and runs it to completion."""
        store = ArtifactStore()
        request_params = {"tag": "orphan"}
        with ServerThread(store=store, concurrency=1, drain_grace_s=0.1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="kill")
            job = client.submit("block", request_params)
            assert block.started.wait(timeout=10)
            key = job["key"]
            # stop() with a tiny grace = SIGTERM with work in flight
        assert server.server.drain_clean is False
        journal = store.root / "serve" / "journal" / f"{key}.json"
        assert journal.exists(), "unfinished job must stay journaled"

        block.release.set()
        with ServerThread(store=store, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="kill")
            jobs = client.jobs()
            assert [j["key"] for j in jobs] == [key]
            done = client.wait(jobs[0]["id"], timeout=30)
            assert done["summary"] == {"blocked": "orphan"}
            assert client.metrics()["serve.jobs_resumed"]["value"] == 1
        assert not journal.exists()


class TestBackpressure:
    def test_queue_full_gets_429_with_retry_after(self, block):
        with ServerThread(store=None, queue_depth=1, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="flood")
            client.submit("block", {"tag": "running"})
            assert block.started.wait(timeout=10)
            client.submit("block", {"tag": "queued"})
            with pytest.raises(ServeError) as exc:
                client.submit("block", {"tag": "overflow"})
            assert exc.value.status == 429
            assert exc.value.retry_after_s >= 1
            metrics = client.metrics()
            assert metrics["serve.jobs_rejected_full"]["value"] == 1
            block.release.set()

    def test_rate_limited_gets_429_with_retry_after(self):
        limiter = ClientRateLimiter(rate=1.0, burst=2.0)
        with ServerThread(store=None, limiter=limiter) as server:
            client = ServeClient(port=server.port, client_id="greedy")
            client.healthz()  # not rate limited: only POST /jobs is
            client.submit("pipeline", {"flows": 200})
            client.submit("pipeline", {"flows": 201})
            with pytest.raises(ServeError) as exc:
                client.submit("pipeline", {"flows": 202})
            assert exc.value.status == 429
            assert exc.value.retry_after_s >= 1
            # other clients are unaffected
            other = ServeClient(port=server.port, client_id="patient")
            other.submit("pipeline", {"flows": 203})
            metrics = client.metrics()
            assert metrics["serve.jobs_rejected_rate"]["value"] == 1

    def test_draining_refuses_with_503(self, block):
        with ServerThread(store=None, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="late")
            client.submit("block", {"tag": "inflight"})
            assert block.started.wait(timeout=10)
            client.drain()
            with pytest.raises(ServeError) as exc:
                client.submit("pipeline", {"flows": 200})
            assert exc.value.status == 503
            assert client.healthz()["status"] == "draining"
            block.release.set()
        assert server.server.drain_clean is True


class TestHttpSurface:
    def test_service_document_and_health(self):
        with ServerThread(store=None) as server:
            client = ServeClient(port=server.port)
            doc = client._request("GET", "/")
            assert doc["service"] == "repro-serve"
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["queued"] == 0 and health["running"] == 0

    def test_unknown_routes_and_jobs(self):
        with ServerThread(store=None) as server:
            client = ServeClient(port=server.port)
            with pytest.raises(ServeError) as exc:
                client._request("GET", "/nope")
            assert exc.value.status == 404
            with pytest.raises(ServeError) as exc:
                client.status("job-000000-missing")
            assert exc.value.status == 404

    def test_bad_submissions_get_400(self):
        with ServerThread(store=None, limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="bad")
            for body in ({"params": {}},           # no kind
                         {"kind": "nope"},         # unknown kind
                         {"kind": "pipeline", "extra": 1}):
                with pytest.raises(ServeError) as exc:
                    client._request("POST", "/jobs", body)
                assert exc.value.status == 400

    def test_result_409_until_done_then_200(self, block):
        with ServerThread(store=None, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="poll")
            job = client.submit("block", {"tag": "slow"})
            assert block.started.wait(timeout=10)
            with pytest.raises(ServeError) as exc:
                client.result(job["id"])
            assert exc.value.status == 409
            assert exc.value.retry_after_s is not None
            block.release.set()
            client.wait(job["id"], timeout=30)
            assert client.result(job["id"])["summary"] == \
                {"blocked": "slow"}

    def test_cancel_queued_job(self, block):
        with ServerThread(store=None, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="cancel")
            client.submit("block", {"tag": "running"})
            assert block.started.wait(timeout=10)
            queued = client.submit("block", {"tag": "victim"})
            cancelled = client.cancel(queued["id"])
            assert cancelled["state"] == "cancelled"
            with pytest.raises(ServeError) as exc:
                client.cancel(queued["id"])  # already terminal
            assert exc.value.status == 409
            block.release.set()

    def test_event_stream_reaches_terminal_state(self):
        with ServerThread(store=None, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="events")
            job = client.submit("pipeline", {"flows": 200})
            events = list(client.events(job["id"]))
            assert events, "stream must yield at least one document"
            versions = [e["version"] for e in events]
            assert versions == sorted(versions)
            assert events[-1]["state"] == "done"
            assert events[-1]["summary"]["total"] == 200


class TestStoreFetch:
    """``GET /store/<key>``: the cluster-merge transfer endpoint."""

    def test_fetch_returns_exact_object_bytes(self):
        from repro.store.fingerprint import fingerprint

        store = ArtifactStore()
        payload = {"tag": "transfer", "values": list(range(8))}
        key = fingerprint(payload, kind="fetch-test")
        data = pickle.dumps(payload, protocol=4)
        store.put_bytes(key, data, kind="fetch-test")
        with ServerThread(store=store, limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="fetch")
            assert client.fetch_store(key) == data
            metrics = client.metrics()
            assert metrics["serve.store_fetches"]["value"] == 1
            assert metrics["serve.store_fetch_bytes"]["value"] == \
                len(data)

    def test_missing_key_404_and_malformed_key_400(self):
        with ServerThread(store=ArtifactStore(),
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="fetch")
            with pytest.raises(ServeError) as exc:
                client.fetch_store("ab" * 32)  # valid hex, absent
            assert exc.value.status == 404
            with pytest.raises(ServeError) as exc:
                client.fetch_store("nothex!key")
            assert exc.value.status == 400

    def test_storeless_server_refuses_with_503(self):
        with ServerThread(store=None, limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="fetch")
            with pytest.raises(ServeError) as exc:
                client.fetch_store("ab" * 32)
            assert exc.value.status == 503


class TestClientTimeouts:
    def test_connect_timeout_fails_fast_with_status_0(self):
        """A coordinator's dispatch to an unreachable node must fail in
        ``connect_timeout`` seconds, not the 30s read/job timeout."""
        import time

        # RFC 5737 TEST-NET-1: guaranteed unroutable, so connect hangs
        # until the timeout instead of being refused instantly.
        client = ServeClient("192.0.2.1", 9, timeout=30.0,
                             connect_timeout=0.3)
        start = time.monotonic()
        with pytest.raises(ServeError) as exc:
            client.healthz()
        assert time.monotonic() - start < 5.0
        assert exc.value.status == 0

    def test_connect_timeout_defaults_to_read_timeout(self):
        assert ServeClient(timeout=7.0).connect_timeout == 7.0
        assert ServeClient(timeout=7.0,
                           connect_timeout=0.5).connect_timeout == 0.5


class TestPerKindCounters:
    def test_admitted_and_done_counted_by_kind(self):
        with ServerThread(store=None, concurrency=1,
                          limiter=open_limiter()) as server:
            client = ServeClient(port=server.port, client_id="kinds")
            client.submit_and_wait("pipeline", {"flows": 200},
                                   timeout=60)
            metrics = client.metrics()
            assert metrics["serve.kind.pipeline.admitted"]["value"] == 1
            assert metrics["serve.kind.pipeline.done"]["value"] == 1
