"""The oracle suite: what every fuzzed scenario must satisfy.

Three oracle classes, in the spirit of property-based CCA contracts
(Agarwal et al.) and the Nimbus ground-truth relationships (Goyal et
al.):

* **Invariant oracles** -- the trace-driven conservation and queue
  invariants from :mod:`repro.obs.invariants`, plus a capacity bound
  (a link cannot deliver more than rate x time).
* **Metamorphic oracles** -- properties relating *pairs* of runs:
  the same scenario twice (seed determinism), the same scenario at a
  higher link rate (throughput monotonicity), and the elasticity
  estimator under amplitude/time rescaling (exact analytic
  invariances of the peak-to-background ratio).
* **Paper-level oracles** -- end-to-end ground truth: backlogged
  Reno/BBR cross traffic behind a shared FIFO must read elastic;
  CBR/Poisson/idle cross traffic must not.

Each oracle declares a ``period``: expensive metamorphic oracles that
re-run the simulation are only applied to every Nth fuzzed scenario
(deterministically, by scenario index), keeping a 200-scenario budget
affordable while every oracle still sees a spread of scenarios.

``REPRO_QA_FAULT`` deliberately injects a failure (the analogue of the
pool's ``REPRO_FAULT_RATE``): set it to ``any``, ``cca:<name>``,
``qdisc:<name>``, or ``cross:<name>`` and every matching scenario
fails its QA run.  Because the trigger is a stable predicate on the
scenario (not a random draw), the shrinker can minimize injected
failures exactly like real ones -- which is how the shrinker itself is
tested end to end.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.elasticity import elasticity_series
from ..medium.config import parse_medium
from ..runtime.pool import derive_seed
from .scenario import Scenario, ScenarioOutcome

#: Environment variable injecting a deterministic oracle failure.
FAULT_ENV = "REPRO_QA_FAULT"

#: Bump to invalidate cached fuzz verdicts when oracle semantics change.
#: 4: medium axis -- queue-regime gating of the calibrated envelopes,
#: CSMA contention envelopes, and the airtime-agreement oracle.
SUITE_VERSION = 4

#: One MTU-ish slack unit for byte-level tolerances.
_MTU = 1514

Runner = Callable[[Scenario], ScenarioOutcome]


@dataclass(frozen=True)
class OracleFinding:
    """One oracle violation on one scenario."""

    oracle: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


class Oracle:
    """Base oracle: a named property checked against a scenario run.

    Attributes:
        name: stable identifier (corpus entries reference it).
        period: apply to every Nth fuzzed scenario (1 = all).  Corpus
            replay ignores the period.
        corpus_replay: whether corpus replay should re-check this
            oracle (metamorphic oracles that re-run simulations are
            excluded to keep replay cheap; the fuzzer still runs them).
    """

    name = "oracle"
    period = 1
    corpus_replay = True

    def applies(self, scenario: Scenario) -> bool:
        """Whether this oracle has anything to say about ``scenario``."""
        return True

    def check(self, scenario: Scenario, outcome: ScenarioOutcome,
              runner: Runner) -> list[str]:
        """Return violation messages (empty = property holds).

        ``runner`` executes auxiliary scenarios for metamorphic
        comparisons; implementations must derive any auxiliary scenario
        deterministically from ``scenario``.
        """
        raise NotImplementedError


class InvariantOracle(Oracle):
    """The four trace invariants hold (byte conservation, non-negative
    queues, monotonic clock, cwnd bounds), cross-checked against the
    live qdisc's final occupancy."""

    name = "invariants"

    def check(self, scenario, outcome, runner) -> list[str]:
        return list(outcome.violations)


class DeliveryBoundOracle(Oracle):
    """No scenario delivers more bytes than the link could carry.

    The bound is loose (10% + 50 MTU) because goodput accounting and
    wire accounting differ by headers; it exists to catch gross
    conservation failures (duplicated deliveries, negative sizes) that
    per-qdisc accounting alone cannot see.
    """

    name = "delivery-bound"

    def check(self, scenario, outcome, runner) -> list[str]:
        capacity = scenario.rate_mbps * 1e6 / 8.0
        limit = capacity * scenario.duration * 1.10 + 50 * _MTU
        if outcome.total_delivered > limit:
            return [f"delivered {outcome.total_delivered} bytes > "
                    f"link capacity bound {limit:.0f}"]
        return []


class SeedDeterminismOracle(Oracle):
    """Running the identical scenario twice yields identical results.

    This is the foundation every other guarantee (caching, resumable
    campaigns, worker-count invariance) is built on, checked at the
    outcome-fingerprint level: delivered bytes, qdisc counters, event
    counts, probe verdicts -- everything observable.
    """

    name = "seed-determinism"
    period = 5
    corpus_replay = False

    def check(self, scenario, outcome, runner) -> list[str]:
        again = runner(scenario)
        a, b = outcome.fingerprint(), again.fingerprint()
        if a != b:
            return [f"re-run diverged: {a[:12]} != {b[:12]}"]
        return []


class RateMonotonicityOracle(Oracle):
    """Raising the link rate never reduces total delivered bytes.

    Applies to "flows" scenarios with at least one elastic flow (an
    all-CBR scenario is rate-insensitive, which the oracle would pass
    trivially anyway).  All shaper/class rates derive from the link
    rate (see :func:`repro.qa.scenario.build_qdisc`), so scaling the
    scenario scales the whole bottleneck.  The 10% + 40 MTU slack
    absorbs AQM/timing noise; the oracle exists to catch gross
    anti-monotone regressions.
    """

    name = "rate-monotonicity"
    period = 6
    corpus_replay = False

    def applies(self, scenario) -> bool:
        return (scenario.family == "flows"
                and any(f.cca != "cbr" for f in scenario.flows))

    def check(self, scenario, outcome, runner) -> list[str]:
        faster = dataclasses.replace(scenario,
                                     rate_mbps=scenario.rate_mbps * 1.5)
        hi = runner(faster)
        floor = outcome.total_delivered * 0.9 - 40 * _MTU
        if hi.total_delivered < floor:
            return [f"1.5x link rate delivered {hi.total_delivered} "
                    f"bytes < {floor:.0f} (baseline "
                    f"{outcome.total_delivered})"]
        return []


class ElasticityRescalingOracle(Oracle):
    """The elasticity metric is invariant under amplitude and time
    rescaling of the cross-traffic signal.

    The peak-to-background ratio is analytically scale-free: scaling
    z(t) by s scales both peak and background by s; rescaling time by s
    while rescaling pulse frequency, window, and band by 1/s presents
    the FFT with bit-identical samples.  Checked on a synthetic pulse +
    noise series derived from the scenario seed, so every fuzzed
    scenario contributes a fresh input to the property.
    """

    name = "elasticity-rescaling"
    period = 3
    corpus_replay = False

    def check(self, scenario, outcome, runner) -> list[str]:
        rng = np.random.default_rng(
            derive_seed(scenario.seed, 0, "qa-rescale"))
        t = np.arange(0.0, 12.0, 0.01)
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        z = (2e5 + 1e5 * np.sin(2.0 * np.pi * 5.0 * t + phase)
             + 2e4 * rng.standard_normal(len(t)))
        base = [r.elasticity for r in elasticity_series(t, z)]
        problems = []

        scaled = [r.elasticity for r in elasticity_series(t, 3.0 * z)]
        if not np.allclose(base, scaled, rtol=1e-6, atol=1e-9):
            problems.append(
                "amplitude rescaling moved the elasticity metric: "
                f"max delta {np.max(np.abs(np.array(base) - scaled)):.3g}")

        s = 2.0
        stretched = [r.elasticity for r in elasticity_series(
            t * s, z, pulse_freq=5.0 / s, window=5.0 * s, step=0.5 * s,
            band=(1.0 / s, 12.0 / s))]
        if not np.allclose(base, stretched, rtol=1e-7, atol=1e-9):
            problems.append(
                "time rescaling moved the elasticity metric: "
                f"max delta "
                f"{np.max(np.abs(np.array(base) - stretched)):.3g}")
        return problems


# The detector's calibrated envelope, measured cell by cell (probe
# family, droptail, 20 s, mean-elasticity rule, threshold 2.0).  The
# verdict is deterministic per cell -- backlogged/CBR cross traffic
# makes the probe signal seed-independent -- so these are stable
# ground-truth cells, not flaky samples:
#
#   reno  20/20ms 2.84  20/50ms 3.24  48/20ms 1.75  48/50ms 7.13
#   bbr   20/20ms 4.68  20/50ms 1.45  48/20ms 5.54  48/50ms 1.74
#   cbr   20/20ms 2.53  20/50ms 0.61  48/20ms 0.90  48/50ms 0.14
#   none  0.00 everywhere
#
# Outside the envelope the detector genuinely misreads (BBR's
# rate-based probing yields a weak pulse response at long RTT; reno's
# sawtooth flattens at high BDP; CBR behind a shallow 20/20 queue
# aliases into the pulse band) -- known gray zones documented in
# TESTING.md, still fuzzed for invariants, but not judged for
# contention.  Poisson's verdict is seed-dependent near the threshold
# and is never judged.
_ELASTIC_ENVELOPE = {
    ("reno", 20.0, 20.0), ("reno", 20.0, 50.0), ("reno", 48.0, 50.0),
    ("bbr", 20.0, 20.0), ("bbr", 48.0, 20.0),
}
_INELASTIC_ENVELOPE = {
    ("cbr", 20.0, 50.0), ("cbr", 48.0, 20.0), ("cbr", 48.0, 50.0),
}

# The *contention* envelope: the same measurement repeated with the
# bottleneck replaced by a CSMA/CA shared medium (probe and cross
# traffic on separate stations).  Only two active stations exist in a
# probe scenario, so the cells hold for every non-priority station
# count; priority mixes change the contending station's access class
# and are deliberately unjudged.  Measured over five seeds each
# (20 s, droptail station queues, threshold 2.0):
#
#   reno 20/20ms  mean 8.8-13.3, always contending
#   bbr  20/20ms  mean 6.7-9.3,  always contending
#   cbr  48/20ms  mean 1.0-1.5,  never contending
#   cbr  48/50ms  mean 1.2-1.8,  never contending
#
# The rest of the queue envelope does not carry over: at 48 Mbit/s the
# MAC's airtime fairness caps the elastic competitor like per-flow FQ
# and reno/bbr read *clean* (near-threshold, seed-dependent), while an
# idle medium reads *contending* everywhere -- MAC overhead burns
# airtime in proportion to the probe's own pulses and ẑ sees it as
# elastic cross traffic.  Experiment E16 maps both effects; the
# oracles only judge the decisive cells above.
_MEDIUM_ELASTIC_ENVELOPE = {
    ("reno", 20.0, 20.0), ("bbr", 20.0, 20.0),
}
_MEDIUM_INELASTIC_ENVELOPE = {
    ("cbr", 48.0, 20.0), ("cbr", 48.0, 50.0),
}


def _probe_cell(scenario: Scenario) -> tuple[str, float, float]:
    return (scenario.cross_traffic, scenario.rate_mbps, scenario.rtt_ms)


def _judgeable_medium(scenario: Scenario):
    """The scenario's parsed medium, or None when its contention
    verdict is not judgeable (priority mixes change the contending
    station's access class and are outside the calibrated envelope)."""
    spec = parse_medium(scenario.medium)
    if spec is None or spec.priority == "mixed":
        return None
    return spec


class ElasticCrossOracle(Oracle):
    """Ground truth (Goyal et al.): backlogged Reno/BBR cross traffic
    behind a shared FIFO must read elastic (contending), within the
    detector's calibrated envelope (see :data:`_ELASTIC_ENVELOPE`;
    CSMA mediums are judged against the narrower
    :data:`_MEDIUM_ELASTIC_ENVELOPE`)."""

    name = "elastic-cross-detected"

    def applies(self, scenario) -> bool:
        if (scenario.family != "probe" or scenario.qdisc != "droptail"
                or scenario.duration < 18.0):
            return False
        if scenario.medium == "queue":
            return _probe_cell(scenario) in _ELASTIC_ENVELOPE
        return (_judgeable_medium(scenario) is not None
                and _probe_cell(scenario) in _MEDIUM_ELASTIC_ENVELOPE)

    def check(self, scenario, outcome, runner) -> list[str]:
        probe = outcome.probe or {}
        if not probe.get("contending"):
            return [f"{scenario.cross_traffic} cross traffic behind "
                    f"droptail read as non-contending (mean elasticity "
                    f"{probe.get('mean_elasticity', 0.0):.2f})"]
        return []


class InelasticCrossOracle(Oracle):
    """Ground truth: CBR/idle cross traffic must *not* read elastic,
    within the calibrated envelope (an idle path must read clean on
    any qdisc; CBR per :data:`_INELASTIC_ENVELOPE`).  ABR video is
    intermittently elastic by nature and is deliberately unjudged."""

    name = "inelastic-cross-clean"

    def applies(self, scenario) -> bool:
        if scenario.family != "probe":
            return False
        if scenario.cross_traffic == "none":
            # An idle path reads clean only behind a queue: on a CSMA
            # medium, MAC overhead burns airtime in proportion to the
            # probe's own pulses and reads as elastic cross traffic
            # (experiment E16).
            return scenario.medium == "queue"
        if scenario.qdisc != "droptail" or scenario.duration < 18.0:
            return False
        if scenario.medium == "queue":
            return _probe_cell(scenario) in _INELASTIC_ENVELOPE
        return (_judgeable_medium(scenario) is not None
                and _probe_cell(scenario) in _MEDIUM_INELASTIC_ENVELOPE)

    def check(self, scenario, outcome, runner) -> list[str]:
        probe = outcome.probe or {}
        if probe.get("contending"):
            return [f"{scenario.cross_traffic} cross traffic read as "
                    f"contending (mean elasticity "
                    f"{probe.get('mean_elasticity', 0.0):.2f})"]
        return []


class FluidPacketAgreementOracle(Oracle):
    """The fluid backend agrees with the packet backend where both are
    calibrated: on envelope cells the contention verdict must match,
    and the probe's share of delivered bytes must be within 0.25
    (absolute) of the packet run's.

    Applies only inside the calibrated envelope (probe family,
    droptail, >= 18 s) where the packet verdict is deterministic
    ground truth; outside it both backends have documented gray zones
    and a disagreement is not a bug.  Scenarios on the
    endpoint-timing-jitter axis are excluded: the fluid model's
    per-tick rate noise is only a coarse analogue of pacing/ACK-clock
    perturbation, so near-threshold verdict flips between the
    backends under jitter are expected, not disagreement bugs.
    Shared-medium scenarios are judged by the dedicated
    :class:`MediumAirtimeAgreementOracle` instead.  Only
    packet-backend scenarios re-run on fluid (not the reverse) so the
    oracle never doubles the expensive direction.
    """

    name = "fluid-packet-agreement"
    period = 4
    corpus_replay = False

    def applies(self, scenario) -> bool:
        cell = _probe_cell(scenario)
        return (scenario.backend == "packet"
                and scenario.family == "probe"
                and scenario.qdisc == "droptail"
                and scenario.duration >= 18.0
                and scenario.timing_jitter == 0.0
                and scenario.medium == "queue"
                and (cell in _ELASTIC_ENVELOPE
                     or cell in _INELASTIC_ENVELOPE))

    @staticmethod
    def _probe_share(outcome: ScenarioOutcome) -> float:
        total = sum(outcome.delivered.values())
        if total <= 0:
            return 0.0
        return outcome.delivered.get("probe", 0) / total

    def check(self, scenario, outcome, runner) -> list[str]:
        fluid = runner(dataclasses.replace(scenario, backend="fluid"))
        problems = []
        p_probe = outcome.probe or {}
        f_probe = fluid.probe or {}
        if bool(p_probe.get("contending")) != bool(f_probe.get("contending")):
            problems.append(
                f"verdict disagreement: packet "
                f"contending={p_probe.get('contending')} (mean "
                f"{p_probe.get('mean_elasticity', 0.0):.2f}) vs fluid "
                f"contending={f_probe.get('contending')} (mean "
                f"{f_probe.get('mean_elasticity', 0.0):.2f})")
        p_share = self._probe_share(outcome)
        f_share = self._probe_share(fluid)
        if abs(p_share - f_share) > 0.25:
            problems.append(
                f"throughput-share disagreement: packet probe share "
                f"{p_share:.3f} vs fluid {f_share:.3f} "
                f"(tolerance 0.25)")
        return problems


class MediumAirtimeAgreementOracle(Oracle):
    """On calibrated CSMA cells the two media implementations must
    divide airtime the same way: the packet backend's slotted
    :class:`~repro.sim.medium.MediumLink` and the fluid backend's
    Bianchi-law :class:`~repro.fluid.queue.ContentionBottleneck` give
    the probe a share of delivered bytes that agrees within 0.15
    (measured spread across seeds is under 0.05 on these cells).

    Gated to the elastic contention-envelope cells: there both
    stations are saturated and the share is pinned by MAC fairness.
    On inelastic cells the share reflects transport dynamics (the
    packet probe's closed loop backs off under contention delay
    where the fluid law does not), a documented divergence -- see
    DESIGN.md's validity envelope.
    """

    name = "medium-airtime-agreement"
    period = 4
    corpus_replay = False

    def applies(self, scenario) -> bool:
        return (scenario.backend == "packet"
                and scenario.family == "probe"
                and scenario.qdisc == "droptail"
                and scenario.duration >= 18.0
                and scenario.timing_jitter == 0.0
                and _judgeable_medium(scenario) is not None
                and _probe_cell(scenario) in _MEDIUM_ELASTIC_ENVELOPE)

    def check(self, scenario, outcome, runner) -> list[str]:
        fluid = runner(dataclasses.replace(scenario, backend="fluid"))
        p_share = FluidPacketAgreementOracle._probe_share(outcome)
        f_share = FluidPacketAgreementOracle._probe_share(fluid)
        if abs(p_share - f_share) > 0.15:
            return [f"airtime disagreement on {scenario.medium}: "
                    f"packet probe share {p_share:.3f} vs fluid "
                    f"{f_share:.3f} (tolerance 0.15)"]
        return []


class InjectedFaultOracle(Oracle):
    """Deterministic failure injection via ``REPRO_QA_FAULT``.

    The trigger is a predicate on the scenario, so shrinking preserves
    it: ``any`` matches everything, ``cca:reno`` matches scenarios with
    a reno flow, ``qdisc:red`` / ``cross:cbr`` match the obvious
    fields.  Exercises the fuzz -> shrink -> corpus pipeline without a
    real simulator bug.
    """

    name = "injected-fault"

    @staticmethod
    def _trigger() -> str:
        return os.environ.get(FAULT_ENV, "")

    def applies(self, scenario) -> bool:
        return bool(self._trigger())

    def matches(self, scenario: Scenario) -> bool:
        """Whether the configured trigger matches ``scenario``."""
        trigger = self._trigger()
        if trigger == "any":
            return True
        kind, _, value = trigger.partition(":")
        if kind == "cca":
            return any(f.cca == value for f in scenario.flows)
        if kind == "qdisc":
            return scenario.qdisc == value
        if kind == "cross":
            return scenario.cross_traffic == value
        return False

    def check(self, scenario, outcome, runner) -> list[str]:
        if self.matches(scenario):
            return [f"injected fault ({FAULT_ENV}={self._trigger()!r})"]
        return []


#: The full suite, in a fixed order (order is part of the verdict
#: cache key via the per-index oracle list).
ORACLES: tuple[Oracle, ...] = (
    InvariantOracle(),
    DeliveryBoundOracle(),
    SeedDeterminismOracle(),
    RateMonotonicityOracle(),
    ElasticityRescalingOracle(),
    ElasticCrossOracle(),
    InelasticCrossOracle(),
    FluidPacketAgreementOracle(),
    MediumAirtimeAgreementOracle(),
    InjectedFaultOracle(),
)


def oracles_for_index(scenario: Scenario,
                      index: int | None) -> list[Oracle]:
    """The oracles applicable to one fuzzed scenario.

    ``index`` drives the period gating of expensive metamorphic
    oracles; ``None`` (corpus replay) runs every applicable
    ``corpus_replay`` oracle regardless of period.
    """
    chosen = []
    for oracle in ORACLES:
        if index is None:
            if not oracle.corpus_replay:
                continue
        elif oracle.period > 1 and index % oracle.period != 0:
            continue
        if oracle.applies(scenario):
            chosen.append(oracle)
    return chosen


def run_oracles(scenario: Scenario, outcome: ScenarioOutcome,
                runner: Runner, index: int | None = None,
                oracles: Sequence[Oracle] | None = None
                ) -> list[OracleFinding]:
    """Run the (gated) oracle suite over one scenario outcome."""
    if oracles is None:
        oracles = oracles_for_index(scenario, index)
    findings = []
    for oracle in oracles:
        for message in oracle.check(scenario, outcome, runner):
            findings.append(OracleFinding(oracle=oracle.name,
                                          message=message))
    return findings
