"""Bianchi's saturation model, homogeneous and heterogeneous.

Bianchi (JSAC 2000) models saturated CSMA/CA as a renewal process over
contention slots: each backlogged station transmits in a slot with a
stationary probability tau determined by its contention-window ladder
and the collision probability it observes, and the two are coupled by
a fixed point::

    tau_i = 2 (1 - 2 p_i) /
            ((1 - 2 p_i)(W_i + 1) + p_i W_i (1 - (2 p_i)^{m_i}))
    p_i   = 1 - prod_{j != i} (1 - tau_j)

with ``W_i = cw_min_i + 1`` and ``m_i = log2((cw_max_i+1)/W_i)``
backoff-doubling stages (retries are unlimited; the window saturates
at ``cw_max``).  The packet DES in :mod:`repro.sim.medium` implements
exactly this ladder, so the closed form here is its ground truth, and
the fluid :class:`~repro.fluid.queue.ContentionBottleneck` uses the
same solver as its airtime law -- one model, three consumers.

Timing: the DES spends, per contention round, one SIFS, then
``aifsn + backoff`` idle slots, then one transmission (payload
serialization plus the fixed ACK overhead).  Equal ``aifsn`` across
stations shifts every countdown equally, so it folds into the busy
time exactly like Bianchi's DIFS term::

    E[T] = P_idle * slot + (1 - P_idle) * (T_payload + overhead
                                           + SIFS + aifsn * slot)

For mixed-priority media the per-class AIFS difference is *not*
captured by the fixed point (Bianchi has no AIFS); the solver models
priority through the contention windows only, which dominates.  The
fluid/packet agreement oracle bounds the residual error.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ConfigError
from .config import PER_TX_OVERHEAD, SIFS, SLOT_TIME, MacClass

#: Fixed-point iteration controls (damped; converges in tens of steps).
_MAX_ITER = 2000
_TOL = 1e-12
_DAMP = 0.5


def _stages(cls: MacClass) -> float:
    """Backoff-doubling stages between cw_min and cw_max."""
    return math.log2((cls.cw_max + 1) / (cls.cw_min + 1))


def _tau_of_p(p: float, cls: MacClass) -> float:
    """Per-station transmit probability given collision probability."""
    w = cls.cw_min + 1
    m = _stages(cls)
    if p >= 1.0:
        p = 1.0 - 1e-12
    if abs(1.0 - 2.0 * p) < 1e-9:
        # The p = 1/2 removable singularity: take the analytic limit.
        return 2.0 / (w + 1.0 + 0.5 * m * w)
    num = 2.0 * (1.0 - 2.0 * p)
    den = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p) ** m)
    return num / den


def transmit_probabilities(classes: Sequence[MacClass]) -> list[float]:
    """Solve the coupled fixed point for per-station tau.

    ``classes`` lists each saturated station's access class; the
    homogeneous case is just n copies of the same class.
    """
    n = len(classes)
    if n < 1:
        raise ConfigError("need at least one station")
    if n == 1:
        return [_tau_of_p(0.0, classes[0])]
    taus = [_tau_of_p(0.0, cls) for cls in classes]
    for _ in range(_MAX_ITER):
        worst = 0.0
        prod_all = 1.0
        for t in taus:
            prod_all *= (1.0 - t)
        for i, cls in enumerate(classes):
            others = prod_all / (1.0 - taus[i]) if taus[i] < 1.0 else 0.0
            p_i = 1.0 - others
            new = _tau_of_p(p_i, cls)
            step = _DAMP * (new - taus[i])
            worst = max(worst, abs(step))
            taus[i] += step
        if worst < _TOL:
            break
    return taus


def _cycle(classes: Sequence[MacClass], payload_time: float,
           slot: float, sifs: float, overhead: float
           ) -> tuple[list[float], float]:
    """Per-station success probabilities and mean renewal-slot time."""
    if payload_time <= 0:
        raise ConfigError(f"payload_time must be positive: {payload_time}")
    taus = transmit_probabilities(classes)
    p_idle = 1.0
    for t in taus:
        p_idle *= (1.0 - t)
    succ = []
    for i, t in enumerate(taus):
        others = p_idle / (1.0 - t) if t < 1.0 else 0.0
        succ.append(t * others)
    p_busy = 1.0 - p_idle
    aifsn = min(cls.aifsn for cls in classes)
    t_busy = payload_time + overhead + sifs + aifsn * slot
    mean_t = p_idle * slot + p_busy * t_busy
    return succ, mean_t


def airtime_shares(classes: Sequence[MacClass], payload_time: float,
                   slot: float = SLOT_TIME, sifs: float = SIFS,
                   overhead: float = PER_TX_OVERHEAD) -> list[float]:
    """Per-station goodput as a fraction of the raw link rate.

    ``sum(shares)`` is the medium's saturation efficiency: strictly
    below 1 (backoff slots, collisions, and MAC overhead all burn
    airtime), decreasing in station count past the optimum.
    """
    succ, mean_t = _cycle(classes, payload_time, slot, sifs, overhead)
    return [s * payload_time / mean_t for s in succ]


def saturation_throughput(n_stations: int, rate: float,
                          payload_bytes: float, cls: MacClass,
                          slot: float = SLOT_TIME, sifs: float = SIFS,
                          overhead: float = PER_TX_OVERHEAD) -> float:
    """Total saturated goodput (bytes/second), homogeneous stations.

    This is the closed form the ``MediumLink`` validation tests pin the
    DES against for n in {2, 5, 10}.
    """
    if n_stations < 1:
        raise ConfigError(f"need >= 1 station: {n_stations}")
    if rate <= 0:
        raise ConfigError(f"rate must be positive: {rate}")
    shares = airtime_shares([cls] * n_stations, payload_bytes / rate,
                            slot=slot, sifs=sifs, overhead=overhead)
    return sum(shares) * rate


def expected_service_time(classes: Sequence[MacClass], payload_time: float,
                          station: int = 0, slot: float = SLOT_TIME,
                          sifs: float = SIFS,
                          overhead: float = PER_TX_OVERHEAD) -> float:
    """Mean time between station ``station``'s successful transmissions.

    The MAC-layer head-of-line service time under saturation -- the
    fluid backend's per-packet contention delay.
    """
    succ, mean_t = _cycle(classes, payload_time, slot, sifs, overhead)
    if succ[station] <= 0.0:
        return float("inf")
    return mean_t / succ[station]
