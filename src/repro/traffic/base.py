"""Common interfaces for traffic generators.

A traffic source drives one or more transport connections (or raw
packet streams) on a path.  Sources are started explicitly so that
scenario code controls phase boundaries (Figure 3 runs five sources in
sequence on the same link).
"""

from __future__ import annotations

import abc


class TrafficSource(abc.ABC):
    """Something that can start and stop offering load on a path."""

    @abc.abstractmethod
    def start(self) -> None:
        """Begin offering load."""

    def stop(self) -> None:
        """Stop offering load.  Already-queued data may still drain;
        sources that cannot stop mid-flight document that."""

    @property
    @abc.abstractmethod
    def delivered_bytes(self) -> int:
        """Payload bytes delivered to the destination so far."""
