"""Content-addressed on-disk result store.

Layout (under ``$REPRO_STORE`` or ``~/.cache/repro``)::

    objects/<aa>/<digest>.pkl    pickled result payloads, named by the
                                 config fingerprint that produced them
    index.json                   per-entry metadata: size, kind, label,
                                 creation time, last access, hit count
    checkpoints/<fp>.json        campaign checkpoint manifests
                                 (see repro.store.scheduler)

Every write is atomic (tmp + ``os.replace``), so a killed run never
leaves a truncated object or index.  The index is an accounting cache:
if it is missing or corrupt it is rebuilt by scanning ``objects/``,
so deleting ``index.json`` is always safe.

Store operations feed the ``store.*`` counters on the process metrics
registry (:mod:`repro.obs.metrics`), which is how ``repro metrics``
and the CI cache-effectiveness job observe hit rates.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path

from ..errors import ConfigError
from ..obs.metrics import REGISTRY as _METRICS
from .atomic import atomic_write_bytes, atomic_write_json

#: Environment variable overriding the store root directory.
STORE_ENV = "REPRO_STORE"

#: Pinned pickle protocol so objects written by one interpreter stay
#: readable by the others we support.
PICKLE_PROTOCOL = 4

_INDEX_VERSION = 1


def default_root() -> Path:
    """The store root: ``$REPRO_STORE``, else ``~/.cache/repro``."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ArtifactStore:
    """Content-addressed pickle store with a JSON accounting index.

    Args:
        root: store directory; ``None`` defers to :func:`default_root`.

    Keys are fingerprint hex digests from
    :func:`repro.store.fingerprint.fingerprint`; values are arbitrary
    picklable results.  ``get``/``put`` update hit/size accounting in
    ``index.json``; :meth:`prune` evicts by age and LRU byte budget.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_root()
        self._index_path = self.root / "index.json"
        self._index: dict | None = None
        self._metrics = _METRICS.scoped("store")

    # -- paths -----------------------------------------------------------

    def _object_path(self, key: str) -> Path:
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise ConfigError(f"store key must be a hex digest: {key!r}")
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def checkpoint_path(self, key: str) -> Path:
        """Where the checkpoint manifest for campaign ``key`` lives."""
        return self.root / "checkpoints" / f"{key}.json"

    # -- index -----------------------------------------------------------

    def _load_index(self) -> dict:
        if self._index is not None:
            return self._index
        try:
            with open(self._index_path) as f:
                import json
                index = json.load(f)
            if index.get("version") != _INDEX_VERSION:
                raise ValueError("index version mismatch")
            if not isinstance(index.get("entries"), dict):
                raise ValueError("index entries table missing")
            self._sanitize_entries(index)
        except (OSError, ValueError):
            index = self._rebuild_index()
        self._index = index
        return index

    def _sanitize_entries(self, index: dict) -> None:
        """Repair or drop torn index entries so accounting and gc
        never abort on a corrupt ``index.json``.

        A crash (or hand edit) can leave an entry that is not a dict,
        lacks the accounting fields, or carries an invalid key.  Each
        such entry is rebuilt from its object file's stat when the
        object exists, and silently dropped when it does not -- the
        same recovery :meth:`_rebuild_index` performs wholesale, but
        scoped to the damaged entries.
        """
        entries = index["entries"]
        for key in list(entries):
            entry = entries[key]
            if (isinstance(entry, dict)
                    and isinstance(entry.get("size"), (int, float))
                    and isinstance(entry.get("last_access"), (int, float))
                    and isinstance(entry.get("created"), (int, float))):
                continue
            try:
                stat = self._object_path(key).stat()
            except (ConfigError, OSError):
                # Invalid key or missing object: nothing to account.
                del entries[key]
                continue
            entries[key] = {
                "size": stat.st_size,
                "kind": "unknown",
                "label": "",
                "created": stat.st_mtime,
                "last_access": stat.st_mtime,
                "hits": 0,
            }

    def _rebuild_index(self) -> dict:
        """Reconstruct accounting from the objects directory."""
        entries: dict[str, dict] = {}
        objects = self.root / "objects"
        if objects.is_dir():
            for path in sorted(objects.glob("*/*.pkl")):
                stat = path.stat()
                entries[path.stem] = {
                    "size": stat.st_size,
                    "kind": "unknown",
                    "label": "",
                    "created": stat.st_mtime,
                    "last_access": stat.st_mtime,
                    "hits": 0,
                }
        return {"version": _INDEX_VERSION, "entries": entries,
                "hits": 0, "misses": 0}

    def _index_lock(self):
        """An exclusive advisory lock serializing index saves.

        Returns an open lock-file handle (close to release), or None
        where ``fcntl`` is unavailable -- saves then degrade to the
        best-effort read-merge-write, which is still union-shaped but
        can drop a concurrent writer's entry in a tight race.
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        lock = open(self.root / "index.lock", "w")
        fcntl.flock(lock, fcntl.LOCK_EX)
        return lock

    def _save_index(self) -> None:
        """Persist the index, folding in entries other writers landed.

        Several store handles (server workers, a cluster coordinator
        pulling while a batch run computes) can share one root.  Object
        writes are safe by content addressing, but a blind index write
        would be last-writer-wins and drop entries a concurrent handle
        added for *different* keys.  Under an advisory file lock, the
        on-disk index is re-read and entries unknown to this handle
        adopted before the atomic replace, so saves are union-shaped:
        entries only ever accumulate (GC is the sole deleter, and a
        concurrently re-added key simply wins).
        """
        if self._index is None:
            return
        lock = self._index_lock()
        try:
            self._merge_disk_entries()
            atomic_write_json(self._index_path, self._index, indent=None)
        finally:
            if lock is not None:
                lock.close()

    def _merge_disk_entries(self) -> None:
        try:
            with open(self._index_path) as f:
                import json
                disk = json.load(f)
            others = disk.get("entries")
            if isinstance(others, dict):
                for key, entry in others.items():
                    if key in self._index["entries"] \
                            or not isinstance(entry, dict):
                        continue
                    try:
                        # Adopt only keys whose object is actually on
                        # disk -- a key we (or gc) just deleted must
                        # not be resurrected from a stale disk index.
                        if self._object_path(key).exists():
                            self._index["entries"][key] = entry
                    except ConfigError:
                        continue
        except (OSError, ValueError):
            pass
        atomic_write_json(self._index_path, self._index, indent=None)

    # -- core operations -------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self._object_path(key).exists()

    def get(self, key: str, default=None):
        """Fetch the payload for ``key``; ``default`` on miss.

        A hit bumps the entry's hit count and last-access time; an
        unreadable object (truncated by a crash predating atomic
        writes, or hand-edited) counts as a miss and is deleted.
        """
        path = self._object_path(key)
        index = self._load_index()
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
        except FileNotFoundError:
            index["misses"] += 1
            self._metrics.counter("misses").inc()
            self._save_index()
            return default
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            # Unreadable object: drop it so the task re-runs.
            path.unlink(missing_ok=True)
            index["entries"].pop(key, None)
            index["misses"] += 1
            self._metrics.counter("misses").inc()
            self._save_index()
            return default
        entry = index["entries"].setdefault(key, {
            "size": path.stat().st_size, "kind": "unknown", "label": "",
            "created": time.time(), "last_access": 0.0, "hits": 0})
        entry["hits"] += 1
        entry["last_access"] = time.time()
        index["hits"] += 1
        self._metrics.counter("hits").inc()
        self._save_index()
        return payload

    def put(self, key: str, payload, kind: str = "generic",
            label: str = "") -> Path:
        """Store ``payload`` under ``key`` (idempotent; atomic)."""
        path = self._object_path(key)
        data = pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
        atomic_write_bytes(path, data)
        index = self._load_index()
        now = time.time()
        prior = index["entries"].get(key)
        index["entries"][key] = {
            "size": len(data),
            "kind": kind,
            "label": label,
            "created": prior["created"] if prior else now,
            "last_access": now,
            "hits": prior["hits"] if prior else 0,
        }
        self._metrics.counter("puts").inc()
        self._metrics.counter("bytes_written").inc(len(data))
        self._save_index()
        return path

    def get_bytes(self, key: str) -> bytes | None:
        """The raw pickled object bytes for ``key``; None on miss.

        The transfer primitive of cluster merge: bytes fetched from a
        remote node's store go straight into the local one through
        :meth:`put_bytes` without a decode/re-encode round trip, so the
        local object is byte-identical to the remote original.
        """
        path = self._object_path(key)
        try:
            with open(path, "rb") as f:
                return f.read()
        except OSError:
            return None

    def put_bytes(self, key: str, data: bytes, kind: str = "generic",
                  label: str = "") -> Path:
        """Store already-pickled ``data`` under ``key`` (idempotent;
        atomic).  The caller vouches that ``data`` is the pickled
        payload the content address ``key`` names."""
        if not isinstance(data, bytes):
            raise ConfigError(
                f"put_bytes needs bytes, got {type(data).__name__}")
        path = self._object_path(key)
        atomic_write_bytes(path, data)
        index = self._load_index()
        now = time.time()
        prior = index["entries"].get(key)
        index["entries"][key] = {
            "size": len(data),
            "kind": kind,
            "label": label,
            "created": prior["created"] if isinstance(prior, dict)
            and "created" in prior else now,
            "last_access": now,
            "hits": prior["hits"] if isinstance(prior, dict)
            and "hits" in prior else 0,
        }
        self._metrics.counter("puts").inc()
        self._metrics.counter("bytes_written").inc(len(data))
        self._save_index()
        return path

    def delete(self, key: str) -> bool:
        """Remove one entry; True if it existed."""
        path = self._object_path(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        index = self._load_index()
        index["entries"].pop(key, None)
        self._save_index()
        return existed

    # -- accounting ------------------------------------------------------

    def entries(self) -> dict[str, dict]:
        """The index's entry table (key -> metadata dict), a copy."""
        return {k: dict(v)
                for k, v in self._load_index()["entries"].items()}

    def stat(self) -> dict:
        """Aggregate accounting: entry/byte totals, hit/miss counters,
        per-kind breakdown."""
        index = self._load_index()
        by_kind: dict[str, dict] = {}
        total_bytes = 0
        for entry in index["entries"].values():
            total_bytes += entry["size"]
            bucket = by_kind.setdefault(
                entry["kind"], {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry["size"]
        return {
            "root": str(self.root),
            "entries": len(index["entries"]),
            "bytes": total_bytes,
            "hits": index["hits"],
            "misses": index["misses"],
            "by_kind": by_kind,
        }

    def prune(self, max_age_s: float | None = None,
              max_bytes: int | None = None) -> tuple[int, int]:
        """Evict entries by age, then LRU down to a byte budget.

        Args:
            max_age_s: drop entries whose last access is older.
            max_bytes: after age eviction, drop least-recently-used
                entries until the store fits the budget.

        Returns:
            ``(entries_evicted, bytes_freed)``.
        """
        if max_age_s is not None and max_age_s < 0:
            raise ConfigError(f"max_age_s must be >= 0: {max_age_s}")
        if max_bytes is not None and max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0: {max_bytes}")
        index = self._load_index()
        now = time.time()
        evicted, freed = 0, 0

        def drop(key: str) -> None:
            nonlocal evicted, freed
            entry = index["entries"].pop(key, None)
            try:
                self._object_path(key).unlink(missing_ok=True)
            except ConfigError:
                pass  # invalid key: the index entry is all there was
            evicted += 1
            if isinstance(entry, dict):
                freed += entry.get("size", 0)

        if max_age_s is not None:
            for key in [k for k, e in index["entries"].items()
                        if now - e["last_access"] > max_age_s]:
                drop(key)
        if max_bytes is not None:
            total = sum(e["size"] for e in index["entries"].values())
            by_lru = sorted(index["entries"],
                            key=lambda k: index["entries"][k]["last_access"])
            for key in by_lru:
                if total <= max_bytes:
                    break
                total -= index["entries"][key]["size"]
                drop(key)
        self._metrics.counter("evictions").inc(evicted)
        self._save_index()
        return evicted, freed
