"""Shared experiment scaffolding.

Each experiment module exposes ``run(**params) -> ExperimentResult``;
the CLI and benchmarks call it with defaults (or scaled-down "smoke"
parameters).  Results carry printable text, tabular rows for CSV
export, and a metrics dict that tests and EXPERIMENTS.md assertions key
on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from ..core.report import write_csv, write_json
from ..runtime import parallel_map


@dataclass
class ExperimentResult:
    """Uniform experiment output.

    Attributes:
        experiment: experiment id (e.g. "fig3").
        text: human-readable rendering (charts + tables).
        metrics: headline numbers, for assertions and EXPERIMENTS.md.
        tables: named row-sets to export as CSV.
        params: the parameters the run used.
        attachments: named JSON-able payloads saved alongside the
            report (e.g. the ``metrics_registry`` snapshot from
            :mod:`repro.obs.metrics`).
    """

    experiment: str
    text: str
    metrics: dict[str, float]
    tables: dict[str, list[Mapping]] = field(default_factory=dict)
    params: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    attachments: dict[str, Mapping] = field(default_factory=dict)

    def save(self, out_dir: str | Path) -> list[Path]:
        """Write text, metrics, and CSV tables under ``out_dir``."""
        out = Path(out_dir) / self.experiment
        out.mkdir(parents=True, exist_ok=True)
        written = []
        text_path = out / "report.txt"
        text_path.write_text(self.text + "\n")
        written.append(text_path)
        metrics_path = out / "metrics.json"
        write_json(metrics_path, {"experiment": self.experiment,
                                  "params": self.params,
                                  "metrics": self.metrics,
                                  "elapsed_s": self.elapsed_s})
        written.append(metrics_path)
        for name, rows in self.tables.items():
            csv_path = out / f"{name}.csv"
            write_csv(csv_path, rows)
            written.append(csv_path)
        for name, payload in self.attachments.items():
            json_path = out / f"{name}.json"
            write_json(json_path, payload)
            written.append(json_path)
        return written


class Stopwatch:
    """Context manager timing an experiment run."""

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self._start
        return False


def sweep(values: Sequence, run_fn, label: str = "value",
          workers: int | None = None, progress=None) -> list[dict]:
    """Run ``run_fn(v)`` for each value, collecting metric rows.

    Sweep points are independent, so they are fanned out over worker
    processes when ``run_fn`` is picklable (a module-level function or
    ``functools.partial`` of one); closures fall back to the serial
    loop.  Rows come back in ``values`` order either way.

    Args:
        values: the sweep points.
        run_fn: ``fn(value) -> ExperimentResult``.
        label: column name for the sweep value.
        workers: worker processes; ``None`` defers to ``REPRO_WORKERS``
            then the CPU count; ``1`` forces serial.
        progress: optional ``fn(done, total)`` completion callback.
    """
    results = parallel_map(run_fn, values, workers=workers,
                           chunk_size=1, progress=progress)
    rows = []
    for v, result in zip(values, results):
        row = {label: v}
        row.update(result.metrics)
        rows.append(row)
    return rows
