"""Structured observability for the simulator.

Three pieces, all with near-zero cost when idle:

* :mod:`repro.obs.bus` -- a typed event-trace bus; instrumented
  components (links, qdiscs, CCAs, transports) emit enqueue/dequeue/
  drop/mark, cwnd/rate, and mode/pulse events through one global
  :data:`~repro.obs.bus.BUS`, guarded by a single ``enabled`` check.
* :mod:`repro.obs.metrics` -- a hierarchical registry of counters,
  gauges, and fixed-bucket histograms with commutative snapshot
  merging (so parallel workers can report in any order).
* :mod:`repro.obs.invariants` -- trace-driven checkers (byte
  conservation, non-negative queues, monotonic clock, cwnd bounds)
  usable in tests via :func:`~repro.obs.invariants.check_trace` or as
  strict runtime assertions via ``REPRO_CHECK_INVARIANTS=1``.

Quick tour::

    from repro.obs import capture, check_trace
    with capture() as trace:
        ...run a simulation...
    assert check_trace(trace.events) == []     # all invariants hold
    print(trace.counts_by_kind())
"""

from .bus import (BUS, EventKind, JsonlTraceWriter, TraceBus, TraceEvent,
                  capture)
from .invariants import (ByteConservationChecker, CwndBoundsChecker,
                         MonotonicClockChecker, QueueNonNegativeChecker,
                         Violation, all_checkers, assert_no_violations,
                         check_trace, maybe_install_from_env,
                         runtime_checks_requested)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, REGISTRY,
                      default_buckets, registry)

__all__ = [
    "BUS", "TraceBus", "TraceEvent", "EventKind", "capture",
    "JsonlTraceWriter",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "registry", "default_buckets",
    "Violation", "check_trace", "all_checkers", "assert_no_violations",
    "MonotonicClockChecker", "QueueNonNegativeChecker",
    "ByteConservationChecker", "CwndBoundsChecker",
    "maybe_install_from_env", "runtime_checks_requested",
]
