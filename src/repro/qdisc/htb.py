"""Hierarchical token bucket (HTB)-style per-user isolation.

Models the per-subscriber bandwidth plans of §2.1: each user class has
an assured rate and a ceiling; classes at their assured rate may borrow
unused capacity up to the ceiling.  This is a simplified two-level HTB
(root + leaf classes) sufficient to express "every user gets the rate
they paid for, plus a share of any slack".

Scheduling: leaves below their assured rate are served first
(round-robin); if none, leaves below their ceiling borrow (round-robin
weighted by ``quantum``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.packet import Packet
from .base import Qdisc


class HtbClass:
    """One leaf class: a token bucket pair (assured rate and ceiling)."""

    __slots__ = ("name", "rate", "ceil", "burst", "tokens", "ctokens",
                 "last_update", "packets", "bytes", "quantum")

    def __init__(self, name: str, rate: float, ceil: float,
                 burst: int = 15140, quantum: int = 1514):
        if rate <= 0 or ceil < rate:
            raise ConfigError(
                f"class {name!r}: need 0 < rate <= ceil, got {rate}, {ceil}")
        self.name = name
        self.rate = rate
        self.ceil = ceil
        self.burst = burst
        self.quantum = quantum
        self.tokens = float(burst)
        self.ctokens = float(burst)
        self.last_update = 0.0
        self.packets: deque[Packet] = deque()
        self.bytes = 0

    def refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.last_update)
        self.last_update = now
        self.tokens = min(float(self.burst), self.tokens + elapsed * self.rate)
        self.ctokens = min(float(self.burst), self.ctokens + elapsed * self.ceil)


class HtbQueue(Qdisc):
    """Two-level HTB with per-class FIFO leaves.

    Args:
        classes: leaf classes keyed by name.
        classify: maps packets to a class name (default: by user id).
        default_class: class for unmatched packets; must exist.
        limit_packets: per-class packet limit.
    """

    def __init__(self, classes: list[HtbClass],
                 classify: Callable[[Packet], str] | None = None,
                 default_class: str | None = None,
                 limit_packets: int = 1000):
        super().__init__()
        if not classes:
            raise ConfigError("HtbQueue needs at least one class")
        self.classes = {c.name: c for c in classes}
        if len(self.classes) != len(classes):
            raise ConfigError("duplicate class names")
        self.classify = classify if classify is not None else (
            lambda p: p.user_id)
        self.default_class = default_class if default_class is not None \
            else classes[0].name
        if self.default_class not in self.classes:
            raise ConfigError(f"unknown default class {self.default_class!r}")
        self.limit_packets = limit_packets
        self._order = [c.name for c in classes]
        self._rr_assured = 0
        self._rr_borrow = 0
        self._total_packets = 0
        self._total_bytes = 0

    def _class_of(self, packet: Packet) -> HtbClass:
        name = self.classify(packet)
        return self.classes.get(name, self.classes[self.default_class])

    def enqueue(self, packet: Packet, now: float) -> bool:
        cls = self._class_of(packet)
        if len(cls.packets) >= self.limit_packets:
            self._record_drop(packet, now)
            return False
        packet.enqueue_time = now
        cls.packets.append(packet)
        cls.bytes += packet.size
        self._total_packets += 1
        self._total_bytes += packet.size
        self._record_enqueue(packet, now)
        return True

    def _try_serve(self, cls: HtbClass, borrow: bool) -> Optional[Packet]:
        if not cls.packets:
            return None
        head = cls.packets[0]
        if borrow:
            if cls.ctokens < head.size:
                return None
        else:
            if cls.tokens < head.size:
                return None
        cls.packets.popleft()
        cls.bytes -= head.size
        cls.tokens = max(cls.tokens - head.size, -float(cls.burst))
        cls.ctokens -= head.size
        self._total_packets -= 1
        self._total_bytes -= head.size
        return head

    def dequeue(self, now: float) -> Optional[Packet]:
        names = self._order
        n = len(names)
        for cls in self.classes.values():
            cls.refill(now)
        # Pass 1: classes within their assured rate.
        for i in range(n):
            idx = (self._rr_assured + i) % n
            packet = self._try_serve(self.classes[names[idx]], borrow=False)
            if packet is not None:
                self._rr_assured = (idx + 1) % n
                self._record_dequeue(packet, now)
                return packet
        # Pass 2: classes borrowing up to their ceiling.
        for i in range(n):
            idx = (self._rr_borrow + i) % n
            packet = self._try_serve(self.classes[names[idx]], borrow=True)
            if packet is not None:
                self._rr_borrow = (idx + 1) % n
                self._record_dequeue(packet, now)
                return packet
        return None

    def next_ready_time(self, now: float) -> Optional[float]:
        if self._total_packets == 0:
            return None
        best: Optional[float] = None
        for cls in self.classes.values():
            if not cls.packets:
                continue
            need = cls.packets[0].size
            cls.refill(now)
            wait_c = max(0.0, need - cls.ctokens) / cls.ceil
            # Epsilon floor: see TokenBucketFilter.next_ready_time.
            candidate = now + max(wait_c, 1e-6)
            if best is None or candidate < best:
                best = candidate
        return best

    def __len__(self) -> int:
        return self._total_packets

    @property
    def byte_length(self) -> int:
        return self._total_bytes
