"""Packet-level discrete-event network simulator.

The substrate standing in for Mahimahi + real Internet paths: an event
engine (:mod:`engine`), packets (:mod:`packet`), rate-limited and
trace-driven links (:mod:`link`, :mod:`trace`), hosts (:mod:`node`), and
topology builders (:mod:`network`).
"""

from .engine import Event, Simulator
from .link import DelayBox, Link, LossBox, TraceLink
from .network import PathHandles, dumbbell, trace_dumbbell, two_hop_chain
from .monitor import QueueMonitor, UtilizationMonitor
from .node import CountingSink, Host
from .packet import Packet, PacketKind, make_ack, make_data
from .rng import RngRegistry

__all__ = [
    "Simulator", "Event", "Packet", "PacketKind", "make_ack", "make_data",
    "Link", "DelayBox", "LossBox", "TraceLink", "Host", "CountingSink",
    "PathHandles", "dumbbell", "trace_dumbbell", "two_hop_chain",
    "RngRegistry", "QueueMonitor", "UtilizationMonitor",
]
