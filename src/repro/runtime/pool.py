"""Process-pool parallel map with deterministic, ordered results.

Design notes
------------

* **Ordered reassembly.**  Tasks are dispatched in chunks but results
  are always returned in submission order, so ``parallel_map(f, xs)``
  is a drop-in replacement for ``[f(x) for x in xs]``.
* **Determinism.**  The pool adds no randomness of its own: as long as
  ``fn`` is a pure function of its item (every item carries its own
  seed -- see :func:`derive_seed`), serial and parallel runs produce
  bit-for-bit identical result lists.
* **Serial fallback.**  ``workers <= 1``, a single-item workload,
  unpicklable work (closures, lambdas), an unavailable pool (restricted
  sandboxes without semaphores), or running *inside* a pool worker all
  fall back to the plain serial loop -- correctness never depends on
  the pool, so doctests, Windows ``spawn``, and CI stay correct.
* **Fault tolerance.**  :meth:`ParallelExecutor.run_tasks` applies a
  :class:`FaultPolicy` -- per-task retry with exponential backoff and a
  per-task wall-clock timeout -- and returns a :class:`TaskOutcome` per
  item instead of raising, so one persistently failing task quarantines
  instead of killing a thousand-task campaign.  ``REPRO_FAULT_RATE``
  injects deterministic pseudo-random faults before task bodies, which
  is how the retry path is exercised in tests and CI.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import hashlib
import os
import pickle
import signal
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import ConfigError, ReproError
from ..obs.metrics import REGISTRY as _METRICS

#: Environment variable consulted when no explicit worker count is given.
DEFAULT_WORKERS_ENV = "REPRO_WORKERS"

#: Probability (0..1) of injecting a fault before each task attempt.
#: Deterministic per (task label, attempt): the same campaign under the
#: same rate always fails -- and recovers -- identically.
FAULT_RATE_ENV = "REPRO_FAULT_RATE"


class InjectedFault(ReproError):
    """A fault injected by ``REPRO_FAULT_RATE`` (testing hook)."""


class TaskTimeout(ReproError):
    """A task exceeded its :attr:`FaultPolicy.timeout_s` deadline."""

#: Environment marker set inside pool workers so nested ``parallel_map``
#: calls (a parallel sweep of parallel campaigns) degrade to serial
#: instead of forking pools from pool workers.
_IN_WORKER_ENV = "REPRO_IN_POOL_WORKER"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count.

    Precedence: the explicit ``workers`` argument, then the
    ``REPRO_WORKERS`` environment variable, then ``os.cpu_count()``.
    The result is always >= 1.
    """
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(DEFAULT_WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ConfigError(
                f"{DEFAULT_WORKERS_ENV} must be an integer: {env!r}")
    return os.cpu_count() or 1


def derive_seed(base_seed: int, index: int, name: str = "task") -> int:
    """Deterministic 63-bit child seed for task ``index``.

    Uses the same hash-derivation scheme as :mod:`repro.sim.rng` so
    child streams are independent of each other and stable across
    worker counts and Python hash randomization.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


@dataclass(frozen=True)
class FaultPolicy:
    """Retry/timeout policy for fault-tolerant task execution.

    Attributes:
        retries: additional attempts after the first failure.
        backoff_s: sleep before the first retry; each further retry
            multiplies it by ``backoff_factor`` (exponential backoff).
        backoff_factor: backoff growth per retry.
        timeout_s: per-attempt wall-clock deadline, enforced via
            ``SIGALRM`` on the POSIX main thread; anywhere else the
            deadline is unenforced and a one-time ``RuntimeWarning``
            says so.  ``None`` disables the deadline.
    """

    retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: float | None = None

    def __post_init__(self):
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0: {self.retries}")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ConfigError(
                f"invalid backoff: {self.backoff_s}/{self.backoff_factor}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be > 0: {self.timeout_s}")


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one fault-tolerant task.

    Attributes:
        index: the item's position in the submitted sequence.
        label: the task's display/quarantine label.
        ok: True when some attempt succeeded.
        value: the task's return value (None on failure).
        attempts: attempts consumed (1 = first try succeeded).
        error: failure message of the last attempt ("" on success).
        error_type: exception class name of the last attempt.
    """

    index: int
    label: str
    ok: bool
    value: object = None
    attempts: int = 1
    error: str = ""
    error_type: str = ""


def fault_rate() -> float:
    """The injected-fault probability from ``REPRO_FAULT_RATE``."""
    env = os.environ.get(FAULT_RATE_ENV)
    if not env:
        return 0.0
    try:
        rate = float(env)
    except ValueError:
        raise ConfigError(f"{FAULT_RATE_ENV} must be a float: {env!r}")
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(f"{FAULT_RATE_ENV} must be in [0, 1]: {rate}")
    return rate


def _maybe_inject_fault(label: str, attempt: int) -> None:
    """Raise :class:`InjectedFault` pseudo-randomly but deterministically.

    The decision hashes (label, attempt), so a given task fails on the
    same attempts every run -- and, because the attempt number is part
    of the hash, a retry of a failed attempt can succeed.
    """
    rate = fault_rate()
    if rate <= 0.0:
        return
    digest = hashlib.sha256(f"fault:{label}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "little") / 2**64
    if fraction < rate:
        _METRICS.counter("pool.injected_faults").inc()
        raise InjectedFault(
            f"injected fault on {label!r} attempt {attempt + 1}")


#: One-time flag: warn only once per process when a requested deadline
#: cannot be enforced (non-POSIX, or a non-main thread such as the
#: serve thread executor).
_DEADLINE_WARNED = False


@contextlib.contextmanager
def _task_deadline(seconds: float | None):
    """Enforce a wall-clock deadline via ``SIGALRM`` where possible.

    Simulation tasks are CPU-bound pure Python, so a cooperative
    thread-based timeout could never interrupt them; a real signal can.
    ``SIGALRM`` only works on the Unix main thread, so when a deadline
    is requested anywhere else -- pool tasks running serially inside
    the serve thread executor are the common case -- the deadline
    degrades to a no-op with a one-time :class:`RuntimeWarning`
    (callers such as :class:`repro.serve.jobs.JobManager` layer their
    own job-level timeout on top).
    """
    if seconds is None:
        yield
        return
    usable = (hasattr(signal, "SIGALRM")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        global _DEADLINE_WARNED
        if not _DEADLINE_WARNED:
            _DEADLINE_WARNED = True
            import warnings
            warnings.warn(
                f"task deadline of {seconds:g}s cannot be enforced "
                "outside the POSIX main thread; tasks run without a "
                "deadline (enforce timeouts at the caller, e.g. the "
                "serve job timeout)", RuntimeWarning, stacklevel=3)
        yield
        return

    def _on_alarm(signum, frame):
        raise TaskTimeout(f"task exceeded {seconds:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class _PolicyTask:
    """Picklable wrapper running one task under a :class:`FaultPolicy`.

    Called with ``(index, label, item)`` tuples; never raises for task
    failures -- every path returns a :class:`TaskOutcome`, so pool
    workers stay alive and exception picklability never matters.
    """

    def __init__(self, fn: Callable, policy: FaultPolicy | None):
        self.fn = fn
        self.policy = policy if policy is not None else FaultPolicy()

    def __call__(self, task: tuple) -> TaskOutcome:
        index, label, item = task
        policy = self.policy
        delay = policy.backoff_s
        error, error_type = "", ""
        attempts = 0
        for attempt in range(policy.retries + 1):
            attempts = attempt + 1
            try:
                with _task_deadline(policy.timeout_s):
                    _maybe_inject_fault(label, attempt)
                    value = _apply_timed(self.fn, item)
                return TaskOutcome(index=index, label=label, ok=True,
                                   value=value, attempts=attempts)
            except TaskTimeout as exc:
                _METRICS.counter("pool.timeouts").inc()
                error, error_type = str(exc), type(exc).__name__
            except Exception as exc:
                error, error_type = str(exc), type(exc).__name__
            if attempt < policy.retries:
                _METRICS.counter("pool.retries").inc()
                if delay > 0:
                    time.sleep(delay)
                    delay *= policy.backoff_factor
        _METRICS.counter("pool.task_failures").inc()
        return TaskOutcome(index=index, label=label, ok=False,
                           attempts=attempts, error=error,
                           error_type=error_type)


def _auto_chunk_size(total: int, workers: int) -> int:
    """Chunk so each worker sees several chunks (load balancing) while
    amortizing IPC for large, cheap-per-item workloads."""
    return max(1, total // (workers * 8))


def _chunks(items: Sequence, size: int) -> list[Sequence]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _mark_worker() -> None:
    """Pool initializer: tag the process so nested maps stay serial."""
    os.environ[_IN_WORKER_ENV] = "1"


def _apply_timed(fn: Callable, item):
    """Run one task, recording wall time into the process registry."""
    t0 = time.perf_counter()
    result = fn(item)
    _METRICS.histogram("pool.task_s").observe(time.perf_counter() - t0)
    _METRICS.counter("pool.tasks").inc()
    return result


def _run_chunk(fn: Callable, chunk: Sequence) -> tuple[list, dict]:
    """Worker-side body: apply ``fn`` to one chunk of items.

    Returns the chunk's results plus a snapshot of the metrics the
    chunk produced in this worker process.  The worker registry is
    reset per chunk, so the parent can merge every returned snapshot
    without double counting (the merge is commutative: counters and
    histogram buckets add, gauges take the max, so reassembly order
    does not matter).
    """
    _METRICS.reset()
    results = [_apply_timed(fn, item) for item in chunk]
    return results, _METRICS.snapshot()


def _run_outcome_chunk(runner: "_PolicyTask",
                       chunk: Sequence) -> tuple[list, dict]:
    """Worker-side body for outcome chunks.

    Like :func:`_run_chunk` but the runner already times/counts each
    task internally, so items are applied directly.
    """
    _METRICS.reset()
    results = [runner(task) for task in chunk]
    return results, _METRICS.snapshot()


def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def _serial_map(fn: Callable, items: Sequence, progress) -> list:
    results = []
    total = len(items)
    for i, item in enumerate(items):
        results.append(_apply_timed(fn, item))
        if progress is not None:
            progress(i + 1, total)
    return results


class ParallelExecutor:
    """Reusable process-pool mapper.

    Args:
        workers: worker processes; ``None`` defers to
            :func:`resolve_workers` (``REPRO_WORKERS`` env var, then
            CPU count).  ``workers <= 1`` never creates a pool.
        chunk_size: items per dispatched task; ``None`` picks a size
            that gives each worker several chunks.

    Use as a context manager (or call :meth:`close`) to release the
    pool; a one-shot convenience wrapper is :func:`parallel_map`.

    >>> with ParallelExecutor(workers=1) as ex:
    ...     ex.map(abs, [-1, -2, 3])
    [1, 2, 3]
    """

    def __init__(self, workers: int | None = None,
                 chunk_size: int | None = None):
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1: {chunk_size}")
        self.chunk_size = chunk_size
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    # -- pool lifecycle --------------------------------------------------

    @property
    def serial(self) -> bool:
        """True when this executor will never use a process pool."""
        return self.workers <= 1 or os.environ.get(_IN_WORKER_ENV) == "1"

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, initializer=_mark_worker)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- mapping ---------------------------------------------------------

    def map(self, fn: Callable, items: Iterable, progress=None) -> list:
        """Apply ``fn`` to every item, returning results in order.

        ``progress``, if given, is called as ``progress(done, total)``
        with the cumulative number of completed items -- after every
        item in serial mode, after every chunk in parallel mode.

        Exceptions raised by ``fn`` propagate to the caller in both
        modes.
        """
        items = list(items)
        total = len(items)
        if total == 0:
            return []
        if (self.serial or total == 1
                or not _is_picklable(fn) or not _is_picklable(items[0])):
            return _serial_map(fn, items, progress)
        size = self.chunk_size or _auto_chunk_size(total, self.workers)
        chunks = _chunks(items, size)
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_run_chunk, fn, chunk)
                       for chunk in chunks]
        except (OSError, ValueError, RuntimeError):
            # Pool could not be created (restricted environment) --
            # correctness over speed.
            self.close()
            return _serial_map(fn, items, progress)
        try:
            if progress is not None:
                done_items = 0
                for future in concurrent.futures.as_completed(futures):
                    future.result()  # surface worker errors promptly
                    done_items += len(chunks[futures.index(future)])
                    progress(done_items, total)
            results: list = []
            for future in futures:
                chunk_results, worker_metrics = future.result()
                results.extend(chunk_results)
                _METRICS.merge(worker_metrics)
            return results
        except concurrent.futures.process.BrokenProcessPool:
            # A worker died (OOM-killed, sandbox limits): recompute
            # serially rather than failing the whole run.
            self.close()
            return _serial_map(fn, items, progress)
        except BaseException:
            for future in futures:
                future.cancel()
            raise

    # -- fault-tolerant task execution -----------------------------------

    def imap_tasks(self, fn: Callable, items: Iterable,
                   policy: FaultPolicy | None = None,
                   labels: Sequence[str] | None = None
                   ) -> Iterator[TaskOutcome]:
        """Run tasks under a :class:`FaultPolicy`, yielding outcomes
        **as they complete** (unordered; see :attr:`TaskOutcome.index`).

        Completion-order delivery is what makes per-task checkpointing
        possible: :class:`repro.store.scheduler.ResumableScheduler`
        persists each outcome the moment it arrives, so an interrupted
        run loses at most the in-flight tasks.

        Task failures never raise -- they arrive as ``ok=False``
        outcomes after the policy's retries are exhausted.
        """
        items = list(items)
        if labels is None:
            labels = [f"task-{i}" for i in range(len(items))]
        else:
            labels = [str(lab) for lab in labels]
            if len(labels) != len(items):
                raise ConfigError(
                    f"labels/items length mismatch: "
                    f"{len(labels)} != {len(items)}")
        tasks = list(zip(range(len(items)), labels, items))
        runner = _PolicyTask(fn, policy)
        if (self.serial or len(tasks) <= 1 or not _is_picklable(fn)
                or not (tasks and _is_picklable(tasks[0]))):
            yield from (runner(task) for task in tasks)
            return
        size = self.chunk_size or 1
        chunks = _chunks(tasks, size)
        try:
            pool = self._ensure_pool()
            pending = {pool.submit(_run_outcome_chunk, runner, chunk):
                       chunk for chunk in chunks}
        except (OSError, ValueError, RuntimeError):
            self.close()
            yield from (runner(task) for task in tasks)
            return
        try:
            for future in concurrent.futures.as_completed(list(pending)):
                chunk_results, worker_metrics = future.result()
                del pending[future]
                _METRICS.merge(worker_metrics)
                yield from chunk_results
        except concurrent.futures.process.BrokenProcessPool:
            # A worker died outright; recompute the unfinished chunks
            # serially so the campaign still completes.
            leftover = [task for chunk in pending.values()
                        for task in chunk]
            self.close()
            yield from (runner(task) for task in leftover)
        except BaseException:
            for future in pending:
                future.cancel()
            raise

    def run_tasks(self, fn: Callable, items: Iterable,
                  policy: FaultPolicy | None = None,
                  labels: Sequence[str] | None = None,
                  progress=None) -> list[TaskOutcome]:
        """Fault-tolerant map: one :class:`TaskOutcome` per item, in
        submission order.  Never raises for task failures."""
        items = list(items)
        outcomes: list[TaskOutcome | None] = [None] * len(items)
        done = 0
        for outcome in self.imap_tasks(fn, items, policy=policy,
                                       labels=labels):
            outcomes[outcome.index] = outcome
            done += 1
            if progress is not None:
                progress(done, len(items))
        return outcomes  # type: ignore[return-value]


def parallel_map(fn: Callable, items: Iterable, workers: int | None = None,
                 chunk_size: int | None = None, progress=None) -> list:
    """One-shot :meth:`ParallelExecutor.map`.

    >>> parallel_map(abs, [-3, 1, -2], workers=1)
    [3, 1, 2]
    """
    with ParallelExecutor(workers=workers, chunk_size=chunk_size) as ex:
        return ex.map(fn, items, progress=progress)
