"""Traffic policer: drop (rather than queue) traffic above a rate.

Models the ISP behaviour Flach et al. (SIGCOMM '16) found on 7% of
measured paths: a token bucket whose conforming packets pass straight
through to the child queue and whose non-conforming packets are
*dropped*, producing the characteristic high-loss plateaus of policed
connections.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.packet import Packet
from .base import Qdisc
from .fifo import DropTailQueue


class Policer(Qdisc):
    """Single-rate policer in front of a child queue.

    Args:
        rate: committed information rate (bytes/second).
        burst: committed burst size (bytes).
        child: queue for conforming packets.
    """

    def __init__(self, rate: float, burst: int, child: Qdisc | None = None):
        super().__init__()
        if rate <= 0:
            raise ConfigError(f"rate must be positive: {rate}")
        if burst < 1514:
            raise ConfigError(f"burst must hold at least one MTU: {burst}")
        self.rate = rate
        self.burst = burst
        self.child = child if child is not None else DropTailQueue(
            limit_packets=1000)
        self._tokens = float(burst)
        self._last_update = 0.0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_update)
        self._last_update = now
        self._tokens = min(float(self.burst),
                           self._tokens + elapsed * self.rate)

    def enqueue(self, packet: Packet, now: float) -> bool:
        self._refill(now)
        if self._tokens < packet.size:
            self._record_drop(packet, now)
            return False
        self._tokens -= packet.size
        accepted = self.child.enqueue(packet, now)
        if accepted:
            self._record_enqueue(packet, now)
        else:
            self._record_drop(packet, now)
        return accepted

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = self.child.dequeue(now)
        if packet is not None:
            self._record_dequeue(packet, now)
        return packet

    def __len__(self) -> int:
        return len(self.child)

    @property
    def byte_length(self) -> int:
        return self.child.byte_length

    @property
    def tokens(self) -> float:
        """Current token level (bytes); for tests and introspection."""
        return self._tokens
