"""Experiment E2 / Figure 3: the elasticity proof of concept.

The paper's setup: a 48 Mbit/s, 100 ms emulated Mahimahi link carrying
a Nimbus probe (mode switching disabled, pulses maintained) plus five
cross-traffic phases of 45 seconds each, in sequence:

1. a persistently backlogged **Reno** flow        (contending)
2. a persistently backlogged **BBR** flow         (contending)
3. an ABR **video** stream                        (not contending)
4. **Poisson** short flows                        (not contending)
5. constant-bitrate **CBR** UDP                   (not contending)

Expected shape: the elasticity metric is clearly higher during the
Reno and BBR phases than during the video / Poisson / CBR phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import viz
from ..core.probe import ElasticityProbe
from ..qdisc.fifo import DropTailQueue
from ..sim.engine import Simulator
from ..sim.network import default_buffer_packets, dumbbell
from ..traffic.mix import (CROSS_TRAFFIC_IS_ELASTIC, FIGURE3_PHASES, Phase,
                           make_cross_traffic)
from ..units import mbps, ms, to_mbps
from .runner import ExperimentResult, Stopwatch

#: Paper parameters: 48 Mbit/s, 100 ms Mahimahi link, 45 s per phase.
LINK_RATE_MBPS = 48.0
LINK_RTT_MS = 100.0


@dataclass(frozen=True)
class PhaseOutcome:
    """Per-phase summary."""

    name: str
    start: float
    end: float
    mean_elasticity: float
    is_elastic_truth: bool
    probe_throughput_mbps: float
    cross_throughput_mbps: float


def run(phases: tuple[Phase, ...] = FIGURE3_PHASES,
        rate_mbps: float = LINK_RATE_MBPS, rtt_ms: float = LINK_RTT_MS,
        seed: int = 0, settle: float = 6.0) -> ExperimentResult:
    """Run the Figure 3 scenario.

    Args:
        phases: cross-traffic phase plan (name, duration).
        settle: seconds at each phase start excluded from the phase
            mean (the 5 s estimator window spans the transition).
    """
    with Stopwatch() as watch:
        sim = Simulator()
        rate = mbps(rate_mbps)
        rtt = ms(rtt_ms)
        qdisc = DropTailQueue(
            limit_packets=default_buffer_packets(rate, rtt))
        path = dumbbell(sim, rate, rtt, qdisc=qdisc)
        probe = ElasticityProbe(sim, path, capacity_hint=rate)
        probe.start()

        outcomes: list[PhaseOutcome] = []
        t = 0.0
        for i, phase in enumerate(phases):
            cross = make_cross_traffic(phase.name, sim, path,
                                       f"cross-{i}-{phase.name}",
                                       seed=seed + i)
            cross_delivered_before = cross.delivered_bytes
            probe_delivered_before = \
                probe.connection.receiver.received_bytes
            cross.start()
            sim.run(until=t + phase.duration)
            cross.stop()
            readings = probe.readings_between(t + settle,
                                              t + phase.duration)
            mean_e = (sum(r.elasticity for r in readings) / len(readings)
                      if readings else 0.0)
            outcomes.append(PhaseOutcome(
                name=phase.name, start=t, end=t + phase.duration,
                mean_elasticity=mean_e,
                is_elastic_truth=CROSS_TRAFFIC_IS_ELASTIC[phase.name],
                probe_throughput_mbps=to_mbps(
                    (probe.connection.receiver.received_bytes
                     - probe_delivered_before) / phase.duration),
                cross_throughput_mbps=to_mbps(
                    (cross.delivered_bytes - cross_delivered_before)
                    / phase.duration),
            ))
            t += phase.duration
        all_readings = probe.readings

    # -- shape check: contending phases above non-contending ones ---------
    elastic_means = [o.mean_elasticity for o in outcomes
                     if o.is_elastic_truth]
    inelastic_means = [o.mean_elasticity for o in outcomes
                       if not o.is_elastic_truth]
    separation = (min(elastic_means) / max(inelastic_means)
                  if elastic_means and inelastic_means
                  and max(inelastic_means) > 0 else float("inf"))

    times = [r.time for r in all_readings]
    values = [r.elasticity for r in all_readings]
    chart = viz.line_chart(
        times, values, title=(
            f"Figure 3: elasticity vs time "
            f"({rate_mbps:.0f} Mbit/s, {rtt_ms:.0f} ms link)"),
        x_label="time (s)", y_label="elasticity",
        phases=[(o.start, o.name) for o in outcomes]) \
        if all_readings else "(no readings)"

    phase_rows = [{
        "phase": o.name,
        "start_s": o.start,
        "end_s": o.end,
        "mean_elasticity": round(o.mean_elasticity, 3),
        "contending_truth": o.is_elastic_truth,
        "probe_mbps": round(o.probe_throughput_mbps, 2),
        "cross_mbps": round(o.cross_throughput_mbps, 2),
    } for o in outcomes]
    series_rows = [{"time_s": round(r.time, 3),
                    "elasticity": round(r.elasticity, 4),
                    "mean_cross_rate_mbps":
                        round(to_mbps(r.mean_cross_rate), 3)}
                   for r in all_readings]

    parts = [
        chart,
        "",
        viz.table(
            [(r["phase"], f"{r['mean_elasticity']:.2f}",
              "yes" if r["contending_truth"] else "no",
              f"{r['probe_mbps']:.1f}", f"{r['cross_mbps']:.1f}")
             for r in phase_rows],
            header=("phase", "mean elasticity", "contending?",
                    "probe Mbit/s", "cross Mbit/s")),
        "",
        f"separation (min contending / max non-contending): "
        f"{separation:.2f}x",
    ]

    metrics = {
        "separation": separation,
        "min_elastic_phase_elasticity":
            min(elastic_means) if elastic_means else 0.0,
        "max_inelastic_phase_elasticity":
            max(inelastic_means) if inelastic_means else 0.0,
    }
    for o in outcomes:
        metrics[f"elasticity_{o.name}"] = o.mean_elasticity
    return ExperimentResult(
        experiment="fig3",
        text="\n".join(parts),
        metrics=metrics,
        tables={"phases": phase_rows, "elasticity_series": series_rows},
        params={"rate_mbps": rate_mbps, "rtt_ms": rtt_ms, "seed": seed,
                "phases": [(p.name, p.duration) for p in phases]},
        elapsed_s=watch.elapsed,
    )
