"""Tests for the content-addressed artifact store and atomic writes."""

import json
import os

import pytest

from repro.errors import ConfigError
from repro.store import (ArtifactStore, atomic_open, atomic_write_text,
                         default_root, fingerprint)


def key_of(value) -> str:
    return fingerprint(value, kind="test")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestAtomicWrites:
    def test_write_text(self, tmp_path):
        path = tmp_path / "deep" / "a.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_failure_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "a.txt"
        atomic_write_text(path, "original")
        with pytest.raises(RuntimeError):
            with atomic_open(path) as f:
                f.write("half-writ")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "original"

    def test_failure_leaves_no_tmp_files(self, tmp_path):
        path = tmp_path / "a.txt"
        with pytest.raises(RuntimeError):
            with atomic_open(path) as f:
                f.write("x")
                raise RuntimeError
        assert list(tmp_path.iterdir()) == []


class TestDefaultRoot:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "elsewhere"))
        assert default_root() == tmp_path / "elsewhere"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert default_root().name == "repro"


class TestStoreRoundTrip:
    def test_get_put_contains(self, store):
        key = key_of("a")
        assert key not in store
        assert store.get(key) is None
        store.put(key, {"x": [1, 2]}, kind="test", label="a")
        assert key in store
        assert store.get(key) == {"x": [1, 2]}

    def test_put_idempotent(self, store):
        key = key_of("b")
        store.put(key, 1)
        store.put(key, 1)
        assert store.stat()["entries"] == 1

    def test_delete(self, store):
        key = key_of("c")
        store.put(key, 3)
        assert store.delete(key)
        assert not store.delete(key)
        assert store.get(key) is None

    def test_bad_key_rejected(self, store):
        with pytest.raises(ConfigError):
            store.get("not-a-digest")

    def test_hit_miss_accounting(self, store):
        key = key_of("d")
        store.get(key)                      # miss
        store.put(key, "payload")
        store.get(key)                      # hit
        store.get(key)                      # hit
        stat = store.stat()
        assert stat["hits"] == 2
        assert stat["misses"] == 1
        assert store.entries()[key]["hits"] == 2

    def test_stat_by_kind(self, store):
        store.put(key_of("e"), 1, kind="path")
        store.put(key_of("f"), 2, kind="path")
        store.put(key_of("g"), 3, kind="sweep")
        by_kind = store.stat()["by_kind"]
        assert by_kind["path"]["entries"] == 2
        assert by_kind["sweep"]["entries"] == 1


class TestCorruptionRecovery:
    def test_truncated_object_counts_as_miss_and_is_dropped(self, store):
        key = key_of("h")
        path = store.put(key, {"big": list(range(100))})
        path.write_bytes(path.read_bytes()[:10])  # simulate torn write
        assert store.get(key) is None
        assert key not in store

    def test_index_rebuilt_after_deletion(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        key = key_of("i")
        store.put(key, "v", kind="path")
        (tmp_path / "s" / "index.json").unlink()
        fresh = ArtifactStore(tmp_path / "s")
        assert fresh.get(key) == "v"
        assert fresh.stat()["entries"] == 1

    def test_corrupt_index_rebuilt(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        key = key_of("j")
        store.put(key, "v")
        (tmp_path / "s" / "index.json").write_text("{not json")
        fresh = ArtifactStore(tmp_path / "s")
        assert fresh.get(key) == "v"

    @staticmethod
    def _corrupt_entry(root, mutate):
        """Rewrite index.json through ``mutate(entries_dict)``."""
        index_path = root / "index.json"
        index = json.loads(index_path.read_text())
        mutate(index["entries"])
        index_path.write_text(json.dumps(index))

    def test_gc_survives_torn_entry(self, tmp_path):
        """A mid-write crash can leave an entry as a bare string; gc
        must repair it from the object file, not abort."""
        store = ArtifactStore(tmp_path / "s")
        keep, torn = key_of("k1"), key_of("k2")
        store.put(keep, "v1")
        store.put(torn, "v2")
        self._corrupt_entry(store.root,
                            lambda e: e.update({torn: "garbage"}))
        fresh = ArtifactStore(tmp_path / "s")
        evicted, freed = fresh.prune(max_bytes=10**9)
        assert (evicted, freed) == (0, 0)
        assert fresh.get(keep) == "v1"
        assert fresh.get(torn) == "v2"  # entry rebuilt from the object
        assert fresh.entries()[torn]["size"] > 0

    def test_gc_survives_entry_missing_fields(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        key = key_of("k3")
        store.put(key, "v")
        self._corrupt_entry(store.root,
                            lambda e: e[key].pop("last_access"))
        fresh = ArtifactStore(tmp_path / "s")
        evicted, _ = fresh.prune(max_age_s=10**9)
        assert evicted == 0
        assert fresh.get(key) == "v"

    def test_gc_drops_entry_for_missing_object(self, tmp_path):
        """A torn entry whose object is also gone has nothing to
        account: it is dropped, and gc proceeds over the rest."""
        store = ArtifactStore(tmp_path / "s")
        keep, ghost = key_of("k4"), key_of("k5")
        store.put(keep, "v")
        store.put(ghost, "v")
        store._object_path(ghost).unlink()
        self._corrupt_entry(store.root,
                            lambda e: e.update({ghost: None}))
        fresh = ArtifactStore(tmp_path / "s")
        fresh.prune(max_bytes=10**9)
        assert ghost not in fresh.entries()
        assert fresh.get(keep) == "v"

    def test_gc_survives_non_hex_key(self, tmp_path):
        """A non-hex key cannot map to an object path; it must be
        dropped from the index rather than crash prune."""
        store = ArtifactStore(tmp_path / "s")
        keep = key_of("k6")
        store.put(keep, "v")
        self._corrupt_entry(
            store.root,
            lambda e: e.update({"not-a-digest!": {"size": 1}}))
        fresh = ArtifactStore(tmp_path / "s")
        evicted, _ = fresh.prune(max_age_s=0.0, max_bytes=0)
        assert evicted == 1  # only the real entry was evictable
        assert "not-a-digest!" not in fresh.entries()

    def test_stat_survives_torn_entry(self, tmp_path):
        store = ArtifactStore(tmp_path / "s")
        key = key_of("k7")
        store.put(key, "v")
        self._corrupt_entry(store.root,
                            lambda e: e.update({key: 123}))
        fresh = ArtifactStore(tmp_path / "s")
        stats = fresh.stat()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0


class TestPrune:
    def test_prune_by_age(self, store):
        old, new = key_of("old"), key_of("new")
        store.put(old, "x")
        store.put(new, "y")
        index = store._load_index()
        index["entries"][old]["last_access"] -= 7 * 86400
        evicted, freed = store.prune(max_age_s=86400.0)
        assert evicted == 1
        assert freed > 0
        assert old not in store
        assert new in store

    def test_prune_lru_to_byte_budget(self, store):
        keys = [key_of(f"k{i}") for i in range(4)]
        for i, key in enumerate(keys):
            store.put(key, "v" * 100)
            store._load_index()["entries"][key]["last_access"] = 1000.0 + i
        size = store.entries()[keys[0]]["size"]
        evicted, _ = store.prune(max_bytes=2 * size)
        assert evicted == 2
        assert keys[0] not in store and keys[1] not in store  # oldest
        assert keys[2] in store and keys[3] in store

    def test_prune_nothing_when_within_budget(self, store):
        store.put(key_of("l"), "v")
        assert store.prune(max_bytes=10**9) == (0, 0)

    def test_bad_arguments_rejected(self, store):
        with pytest.raises(ConfigError):
            store.prune(max_age_s=-1)
        with pytest.raises(ConfigError):
            store.prune(max_bytes=-1)


class TestOnDiskLayout:
    def test_objects_sharded_by_prefix(self, store):
        key = key_of("m")
        path = store.put(key, 1)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.pkl"

    def test_index_is_json(self, store):
        store.put(key_of("n"), 1)
        index = json.loads((store.root / "index.json").read_text())
        assert index["version"] == 1
        assert len(index["entries"]) == 1
