"""Tests for measurement campaigns and hypothesis evaluation."""

import pytest

from repro.core.campaign import (Campaign, CampaignResult, PathSpec,
                                 run_path, sample_paths)
from repro.core.hypothesis import evaluate_hypothesis
from repro.errors import ConfigError


def spec(cross="none", qdisc="droptail", rate=20.0, rtt=50.0, seed=1):
    return PathSpec(rate_mbps=rate, rtt_ms=rtt, qdisc=qdisc,
                    cross_traffic=cross, seed=seed)


class TestPathSpec:
    def test_ground_truth_elastic_fifo(self):
        assert spec("reno", "droptail").truly_contending
        assert spec("bbr", "droptail").truly_contending

    def test_fq_isolates_even_elastic_cross(self):
        assert not spec("reno", "fq").truly_contending

    def test_inelastic_never_contends(self):
        for cross in ("none", "video", "poisson", "cbr"):
            assert not spec(cross, "droptail").truly_contending

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            PathSpec(rate_mbps=0, rtt_ms=50, qdisc="droptail",
                     cross_traffic="none")
        with pytest.raises(ConfigError):
            PathSpec(rate_mbps=10, rtt_ms=50, qdisc="magic",
                     cross_traffic="none")


class TestSamplePaths:
    def test_count_and_determinism(self):
        a = sample_paths(20, seed=3)
        b = sample_paths(20, seed=3)
        assert len(a) == 20
        assert a == b

    def test_fq_fraction_respected(self):
        specs = sample_paths(300, seed=1, fq_fraction=0.5)
        fq = sum(1 for s in specs if s.qdisc == "fq")
        assert 0.35 < fq / 300 < 0.65

    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigError):
            sample_paths(5, cross_traffic_mix=(("none", 0.5),))

    def test_zero_paths_rejected(self):
        with pytest.raises(ConfigError):
            sample_paths(0)


class TestRunPath:
    def test_fifo_reno_detected_as_contending(self):
        result = run_path(spec("reno", "droptail", rate=20.0, rtt=50.0),
                          duration=25.0)
        assert result.verdict.contending
        assert result.spec.truly_contending

    def test_fq_reno_is_isolation_masked(self):
        # Under per-flow FQ a backlogged competitor pins the probe's
        # delivery rate at its fair share, so ẑ mirrors the probe's own
        # pulses: the path *reads* contending although FQ, not CCA
        # dynamics, decides the allocation.  The campaign accounts for
        # this via the isolation_masked bucket.
        result = run_path(spec("reno", "fq", rate=20.0, rtt=50.0),
                          duration=25.0)
        assert result.spec.isolation_masked
        assert result.verdict.contending  # the documented artifact

    def test_fq_idle_reads_clean(self):
        result = run_path(spec("none", "fq", rate=20.0, rtt=50.0),
                          duration=20.0)
        assert not result.spec.isolation_masked
        assert not result.verdict.contending

    def test_empty_path_not_contending(self):
        result = run_path(spec("none"), duration=20.0)
        assert not result.verdict.contending


class TestCampaignAggregation:
    @pytest.fixture(scope="class")
    def campaign(self) -> CampaignResult:
        results = [
            run_path(spec("reno", "droptail", seed=1), duration=20.0),
            run_path(spec("cbr", "droptail", seed=2), duration=20.0),
            run_path(spec("none", "droptail", seed=3), duration=20.0),
            run_path(spec("reno", "fq", seed=4), duration=20.0),
        ]
        return CampaignResult(results=results)

    def test_fraction_contending(self, campaign):
        # reno-droptail and the masked fq-reno path both read
        # contending; ground truth says only the former is.
        assert campaign.fraction_contending == pytest.approx(0.5)
        assert campaign.true_fraction_contending == pytest.approx(0.25)

    def test_detector_quality_perfect_on_visible_paths(self, campaign):
        quality = campaign.detector_quality()  # masked excluded
        assert quality["accuracy"] == 1.0

    def test_masked_summary_documents_artifact(self, campaign):
        masked = campaign.masked_summary()
        assert masked["n_masked"] == 1.0
        assert masked["fraction_reads_contending"] == 1.0

    def test_grouping(self, campaign):
        groups = campaign.by_cross_traffic()
        assert set(groups) == {"reno", "cbr", "none"}
        assert len(groups["reno"]) == 2

    def test_hypothesis_evaluation(self, campaign):
        ev = evaluate_hypothesis(campaign, threshold=0.9)
        assert ev.n_paths == 4
        assert ev.fraction_contending == pytest.approx(0.5)
        assert ev.ci_low <= ev.fraction_contending <= ev.ci_high
        assert "%" in ev.describe()

    def test_hypothesis_threshold_binds(self, campaign):
        ev = evaluate_hypothesis(campaign, threshold=0.01)
        assert not ev.supported
        assert "NOT SUPPORTED" in ev.describe()

    def test_hypothesis_supported_when_no_contention_found(self):
        quiet = CampaignResult(results=[
            run_path(spec("none", "droptail", seed=5), duration=20.0),
            run_path(spec("cbr", "droptail", seed=6), duration=20.0),
            run_path(spec("cbr", "droptail", seed=7), duration=20.0),
            run_path(spec("none", "fq", seed=8), duration=20.0),
        ])
        ev = evaluate_hypothesis(quiet, threshold=0.9)
        assert ev.supported
        assert "SUPPORTED" in ev.describe()


class TestCampaignClass:
    def test_runs_end_to_end_small(self):
        campaign = Campaign(n_paths=3, seed=2, duration=12.0)
        seen = []
        result = campaign.run(
            progress=lambda done, n: seen.append((done, n)))
        assert len(result.results) == 3
        assert seen == [(1, 3), (2, 3), (3, 3)]
