"""Hosts: packet dispatch endpoints at the edge of the network.

A :class:`Host` terminates paths -- it routes incoming packets to the
handler registered for their flow id (a transport endpoint, a sink, a
measurement probe).  Unclaimed packets are counted, not raised: in a
long scenario, late packets from a finished flow are normal.
"""

from __future__ import annotations

from typing import Callable

from .packet import Packet, recycle

Handler = Callable[[Packet], None]


class Host:
    """A network endpoint dispatching packets by flow id."""

    def __init__(self, name: str = "host"):
        self.name = name
        self._handlers: dict[str, Handler] = {}
        self.unclaimed = 0
        self.received_packets = 0
        self.received_bytes = 0

    def attach(self, flow_id: str, handler: Handler) -> None:
        """Route packets of ``flow_id`` to ``handler``."""
        self._handlers[flow_id] = handler

    def detach(self, flow_id: str) -> None:
        """Stop routing ``flow_id`` (its packets become unclaimed)."""
        self._handlers.pop(flow_id, None)

    def send(self, packet: Packet) -> None:
        """Receive a packet from the network (PacketSink interface).

        The host is a terminal consumption point: once the handler
        returns (handlers read header fields and reply with *new*
        packets, they never re-inject their argument), the packet is
        dead and goes back to the free-list pool.
        """
        self.received_packets += 1
        self.received_bytes += packet.size
        handler = self._handlers.get(packet.flow_id)
        if handler is None:
            self.unclaimed += 1
        else:
            handler(packet)
        recycle(packet)


class CountingSink:
    """A terminal sink that just counts traffic (for UDP receivers)."""

    def __init__(self):
        self.packets = 0
        self.bytes = 0
        self.last_arrival: float | None = None

    def __call__(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.size

    # PacketSink interface so it can terminate a path directly.
    def send(self, packet: Packet) -> None:
        self(packet)
        recycle(packet)
