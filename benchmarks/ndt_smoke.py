"""CI smoke for the streaming NDT pipeline: memory + equivalence gates.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/ndt_smoke.py              # 100k flows
    PYTHONPATH=src python benchmarks/ndt_smoke.py --flows 1000000  # nightly

Asserts:

1. A ``--flows``-sized streamed fig2 run (default 100k) completes with
   peak RSS under ``--rss-budget-mib`` (default 600 MiB), read from
   ``resource.getrusage``.  Materializing the same population would
   need O(N) memory (~1 GiB at 100k, ~10 GiB at 1M); the streamed
   pipeline holds one chunk plus O(shards) mergeable partials, so the
   gate proves the out-of-core claim rather than just timing it.
2. At small N the streamed run's aggregates are byte-identical to the
   materialized pipeline's (same ``aggregate_fingerprint``), across
   two different chunk sizes.
"""

import argparse
import resource
import sys
import time

DEFAULT_FLOWS = 100_000
DEFAULT_CHUNK = 5_000
DEFAULT_RSS_BUDGET_MIB = 600
EQUALITY_FLOWS = 4_000
SEED = 2023


def peak_rss_mib() -> float:
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss_kib / 1024.0


def check(label, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}{': ' + detail if detail else ''}")
    if not condition:
        raise SystemExit(f"ndt smoke failed: {label} ({detail})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, default=DEFAULT_FLOWS)
    parser.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK)
    parser.add_argument("--rss-budget-mib", type=float,
                        default=DEFAULT_RSS_BUDGET_MIB)
    args = parser.parse_args()

    from repro.ndt.pipeline import run_pipeline
    from repro.ndt.stream import run_pipeline_streaming
    from repro.ndt.synth import SyntheticNdtGenerator

    baseline = peak_rss_mib()
    print(f"baseline RSS after imports: {baseline:.0f} MiB")

    # -- gate 1: out-of-core streamed run stays under the RSS budget --
    print(f"streamed run: flows={args.flows} chunk={args.chunk_size} "
          f"budget={args.rss_budget_mib:.0f} MiB")
    start = time.monotonic()
    result = run_pipeline_streaming(
        args.flows, seed=SEED, chunk_size=args.chunk_size, store=None)
    elapsed = time.monotonic() - start
    peak = peak_rss_mib()
    rate_us = 1e6 * elapsed / args.flows
    print(f"  {args.flows} flows in {elapsed:.1f}s "
          f"({rate_us:.0f} us/flow), {len(result.shards)} shards, "
          f"peak RSS {peak:.0f} MiB")

    check("streamed run covers every flow", result.total == args.flows,
          f"total={result.total}")
    check("streamed result carries no materialized flows",
          result.flows == [], f"kept {len(result.flows)} flows")
    check("peak RSS under budget", peak < args.rss_budget_mib,
          f"{peak:.0f} MiB vs budget {args.rss_budget_mib:.0f} MiB")
    frac = result.fraction_possible_contention
    check("possible-contention fraction in plausible band",
          0.02 < frac < 0.25, f"{frac:.4f}")

    # -- gate 2: streamed aggregates == materialized, byte for byte --
    print(f"equality check: flows={EQUALITY_FLOWS} "
          f"(streamed vs materialized)")
    flows = SyntheticNdtGenerator(seed=SEED).generate(EQUALITY_FLOWS)
    materialized = run_pipeline(flows, store=None)
    golden = materialized.aggregate_fingerprint()
    for chunk in (512, 1000):
        streamed = run_pipeline_streaming(
            EQUALITY_FLOWS, seed=SEED, chunk_size=chunk, store=None)
        check(f"chunk={chunk} aggregates byte-identical",
              streamed.aggregate_fingerprint() == golden,
              f"{streamed.aggregate_fingerprint()[:12]} vs "
              f"{golden[:12]}")

    print("ndt smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
