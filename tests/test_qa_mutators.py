"""Property tests for the scenario mutation operators.

Every mutation of a valid scenario must itself validate, round-trip
through ``to_dict``/``from_dict``, and change the scenario
fingerprint -- across all 8 qdiscs x 9 CCAs and both families.
"""

import numpy as np
import pytest

from repro.qa.fuzz import MUTATORS, mutate_scenario, sample_scenario
from repro.qa.scenario import (FLOW_CCAS, QDISC_NAMES, FlowSpec,
                               Scenario, scenario_fingerprint)

MUTATIONS_PER_PARENT = 6


def _flows_scenario(qdisc: str, cca: str, seed: int = 11) -> Scenario:
    return Scenario(
        family="flows", rate_mbps=8.0, rtt_ms=20.0, qdisc=qdisc,
        duration=3.0, seed=seed, buffer_multiplier=1.0,
        flows=(FlowSpec(cca=cca, rate_frac=0.3, user_id="a",
                        start=0.0, ecn=(cca == "dctcp")),),
        cross_traffic="none")


def _probe_scenario(seed: int = 11) -> Scenario:
    return Scenario(family="probe", rate_mbps=20.0, rtt_ms=20.0,
                    qdisc="droptail", duration=20.0, seed=seed,
                    cross_traffic="reno")


def _check_mutation(parent: Scenario, child: Scenario) -> None:
    # Constructing the dataclass ran __post_init__ validation; the
    # remaining properties are the serialization and identity
    # contracts the guided search depends on.
    assert isinstance(child, Scenario)
    assert Scenario.from_dict(child.to_dict()) == child
    assert (scenario_fingerprint(child)
            != scenario_fingerprint(parent))
    assert child.backend == parent.backend  # search manages backend


@pytest.mark.parametrize("qdisc", QDISC_NAMES)
def test_mutations_hold_properties_for_every_qdisc_and_cca(qdisc):
    rng = np.random.default_rng(hash(qdisc) % (2**32))
    for cca in FLOW_CCAS:
        parent = _flows_scenario(qdisc, cca)
        for _ in range(MUTATIONS_PER_PARENT):
            _check_mutation(parent, mutate_scenario(parent, rng))


def test_mutations_hold_properties_for_probe_family():
    rng = np.random.default_rng(7)
    parent = _probe_scenario()
    for _ in range(50):
        child = mutate_scenario(parent, rng)
        _check_mutation(parent, child)
        assert child.family == "probe"
        parent = child  # walk the space, not just the root


def test_mutation_chains_stay_valid_from_sampled_parents():
    rng = np.random.default_rng(13)
    for index in range(20):
        parent = sample_scenario(index, seed=2)
        for _ in range(MUTATIONS_PER_PARENT):
            child = mutate_scenario(parent, rng)
            _check_mutation(parent, child)
            parent = child


def test_every_operator_yields_valid_changed_scenarios():
    rng = np.random.default_rng(23)
    parents = [
        _flows_scenario("fq", "cubic"),
        _flows_scenario("droptail", "cbr"),
        _probe_scenario(),
        sample_scenario(3, seed=0),
    ]
    applied = set()
    for parent in parents:
        for mutator in MUTATORS:
            for _ in range(4):
                child = mutator(parent, rng)
                if child is None:
                    continue
                applied.add(mutator.__name__)
                _check_mutation(parent, child)
    # Every operator must fire somewhere across these parents.
    assert applied == {m.__name__ for m in MUTATORS}


def test_mutation_is_deterministic_under_a_seeded_rng():
    parent = _flows_scenario("red", "bbr")
    first = [mutate_scenario(parent, np.random.default_rng(99))
             for _ in range(1)]
    second = [mutate_scenario(parent, np.random.default_rng(99))
              for _ in range(1)]
    assert first == second
    walk_a, walk_b = [], []
    rng_a, rng_b = (np.random.default_rng(5), np.random.default_rng(5))
    cur_a = cur_b = parent
    for _ in range(20):
        cur_a = mutate_scenario(cur_a, rng_a)
        cur_b = mutate_scenario(cur_b, rng_b)
        walk_a.append(scenario_fingerprint(cur_a))
        walk_b.append(scenario_fingerprint(cur_b))
    assert walk_a == walk_b


def test_jitter_mutator_explores_the_new_axis():
    rng = np.random.default_rng(31)
    parent = _probe_scenario()
    seen = set()
    for _ in range(200):
        child = mutate_scenario(parent, rng)
        seen.add(child.timing_jitter)
    assert len(seen & {0.05, 0.15, 0.3}) >= 2
