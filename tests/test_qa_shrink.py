"""Shrinker: minimizes failing scenarios while preserving the failure."""

import pytest

from repro.qa.oracles import FAULT_ENV, InjectedFaultOracle, Oracle
from repro.qa.scenario import FlowSpec, Scenario, run_scenario
from repro.qa.shrink import ShrinkResult, shrink


def _big_scenario() -> Scenario:
    return Scenario(
        family="flows", rate_mbps=8.0, rtt_ms=40.0, qdisc="red",
        duration=4.0, seed=3, buffer_multiplier=2.0,
        cross_traffic="poisson",
        flows=(FlowSpec(cca="cubic"), FlowSpec(cca="cbr", user_id="b"),
               FlowSpec(cca="bbr", start=0.5)))


def test_shrinks_injected_fault_to_minimal_repro(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "cca:cbr")
    result = shrink(_big_scenario(), InjectedFaultOracle(), run_scenario)
    final = result.scenario
    # The trigger must survive; everything else should be stripped.
    assert any(f.cca == "cbr" for f in final.flows)
    assert len(final.flows) <= 2
    assert final.duration <= 10.0
    assert final.cross_traffic == "none"
    assert final.qdisc == "droptail"
    assert final.buffer_multiplier == 1.0
    assert result.steps and result.runs >= len(result.steps)


def test_shrink_preserves_qdisc_trigger(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "qdisc:red")
    result = shrink(_big_scenario(), InjectedFaultOracle(), run_scenario)
    assert result.scenario.qdisc == "red"
    assert len(result.scenario.flows) == 1


def test_shrink_respects_run_budget(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "any")
    result = shrink(_big_scenario(), InjectedFaultOracle(), run_scenario,
                    max_runs=3)
    assert result.runs <= 3


def test_shrink_minimal_scenario_is_fixed_point(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "any")
    minimal = Scenario(family="flows", rate_mbps=4.0, rtt_ms=20.0,
                       qdisc="droptail", duration=2.0, seed=0,
                       flows=(FlowSpec(cca="reno"),))
    result = shrink(minimal, InjectedFaultOracle(), run_scenario)
    assert result.scenario == minimal
    assert result.steps == []


def test_shrink_rejects_candidates_that_stop_failing():
    """An oracle failing only on multi-flow scenarios keeps >= 2 flows."""

    class NeedsTwoFlows(Oracle):
        name = "needs-two-flows"

        def check(self, scenario, outcome, runner):
            return ["fails"] if len(scenario.flows) >= 2 else []

    scenario = Scenario(
        family="flows", rate_mbps=8.0, rtt_ms=20.0, qdisc="droptail",
        duration=2.0, seed=1,
        flows=(FlowSpec(cca="reno"), FlowSpec(cca="cubic"),
               FlowSpec(cca="bbr")))
    result = shrink(scenario, NeedsTwoFlows(), run_scenario)
    assert len(result.scenario.flows) == 2


def test_shrink_result_type(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "any")
    result = shrink(_big_scenario(), InjectedFaultOracle(), run_scenario,
                    max_runs=5)
    assert isinstance(result, ShrinkResult)
