"""Benchmark E9: TSLP finds congestion; only elasticity finds contention.

Asserts the §4 claim: latency probes flag both the contended path and
the aggregate-overwhelmed path as "congested", while the elasticity
probe separates them.
"""

from repro.experiments import tslp_vs_elasticity

from conftest import once


def test_tslp_vs_elasticity(benchmark, bench_scale):
    duration = 30.0 if bench_scale == "full" else 15.0
    result = once(benchmark, tslp_vs_elasticity.run, duration=duration)

    print()
    print(result.text)

    m = result.metrics
    # TSLP cannot discriminate: it flags both loaded paths.
    assert m["tslp_flags_contention"] == 1.0
    assert m["tslp_flags_aggregate"] == 1.0
    # The elasticity probe can: only the true contention path reads
    # confidently "contending" (a heavy aggregate of TCP slow starts
    # is transiently elastic and may reach the inconclusive band).
    assert m["probe_flags_contention"] == 1.0
    assert m["probe_flags_aggregate"] == 0.0
    assert m["elasticity_contention"] > 1.5 * m["elasticity_aggregate"]
