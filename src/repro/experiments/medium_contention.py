"""Experiment E16: the probe question re-asked on a shared medium.

The paper's §3.2 technique assumes the bottleneck is a *queue*: cross
traffic that yields bandwidth when the probe pulses is elastic, and
elastic cross traffic means CCA contention.  On a CSMA/CA shared
medium both halves of that inference bend:

* **MAC overhead reads as elastic cross traffic.**  Backoff,
  collisions, and per-frame overhead burn airtime in proportion to
  offered load, so the probe's ẑ = μ·S/R − S estimate -- calibrated
  against the raw medium rate -- sees its *own* overhead pulse with
  the probe.  An idle WLAN reads as strongly contending.
* **MAC fairness partially isolates.**  DCF gives each backlogged
  station roughly equal transmission opportunities, so a backlogged
  elastic competitor on its own station is airtime-capped much like a
  flow behind per-flow FQ -- the §2.1 isolation argument, emerging
  from contention-window arithmetic instead of a scheduler.

This experiment measures both effects cell by cell: one elasticity
probe plus ``n_stations − 1`` cross-traffic stations, swept over
medium (queue control vs CSMA/CA at several station counts and one
EDCA priority mix), cross-traffic type, and CCA mix, on either
backend.  Each CSMA cell is paired with a queue-control cell at the
same flow population, and the report quantifies where the detector's
confidence (distance of mean elasticity from the verdict threshold)
degrades and where the verdict outright flips.
"""

from __future__ import annotations

import functools

from .. import viz
from ..core.detector import ContentionDetector
from ..core.probe import ElasticityProbe
from ..errors import ConfigError
from ..medium import parse_medium
from ..runtime import parallel_map
from ..sim.engine import Simulator
from ..sim.network import (default_buffer_packets, dumbbell,
                           medium_dumbbell)
from ..qdisc.fifo import DropTailQueue
from ..units import DEFAULT_PACKET_SIZE, mbps, ms
from .runner import ExperimentResult, Stopwatch

#: The medium sweep: a queue control plus CSMA/CA at 2/4/8 stations
#: and one EDCA priority mix (odd stations get voice-class access).
MEDIUMS: tuple[str, ...] = ("queue", "csma-2", "csma-4", "csma-8",
                            "csma-4-prio")

#: Cross-traffic types: idle control, two elastic CCAs, one inelastic.
CROSS_TYPES: tuple[str, ...] = ("none", "reno", "bbr", "cbr")


def _cells(mediums, cross_types):
    """The (medium, cross, n_cross) grid, queue controls matched to
    every CSMA flow population."""
    csma_counts = sorted({parse_medium(m).n_stations - 1
                          for m in mediums if parse_medium(m)})
    cells = []
    for cross in cross_types:
        if cross == "none":
            for medium in mediums:
                cells.append((medium, cross, 0))
            continue
        if "queue" in mediums:
            for n_cross in csma_counts:
                cells.append(("queue", cross, n_cross))
        for medium in mediums:
            spec = parse_medium(medium)
            if spec is not None:
                cells.append((medium, cross, spec.n_stations - 1))
    return cells


def _run_cell(cell, rate_mbps: float, rtt_ms: float, duration: float,
              seed: int, backend: str) -> dict:
    """Run one (medium, cross, n_cross) cell and summarize the probe."""
    medium, cross, n_cross = cell
    spec = parse_medium(medium)
    rate = mbps(rate_mbps)
    rtt = ms(rtt_ms)
    buffer_packets = default_buffer_packets(rate, rtt)

    if backend == "fluid":
        from ..fluid.flows import make_cross_traffic as make_fluid_cross
        from ..fluid.model import FluidModel
        from ..fluid.probe import FluidProbe

        buffer_bytes = buffer_packets * DEFAULT_PACKET_SIZE
        probe = FluidProbe(rate, rtt, buffer_bytes / rate)
        flows = [probe]
        for i in range(n_cross):
            flows.append(make_fluid_cross(cross, f"cross-{i}", rtt,
                                          seed=seed + i))
        model = FluidModel(flows, rate, buffer_bytes, qdisc="droptail",
                           medium=spec)
        model.run(duration)
        readings = [r for r in probe.readings
                    if probe.warmup <= r.time < duration]
        probe_bytes = probe.delivered_bytes
        total_bytes = sum(f.delivered_bytes for f in flows)
    else:
        sim = Simulator()
        if spec is None:
            path = dumbbell(sim, rate, rtt)
        else:
            path = medium_dumbbell(
                sim, rate, rtt, spec,
                qdisc_factory=lambda: DropTailQueue(
                    limit_packets=buffer_packets),
                seed=seed)
        probe = ElasticityProbe(sim, path, capacity_hint=rate)
        probe.start()
        from ..traffic.mix import make_cross_traffic
        for i in range(n_cross):
            make_cross_traffic(cross, sim, path, f"cross-{i}",
                               seed=seed + i).start()
        sim.run(until=duration)
        readings = list(probe.report().readings)
        probe_bytes = path.bottleneck.flow_bytes("probe")
        total_bytes = path.bottleneck.delivered_bytes

    detector = ContentionDetector()
    verdict = detector.verdict(readings)
    share = probe_bytes / total_bytes if total_bytes else 0.0
    return {
        "medium": medium,
        "cross_traffic": cross,
        "n_cross": n_cross,
        "mean_elasticity": round(verdict.mean_elasticity, 3),
        "category": verdict.category,
        "contending": verdict.contending,
        "confidence": round(abs(verdict.mean_elasticity
                                - detector.threshold), 3),
        "probe_share": round(share, 4),
        "goodput_mbps": round(total_bytes * 8.0 / duration / 1e6, 3),
    }


def run(backend: str = "packet", rate_mbps: float = 20.0,
        rtt_ms: float = 20.0, duration: float = 20.0, seed: int = 1,
        workers: int | None = None,
        mediums: tuple[str, ...] = MEDIUMS,
        cross_types: tuple[str, ...] = CROSS_TYPES) -> ExperimentResult:
    """Sweep medium x cross-traffic cells and report detector drift.

    The default link shape (20 Mbit/s, 20 ms) is the queue regime's
    strongest calibrated cell, so any confidence loss in the CSMA
    columns is attributable to the medium, not to an already-marginal
    baseline.  Cells are independent; ``workers`` parallelizes them
    with bit-identical results.
    """
    if backend not in ("packet", "fluid"):
        raise ConfigError(f"unknown backend {backend!r}")
    for medium in mediums:
        parse_medium(medium)  # raises ConfigError on bad values
    cells = _cells(mediums, cross_types)
    with Stopwatch() as watch:
        rows = parallel_map(
            functools.partial(_run_cell, rate_mbps=rate_mbps,
                              rtt_ms=rtt_ms, duration=duration,
                              seed=seed, backend=backend),
            cells, workers=workers)

    # Pair every CSMA cell with its queue control at the same flow
    # population and quantify the drift.
    controls = {(r["cross_traffic"], r["n_cross"]): r
                for r in rows if r["medium"] == "queue"}
    flips = 0
    drift_rows = []
    for row in rows:
        if row["medium"] == "queue":
            continue
        control = controls.get((row["cross_traffic"], row["n_cross"]))
        if control is None:
            continue
        flipped = row["contending"] != control["contending"]
        flips += flipped
        drift_rows.append({
            **row,
            "queue_mean": control["mean_elasticity"],
            "queue_contending": control["contending"],
            "confidence_delta": round(row["confidence"]
                                      - control["confidence"], 3),
            "verdict_flip": flipped,
        })

    overhead_rows = [r for r in drift_rows
                     if r["cross_traffic"] == "none" and r["contending"]]
    masked_rows = [r for r in drift_rows
                   if r["cross_traffic"] in ("reno", "bbr")
                   and r["queue_contending"] and not r["contending"]]

    n = len(rows)
    parts = [
        f"E16: probe verdicts on a shared medium, backend={backend} "
        f"({n} cells, {rate_mbps:g}mbps/{rtt_ms:g}ms, "
        f"duration={duration:g}s, seed={seed})",
        "",
        viz.table(
            [(r["medium"], r["cross_traffic"], r["n_cross"],
              r["mean_elasticity"], r["category"],
              "yes" if r["contending"] else "no",
              f"{r['probe_share']:.3f}", f"{r['goodput_mbps']:g}")
             for r in rows],
            header=("medium", "cross", "n", "mean elast.", "category",
                    "contending", "probe share", "goodput mbps")),
        "",
        f"{flips}/{len(drift_rows)} CSMA cells flip the verdict of "
        f"their queue control;",
        f"{len(overhead_rows)}/{len([r for r in drift_rows if r['cross_traffic'] == 'none'])} "
        f"idle-medium cells read contending (MAC overhead reads as "
        f"elastic cross traffic);",
        f"{len(masked_rows)} elastic-cross cells read clean under CSMA "
        f"(MAC airtime fairness isolates like per-flow FQ).",
    ]
    return ExperimentResult(
        experiment="medium_contention",
        text="\n".join(parts),
        metrics={
            "cells": float(n),
            "verdict_flips": float(flips),
            "idle_reads_contending": float(len(overhead_rows)),
            "elastic_reads_clean": float(len(masked_rows)),
            "mean_confidence_delta": (
                sum(r["confidence_delta"] for r in drift_rows)
                / len(drift_rows) if drift_rows else 0.0),
        },
        tables={"cells": rows, "drift": drift_rows},
        params={"backend": backend, "rate_mbps": rate_mbps,
                "rtt_ms": rtt_ms, "duration": duration, "seed": seed,
                "workers": workers},
        elapsed_s=watch.elapsed,
    )
