"""Cloud-gaming-style streaming traffic.

§2.2 cites DECAF (Iqbal et al. 2021): real-time game streaming, the
most aggressive common video workload, consumes 20-30 Mbit/s at top
bitrates and is rate-limited at the server.  We model it as a paced
frame stream: ``fps`` frames per second, each frame's size set by the
current target bitrate, with a latency-driven rate adaptation loop
(drop the bitrate when measured delay inflates, creep back up when it
is clean) running over an unreliable transport like the CBR source.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..sim.packet import Packet, PacketKind
from ..units import mbps
from .base import TrafficSource


class CloudGamingStream(TrafficSource):
    """Latency-adaptive game stream.

    Args:
        bitrates_mbps: selectable encoder bitrates, ascending.
        fps: frames per second.
        delay_budget: one-way delay (seconds) above which the encoder
            steps down a bitrate.
        upgrade_after: seconds of clean delay before stepping back up.
    """

    MTU = 1200

    def __init__(self, sim: Simulator, path: PathHandles, flow_id: str,
                 bitrates_mbps: tuple[float, ...] = (5.0, 10.0, 20.0, 30.0),
                 fps: int = 60, delay_budget: float = 0.06,
                 upgrade_after: float = 3.0, rtt_hint: float = 0.05,
                 user_id: str = ""):
        if not bitrates_mbps or list(bitrates_mbps) != sorted(bitrates_mbps):
            raise ConfigError("bitrates must be non-empty and ascending")
        if fps <= 0:
            raise ConfigError(f"fps must be positive: {fps}")
        self.sim = sim
        self.path = path
        self.flow_id = flow_id
        self.rates = [mbps(b) for b in bitrates_mbps]
        self.fps = fps
        self.delay_budget = delay_budget
        self.upgrade_after = upgrade_after
        self.rtt_hint = rtt_hint
        self.user_id = user_id or flow_id
        self._level = len(self.rates) - 1
        self._received = 0
        self._running = False
        self._seq = 0
        self._clean_since = 0.0
        self.downgrades = 0
        self.upgrades = 0
        path.dst_host.attach(flow_id, self._on_delivery)

    @property
    def current_rate(self) -> float:
        """Current target bitrate (bytes/second)."""
        return self.rates[self._level]

    def start(self) -> None:
        self._running = True
        self._clean_since = self.sim.now
        self._send_frame()

    def stop(self) -> None:
        self._running = False

    def _send_frame(self) -> None:
        if not self._running:
            return
        frame_bytes = int(self.current_rate / self.fps)
        offset = 0
        while offset < frame_bytes:
            size = min(self.MTU, frame_bytes - offset)
            packet = Packet(self.flow_id, PacketKind.DATA, size=size,
                            seq=self._seq, end_seq=self._seq + size,
                            user_id=self.user_id)
            packet.sent_time = self.sim.now
            self._seq += size
            self.path.entry.send(packet)
            offset += size
        self.sim.schedule(1.0 / self.fps, self._send_frame)

    def _on_delivery(self, packet: Packet) -> None:
        self._received += packet.size
        one_way = self.sim.now - packet.sent_time
        queueing = max(0.0, one_way - self.rtt_hint / 2.0)
        now = self.sim.now
        if queueing > self.delay_budget:
            if self._level > 0:
                self._level -= 1
                self.downgrades += 1
            self._clean_since = now
        elif (now - self._clean_since > self.upgrade_after
                and self._level < len(self.rates) - 1):
            self._level += 1
            self.upgrades += 1
            self._clean_since = now

    @property
    def delivered_bytes(self) -> int:
        return self._received
