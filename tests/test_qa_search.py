"""Coverage-guided search: determinism across worker counts, the
robustness-envelope artifact and its store cache, corpus promotion of
search-found failures, and (behind ``-m fuzz``) the guided-vs-random
acceptance comparison."""

import json

import pytest

from repro.qa.corpus import load_corpus, replay_case
from repro.qa.oracles import FAULT_ENV
from repro.qa.search import (build_envelope, diff_envelopes,
                             envelope_cache_key, promote_failure,
                             run_envelope, run_random_baseline,
                             run_search)
from repro.store.artifacts import ArtifactStore

SMOKE_BUDGET = 24


def _dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


# -- determinism -----------------------------------------------------------

def test_search_is_worker_count_invariant():
    # The regression-locking property: same seed and budget must give
    # a byte-identical report and corpus no matter the parallelism.
    serial = run_search(SMOKE_BUDGET, seed=3, workers=1)
    parallel = run_search(SMOKE_BUDGET, seed=3, workers=2)
    assert _dumps(serial.to_dict()) == _dumps(parallel.to_dict())
    assert serial.render() == parallel.render()
    assert [e.cell_id for e in serial.corpus] \
        == [e.cell_id for e in parallel.corpus]


def test_search_report_shape():
    report = run_search(SMOKE_BUDGET, seed=3, workers=2)
    assert report.evaluated == SMOKE_BUDGET
    assert 0 < report.feature_map.coverage <= 2 * SMOKE_BUDGET
    assert report.corpus  # something was admitted
    payload = report.to_dict()
    assert payload["seed"] == 3 and payload["budget"] == SMOKE_BUDGET
    assert payload["map"]["coverage"] == report.feature_map.coverage
    assert len(payload["corpus"]) == len(report.corpus)


# -- the envelope artifact -------------------------------------------------

def test_envelope_is_store_cached_and_deterministic(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    cold, cold_cached = run_envelope(SMOKE_BUDGET, seed=3, store=store,
                                     workers=2)
    assert not cold_cached
    warm, warm_cached = run_envelope(SMOKE_BUDGET, seed=3, store=store,
                                     workers=2)
    assert warm_cached
    assert _dumps(cold) == _dumps(warm)
    assert cold["kind"] == "qa-envelope"
    assert cold["fingerprint"]
    assert cold["coverage"] == len(cold["cells"])
    assert all("pass" in stats for stats in cold["cells"].values())


def test_envelope_cache_key_covers_the_inputs(monkeypatch):
    base = envelope_cache_key(50, 0, 2.0)
    assert envelope_cache_key(50, 0, 2.0) == base
    assert envelope_cache_key(51, 0, 2.0) != base
    assert envelope_cache_key(50, 1, 2.0) != base
    assert envelope_cache_key(50, 0, 2.5) != base
    monkeypatch.setenv(FAULT_ENV, "any")
    assert envelope_cache_key(50, 0, 2.0) != base


def test_envelope_matches_its_report():
    report = run_search(SMOKE_BUDGET, seed=3, workers=2)
    artifact = build_envelope(report)
    assert artifact["coverage"] == report.feature_map.coverage
    assert artifact["min_confidence"] \
        == report.feature_map.min_confidence()
    failing = [cid for cid, s in artifact["cells"].items()
               if not s["pass"]]
    assert len(artifact["failures"]) == len(report.failures)
    for cell_id in failing:
        assert artifact["cells"][cell_id]["failures"] > 0


def test_diff_envelopes():
    baseline = {"cells": {
        "a": {"pass": True}, "b": {"pass": True},
        "c": {"pass": False}, "gone": {"pass": True}}}
    current = {"cells": {
        "a": {"pass": True}, "b": {"pass": False},
        "c": {"pass": True}, "fresh": {"pass": False}}}
    delta = diff_envelopes(baseline, current)
    assert delta["regressions"] == ["b"]
    assert delta["fixed"] == ["c"]
    assert delta["new_cells"] == ["fresh"]
    assert delta["lost_cells"] == ["gone"]


# -- failure promotion (search -> shrink -> corpus) ------------------------

def test_search_failures_shrink_into_the_corpus(monkeypatch, tmp_path):
    monkeypatch.setenv(FAULT_ENV, "cross:cbr")
    report = run_search(48, seed=3, workers=2)
    assert report.failures, "fault injection found nothing"
    assert all(f.oracle == "injected-fault" for f in report.failures)
    reproduced = report.reproduced_failures
    assert reproduced, "injected fault must reproduce on packet"
    failure = sorted(reproduced,
                     key=lambda f: f.scenario.duration)[0]
    case, runs = promote_failure(failure, seed=3, created="2026-08-09",
                                 directory=tmp_path, max_runs=10)
    assert runs <= 10
    assert case.oracle == "injected-fault"
    assert case.origin.startswith("search seed=3")
    saved = load_corpus(tmp_path)
    assert [c.name for c in saved] == [case.name]
    # The shrunk case still triggers the same oracle on replay.
    assert saved[0].scenario.cross_traffic == "cbr"
    _, findings = replay_case(saved[0])
    assert any(f.oracle == "injected-fault" for f in findings)


def test_search_with_fault_is_still_worker_invariant(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "cross:cbr")
    serial = run_search(16, seed=3, workers=1)
    parallel = run_search(16, seed=3, workers=2)
    assert _dumps(serial.to_dict()) == _dumps(parallel.to_dict())


# -- CLI and serve entry points --------------------------------------------

def test_cli_search_smoke(capsys):
    from repro.cli import main
    assert main(["qa", "search", "--budget", "8", "--seed", "0",
                 "--workers", "2", "--no-shrink"]) == 0
    out = capsys.readouterr().out
    assert "qa search seed=0 budget=8" in out
    assert "8 scenarios searched" in out


def test_cli_envelope_out_check_and_json(tmp_path, capsys,
                                         monkeypatch):
    from repro.cli import main
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
    out_file = tmp_path / "envelope.json"
    assert main(["qa", "envelope", "--budget", "8", "--seed", "0",
                 "--workers", "2", "--out", str(out_file)]) == 0
    capsys.readouterr()
    artifact = json.loads(out_file.read_text())
    assert artifact["kind"] == "qa-envelope"
    # Second run is a cache hit and the self-check reports no drift.
    assert main(["qa", "envelope", "--budget", "8", "--seed", "0",
                 "--check", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "0 regressions" in out
    assert artifact["fingerprint"] in out


def test_serve_executors_roundtrip(tmp_path):
    from repro.serve.jobs import execute_qa_envelope, execute_qa_search
    store = ArtifactStore(tmp_path / "store")
    summary, payload = execute_qa_search(
        {"budget": 8, "seed": 0}, store, 2)
    assert summary["coverage"] > 0
    assert payload["map"]["coverage"] == summary["coverage"]
    cold, _ = execute_qa_envelope({"budget": 8, "seed": 0}, store, 2)
    assert not cold["cached"]
    warm, artifact = execute_qa_envelope({"budget": 8, "seed": 0},
                                         store, 2)
    assert warm["cached"]
    assert warm["fingerprint"] == cold["fingerprint"]
    assert artifact["fingerprint"] == warm["fingerprint"]


# -- acceptance: guided vs random (nightly / -m fuzz) ----------------------

@pytest.mark.fuzz
def test_guided_search_beats_random_fuzzing_at_equal_budget():
    budget, seed = 300, 0
    report = run_search(budget, seed=seed, workers=None)
    baseline = run_random_baseline(budget, seed=seed, workers=None)
    guided = report.feature_map
    assert guided.coverage >= 1.5 * baseline.coverage, (
        f"guided={guided.coverage} random={baseline.coverage}")
    gmin, rmin = guided.min_confidence(), baseline.min_confidence()
    assert gmin is not None and rmin is not None
    assert gmin <= rmin, f"guided min {gmin} vs random min {rmin}"


@pytest.mark.fuzz
def test_search_determinism_at_full_scale():
    serial = run_search(64, seed=3, workers=1)
    parallel = run_search(64, seed=3, workers=4)
    assert _dumps(serial.to_dict()) == _dumps(parallel.to_dict())
    assert serial.render() == parallel.render()
