"""Experiment E5: sub-packet-BDP regimes (§2.3, Chen et al.).

"on certain links where the bandwidth-delay product is less than one
packet, congestion control mechanisms can unfairly allocate bandwidth
over short (~20 seconds) timescales [...] primarily due to timeout
mechanisms that starve an arbitrary set of flows."

Setup: N backlogged Reno flows on a link whose BDP is below one packet
vs a comparison link with a healthy BDP.  We measure per-flow
throughput over 20-second windows and count starvation episodes
(windows in which a flow got less than 10% of its fair share) and
timeouts.  Expected shape: the sub-packet link shows frequent
starvation windows and many RTOs; the healthy link shows almost none.
"""

from __future__ import annotations

import numpy as np

from .. import viz
from ..analysis.fairness import jain_index
from ..cca.reno import RenoCca
from ..sim.engine import Simulator
from ..sim.network import dumbbell
from ..qdisc.fifo import DropTailQueue
from ..tcp.endpoint import Connection
from ..units import bdp_packets, kbps, mbps, ms
from .runner import ExperimentResult, Stopwatch


def _run_link(rate_bps: float, rtt: float, n_flows: int, duration: float,
              window: float, mss: int) -> dict:
    sim = Simulator()
    # Chen et al.'s regime needs a tiny buffer too (a couple packets).
    qdisc = DropTailQueue(limit_packets=4)
    path = dumbbell(sim, rate_bps, rtt, qdisc=qdisc)
    conns = [Connection(sim, path, f"f{i}", RenoCca(initial_cwnd=2.0),
                        mss=mss)
             for i in range(n_flows)]
    for c in conns:
        c.sender.set_infinite_backlog()

    # Per-window byte counts per flow.
    n_windows = int(duration / window)
    per_window = np.zeros((n_flows, n_windows))
    last = [0] * n_flows

    for w in range(n_windows):
        sim.run(until=(w + 1) * window)
        for i, c in enumerate(conns):
            got = c.receiver.received_bytes
            per_window[i, w] = got - last[i]
            last[i] = got

    fair = rate_bps * window / n_flows
    starved = int(np.sum(per_window < 0.1 * fair))
    total_windows = n_flows * n_windows
    totals = per_window.sum(axis=1)
    return {
        "bdp_packets": round(bdp_packets(rate_bps, rtt, mss + 52), 3),
        "jain_overall": round(jain_index(totals), 4),
        "starved_windows": starved,
        "starved_fraction": round(starved / total_windows, 4),
        "timeouts": sum(c.sender.timeouts for c in conns),
        "utilization": round(float(totals.sum())
                             / (rate_bps * duration), 4),
    }


def run(n_flows: int = 8, duration: float = 120.0, window: float = 20.0,
        subpacket_rate_kbps: float = 48.0, subpacket_rtt_ms: float = 120.0,
        healthy_rate_mbps: float = 10.0, mss: int = 1448
        ) -> ExperimentResult:
    """Compare a sub-packet-BDP link against a healthy one."""
    with Stopwatch() as watch:
        sub = _run_link(kbps(subpacket_rate_kbps), ms(subpacket_rtt_ms),
                        n_flows, duration, window, mss)
        sub["link"] = "sub-packet"
        healthy = _run_link(mbps(healthy_rate_mbps), ms(40.0),
                            n_flows, duration, window, mss)
        healthy["link"] = "healthy"
    rows = [sub, healthy]

    parts = [
        f"E5: {n_flows} Reno flows, {window:.0f} s windows over "
        f"{duration:.0f} s",
        "",
        viz.table(
            [(r["link"], r["bdp_packets"], r["jain_overall"],
              f"{r['starved_fraction']:.1%}", r["timeouts"])
             for r in rows],
            header=("link", "BDP (pkts)", "Jain (overall)",
                    "starved windows", "timeouts")),
        "",
        "Shape check: the sub-packet link should starve flows over "
        "20 s windows; the healthy link should not.",
    ]
    metrics = {
        "subpacket_bdp_packets": sub["bdp_packets"],
        "subpacket_starved_fraction": sub["starved_fraction"],
        "subpacket_timeouts": float(sub["timeouts"]),
        "healthy_starved_fraction": healthy["starved_fraction"],
        "healthy_timeouts": float(healthy["timeouts"]),
    }
    return ExperimentResult(
        experiment="subpacket",
        text="\n".join(parts),
        metrics=metrics,
        tables={"links": rows},
        params={"n_flows": n_flows, "duration": duration,
                "window": window,
                "subpacket_rate_kbps": subpacket_rate_kbps},
        elapsed_s=watch.elapsed,
    )
