"""Unit tests for distribution statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import Cdf, bootstrap_ci, percentile, summarize
from repro.errors import AnalysisError


class TestCdf:
    def test_simple_quantiles(self):
        cdf = Cdf.from_samples([1, 2, 3, 4])
        assert cdf.quantile(0.25) == 1
        assert cdf.quantile(0.5) == 2
        assert cdf.quantile(1.0) == 4

    def test_fraction_below(self):
        cdf = Cdf.from_samples([10, 20, 30, 40])
        assert cdf.fraction_below(5) == 0.0
        assert cdf.fraction_below(20) == 0.5
        assert cdf.fraction_below(100) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            Cdf.from_samples([])

    def test_bad_quantile_rejected(self):
        cdf = Cdf.from_samples([1.0])
        with pytest.raises(AnalysisError):
            cdf.quantile(0.0)
        with pytest.raises(AnalysisError):
            cdf.quantile(1.5)

    def test_points_downsamples(self):
        cdf = Cdf.from_samples(np.arange(10_000))
        pts = cdf.points(max_points=100)
        assert len(pts) <= 100
        assert pts[-1][1] == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_property_monotone(self, samples):
        cdf = Cdf.from_samples(samples)
        assert np.all(np.diff(cdf.values) >= 0)
        assert np.all(np.diff(cdf.fractions) > 0)
        assert cdf.fractions[-1] == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=2, max_size=100))
    def test_property_median_between_extremes(self, samples):
        cdf = Cdf.from_samples(samples)
        assert min(samples) <= cdf.median <= max(samples)


class TestPercentile:
    def test_median_of_known_set(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            percentile([1], 150)


class TestBootstrap:
    def test_point_estimate_is_statistic(self):
        est, lo, hi = bootstrap_ci([1.0, 2.0, 3.0], n_resamples=200)
        assert est == pytest.approx(2.0)
        assert lo <= est <= hi

    def test_narrow_for_constant_data(self):
        est, lo, hi = bootstrap_ci([5.0] * 50, n_resamples=100)
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(5.0)

    def test_deterministic_given_seed(self):
        a = bootstrap_ci([1, 5, 9, 2, 8], seed=3)
        b = bootstrap_ci([1, 5, 9, 2, 8], seed=3)
        assert a == b

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci([])


class TestSummarize:
    def test_fields_present_and_ordered(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s["n"] == 5
        assert s["min"] <= s["p10"] <= s["median"] <= s["p90"] <= s["max"]
        assert s["mean"] == pytest.approx(3.0)
