"""Property-based tests of transport invariants.

Under arbitrary loss patterns and flow sizes the transport must
deliver a contiguous, correctly-sized stream, keep its scoreboard
consistent, and terminate.  Hypothesis drives the randomness.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cca import CubicCca, NewRenoCca, RenoCca
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import kbps, mbps, ms


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(size=st.integers(min_value=1, max_value=400_000),
       loss=st.floats(min_value=0.0, max_value=0.12),
       seed=st.integers(min_value=0, max_value=10_000))
def test_property_stream_integrity_under_loss(size, loss, seed):
    """Every byte written is delivered exactly once, in order."""
    sim = Simulator()
    path = dumbbell(sim, mbps(8), ms(30), loss_rate=loss, seed=seed,
                    buffer_multiplier=1.0)
    conn = Connection(sim, path, "f", NewRenoCca())
    done = []
    conn.sender.on_complete = done.append
    conn.sender.write(size)
    conn.sender.close()
    sim.run(until=240.0)
    assert done, f"flow of {size}B with loss={loss:.3f} never completed"
    assert conn.receiver.rcv_nxt == size
    assert conn.receiver.received_bytes == size
    assert conn.sender.inflight_bytes == 0
    assert conn.sender.pipe_bytes == 0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n_flows=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=1000))
def test_property_aggregate_never_exceeds_capacity(n_flows, seed):
    """Total goodput is bounded by the bottleneck, whatever the mix."""
    sim = Simulator()
    rate = mbps(10)
    path = dumbbell(sim, rate, ms(20))
    conns = [Connection(sim, path, f"f{i}",
                        CubicCca() if i % 2 else RenoCca())
             for i in range(n_flows)]
    for c in conns:
        c.sender.set_infinite_backlog()
    sim.run(until=10.0)
    total = sum(c.receiver.received_bytes for c in conns)
    assert total <= rate * 10.0 * 1.01


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rate_kbps=st.floats(min_value=16.0, max_value=20_000.0),
       rtt_ms_val=st.floats(min_value=2.0, max_value=300.0))
def test_property_no_deadlock_across_rate_rtt_space(rate_kbps, rtt_ms_val):
    """A backlogged flow makes progress on any sane link, including
    sub-packet-BDP regimes."""
    sim = Simulator()
    path = dumbbell(sim, kbps(rate_kbps), ms(rtt_ms_val))
    conn = Connection(sim, path, "f", RenoCca())
    conn.sender.set_infinite_backlog()
    sim.run(until=30.0)
    assert conn.receiver.received_bytes > 0
    # Progress is sustained, not just the initial window.
    floor = min(kbps(rate_kbps), 5 * 1448 / 30.0 * 30.0)
    assert conn.receiver.received_bytes >= min(
        kbps(rate_kbps) * 30.0 * 0.2, floor)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sizes=st.lists(st.integers(min_value=100, max_value=60_000),
                      min_size=1, max_size=6),
       seed=st.integers(min_value=0, max_value=100))
def test_property_concurrent_short_flows_all_complete(sizes, seed):
    sim = Simulator()
    path = dumbbell(sim, mbps(12), ms(40), loss_rate=0.01, seed=seed)
    completions = []
    for i, size in enumerate(sizes):
        conn = Connection(sim, path, f"s{i}", CubicCca())
        conn.sender.on_complete = (
            lambda now, idx=i: completions.append(idx))
        conn.sender.write(size)
        conn.sender.close()
    sim.run(until=120.0)
    assert sorted(completions) == list(range(len(sizes)))
