"""The committed regression corpus.

Every scenario the fuzzer ever caught and shrank lives on as a JSON
file under ``tests/corpus/`` that pytest replays forever after.  A
corpus case records the minimized scenario, which oracle it violated,
and where it came from; replay re-runs the scenario through the full
corpus-replay oracle suite (invariants, delivery bound, ground-truth
probe oracles) so a fixed bug stays fixed.

File format (schema 1)::

    {
      "schema": 1,
      "name": "<scenario fingerprint prefix>",
      "oracle": "<oracle name that originally failed>",
      "origin": "fuzz seed=0 index=42 (shrunk)",
      "created": "2026-08-06",
      "scenario": { ... Scenario.to_dict() ... }
    }

Files are written atomically with sorted keys so corpus diffs stay
reviewable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from .oracles import OracleFinding, run_oracles
from .scenario import (Scenario, ScenarioOutcome, run_scenario,
                       scenario_fingerprint)

SCHEMA = 1

#: Default location of the committed corpus, relative to the repo root.
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"


@dataclass(frozen=True)
class CorpusCase:
    """One committed regression case."""

    name: str
    oracle: str
    origin: str
    created: str
    scenario: Scenario

    @property
    def filename(self) -> str:
        return f"{self.name}.json"


def case_for(scenario: Scenario, oracle: str, origin: str,
             created: str) -> CorpusCase:
    """Build a corpus case named after the scenario fingerprint."""
    return CorpusCase(name=scenario_fingerprint(scenario)[:12],
                      oracle=oracle, origin=origin, created=created,
                      scenario=scenario)


def save_case(case: CorpusCase, directory: Path | str) -> Path:
    """Write ``case`` into ``directory`` (atomic, sorted keys)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA,
        "name": case.name,
        "oracle": case.oracle,
        "origin": case.origin,
        "created": case.created,
        "scenario": case.scenario.to_dict(),
    }
    target = directory / case.filename
    tmp = target.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, target)
    return target


def load_case(path: Path | str) -> CorpusCase:
    """Load one corpus case, validating the schema."""
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"{path}: unsupported corpus schema {schema!r}")
    return CorpusCase(
        name=payload["name"],
        oracle=payload["oracle"],
        origin=payload.get("origin", ""),
        created=payload.get("created", ""),
        scenario=Scenario.from_dict(payload["scenario"]),
    )


def load_corpus(directory: Path | str = DEFAULT_CORPUS_DIR
                ) -> list[CorpusCase]:
    """Load every case in ``directory``, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_case(path)
            for path in sorted(directory.glob("*.json"))]


def replay_case(case: CorpusCase
                ) -> tuple[ScenarioOutcome, list[OracleFinding]]:
    """Re-run one corpus case through the corpus-replay oracle suite.

    Returns the outcome and any findings; an empty findings list means
    the regression stays fixed.
    """
    outcome = run_scenario(case.scenario)
    findings = run_oracles(case.scenario, outcome, run_scenario,
                           index=None)
    return outcome, findings
