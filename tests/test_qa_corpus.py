"""Regression corpus: round-trip, replay, and the committed cases.

``test_committed_corpus_replays_clean`` is the forever-regression
gate: every case ever minimized into ``tests/corpus/`` re-runs through
the corpus-replay oracle suite on every tier-1 run.
"""

from pathlib import Path

import pytest

from repro.qa.corpus import (DEFAULT_CORPUS_DIR, CorpusCase, case_for,
                             load_case, load_corpus, replay_case,
                             save_case)
from repro.qa.scenario import FlowSpec, Scenario

REPO_CORPUS = Path(__file__).resolve().parent / "corpus"


def _scenario() -> Scenario:
    return Scenario(family="flows", rate_mbps=4.0, rtt_ms=20.0,
                    qdisc="droptail", duration=2.0, seed=9,
                    flows=(FlowSpec(cca="reno"),))


def test_save_load_round_trip(tmp_path):
    case = case_for(_scenario(), "invariants", origin="test",
                    created="2026-08-06")
    path = save_case(case, tmp_path)
    assert path.name == case.filename
    loaded = load_case(path)
    assert loaded == case


def test_save_is_deterministic(tmp_path):
    case = case_for(_scenario(), "invariants", origin="test",
                    created="2026-08-06")
    first = save_case(case, tmp_path / "a").read_bytes()
    second = save_case(case, tmp_path / "b").read_bytes()
    assert first == second


def test_load_rejects_unknown_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": 99, "scenario": {}}')
    with pytest.raises(ValueError, match="schema"):
        load_case(bad)


def test_load_corpus_sorted_and_missing_dir(tmp_path):
    assert load_corpus(tmp_path / "nope") == []
    for seed in (3, 1, 2):
        case = case_for(_scenario(), "invariants", origin="t",
                        created="2026-08-06")
        save_case(CorpusCase(name=f"case-{seed}", oracle=case.oracle,
                             origin=case.origin, created=case.created,
                             scenario=case.scenario), tmp_path)
    names = [c.name for c in load_corpus(tmp_path)]
    assert names == sorted(names)


def test_replay_clean_case():
    case = case_for(_scenario(), "invariants", origin="test",
                    created="2026-08-06")
    outcome, findings = replay_case(case)
    assert outcome.total_delivered > 0
    assert findings == []


def test_committed_corpus_exists():
    cases = load_corpus(REPO_CORPUS)
    assert cases, (
        f"no committed corpus cases under {REPO_CORPUS}; the fuzz -> "
        f"shrink -> corpus pipeline should have seeded at least one")
    for case in cases:
        assert case.oracle
        assert case.scenario.duration <= 10.0
        assert len(case.scenario.flows) <= 2


@pytest.mark.parametrize(
    "case", load_corpus(REPO_CORPUS), ids=lambda c: c.name)
def test_committed_corpus_replays_clean(case):
    _, findings = replay_case(case)
    assert findings == [], (
        f"corpus case {case.name} (oracle={case.oracle}, "
        f"origin={case.origin}) regressed: "
        + "; ".join(str(f) for f in findings))


def test_default_corpus_dir_is_tests_corpus():
    assert DEFAULT_CORPUS_DIR.parts[-2:] == ("tests", "corpus")
