"""Simulator quality assurance: fuzzing, oracles, and the corpus.

The paper's claims are only as trustworthy as the event-driven
simulator underneath, so this package validates the engine the way
Contracts (Agarwal et al.) argues CCAs themselves should be validated:
against explicit properties rather than point scenarios.

* :mod:`repro.qa.scenario` -- a serializable :class:`Scenario` model
  spanning every qdisc, CCA, and traffic mix in the repo, plus
  :func:`run_scenario`, which executes one scenario under full trace
  capture and invariant checking.
* :mod:`repro.qa.oracles` -- the oracle suite: conservation/queue
  invariants, metamorphic properties (seed determinism, rate
  monotonicity, elasticity rescaling invariance), and paper-level
  ground-truth oracles (elastic cross traffic must read elastic).
* :mod:`repro.qa.fuzz` -- the seeded scenario sampler, the mutation
  operators, and the random fuzz campaign driver (store-backed
  caching of passing scenarios).
* :mod:`repro.qa.features` -- the scenario feature map coverage-
  guided search steers by.
* :mod:`repro.qa.search` -- coverage-guided adversarial search and
  the per-detector robustness-envelope artifact.
* :mod:`repro.qa.shrink` -- delta-debugging minimizer for failing
  scenarios.
* :mod:`repro.qa.corpus` -- the committed regression corpus under
  ``tests/corpus/`` that pytest replays on every run.

CLI entry points: ``repro qa fuzz | search | envelope | shrink |
corpus``.
"""

from .corpus import (CorpusCase, load_case, load_corpus, replay_case,
                     save_case)
from .features import FeatureCell, FeatureMap, feature_cell
from .fuzz import (MUTATORS, FuzzReport, ScenarioVerdict, mutate_scenario,
                   run_fuzz, sample_scenario)
from .oracles import (ORACLES, FAULT_ENV, Oracle, OracleFinding,
                      oracles_for_index, run_oracles)
from .scenario import (FLOW_CCAS, QDISC_NAMES, FlowSpec, Scenario,
                       ScenarioOutcome, build_qdisc, run_scenario,
                       scenario_fingerprint)
from .search import (SearchFailure, SearchReport, build_envelope,
                     diff_envelopes, promote_failure, run_envelope,
                     run_random_baseline, run_search)
from .shrink import ShrinkResult, shrink

__all__ = [
    "Scenario", "FlowSpec", "ScenarioOutcome", "QDISC_NAMES", "FLOW_CCAS",
    "build_qdisc", "run_scenario", "scenario_fingerprint",
    "Oracle", "OracleFinding", "ORACLES", "FAULT_ENV", "run_oracles",
    "oracles_for_index",
    "run_fuzz", "sample_scenario", "FuzzReport", "ScenarioVerdict",
    "MUTATORS", "mutate_scenario",
    "FeatureCell", "FeatureMap", "feature_cell",
    "SearchReport", "SearchFailure", "run_search", "run_envelope",
    "build_envelope", "diff_envelopes", "run_random_baseline",
    "promote_failure",
    "shrink", "ShrinkResult",
    "CorpusCase", "save_case", "load_case", "load_corpus", "replay_case",
]
