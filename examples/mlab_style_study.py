#!/usr/bin/env python3
"""An M-Lab-style passive study end to end (§3.1).

1. Generate a synthetic NDT dataset (2,000 flows) and save it as
   JSONL -- the stand-in for a BigQuery export.
2. Reload it and run the §3.1 pipeline: filter app-limited /
   receiver-limited / cellular flows, change-point the rest.
3. Also *collect* a handful of NDT records from live simulations
   (clean path, contended path, policed path) and push them through
   the same pipeline, showing the two data sources are interchangeable.

Run:  python examples/mlab_style_study.py
"""

import tempfile
from pathlib import Path

from repro import viz
from repro.cca import CubicCca, RenoCca
from repro.ndt import (NdtCollector, NdtDataset, SyntheticNdtGenerator,
                       analyse_flow, run_pipeline)
from repro.qdisc import DropTailQueue, Policer
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms


def synthetic_study(workdir: Path) -> None:
    dataset = SyntheticNdtGenerator(seed=11).generate(2_000)
    store = workdir / "ndt.jsonl"
    dataset.save_jsonl(store)
    print(f"saved {len(dataset)} records to {store}")

    reloaded = NdtDataset.load_jsonl(store)
    result = run_pipeline(reloaded)
    print(viz.table(
        [(name, count, f"{frac:.1%}")
         for name, count, frac in result.summary_rows()],
        header=("category", "flows", "fraction")))
    quality = result.detector_quality()
    print(f"level-shift => contention: precision "
          f"{quality['precision']:.2f}, recall {quality['recall']:.2f}, "
          f"{quality['contending_flows_lost_to_filters']:.0f} contending "
          f"flows were hidden by the filters")


def collect_record(scenario: str):
    """Run one simulated NDT test and return its record + analysis."""
    sim = Simulator()
    if scenario == "policed":
        qdisc = Policer(rate=mbps(10), burst=400_000,
                        child=DropTailQueue(limit_packets=200))
        path = dumbbell(sim, mbps(50), ms(30), qdisc=qdisc)
    else:
        path = dumbbell(sim, mbps(50), ms(30))
    collector = NdtCollector(sim, path, "ndt", access_type="cable",
                             cca=CubicCca())
    collector.start()
    if scenario == "contended":
        def competitor():
            conn = Connection(sim, path, "rival", RenoCca())
            conn.sender.set_infinite_backlog()
        sim.schedule(4.0, competitor)
    sim.run(until=10.5)
    record = collector.record(access_rate_bps=mbps(50))
    return record, analyse_flow(record)


def collected_study() -> None:
    print("\nRecords collected from live simulations:")
    rows = []
    for scenario in ("clean", "contended", "policed"):
        record, analysis = collect_record(scenario)
        rows.append((scenario, analysis.category.value,
                     analysis.num_level_shifts,
                     f"{record.mean_throughput_bps * 8 / 1e6:.1f}"))
    print(viz.table(rows, header=("scenario", "category", "level shifts",
                                  "mean Mbit/s")))
    print("The contended and policed tests both show level shifts -- "
          "the §3.1 ambiguity the paper's active technique resolves.")


def main() -> None:
    print(__doc__)
    with tempfile.TemporaryDirectory() as tmp:
        synthetic_study(Path(tmp))
    collected_study()


if __name__ == "__main__":
    main()
