"""Unit tests for RED and CoDel active queue management."""

import pytest

from repro.errors import ConfigError
from repro.qdisc import CoDelQueue, RedQueue
from repro.sim.packet import make_data


def pkt(flow="f", size=1500, ecn=False):
    return make_data(flow, seq=0, payload=size - 52, size=size,
                     ecn_capable=ecn)


class TestRed:
    def test_below_min_thresh_no_drops(self):
        q = RedQueue(min_thresh=5, max_thresh=15, limit_packets=30)
        for _ in range(4):
            assert q.enqueue(pkt(), 0.0)
        assert q.drops == 0

    def test_sustained_overload_produces_early_drops(self):
        q = RedQueue(min_thresh=5, max_thresh=15, limit_packets=100,
                     max_p=0.5, weight=0.5, seed=1)
        accepted = 0
        for _ in range(200):
            if q.enqueue(pkt(), 0.0):
                accepted += 1
        # Early (probabilistic) drops should trigger well before the
        # 100-packet hard limit would.
        assert q.drops > 0
        assert accepted < 200

    def test_hard_limit_always_drops(self):
        q = RedQueue(min_thresh=1, max_thresh=2, limit_packets=3,
                     max_p=0.01, weight=0.0001, seed=2)
        for _ in range(10):
            q.enqueue(pkt(), 0.0)
        assert len(q) <= 3

    def test_ecn_marks_instead_of_dropping(self):
        q = RedQueue(min_thresh=2, max_thresh=4, limit_packets=50,
                     max_p=1.0, weight=1.0, ecn=True, seed=3)
        marked = 0
        for _ in range(30):
            p = pkt(ecn=True)
            if q.enqueue(p, 0.0) and p.ecn_marked:
                marked += 1
        assert marked > 0
        assert q.marks == marked
        assert q.drops == 0

    def test_non_ecn_packets_still_dropped_in_ecn_mode(self):
        q = RedQueue(min_thresh=2, max_thresh=4, limit_packets=50,
                     max_p=1.0, weight=1.0, ecn=True, seed=4)
        for _ in range(30):
            q.enqueue(pkt(ecn=False), 0.0)
        assert q.drops > 0

    def test_average_decays_when_idle(self):
        q = RedQueue(min_thresh=2, max_thresh=6, limit_packets=20,
                     weight=0.5, seed=5)
        q.set_service_rate_hint(1500 * 100)  # 100 pkt/s
        for _ in range(6):
            q.enqueue(pkt(), 0.0)
        while q.dequeue(0.0) is not None:
            pass
        avg_before = q.average_queue
        q.enqueue(pkt(), 10.0)  # long idle gap
        assert q.average_queue < avg_before

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            RedQueue(min_thresh=10, max_thresh=5, limit_packets=20)
        with pytest.raises(ConfigError):
            RedQueue(min_thresh=1, max_thresh=5, limit_packets=20, max_p=0)

    def test_fifo_order_preserved(self):
        q = RedQueue(min_thresh=50, max_thresh=100, limit_packets=200)
        a, b = pkt(), pkt()
        q.enqueue(a, 0.0)
        q.enqueue(b, 0.0)
        assert q.dequeue(0.0) is a
        assert q.dequeue(0.0) is b


class TestCoDel:
    def test_low_delay_traffic_untouched(self):
        q = CoDelQueue(target=0.005, interval=0.1, limit_packets=100)
        t = 0.0
        for _ in range(50):
            q.enqueue(pkt(), t)
            got = q.dequeue(t + 0.001)  # 1 ms sojourn, below target
            assert got is not None
            t += 0.002
        assert q.drops == 0

    def test_persistent_queue_triggers_drops(self):
        q = CoDelQueue(target=0.005, interval=0.05, limit_packets=1000)
        # Fill a standing queue, then drain slowly so sojourn > target
        # for longer than interval.
        t = 0.0
        for _ in range(200):
            q.enqueue(pkt(), t)
            t += 0.001
        served = 0
        for i in range(150):
            if q.dequeue(t) is not None:
                served += 1
            t += 0.01
        assert q.drops > 0

    def test_hard_limit(self):
        q = CoDelQueue(limit_packets=5)
        for _ in range(10):
            q.enqueue(pkt(), 0.0)
        assert len(q) == 5
        assert q.drops == 5

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            CoDelQueue(target=0)
        with pytest.raises(ConfigError):
            CoDelQueue(interval=-1)

    def test_empty_dequeue_returns_none(self):
        q = CoDelQueue()
        assert q.dequeue(0.0) is None

    def test_byte_accounting(self):
        q = CoDelQueue(limit_packets=10)
        q.enqueue(pkt(size=1000), 0.0)
        q.enqueue(pkt(size=500), 0.0)
        assert q.byte_length == 1500
        q.dequeue(0.0)
        assert q.byte_length == 500
