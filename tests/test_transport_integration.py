"""Integration tests: transport endpoints over simulated paths.

These exercise the full stack -- sender, qdisc, link, delay, receiver,
ACK path -- and check end-to-end behaviours: link saturation, loss
recovery, receiver-window limits, app-limited accounting, completion,
and basic fairness.
"""

import pytest

from repro.cca import BbrCca, CubicCca, NewRenoCca, RenoCca, VegasCca
from repro.qdisc import DropTailQueue
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection, LimitState
from repro.units import mbps, ms, to_mbps


def run_bulk(cca_factory, rate_mbps=10.0, rtt_ms=40.0, duration=15.0,
             rwnd=None, buffer_multiplier=1.0):
    sim = Simulator()
    path = dumbbell(sim, mbps(rate_mbps), ms(rtt_ms),
                    buffer_multiplier=buffer_multiplier)
    conn = Connection(sim, path, "flow0", cca_factory(), rwnd_bytes=rwnd)
    conn.sender.set_infinite_backlog()
    sim.run(until=duration)
    return sim, path, conn


class TestBulkTransfer:
    @pytest.mark.parametrize("cca", [RenoCca, NewRenoCca, CubicCca])
    def test_loss_based_cca_saturates_link(self, cca):
        sim, path, conn = run_bulk(cca)
        goodput = conn.receiver.received_bytes / sim.now
        assert to_mbps(goodput) > 8.0  # > 80% of 10 Mbit/s

    def test_bbr_saturates_link(self):
        sim, path, conn = run_bulk(BbrCca)
        goodput = conn.receiver.received_bytes / sim.now
        assert to_mbps(goodput) > 8.0

    def test_vegas_saturates_link_with_low_loss(self):
        sim, path, conn = run_bulk(VegasCca)
        goodput = conn.receiver.received_bytes / sim.now
        assert to_mbps(goodput) > 7.0
        # Vegas should keep the queue small: almost no drops.
        assert path.bottleneck.qdisc.drops < 20

    def test_goodput_never_exceeds_capacity(self):
        sim, path, conn = run_bulk(CubicCca, rate_mbps=5.0)
        goodput = conn.receiver.received_bytes / sim.now
        assert to_mbps(goodput) <= 5.0 + 0.01

    def test_losses_occur_and_are_recovered(self):
        sim, path, conn = run_bulk(RenoCca)
        assert path.bottleneck.qdisc.drops > 0
        assert conn.sender.fast_retransmits > 0
        # Stream integrity: receiver got a contiguous prefix.
        assert conn.receiver.rcv_nxt == conn.receiver.received_bytes

    def test_no_data_no_packets(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(10), ms(40))
        Connection(sim, path, "f", RenoCca())
        sim.run(until=1.0)
        assert path.bottleneck.delivered_packets == 0


class TestReceiverWindow:
    def test_small_rwnd_caps_throughput(self):
        # rwnd = 16 KB, RTT = 100 ms -> max ~1.31 Mbit/s regardless of
        # the 50 Mbit/s link.
        sim, path, conn = run_bulk(CubicCca, rate_mbps=50.0, rtt_ms=100.0,
                                   rwnd=16_000)
        goodput = conn.receiver.received_bytes / sim.now
        cap = 16_000 / 0.1  # bytes/sec
        assert goodput <= cap * 1.1
        assert goodput >= cap * 0.5

    def test_rwnd_limited_time_recorded(self):
        sim, path, conn = run_bulk(CubicCca, rate_mbps=50.0, rtt_ms=100.0,
                                   rwnd=16_000, duration=10.0)
        snap = conn.sender.snapshot()
        assert snap.rwnd_limited_us > 2_000_000  # >2s of 10s run


class TestAppLimited:
    def test_app_limited_time_recorded_for_thin_flow(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(10), ms(40))
        conn = Connection(sim, path, "thin", RenoCca())
        # Write a tiny burst every 500 ms: mostly app-limited.
        def writer():
            conn.sender.write(2_000)
            if sim.now < 9.0:
                sim.schedule(0.5, writer)
        sim.schedule(0.0, writer)
        sim.run(until=10.0)
        snap = conn.sender.snapshot()
        assert snap.app_limited_us > 5_000_000
        assert conn.receiver.received_bytes == pytest.approx(
            conn.sender.tracker.bytes_sent, abs=4_000)

    def test_backlogged_flow_not_app_limited(self):
        sim, path, conn = run_bulk(RenoCca, duration=10.0)
        snap = conn.sender.snapshot()
        assert snap.app_limited_us < 100_000  # < 0.1 s


class TestCompletion:
    def test_short_flow_completes_and_fires_callback(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(10), ms(40))
        conn = Connection(sim, path, "short", RenoCca())
        done = []
        conn.sender.on_complete = done.append
        conn.sender.write(50_000)
        conn.sender.close()
        sim.run(until=5.0)
        assert done and done[0] > 0.04  # at least one RTT
        assert conn.receiver.received_bytes == 50_000

    def test_flow_completes_despite_loss(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(2), ms(40), buffer_multiplier=0.5,
                        loss_rate=0.02, seed=7)
        conn = Connection(sim, path, "lossy", NewRenoCca())
        done = []
        conn.sender.on_complete = done.append
        conn.sender.write(200_000)
        conn.sender.close()
        sim.run(until=60.0)
        assert done, "flow did not complete under random loss"
        assert conn.receiver.rcv_nxt == 200_000

    def test_tiny_flow_fits_initial_window(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(10), ms(100))
        conn = Connection(sim, path, "tiny", RenoCca())
        done = []
        conn.sender.on_complete = done.append
        conn.sender.write(5_000)  # ~4 packets < IW10
        conn.sender.close()
        sim.run(until=2.0)
        # One RTT (no slow-start round trips needed beyond the first).
        assert done[0] == pytest.approx(0.1, abs=0.05)


class TestFairness:
    def test_two_reno_flows_share_roughly_equally(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(20), ms(40))
        conns = [Connection(sim, path, f"f{i}", RenoCca()) for i in range(2)]
        for c in conns:
            c.sender.set_infinite_backlog()
        sim.run(until=30.0)
        rates = [c.receiver.received_bytes for c in conns]
        ratio = max(rates) / min(rates)
        assert ratio < 2.0
        total = to_mbps(sum(rates) / sim.now)
        assert total > 16.0

    def test_bbr_beats_reno_in_shallow_buffer(self):
        # Ware et al. (IMC '19), cited in the paper's intro: BBR takes
        # more than its fair share vs loss-based CCAs; the effect is
        # strongest in shallow buffers (in deep buffers BBR's 2xBDP
        # inflight cap lets loss-based flows out-buffer it).
        sim = Simulator()
        path = dumbbell(sim, mbps(20), ms(40), buffer_multiplier=1.0)
        reno = Connection(sim, path, "reno", RenoCca())
        bbr = Connection(sim, path, "bbr", BbrCca())
        reno.sender.set_infinite_backlog()
        bbr.sender.set_infinite_backlog()
        sim.run(until=30.0)
        assert bbr.receiver.received_bytes > reno.receiver.received_bytes


class TestRtoRecovery:
    def test_total_loss_triggers_rto_and_recovery(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(1), ms(40), buffer_multiplier=0.3)
        conn = Connection(sim, path, "f", RenoCca())
        conn.sender.set_infinite_backlog()
        sim.run(until=2.0)
        # Cut the flow's packets off entirely for a while by detaching
        # the receiver (black hole), forcing an RTO.
        path.dst_host.detach("f")
        sim.run(until=6.0)
        path.dst_host.attach("f", conn.receiver.on_packet)
        sim.run(until=20.0)
        assert conn.sender.timeouts >= 1
        # Stream resumed after the black hole lifted.
        assert conn.receiver.rcv_nxt > 0
        goodput_tail = conn.receiver.received_bytes
        assert goodput_tail > 500_000  # made real progress overall
