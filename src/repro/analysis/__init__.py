"""Analysis toolbox: change points, distributions, rates, fairness."""

from .changepoint import (ChangePointResult, L2Cost, NormalMeanVarCost,
                          binary_segmentation, default_penalty, pelt,
                          throughput_level_shift)
from .models import (mathis_throughput, padhye_throughput,
                     reno_steady_state_loss_rate)
from .fairness import (harm, jain_index, max_min_fair_allocation,
                       throughput_shares)
from .stats import Cdf, CdfSketch, bootstrap_ci, percentile, summarize
from .timeseries import DelayMeter, RateMeter, ewma, jitter_metrics

__all__ = [
    "pelt", "binary_segmentation", "throughput_level_shift",
    "ChangePointResult", "L2Cost", "NormalMeanVarCost", "default_penalty",
    "Cdf", "CdfSketch", "percentile", "bootstrap_ci", "summarize",
    "RateMeter", "DelayMeter", "ewma", "jitter_metrics",
    "jain_index", "harm", "throughput_shares", "max_min_fair_allocation",
    "mathis_throughput", "padhye_throughput",
    "reno_steady_state_loss_rate",
]
