"""Constant-bitrate UDP-style traffic.

A raw packet source that bypasses the transport entirely: fixed-size
datagrams paced at an exact rate, no ACKs, no retransmission, no
reaction to anything -- the perfectly inelastic cross traffic of
Figure 3's final phase.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..sim.packet import Packet, PacketKind
from .base import TrafficSource


class CbrSource(TrafficSource):
    """Unreliable constant-bitrate sender.

    Args:
        sim: the simulator.
        path: topology; datagrams enter at ``path.entry`` and are
            counted at the destination host.
        rate: sending rate, bytes/second (wire bytes).
        packet_size: datagram size on the wire.
    """

    def __init__(self, sim: Simulator, path: PathHandles, flow_id: str,
                 rate: float, packet_size: int = 1200, user_id: str = ""):
        if rate <= 0:
            raise ConfigError(f"rate must be positive: {rate}")
        if packet_size <= 0:
            raise ConfigError(f"packet_size must be positive: {packet_size}")
        self.sim = sim
        self.path = path
        self.flow_id = flow_id
        self.rate = rate
        self.packet_size = packet_size
        self.user_id = user_id or flow_id
        self.sent_packets = 0
        self._received = 0
        self._running = False
        self._seq = 0
        path.dst_host.attach(flow_id, self._on_delivery)

    def start(self) -> None:
        self._running = True
        self._send_next()

    def stop(self) -> None:
        self._running = False

    def _send_next(self) -> None:
        if not self._running:
            return
        packet = Packet(self.flow_id, PacketKind.DATA,
                        size=self.packet_size, seq=self._seq,
                        end_seq=self._seq + self.packet_size,
                        user_id=self.user_id)
        packet.sent_time = self.sim.now
        self._seq += self.packet_size
        self.sent_packets += 1
        self.path.entry.send(packet)
        self.sim.schedule(self.packet_size / self.rate, self._send_next)

    def _on_delivery(self, packet: Packet) -> None:
        self._received += packet.size

    @property
    def delivered_bytes(self) -> int:
        return self._received
