"""Tests for BwE-style hierarchical bandwidth allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.alloc import (BweController, DemandNode, allocate,
                         weighted_water_fill)
from repro.errors import ConfigError
from repro.sim import Simulator


class TestWaterFill:
    def test_equal_weights_equal_split(self):
        alloc = weighted_water_fill([10, 10], [1, 1], 10)
        assert alloc == [5, 5]

    def test_weights_skew_split(self):
        alloc = weighted_water_fill([10, 10], [2, 1], 9)
        assert alloc == pytest.approx([6, 3])

    def test_small_demand_satisfied_first(self):
        alloc = weighted_water_fill([1, 100], [1, 1], 11)
        assert alloc == pytest.approx([1, 10])

    def test_zero_demand_gets_zero(self):
        alloc = weighted_water_fill([0, 5], [1, 1], 10)
        assert alloc == [0, 5]

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ConfigError):
            weighted_water_fill([1], [1, 2], 10)

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0.1, max_value=5)), min_size=1, max_size=8),
        st.floats(min_value=0, max_value=400))
    def test_property_feasible_and_demand_bounded(self, pairs, capacity):
        demands = [d for d, _ in pairs]
        weights = [w for _, w in pairs]
        alloc = weighted_water_fill(demands, weights, capacity)
        assert sum(alloc) <= capacity + 1e-6
        for a, d in zip(alloc, demands):
            assert a <= d + 1e-6


class TestHierarchy:
    def build(self):
        return DemandNode("root", children=[
            DemandNode("serving", weight=2.0, children=[
                DemandNode("s1", demand=60.0),
                DemandNode("s2", demand=60.0),
            ]),
            DemandNode("batch", weight=1.0, children=[
                DemandNode("b1", demand=60.0),
                DemandNode("b2", demand=10.0),
            ]),
        ])

    def test_weighted_group_split(self):
        out = allocate(self.build(), capacity=90.0)
        assert out["serving"] == pytest.approx(60.0)
        assert out["batch"] == pytest.approx(30.0)

    def test_leaves_split_within_group(self):
        out = allocate(self.build(), capacity=90.0)
        assert out["s1"] == pytest.approx(30.0)
        assert out["s2"] == pytest.approx(30.0)
        # b2 only wants 10; b1 takes the rest of batch's 30.
        assert out["b2"] == pytest.approx(10.0)
        assert out["b1"] == pytest.approx(20.0)

    def test_unused_share_redistributed(self):
        root = DemandNode("root", children=[
            DemandNode("idle", weight=1.0, children=[
                DemandNode("i1", demand=5.0)]),
            DemandNode("busy", weight=1.0, children=[
                DemandNode("u1", demand=100.0)]),
        ])
        out = allocate(root, capacity=60.0)
        assert out["i1"] == pytest.approx(5.0)
        assert out["u1"] == pytest.approx(55.0)

    def test_invalid_nodes_rejected(self):
        with pytest.raises(ConfigError):
            DemandNode("bad", weight=0.0)
        with pytest.raises(ConfigError):
            DemandNode("bad", demand=-1.0)


class TestController:
    def test_pushes_rates_periodically(self):
        sim = Simulator()
        controller = BweController(sim, capacity=100.0, period=1.0)
        rates = {"a": 0.0, "b": 0.0}
        controller.register("a", demand_fn=lambda: 80.0,
                            enforce_fn=lambda r: rates.__setitem__("a", r))
        controller.register("b", demand_fn=lambda: 80.0,
                            enforce_fn=lambda r: rates.__setitem__("b", r))
        controller.start()
        sim.run(until=0.5)
        assert rates["a"] == pytest.approx(50.0)
        assert rates["b"] == pytest.approx(50.0)

    def test_reacts_to_demand_changes(self):
        sim = Simulator()
        controller = BweController(sim, capacity=100.0, period=1.0)
        demand = {"a": 80.0}
        rates = {}
        controller.register("a", demand_fn=lambda: demand["a"],
                            enforce_fn=lambda r: rates.__setitem__("a", r))
        controller.register("b", demand_fn=lambda: 80.0,
                            enforce_fn=lambda r: rates.__setitem__("b", r))
        controller.start()
        sim.run(until=0.5)
        demand["a"] = 10.0
        sim.run(until=1.5)
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(80.0)

    def test_weights_respected_across_groups(self):
        sim = Simulator()
        controller = BweController(sim, capacity=90.0, period=1.0)
        rates = {}
        controller.register("s", demand_fn=lambda: 100.0, group="serving",
                            weight=2.0,
                            enforce_fn=lambda r: rates.__setitem__("s", r))
        controller.register("b", demand_fn=lambda: 100.0, group="batch",
                            weight=1.0,
                            enforce_fn=lambda r: rates.__setitem__("b", r))
        controller.start()
        sim.run(until=0.5)
        # Groups have default weight 1 each; within-group weights apply
        # to leaves.  Each group gets 45.
        assert rates["s"] == pytest.approx(45.0)
        assert rates["b"] == pytest.approx(45.0)

    def test_stop_halts_ticks(self):
        sim = Simulator()
        controller = BweController(sim, capacity=10.0, period=1.0)
        calls = []
        controller.register("a", demand_fn=lambda: calls.append(1) or 5.0,
                            enforce_fn=lambda r: None)
        controller.start()
        sim.run(until=2.5)
        controller.stop()
        n = len(calls)
        sim.run(until=6.0)
        assert len(calls) == n

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            BweController(Simulator(), capacity=0.0)
