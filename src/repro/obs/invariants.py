"""Trace-driven invariant checkers.

Five invariants every healthy simulation must satisfy:

* **Monotonic clock** -- event timestamps never go backwards within one
  simulator's lifetime.
* **Non-negative queues** -- no qdisc ever dequeues or drops more
  packets than it accepted.
* **Byte conservation** -- per qdisc, enqueued bytes equal dequeued
  bytes plus dropped bytes plus the bytes still queued (checked online
  as "residual never negative", and exactly at finalization against the
  qdisc's actual occupancy).
* **Cwnd bounds** -- every congestion-window update stays finite and
  within sane bounds.
* **Medium state** -- on a shared (CSMA/CA) medium, successful
  transmissions never overlap and consumed airtime never exceeds
  wall-clock time in any window.

The checkers consume :class:`~repro.obs.bus.TraceEvent` streams, so the
same code runs in three modes:

1. **Tests** -- record a trace with :class:`~repro.obs.bus.capture` and
   call :func:`check_trace` on the collected events.
2. **Runtime assertions** -- set ``REPRO_CHECK_INVARIANTS=1`` and every
   :class:`~repro.sim.engine.Simulator` installs strict online checkers
   that raise :class:`~repro.errors.InvariantViolation` at the exact
   event that breaks an invariant.
3. **Ad hoc** -- feed any stored JSONL trace back through the checkers.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..errors import InvariantViolation
from .bus import BUS, EventKind, TraceBus, TraceEvent

#: Environment variable enabling strict runtime checking.
ENV_CHECK = "REPRO_CHECK_INVARIANTS"


@dataclass(frozen=True)
class Violation:
    """One invariant failure found in a trace."""

    invariant: str
    time: float
    src: str
    message: str

    def __str__(self) -> str:
        return (f"[{self.invariant}] t={self.time:.6f} {self.src}: "
                f"{self.message}")


class InvariantChecker:
    """Base: observe events, collect violations, optionally raise."""

    name = "invariant"

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: list[Violation] = []

    def observe(self, event: TraceEvent) -> None:
        """Feed one event through the checker."""

    def finalize(self) -> None:
        """Run end-of-trace checks (override where meaningful)."""

    @property
    def ok(self) -> bool:
        return not self.violations

    def _fail(self, time: float, src: str, message: str) -> None:
        violation = Violation(self.name, time, src, message)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(str(violation))


class MonotonicClockChecker(InvariantChecker):
    """Event timestamps never decrease (per simulator lifetime).

    Args:
        gate_to_runs: only check events emitted between a ``SIM_RUN``
            begin and end marker.  The runtime assertion mode uses
            this: once checkers are installed process-wide, unit tests
            that drive a CCA or qdisc directly at hand-picked times
            (with no simulator clock at all) would otherwise read as
            clock regressions.  Offline :func:`check_trace` leaves the
            gate off and checks every event.
    """

    name = "monotonic_clock"

    def __init__(self, strict: bool = False, gate_to_runs: bool = False):
        super().__init__(strict)
        self._last = float("-inf")
        self._gated = gate_to_runs
        self._active = not gate_to_runs

    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == EventKind.SIM_START:
            # A fresh simulator legitimately restarts the clock at 0.
            self._last = float("-inf")
            return
        if kind == EventKind.SIM_RUN and self._gated:
            self._active = (event.meta or {}).get("phase") == "begin"
        if not self._active:
            return
        if event.time < self._last - 1e-12:
            self._fail(event.time, event.src,
                       f"clock went backwards: {event.time} after "
                       f"{self._last}")
        elif event.time > self._last:
            self._last = event.time


class _QueueAccounting(InvariantChecker):
    """Shared per-src enqueue/dequeue/drop bookkeeping.

    Only drops of previously *enqueued* packets (AQM head drops,
    longest-queue eviction) deplete the residual; admission refusals
    never entered the queue.
    """

    def __init__(self, strict: bool = False):
        super().__init__(strict)
        self.enq: dict[str, float] = {}
        self.deq: dict[str, float] = {}
        self.dropped: dict[str, float] = {}

    def _amount(self, event: TraceEvent) -> float:
        raise NotImplementedError

    def _unit(self) -> str:
        raise NotImplementedError

    def residual(self, src: str) -> float:
        """Amount the trace says should still be queued at ``src``."""
        return (self.enq.get(src, 0.0) - self.deq.get(src, 0.0)
                - self.dropped.get(src, 0.0))

    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == EventKind.SIM_START:
            # Qdisc identities are unique per instance, so a new
            # simulator cannot collide with old keys; clearing just
            # bounds memory over long campaigns.
            self.enq.clear()
            self.deq.clear()
            self.dropped.clear()
            return
        if kind not in EventKind.QUEUE_KINDS:
            return
        src = event.src
        amount = self._amount(event)
        if amount < 0:
            self._fail(event.time, src,
                       f"negative {self._unit()} amount: {amount}")
            return
        if kind == EventKind.ENQUEUE:
            self.enq[src] = self.enq.get(src, 0.0) + amount
            return
        if kind == EventKind.DEQUEUE:
            self.deq[src] = self.deq.get(src, 0.0) + amount
        elif kind == EventKind.DROP:
            if not (event.meta or {}).get("enqueued"):
                return  # refused at admission; never occupied the queue
            self.dropped[src] = self.dropped.get(src, 0.0) + amount
        if self.residual(src) < 0:
            self._fail(event.time, src,
                       f"queue went negative: {self._unit()} residual "
                       f"{self.residual(src)} after {kind}")


class QueueNonNegativeChecker(_QueueAccounting):
    """Packet counts: a queue never holds a negative number of packets."""

    name = "queue_non_negative"

    def _amount(self, event: TraceEvent) -> float:
        return 1.0

    def _unit(self) -> str:
        return "packet"

    def verify_final(self, qdiscs: Iterable) -> None:
        """Cross-check trace residuals against live qdisc occupancy."""
        for qdisc in qdiscs:
            src = qdisc.obs_name
            if self.residual(src) != len(qdisc):
                self._fail(float("inf"), src,
                           f"trace residual {self.residual(src)} packets "
                           f"!= actual occupancy {len(qdisc)}")


class ByteConservationChecker(_QueueAccounting):
    """enqueued bytes == dequeued + dropped-after-enqueue + residual."""

    name = "byte_conservation"

    def _amount(self, event: TraceEvent) -> float:
        return event.value

    def _unit(self) -> str:
        return "byte"

    def verify_final(self, qdiscs: Iterable) -> None:
        """Cross-check trace residuals against live qdisc byte counts."""
        for qdisc in qdiscs:
            src = qdisc.obs_name
            if self.residual(src) != qdisc.byte_length:
                self._fail(float("inf"), src,
                           f"trace residual {self.residual(src)} bytes "
                           f"!= actual byte_length {qdisc.byte_length}")


class CwndBoundsChecker(InvariantChecker):
    """Congestion windows stay finite and inside [min_cwnd, max_cwnd].

    The defaults are sanity bounds, not per-CCA policy: an RTO may
    legitimately collapse a window to one packet, and the non-reactive
    CBR sender advertises an effectively unlimited 1e9-packet window.
    """

    name = "cwnd_bounds"

    def __init__(self, strict: bool = False, min_cwnd: float = 0.5,
                 max_cwnd: float = 2e9):
        super().__init__(strict)
        self.min_cwnd = min_cwnd
        self.max_cwnd = max_cwnd

    def observe(self, event: TraceEvent) -> None:
        if event.kind != EventKind.CWND:
            return
        cwnd = event.value
        if not math.isfinite(cwnd):
            self._fail(event.time, event.src,
                       f"cwnd not finite: {cwnd} (flow {event.flow})")
        elif not self.min_cwnd <= cwnd <= self.max_cwnd:
            self._fail(event.time, event.src,
                       f"cwnd {cwnd} outside [{self.min_cwnd}, "
                       f"{self.max_cwnd}] (flow {event.flow})")


class MediumChecker(InvariantChecker):
    """Shared-medium MAC sanity, per medium source.

    Two invariants over ``medium.txop`` / ``medium.collision`` events
    (both carry ``meta["duration"]``, the airtime the event consumed):

    * **At most one successful transmitter at a time** -- a ``txop``
      may not start before the previous ``txop``'s airtime has ended.
      Collisions are exempt: their events are deliberately concurrent.
    * **Airtime sums to <= 1 per window** -- within every
      ``WINDOW``-second window, the airtime consumed (successful
      transmissions summed exactly; collision airtime counted once per
      collision, not once per collider) never exceeds the window.
    """

    name = "medium_state"

    #: airtime accounting window (seconds)
    WINDOW = 1.0

    def __init__(self, strict: bool = False):
        super().__init__(strict)
        self._txop_end: dict[str, float] = {}
        self._busy_end: dict[str, float] = {}
        self._windows: dict[str, dict[int, float]] = {}

    def _reset(self) -> None:
        self._txop_end.clear()
        self._busy_end.clear()
        self._windows.clear()

    def _add_airtime(self, event: TraceEvent, src: str, start: float,
                     end: float) -> None:
        """Charge ``[start, end)`` to per-window airtime and check."""
        windows = self._windows.setdefault(src, {})
        w = int(start // self.WINDOW)
        while start < end - 1e-12:
            edge = (w + 1) * self.WINDOW
            piece = min(end, edge) - start
            total = windows.get(w, 0.0) + piece
            windows[w] = total
            if total > self.WINDOW + 1e-6:
                self._fail(event.time, src,
                           f"airtime {total:.6f}s in window {w} exceeds "
                           f"{self.WINDOW}s: the medium is over-granted")
                return
            start = edge
            w += 1

    def observe(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == EventKind.SIM_START:
            self._reset()
            return
        if kind not in (EventKind.MEDIUM_TXOP, EventKind.MEDIUM_COLLISION):
            return
        src = event.src
        t = event.time
        duration = float((event.meta or {}).get("duration", 0.0))
        if duration < 0:
            self._fail(t, src, f"negative airtime duration: {duration}")
            return
        if kind == EventKind.MEDIUM_TXOP:
            last_end = self._txop_end.get(src, float("-inf"))
            if t < last_end - 1e-9:
                self._fail(t, src,
                           f"overlapping successful transmissions: txop "
                           f"at {t:.6f} before previous ends at "
                           f"{last_end:.6f}")
            self._txop_end[src] = max(last_end, t + duration)
            # Successful txops must be disjoint, so their durations sum
            # exactly; charging the raw duration makes a double-grant
            # show up as airtime > window.
            self._add_airtime(event, src, t, t + duration)
            self._busy_end[src] = max(self._busy_end.get(src, 0.0),
                                      t + duration)
        else:
            # One collision emits an event per collider over the same
            # airtime; the busy-end clamp charges that airtime once.
            begin = max(t, self._busy_end.get(src, float("-inf")))
            end = t + duration
            if end > begin:
                self._add_airtime(event, src, begin, end)
                self._busy_end[src] = end


def all_checkers(strict: bool = False, min_cwnd: float = 0.5,
                 max_cwnd: float = 2e9,
                 gate_clock_to_runs: bool = False) -> list[InvariantChecker]:
    """One instance of each of the five invariant checkers."""
    return [
        MonotonicClockChecker(strict, gate_to_runs=gate_clock_to_runs),
        QueueNonNegativeChecker(strict),
        ByteConservationChecker(strict),
        CwndBoundsChecker(strict, min_cwnd=min_cwnd, max_cwnd=max_cwnd),
        MediumChecker(strict),
    ]


def check_trace(events: Sequence[TraceEvent], qdiscs: Iterable = (),
                min_cwnd: float = 0.5,
                max_cwnd: float = 2e9) -> list[Violation]:
    """Run all five invariant checkers over a recorded trace.

    Args:
        events: the trace, in emission order.
        qdiscs: live qdisc objects to cross-check final conservation
            residuals against (optional but recommended in tests).

    Returns:
        Every violation found (empty list = all invariants hold).
    """
    checkers = all_checkers(strict=False, min_cwnd=min_cwnd,
                            max_cwnd=max_cwnd)
    for event in events:
        for checker in checkers:
            checker.observe(event)
    qdiscs = list(qdiscs)
    for checker in checkers:
        checker.finalize()
        if qdiscs and isinstance(checker, _QueueAccounting):
            checker.verify_final(qdiscs)
    return [v for checker in checkers for v in checker.violations]


def assert_no_violations(events: Sequence[TraceEvent],
                         qdiscs: Iterable = ()) -> None:
    """Assert a trace is invariant-clean, reporting every violation.

    Raises :class:`~repro.errors.InvariantViolation` with *all*
    violations in the message (not just the first), which is what a
    failing property test should show.
    """
    violations = check_trace(events, qdiscs=qdiscs)
    if violations:
        details = "\n".join(str(v) for v in violations)
        raise InvariantViolation(
            f"{len(violations)} invariant violation(s):\n{details}")


# -- runtime assertion mode (REPRO_CHECK_INVARIANTS=1) -------------------

_runtime_checkers: Optional[list[InvariantChecker]] = None


def runtime_checks_requested() -> bool:
    """Whether the environment asks for strict runtime invariants."""
    return os.environ.get(ENV_CHECK, "").lower() in ("1", "true", "yes",
                                                     "on")


def install_runtime_checks(bus: TraceBus = BUS) -> bool:
    """Subscribe strict checkers to ``bus`` (idempotent per process).

    Returns True when this call performed the installation.
    """
    global _runtime_checkers
    if _runtime_checkers is not None:
        return False
    checkers = all_checkers(strict=True, gate_clock_to_runs=True)

    def _observe_all(event: TraceEvent) -> None:
        for checker in checkers:
            checker.observe(event)

    bus.subscribe(_observe_all)
    _runtime_checkers = checkers
    return True


def maybe_install_from_env(bus: TraceBus = BUS) -> bool:
    """Install strict runtime checkers when the env var asks for them.

    Called from ``Simulator.__init__`` so that merely setting
    ``REPRO_CHECK_INVARIANTS=1`` turns every simulation in the process
    (tests, experiments, pool workers) into an invariant audit.
    """
    if not runtime_checks_requested():
        return False
    return install_runtime_checks(bus)
