"""Per-client token-bucket rate limiting for the experiment service.

The same shaping idea as :class:`repro.qdisc.tbf.TokenBucketFilter`,
re-applied at the admission layer: each client identity owns a bucket
of ``burst`` tokens refilled at ``rate`` tokens per second, and every
admission costs one token.  An empty bucket yields the *exact* time
until the next token -- which the server surfaces as ``Retry-After``,
so well-behaved clients back off precisely instead of hammering.

Buckets live in a bounded LRU table: one service instance can see an
unbounded stream of client identities, and an attacker must not be
able to grow server memory by inventing names.  Evicting a stale
bucket refills it implicitly, which only ever errs in the client's
favor.

Everything takes an injectable ``clock`` so tests are deterministic.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from ..errors import ConfigError, ReproError


class RateLimited(ReproError):
    """A client exceeded its admission rate.

    Attributes:
        retry_after_s: seconds until the next token is available.
    """

    def __init__(self, client: str, retry_after_s: float):
        self.client = client
        self.retry_after_s = retry_after_s
        super().__init__(
            f"client {client!r} rate limited; retry in "
            f"{retry_after_s:.1f}s")


class TokenBucket:
    """One client's bucket: ``burst`` capacity, ``rate`` tokens/s."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def acquire(self, now: float, cost: float = 1.0) -> float | None:
        """Try to spend ``cost`` tokens at time ``now``.

        Returns ``None`` on success, else the seconds until enough
        tokens will have accumulated (the bucket is left untouched).
        """
        elapsed = max(0.0, now - self.stamp)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now
        if self.tokens >= cost:
            self.tokens -= cost
            return None
        return (cost - self.tokens) / self.rate


class ClientRateLimiter:
    """Bounded LRU table of per-client token buckets.

    Args:
        rate: sustained admissions per second per client; ``<= 0``
            disables limiting entirely.
        burst: bucket capacity (back-to-back admissions a fresh or
            idle client gets before pacing kicks in).
        max_clients: LRU bound on tracked identities.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(self, rate: float = 2.0, burst: float = 10.0,
                 max_clients: int = 1024,
                 clock: Callable[[], float] = time.monotonic):
        if rate > 0 and burst < 1.0:
            raise ConfigError(f"burst must be >= 1: {burst}")
        if max_clients < 1:
            raise ConfigError(f"max_clients must be >= 1: {max_clients}")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, client: str) -> None:
        """Charge one admission to ``client``.

        Raises:
            RateLimited: when the client's bucket is empty; carries the
                precise retry-after delay.
        """
        if not self.enabled:
            return
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        self._buckets.move_to_end(client)
        retry_after = bucket.acquire(now)
        if retry_after is not None:
            raise RateLimited(client, retry_after)

    def __len__(self) -> int:
        return len(self._buckets)
