"""The ``medium`` scenario axis: grammar, MAC classes, timing constants.

A scenario's ``medium`` field is a compact string so it serializes,
fingerprints, and mutates like every other axis:

* ``"queue"`` -- the default: the bottleneck is a qdisc-fronted link
  (everything this repo did before the medium subsystem existed).
  Fingerprints omit the field at this value, so every pre-existing
  scenario is byte-identical.
* ``"csma-<n>"`` -- a CSMA/CA shared medium with ``n`` stations, all
  best-effort class (the homogeneous Bianchi setting).
* ``"csma-<n>-prio"`` -- same, but odd-indexed stations run the voice
  access class (smaller contention window, shorter AIFS), modelling an
  EDCA priority mix.

Timing constants are 802.11b-flavoured DSSS numbers; they are model
parameters, not a claim of standards fidelity.  What matters is that
the packet DES and the Bianchi closed form use *the same* constants,
so the validation tests pin real agreement rather than two free fits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ConfigError

#: The default medium: a plain queue-fronted link (no contention).
MEDIUM_DEFAULT = "queue"

#: Contention slot time (seconds).
SLOT_TIME = 20e-6

#: Short inter-frame space (seconds): the fixed gap before each
#: contention round's slot countdown begins.
SIFS = 10e-6

#: Fixed per-transmission MAC overhead beyond payload serialization
#: (the SIFS-before-ACK plus the ACK frame at the base rate).  Charged
#: to every transmission, successful or colliding.
PER_TX_OVERHEAD = 60e-6

#: Station counts a ``csma-<n>`` medium may use.
MIN_STATIONS = 2
MAX_STATIONS = 64

_MEDIUM_RE = re.compile(r"^csma-(\d+)(-prio)?$")


@dataclass(frozen=True)
class MacClass:
    """One EDCA-style access class.

    Attributes:
        name: class label ("voice", "best_effort", "background").
        aifsn: arbitration inter-frame slots added before the backoff
            countdown (smaller = higher priority).
        cw_min / cw_max: contention-window bounds.  The backoff counter
            is drawn uniformly from ``[0, cw]``; collisions double
            ``cw`` as ``min(2*cw + 1, cw_max)`` and success resets it
            to ``cw_min`` -- the ``ca_decision`` busy/idle rule.
    """

    name: str
    aifsn: int
    cw_min: int
    cw_max: int

    def __post_init__(self):
        if self.aifsn < 1:
            raise ConfigError(f"aifsn must be >= 1: {self.aifsn}")
        if not 0 < self.cw_min <= self.cw_max:
            raise ConfigError(
                f"need 0 < cw_min <= cw_max: {self.cw_min}/{self.cw_max}")


#: The access classes stations can run.  Voice gets the tight window
#: and short AIFS (NR-U "high priority" in the ca_decision rules);
#: best-effort is the classic DCF/Bianchi setting.
ACCESS_CLASSES: dict[str, MacClass] = {
    "voice": MacClass("voice", aifsn=2, cw_min=7, cw_max=15),
    "best_effort": MacClass("best_effort", aifsn=3, cw_min=31, cw_max=1023),
    "background": MacClass("background", aifsn=7, cw_min=31, cw_max=1023),
}


@dataclass(frozen=True)
class MediumSpec:
    """A parsed non-default medium: station count plus priority layout.

    Attributes:
        n_stations: contending stations on the medium.
        priority: "uniform" (all best-effort) or "mixed" (odd-indexed
            stations run the voice class).
    """

    n_stations: int
    priority: str = "uniform"

    def __post_init__(self):
        if not MIN_STATIONS <= self.n_stations <= MAX_STATIONS:
            raise ConfigError(
                f"n_stations must be in [{MIN_STATIONS}, {MAX_STATIONS}]: "
                f"{self.n_stations}")
        if self.priority not in ("uniform", "mixed"):
            raise ConfigError(f"unknown priority layout {self.priority!r}")

    def station_class(self, index: int) -> MacClass:
        """The access class station ``index`` runs."""
        if self.priority == "mixed" and index % 2 == 1:
            return ACCESS_CLASSES["voice"]
        return ACCESS_CLASSES["best_effort"]

    def name(self) -> str:
        """The axis string this spec parses back from."""
        tail = "-prio" if self.priority == "mixed" else ""
        return f"csma-{self.n_stations}{tail}"


def parse_medium(value: str) -> MediumSpec | None:
    """Parse a ``medium`` axis value.

    Returns None for the default ``"queue"`` (no contention), a
    :class:`MediumSpec` for ``csma-<n>[-prio]``, and raises
    :class:`~repro.errors.ConfigError` for anything else.
    """
    if value == MEDIUM_DEFAULT:
        return None
    match = _MEDIUM_RE.match(value)
    if match is None:
        raise ConfigError(
            f"unknown medium {value!r}; expected {MEDIUM_DEFAULT!r}, "
            f"'csma-<n>', or 'csma-<n>-prio'")
    return MediumSpec(n_stations=int(match.group(1)),
                      priority="mixed" if match.group(2) else "uniform")


def medium_names(station_counts=(2, 4, 8),
                 with_priority: bool = True) -> tuple[str, ...]:
    """A canonical sweep of medium axis values (used by E16 and QA)."""
    names = [MEDIUM_DEFAULT]
    names += [f"csma-{n}" for n in station_counts]
    if with_priority:
        names += [f"csma-{n}-prio" for n in station_counts]
    return tuple(names)
