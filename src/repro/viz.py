"""Text-mode visualization: ASCII line charts and CDF plots.

The execution environment has no plotting stack, so figures are
rendered as unicode charts on stdout and their backing data written as
CSV by the experiment harness.
"""

from __future__ import annotations

import math
from typing import Sequence

from .errors import AnalysisError

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line unicode sparkline of a series."""
    vals = list(values)
    if not vals:
        raise AnalysisError("cannot sparkline an empty series")
    if len(vals) > width:
        stride = len(vals) / width
        vals = [vals[int(i * stride)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = hi - lo if hi > lo else 1.0
    return "".join(
        _BLOCKS[1 + int((v - lo) / span * (len(_BLOCKS) - 2))] for v in vals)


def line_chart(xs: Sequence[float], ys: Sequence[float], width: int = 70,
               height: int = 15, title: str = "", x_label: str = "",
               y_label: str = "",
               phases: Sequence[tuple[float, str]] | None = None) -> str:
    """Render an (x, y) series as an ASCII chart.

    Args:
        phases: optional (start_x, name) markers drawn as a footer rule.
    """
    if len(xs) != len(ys) or not xs:
        raise AnalysisError("need equal-length, non-empty xs and ys")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = "•"

    lines = []
    if title:
        lines.append(title)
    label_width = 10
    for i, row in enumerate(grid):
        value = y_hi - (y_hi - y_lo) * i / (height - 1)
        prefix = f"{value:>{label_width}.3g} |" if i % 3 == 0 \
            else " " * label_width + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    x_axis = (f"{x_lo:<12.4g}" + " " * max(0, width - 24)
              + f"{x_hi:>12.4g}")
    lines.append(" " * (label_width + 1) + x_axis)
    if x_label or y_label:
        lines.append(" " * (label_width + 1)
                     + f"x: {x_label}    y: {y_label}")
    if phases:
        marker_row = [" "] * width
        for start, name in phases:
            col = int((start - x_lo) / (x_hi - x_lo) * (width - 1))
            for j, ch in enumerate("|" + name):
                if 0 <= col + j < width:
                    marker_row[col + j] = ch
        lines.append(" " * (label_width + 1) + "".join(marker_row))
    return "\n".join(lines)


def cdf_chart(values: Sequence[float], width: int = 70, height: int = 12,
              title: str = "", x_label: str = "") -> str:
    """Render an empirical CDF as an ASCII chart."""
    vals = sorted(values)
    if not vals:
        raise AnalysisError("cannot chart an empty CDF")
    fracs = [(i + 1) / len(vals) for i in range(len(vals))]
    return line_chart(vals, fracs, width=width, height=height,
                      title=title, x_label=x_label, y_label="CDF")


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, title: str = "",
              fmt: str = "{:.3g}") -> str:
    """Horizontal bar chart with labels."""
    if len(labels) != len(values) or not labels:
        raise AnalysisError("need equal-length, non-empty labels/values")
    peak = max(values) if max(values) > 0 else 1.0
    label_width = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for lab, val in zip(labels, values):
        bar = "█" * max(0, int(val / peak * width))
        lines.append(f"{lab:>{label_width}} | {bar} {fmt.format(val)}")
    return "\n".join(lines)


def table(rows: Sequence[Sequence], header: Sequence[str]) -> str:
    """A plain aligned text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(f"{c:<{w}}" for c, w in zip(row, widths))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(header), sep, *(fmt(r) for r in str_rows)])


def format_rate(rate_bps: float) -> str:
    """Human-readable bytes/second rate as Mbit/s."""
    if not math.isfinite(rate_bps):
        return "inf"
    return f"{rate_bps * 8 / 1e6:.2f} Mbit/s"
