"""JobManager lifecycle tests: admission, coalescing, journal resume.

These drive the manager directly on an asyncio loop -- no sockets.
A synthetic ``block`` executor (a thread parked on an Event) makes
coalescing, backpressure, timeout, and dirty-drain scenarios
deterministic instead of racing real experiment runtimes.
"""

import asyncio
import threading

import pytest

from repro.errors import ConfigError
from repro.serve import jobs as jobs_mod
from repro.serve.jobs import JobManager, ServiceDraining
from repro.serve.protocol import JobRequest, JobState
from repro.serve.queue import QueueFull
from repro.store import ArtifactStore


def run(coro, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def wait_terminal(job, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not job.terminal:
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError(f"job stuck in {job.state}")
        await asyncio.sleep(0.01)
    return job


@pytest.fixture
def block(monkeypatch):
    """Register a ``block`` job kind that parks until released."""
    release = threading.Event()
    started = threading.Event()

    def execute_block(params, store, workers):
        started.set()
        if not release.wait(timeout=30.0):
            raise TimeoutError("block executor never released")
        return {"blocked": params.get("tag", "")}, params

    monkeypatch.setitem(jobs_mod.EXECUTORS, "block", execute_block)
    yield type("Block", (), {"release": release, "started": started})
    release.set()  # never leave an executor thread parked


class TestExecution:
    def test_pipeline_job_runs_to_done(self):
        store = ArtifactStore()
        manager = JobManager(store=store, concurrency=1)
        request = JobRequest("pipeline", {"flows": 200})

        async def scenario():
            await manager.start()
            job, disposition = manager.submit(request)
            assert disposition == "queued"
            journal = manager._journal_path(job.key)
            assert journal.exists()
            await wait_terminal(job)
            assert job.state == JobState.DONE
            assert job.summary["total"] == 200
            assert not journal.exists()
            await manager.drain(grace_s=5.0)
            return job

        job = run(scenario())
        entry = store.get(job.key)
        assert entry["summary"] == job.summary
        assert entry["payload"].total == 200

    def test_cache_hit_skips_execution(self):
        store = ArtifactStore()
        request = JobRequest("pipeline", {"flows": 200})

        async def scenario(manager):
            await manager.start()
            job, disposition = manager.submit(request)
            await wait_terminal(job)
            await manager.drain(grace_s=5.0)
            return job, disposition

        first, disposition = run(scenario(JobManager(store=store)))
        assert disposition == "queued"
        second_manager = JobManager(store=store)
        second, disposition = second_manager.submit(request)
        assert disposition == "cached"
        assert second.cached and second.state == JobState.DONE
        assert second.summary == first.summary

    def test_failed_job_records_error(self):
        manager = JobManager(store=None, concurrency=1)
        request = JobRequest("pipeline", {"flows": -5})

        async def scenario():
            await manager.start()
            job, _ = manager.submit(request)
            await wait_terminal(job)
            await manager.drain(grace_s=5.0)
            return job

        job = run(scenario())
        assert job.state == JobState.FAILED
        assert job.error_type == "ConfigError"
        assert "flows" in job.error

    def test_timeout_marks_job(self, block):
        manager = JobManager(store=None, concurrency=1, timeout_s=0.1)
        request = JobRequest("block", {"tag": "slow"})

        async def scenario():
            await manager.start()
            job, _ = manager.submit(request)
            await wait_terminal(job)
            await manager.drain(grace_s=0.2)
            return job

        job = run(scenario())
        assert job.state == JobState.TIMEOUT
        assert "deadline" in job.error


class TestAdmission:
    def test_unknown_kind(self):
        manager = JobManager(store=None)
        with pytest.raises(ConfigError, match="unknown job kind"):
            manager.submit(JobRequest("nope"))

    def test_draining_refuses(self):
        manager = JobManager(store=None)
        manager.draining = True
        with pytest.raises(ServiceDraining):
            manager.submit(JobRequest("pipeline"))

    def test_coalescing(self, block):
        manager = JobManager(store=None, concurrency=1)

        async def scenario():
            await manager.start()
            first, d1 = manager.submit(JobRequest("block", {"tag": "a"}))
            second, d2 = manager.submit(JobRequest("block", {"tag": "a"}))
            other, d3 = manager.submit(JobRequest("block", {"tag": "b"}))
            assert (d1, d2, d3) == ("queued", "coalesced", "queued")
            assert second is first and first.waiters == 2
            assert other is not first
            block.release.set()
            await wait_terminal(first)
            await wait_terminal(other)
            # once terminal, an identical submission is a new job
            third, d4 = manager.submit(JobRequest("block", {"tag": "a"}))
            assert d4 == "queued" and third is not first
            await wait_terminal(third)
            await manager.drain(grace_s=5.0)

        run(scenario())

    def test_queue_full_backpressure(self, block):
        manager = JobManager(store=None, queue_depth=1, concurrency=1)

        async def scenario():
            await manager.start()
            running, _ = manager.submit(JobRequest("block", {"tag": "r"}))
            await asyncio.get_running_loop().run_in_executor(
                None, block.started.wait, 10.0)
            queued, _ = manager.submit(JobRequest("block", {"tag": "q"}))
            with pytest.raises(QueueFull) as exc:
                manager.submit(JobRequest("block", {"tag": "overflow"}))
            assert exc.value.retry_after_s >= 1.0
            block.release.set()
            await wait_terminal(running)
            await wait_terminal(queued)
            await manager.drain(grace_s=5.0)

        run(scenario())

    def test_cancel_queued_only(self, block):
        manager = JobManager(store=None, queue_depth=4, concurrency=1)

        async def scenario():
            await manager.start()
            running, _ = manager.submit(JobRequest("block", {"tag": "r"}))
            await asyncio.get_running_loop().run_in_executor(
                None, block.started.wait, 10.0)
            queued, _ = manager.submit(JobRequest("block", {"tag": "q"}))
            ok, _ = manager.cancel(queued.id)
            assert ok and queued.state == JobState.CANCELLED
            ok, reason = manager.cancel(running.id)
            assert not ok and "running" in reason
            ok, reason = manager.cancel("job-999999-deadbeef")
            assert not ok and "not found" in reason
            block.release.set()
            await wait_terminal(running)
            await manager.drain(grace_s=5.0)

        run(scenario())


class TestDrainAndResume:
    def test_dirty_drain_keeps_journal(self, block):
        store = ArtifactStore()
        manager = JobManager(store=store, concurrency=1)
        request = JobRequest("block", {"tag": "stuck"})

        async def scenario():
            await manager.start()
            job, _ = manager.submit(request)
            await asyncio.get_running_loop().run_in_executor(
                None, block.started.wait, 10.0)
            clean = await manager.drain(grace_s=0.1)
            assert not clean
            # the unfinished job's journal entry survives for restart
            assert manager._journal_path(job.key).exists()
            block.release.set()

        run(scenario())

    def test_resume_journal_re_admits(self):
        store = ArtifactStore()
        request = JobRequest("pipeline", {"flows": 200})
        # a manager admits (journals) the job but is killed before any
        # worker runs it: submit without start()
        killed = JobManager(store=store)
        admitted, disposition = killed.submit(request)
        assert disposition == "queued"
        assert killed._journal_path(admitted.key).exists()

        revived = JobManager(store=store, concurrency=1)

        async def scenario():
            resumed = await revived.start()
            assert len(resumed) == 1
            job = resumed[0]
            assert job.request == request
            await wait_terminal(job)
            assert job.state == JobState.DONE
            assert job.summary["total"] == 200
            await revived.drain(grace_s=5.0)
            return job

        job = run(scenario())
        assert not revived._journal_path(job.key).exists()

    def test_resume_drops_corrupt_journal(self, tmp_path):
        store = ArtifactStore()
        journal_dir = store.root / "serve" / "journal"
        journal_dir.mkdir(parents=True)
        bad = journal_dir / "deadbeef.json"
        bad.write_text("{not json")
        manager = JobManager(store=store)
        assert manager.resume_journal() == []
        assert not bad.exists()


class TestShardExecutors:
    """The cluster fabric's job kinds: ``paths`` and ``qa-eval``."""

    def test_paths_shard_checkpoints_under_coordinator_keys(self):
        from repro.serve.jobs import campaign_from_params, execute_paths

        store = ArtifactStore()
        params = {"n_paths": 3, "seed": 3, "duration": 1.0,
                  "backend": "fluid", "indices": [0, 2]}
        summary, payload = execute_paths(params, store, 1)
        campaign = campaign_from_params(params)
        keys = [campaign.path_key(campaign.specs[i]) for i in (0, 2)]
        assert summary["done"] == 2 and summary["failed"] == []
        assert summary["path_keys"] == keys
        assert payload["path_keys"] == keys
        for key in keys:
            assert key in store, "shard results travel by store key"
        skipped = campaign.path_key(campaign.specs[1])
        assert skipped not in store, "only the shard's indices run"

    def test_paths_shard_rejects_bad_requests(self):
        from repro.serve.jobs import execute_paths

        params = {"n_paths": 3, "duration": 1.0, "backend": "fluid"}
        with pytest.raises(ConfigError, match="need a store"):
            execute_paths({**params, "indices": [0]}, None, 1)
        store = ArtifactStore()
        for indices in ([], [3], [-1], ["x"], [True], "0"):
            with pytest.raises(ConfigError, match="indices"):
                execute_paths({**params, "indices": indices}, store, 1)

    def test_qa_eval_payload_equals_local_evaluator(self):
        from repro.qa.scenario import FlowSpec, Scenario
        from repro.qa.search import _run_search_scenario
        from repro.serve.jobs import execute_qa_eval

        scenario = Scenario(family="flows", rate_mbps=8.0, rtt_ms=20.0,
                            qdisc="droptail", duration=2.0, seed=42,
                            flows=(FlowSpec(cca="reno"),))
        summary, payload = execute_qa_eval(
            {"scenario": scenario.to_dict()}, None, 1)
        outcome, findings = _run_search_scenario(scenario)
        assert payload == (outcome, findings)
        assert summary["scenario"] == scenario.label()
        assert summary["failed"] == bool(findings)

    def test_qa_eval_rejects_bad_scenario_docs(self):
        from repro.serve.jobs import execute_qa_eval

        for doc in (None, "x", {}, {"family": "nope"}):
            with pytest.raises(ConfigError):
                execute_qa_eval({"scenario": doc}, None, 1)
