"""Tests for the fluid (rate-based) simulation backend."""

import pytest

from repro.core.campaign import Campaign, PathSpec, run_path
from repro.errors import ConfigError
from repro.fluid import FluidModel, run_path_fluid, run_scenario_fluid
from repro.fluid.flows import make_flow_cca
from repro.qa.scenario import FlowSpec, Scenario, run_scenario
from repro.units import mbps, ms


def _probe_scenario(cross="reno", rate=20.0, rtt=20.0, qdisc="droptail",
                    duration=20.0, seed=1, backend="fluid"):
    return Scenario(family="probe", rate_mbps=rate, rtt_ms=rtt,
                    qdisc=qdisc, duration=duration, seed=seed,
                    cross_traffic=cross, backend=backend)


# -- scenario plumbing ------------------------------------------------------

def test_backend_field_validates():
    with pytest.raises(ConfigError):
        _probe_scenario(backend="quantum")


def test_to_dict_omits_default_backend():
    packet = _probe_scenario(backend="packet")
    fluid = _probe_scenario(backend="fluid")
    assert "backend" not in packet.to_dict()
    assert fluid.to_dict()["backend"] == "fluid"
    # Round-trips through from_dict either way.
    assert Scenario.from_dict(packet.to_dict()) == packet
    assert Scenario.from_dict(fluid.to_dict()) == fluid


def test_label_tags_non_default_backend():
    assert "backend" not in _probe_scenario(backend="packet").label()
    assert "backend=fluid" in _probe_scenario(backend="fluid").label()


def test_run_scenario_dispatches_to_fluid():
    outcome = run_scenario(_probe_scenario(duration=8.0))
    # The fluid model ticks at 5 ms: 8 s -> 1600 ticks, far below the
    # packet backend's event count for the same scenario.
    assert outcome.events_processed == 1600
    assert outcome.probe is not None
    assert outcome.violations == []


# -- determinism ------------------------------------------------------------

def test_fluid_scenario_fingerprint_deterministic():
    a = run_scenario(_probe_scenario(duration=10.0))
    b = run_scenario(_probe_scenario(duration=10.0))
    assert a.fingerprint() == b.fingerprint()


def test_fluid_campaign_worker_invariance():
    kwargs = dict(n_paths=3, seed=11, duration=8.0, backend="fluid")
    serial = Campaign(**kwargs).run(workers=1, store=None)
    parallel = Campaign(**kwargs).run(workers=3, store=None)
    key = lambda r: (r.spec.seed, r.verdict.contending,
                     r.verdict.mean_elasticity,
                     r.report.mean_throughput)
    assert [key(r) for r in serial.results] \
        == [key(r) for r in parallel.results]


# -- verdict spot checks (one cell per envelope class) ----------------------

def test_elastic_cell_reads_contending():
    outcome = run_scenario(_probe_scenario("reno", 20.0, 20.0))
    assert outcome.probe["contending"]


def test_inelastic_cell_reads_clean():
    outcome = run_scenario(_probe_scenario("cbr", 48.0, 20.0))
    assert not outcome.probe["contending"]


def test_idle_path_reads_clean():
    outcome = run_scenario(_probe_scenario("none", 48.0, 20.0))
    assert not outcome.probe["contending"]
    assert outcome.probe["mean_elasticity"] < 0.5


# -- flows family -----------------------------------------------------------

def test_flows_family_delivers_bytes():
    scenario = Scenario(
        family="flows", rate_mbps=24.0, rtt_ms=20.0, qdisc="droptail",
        duration=10.0, seed=2, cross_traffic="none", backend="fluid",
        flows=(FlowSpec(cca="reno"), FlowSpec(cca="cubic")))
    outcome = run_scenario(scenario)
    assert set(outcome.delivered) == {"flow-0", "flow-1"}
    assert all(v > 0 for v in outcome.delivered.values())
    capacity = mbps(24.0) * 10.0
    assert sum(outcome.delivered.values()) <= capacity * 1.05


def test_qdisc_stats_conserve_bytes():
    # Drops are removed before acceptance, so accepted = served +
    # residual exactly (the same self-consistency the packet-side
    # invariant auditor checks).
    outcome = run_scenario(_probe_scenario(duration=10.0))
    stats = outcome.qdisc_stats
    assert stats["enqueued"] == pytest.approx(
        stats["dequeued"] + stats["residual_packets"], abs=0.01)
    assert stats["drops"] >= 0.0


# -- campaign / run_path ----------------------------------------------------

def test_run_path_backend_dispatch():
    spec = PathSpec(rate_mbps=48.0, rtt_ms=20.0, qdisc="droptail",
                    cross_traffic="reno", seed=3)
    result = run_path(spec, duration=10.0, backend="fluid")
    assert result.spec == spec
    assert result.report.duration > 0
    with pytest.raises(ConfigError):
        run_path(spec, backend="quantum")


def test_campaign_backend_in_fingerprint_only_when_fluid():
    packet = Campaign(n_paths=2, seed=5, duration=8.0)
    fluid = Campaign(n_paths=2, seed=5, duration=8.0, backend="fluid")
    assert packet.fingerprint() != fluid.fingerprint()
    assert "backend" not in packet._task_config(packet.specs[0])
    assert fluid._task_config(fluid.specs[0])["backend"] == "fluid"


def test_run_path_fluid_matches_run_scenario_probe():
    spec = PathSpec(rate_mbps=20.0, rtt_ms=20.0, qdisc="droptail",
                    cross_traffic="reno", seed=1)
    result = run_path_fluid(spec, duration=20.0)
    assert result.verdict.contending


# -- model basics -----------------------------------------------------------

def test_fluid_model_rejects_empty_and_bad_dt():
    with pytest.raises(ConfigError):
        FluidModel([], mbps(10.0), 1e5)
    flow = make_flow_cca("reno", "f", ms(20.0), mbps(10.0))
    with pytest.raises(ConfigError):
        FluidModel([flow], mbps(10.0), 1e5, dt=0.0)


def test_fluid_model_is_tick_based():
    flow = make_flow_cca("reno", "f", ms(20.0), mbps(10.0))
    model = FluidModel([flow], mbps(10.0), 1e5)
    model.run(1.0)
    assert model.ticks == 200  # 1 s at the 5 ms default step
    assert model.now == pytest.approx(1.0)
    assert flow.delivered_bytes > 0
