"""The paper's core contribution: actively measuring CCA contention.

* :mod:`elasticity` -- ẑ estimation, pulse generation, FFT elasticity.
* :mod:`probe` -- the §3.2 measurement flow (Nimbus, switching off).
* :mod:`detector` -- elasticity -> contention verdicts.
* :mod:`campaign` -- fleets of probes over synthetic path populations.
* :mod:`hypothesis` -- aggregating a campaign into the paper's
  hypothesis test.
* :mod:`report` -- serializable result records.

``probe``/``campaign``/``quicklook`` are imported lazily: they pull in
:mod:`repro.cca.nimbus`, which itself imports :mod:`repro.core.elasticity`,
and an eager import here would close that cycle during initialization.
"""

from .elasticity import (ElasticityEstimator, ElasticityReading,
                         PulseGenerator, cross_traffic_estimate,
                         elasticity_series)

__all__ = [
    "ElasticityEstimator", "ElasticityReading", "PulseGenerator",
    "cross_traffic_estimate", "elasticity_series",
    "ElasticityProbe", "ProbeReport",
    "ContentionDetector", "DetectorVerdict",
    "Campaign", "CampaignResult", "PathSpec",
    "HypothesisEvaluation", "evaluate_hypothesis",
]

_LAZY = {
    "ElasticityProbe": ("repro.core.probe", "ElasticityProbe"),
    "ProbeReport": ("repro.core.probe", "ProbeReport"),
    "ContentionDetector": ("repro.core.detector", "ContentionDetector"),
    "DetectorVerdict": ("repro.core.detector", "DetectorVerdict"),
    "Campaign": ("repro.core.campaign", "Campaign"),
    "CampaignResult": ("repro.core.campaign", "CampaignResult"),
    "PathSpec": ("repro.core.campaign", "PathSpec"),
    "HypothesisEvaluation": ("repro.core.hypothesis",
                             "HypothesisEvaluation"),
    "evaluate_hypothesis": ("repro.core.hypothesis", "evaluate_hypothesis"),
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib
        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
