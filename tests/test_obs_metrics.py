"""Seed-randomized property tests for the metrics registry.

No external property-testing dependency: each property is checked
against several fixed seeds of :mod:`random`, so failures are
reproducible from the parametrized seed alone.

The merge-order test uses integer-valued observations on purpose:
counter sums and histogram totals then stay exactly representable, so
"order independent" can be asserted with exact equality instead of a
tolerance that might mask a real ordering bug.
"""

import math
import random

import pytest

from repro.errors import AnalysisError, ConfigError
from repro.obs.metrics import (Histogram, MetricsRegistry, REGISTRY,
                               default_buckets)
from repro.runtime.pool import ParallelExecutor

SEEDS = [1, 7, 42, 1337, 99991]


@pytest.mark.parametrize("seed", SEEDS)
def test_histogram_percentile_bounds_bracket_true_quantile(seed):
    rng = random.Random(seed)
    hist = Histogram("h")
    values = []
    for _ in range(rng.randrange(50, 500)):
        # Span the full bucket range, including the overflow bucket.
        value = 10.0 ** rng.uniform(-7.0, 6.0)
        values.append(value)
        hist.observe(value)
    values.sort()
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        target = max(1, math.ceil(q * len(values)))
        true_quantile = values[target - 1]
        lower, upper = hist.percentile_bounds(q)
        assert lower <= true_quantile <= upper
        assert hist.percentile(q) == upper


def test_histogram_input_validation():
    with pytest.raises(ConfigError):
        Histogram("h", buckets=[1.0, 1.0, 2.0])
    with pytest.raises(ConfigError):
        Histogram("h", buckets=[])
    hist = Histogram("h", buckets=list(default_buckets()))
    with pytest.raises(AnalysisError):
        hist.observe(float("nan"))
    with pytest.raises(AnalysisError):
        hist.percentile_bounds(0.5)  # no observations yet
    hist.observe(0.01)
    with pytest.raises(ConfigError):
        hist.percentile_bounds(1.5)


@pytest.mark.parametrize("seed", SEEDS)
def test_counter_monotone_under_random_increments(seed):
    rng = random.Random(seed)
    counter = MetricsRegistry().counter("events")
    last = 0.0
    for _ in range(300):
        counter.inc(rng.randrange(0, 10))
        assert counter.value >= last
        last = counter.value
    with pytest.raises(ConfigError):
        counter.inc(-rng.uniform(0.001, 5.0))
    assert counter.value == last  # a rejected decrement changes nothing


def _random_worker_snapshot(rng):
    reg = MetricsRegistry()
    for _ in range(rng.randrange(1, 30)):
        kind = rng.choice(["counter", "gauge", "histogram"])
        name = f"m{rng.randrange(8)}.{kind}"
        if kind == "counter":
            reg.counter(name).inc(rng.randrange(0, 100))
        elif kind == "gauge":
            reg.gauge(name).set(rng.randrange(-50, 50))
        else:
            reg.histogram(name).observe(float(rng.randrange(1, 10 ** 6)))
    return reg.snapshot()


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_is_order_independent(seed):
    rng = random.Random(seed)
    snapshots = [_random_worker_snapshot(rng)
                 for _ in range(rng.randrange(2, 6))]
    order = list(range(len(snapshots)))
    merged = []
    for _ in range(4):
        rng.shuffle(order)
        target = MetricsRegistry()
        for i in order:
            target.merge(snapshots[i])
        merged.append(target.snapshot())
    assert all(snap == merged[0] for snap in merged[1:])


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_matches_direct_aggregation(seed):
    rng = random.Random(seed)
    snapshots = [_random_worker_snapshot(rng) for _ in range(4)]
    target = MetricsRegistry()
    for snap in snapshots:
        target.merge(snap)
    result = target.snapshot()
    for name, entry in result.items():
        parts = [s[name] for s in snapshots if name in s]
        if entry["type"] == "counter":
            assert entry["value"] == sum(p["value"] for p in parts)
        elif entry["type"] == "gauge":
            assert entry["value"] == max(p["value"] for p in parts)
        else:
            assert entry["count"] == sum(p["count"] for p in parts)
            assert entry["sum"] == sum(p["sum"] for p in parts)


def test_registry_type_conflicts_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ConfigError):
        reg.gauge("x")
    reg.histogram("h", buckets=[1.0, 2.0])
    with pytest.raises(ConfigError):
        reg.histogram("h", buckets=[1.0, 3.0])


def test_pool_merges_worker_metrics():
    # End to end: ParallelExecutor returns per-worker snapshots that
    # the parent folds into the global registry; the totals must match
    # the task count no matter how the chunks were scheduled (and the
    # serial fallback must account identically).
    REGISTRY.reset()
    items = list(range(-20, 0))
    with ParallelExecutor(workers=2, chunk_size=3) as ex:
        assert ex.map(abs, items) == [abs(x) for x in items]
    snap = REGISTRY.snapshot()
    assert snap["pool.tasks"]["value"] == len(items)
    assert snap["pool.task_s"]["count"] == len(items)
