"""Golden-trace regression test.

A fixed Reno-vs-Reno dumbbell scenario is fully deterministic: same
topology, same flows, no randomness anywhere on the path.  The event
trace it produces is therefore a behavioural fingerprint of the whole
stack -- engine scheduling, qdisc admission, link serialization, loss
recovery.  This test pins the per-kind event counts and the final
metric snapshot; any change to simulation behaviour (intended or not)
shows up here as a diff of a dozen integers rather than a silently
shifted experiment result.

The digest aggregates by event *kind*, not by source: qdisc trace
names carry a process-global instance counter, so per-source keys
depend on how many qdiscs earlier tests created.
"""

from repro.cca import RenoCca
from repro.obs import capture
from repro.obs.metrics import REGISTRY
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms

#: Pinned digest for the scenario below.  If a deliberate behaviour
#: change moves these numbers, re-pin them in the same commit and say
#: why in the commit message.
GOLDEN_EVENT_COUNTS = {
    "cwnd": 3746,
    "deliver": 8285,
    "dequeue": 8286,
    "drop": 76,
    "enqueue": 8312,
    "loss": 10,
    "sim_run": 2,       # one run(): begin + end markers
    "sim_start": 1,
}

GOLDEN_METRICS = {
    "sim.clock_s": 5.0,
    "sim.events_processed": 16536.0,
    "sim.runs": 1.0,
}


def _run_scenario():
    REGISTRY.reset()
    with capture() as trace:
        sim = Simulator()
        path = dumbbell(sim, mbps(10), ms(40), buffer_multiplier=1.0)
        for i in range(2):
            conn = Connection(sim, path, f"reno-{i}", RenoCca())
            conn.sender.set_infinite_backlog()
        sim.run(until=5.0)
    snapshot = REGISTRY.snapshot()
    metrics = {name: entry["value"] for name, entry in snapshot.items()
               if entry["type"] != "histogram"}
    return trace.counts_by_kind(), metrics


def test_golden_trace_digest():
    counts, metrics = _run_scenario()
    assert counts == GOLDEN_EVENT_COUNTS
    assert metrics == GOLDEN_METRICS


def test_golden_trace_is_reproducible():
    # The digest must not depend on how often the scenario runs in one
    # process (stale state leaking between simulators would show here).
    assert _run_scenario() == _run_scenario()
