"""Random Early Detection (RED) with optional ECN marking.

Implements the classic Floyd/Jacobson gentle-RED variant: the average
queue size is an EWMA over instantaneous occupancy (with idle-time
compensation), and the drop/mark probability ramps linearly from 0 at
``min_thresh`` to ``max_p`` at ``max_thresh``, then to 1 at
``2 * max_thresh``.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from ..errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.packet import Packet
from .base import Qdisc


class RedQueue(Qdisc):
    """Gentle RED queue, thresholds expressed in packets.

    Args:
        min_thresh / max_thresh: EWMA-occupancy thresholds (packets).
        limit_packets: hard tail-drop limit.
        max_p: drop probability at ``max_thresh``.
        weight: EWMA weight for the average queue size.
        ecn: mark ECN-capable packets instead of dropping them (drops
            still happen above the hard limit or for non-ECN packets).
        mean_packet_size: used to convert idle time into virtual
            departures when updating the average across idle periods.
        seed: seed for the internal drop-decision RNG.
    """

    def __init__(self, min_thresh: float, max_thresh: float,
                 limit_packets: int, max_p: float = 0.1,
                 weight: float = 0.002, ecn: bool = False,
                 mean_packet_size: int = 1500, seed: int = 0):
        super().__init__()
        if not 0 < min_thresh < max_thresh <= limit_packets:
            raise ConfigError(
                "need 0 < min_thresh < max_thresh <= limit_packets, got "
                f"{min_thresh}, {max_thresh}, {limit_packets}")
        if not 0 < max_p <= 1:
            raise ConfigError(f"max_p must be in (0, 1]: {max_p}")
        self.min_thresh = min_thresh
        self.max_thresh = max_thresh
        self.limit_packets = limit_packets
        self.max_p = max_p
        self.weight = weight
        self.ecn = ecn
        self.mean_packet_size = mean_packet_size
        self._rng = np.random.default_rng(seed)
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self._avg = 0.0
        self._count_since_mark = -1
        self._idle_since: float | None = 0.0
        self._service_rate_hint = 0.0

    def set_service_rate_hint(self, rate_bytes_per_s: float) -> None:
        """Tell RED the link rate so idle periods decay the average."""
        self._service_rate_hint = rate_bytes_per_s

    def _update_average(self, now: float) -> None:
        if self._queue:
            self._avg += self.weight * (len(self._queue) - self._avg)
            return
        # Queue idle: decay the average by the number of packets the link
        # could have sent while idle (standard RED idle adjustment).
        if self._idle_since is not None and self._service_rate_hint > 0:
            idle = max(0.0, now - self._idle_since)
            virtual = idle * self._service_rate_hint / self.mean_packet_size
            self._avg *= (1.0 - self.weight) ** virtual
        else:
            self._avg += self.weight * (0.0 - self._avg)

    def _drop_probability(self) -> float:
        if self._avg < self.min_thresh:
            return 0.0
        if self._avg < self.max_thresh:
            frac = (self._avg - self.min_thresh) / (self.max_thresh - self.min_thresh)
            return frac * self.max_p
        if self._avg < 2 * self.max_thresh:
            # "Gentle" region: ramp from max_p to 1.
            frac = (self._avg - self.max_thresh) / self.max_thresh
            return self.max_p + frac * (1.0 - self.max_p)
        return 1.0

    def enqueue(self, packet: Packet, now: float) -> bool:
        self._update_average(now)
        self._idle_since = None
        if len(self._queue) >= self.limit_packets:
            self._count_since_mark = -1
            self._record_drop(packet, now)
            return False

        prob = self._drop_probability()
        should_act = False
        if prob >= 1.0:
            should_act = True
        elif prob > 0.0:
            # Uniformize inter-mark gaps as in the RED paper.
            self._count_since_mark += 1
            denom = 1.0 - self._count_since_mark * prob
            effective = prob / denom if denom > 0 else 1.0
            if self._rng.random() < effective:
                should_act = True
        else:
            self._count_since_mark = -1

        if should_act:
            self._count_since_mark = -1
            if self.ecn and packet.ecn_capable:
                packet.ecn_marked = True
                self._record_mark(packet, now)
            else:
                self._record_drop(packet, now)
                return False

        packet.enqueue_time = now
        self._queue.append(packet)
        self._bytes += packet.size
        self._record_enqueue(packet, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        if not self._queue:
            self._idle_since = now
        self._record_dequeue(packet, now)
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_length(self) -> int:
        return self._bytes

    @property
    def average_queue(self) -> float:
        """Current EWMA queue estimate (packets)."""
        return self._avg
