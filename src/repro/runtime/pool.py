"""Process-pool parallel map with deterministic, ordered results.

Design notes
------------

* **Ordered reassembly.**  Tasks are dispatched in chunks but results
  are always returned in submission order, so ``parallel_map(f, xs)``
  is a drop-in replacement for ``[f(x) for x in xs]``.
* **Determinism.**  The pool adds no randomness of its own: as long as
  ``fn`` is a pure function of its item (every item carries its own
  seed -- see :func:`derive_seed`), serial and parallel runs produce
  bit-for-bit identical result lists.
* **Serial fallback.**  ``workers <= 1``, a single-item workload,
  unpicklable work (closures, lambdas), an unavailable pool (restricted
  sandboxes without semaphores), or running *inside* a pool worker all
  fall back to the plain serial loop -- correctness never depends on
  the pool, so doctests, Windows ``spawn``, and CI stay correct.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import pickle
import time
from typing import Callable, Iterable, Sequence

from ..errors import ConfigError
from ..obs.metrics import REGISTRY as _METRICS

#: Environment variable consulted when no explicit worker count is given.
DEFAULT_WORKERS_ENV = "REPRO_WORKERS"

#: Environment marker set inside pool workers so nested ``parallel_map``
#: calls (a parallel sweep of parallel campaigns) degrade to serial
#: instead of forking pools from pool workers.
_IN_WORKER_ENV = "REPRO_IN_POOL_WORKER"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count.

    Precedence: the explicit ``workers`` argument, then the
    ``REPRO_WORKERS`` environment variable, then ``os.cpu_count()``.
    The result is always >= 1.
    """
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(DEFAULT_WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ConfigError(
                f"{DEFAULT_WORKERS_ENV} must be an integer: {env!r}")
    return os.cpu_count() or 1


def derive_seed(base_seed: int, index: int, name: str = "task") -> int:
    """Deterministic 63-bit child seed for task ``index``.

    Uses the same hash-derivation scheme as :mod:`repro.sim.rng` so
    child streams are independent of each other and stable across
    worker counts and Python hash randomization.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


def _auto_chunk_size(total: int, workers: int) -> int:
    """Chunk so each worker sees several chunks (load balancing) while
    amortizing IPC for large, cheap-per-item workloads."""
    return max(1, total // (workers * 8))


def _chunks(items: Sequence, size: int) -> list[Sequence]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _mark_worker() -> None:
    """Pool initializer: tag the process so nested maps stay serial."""
    os.environ[_IN_WORKER_ENV] = "1"


def _apply_timed(fn: Callable, item):
    """Run one task, recording wall time into the process registry."""
    t0 = time.perf_counter()
    result = fn(item)
    _METRICS.histogram("pool.task_s").observe(time.perf_counter() - t0)
    _METRICS.counter("pool.tasks").inc()
    return result


def _run_chunk(fn: Callable, chunk: Sequence) -> tuple[list, dict]:
    """Worker-side body: apply ``fn`` to one chunk of items.

    Returns the chunk's results plus a snapshot of the metrics the
    chunk produced in this worker process.  The worker registry is
    reset per chunk, so the parent can merge every returned snapshot
    without double counting (the merge is commutative: counters and
    histogram buckets add, gauges take the max, so reassembly order
    does not matter).
    """
    _METRICS.reset()
    results = [_apply_timed(fn, item) for item in chunk]
    return results, _METRICS.snapshot()


def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def _serial_map(fn: Callable, items: Sequence, progress) -> list:
    results = []
    total = len(items)
    for i, item in enumerate(items):
        results.append(_apply_timed(fn, item))
        if progress is not None:
            progress(i + 1, total)
    return results


class ParallelExecutor:
    """Reusable process-pool mapper.

    Args:
        workers: worker processes; ``None`` defers to
            :func:`resolve_workers` (``REPRO_WORKERS`` env var, then
            CPU count).  ``workers <= 1`` never creates a pool.
        chunk_size: items per dispatched task; ``None`` picks a size
            that gives each worker several chunks.

    Use as a context manager (or call :meth:`close`) to release the
    pool; a one-shot convenience wrapper is :func:`parallel_map`.

    >>> with ParallelExecutor(workers=1) as ex:
    ...     ex.map(abs, [-1, -2, 3])
    [1, 2, 3]
    """

    def __init__(self, workers: int | None = None,
                 chunk_size: int | None = None):
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1: {chunk_size}")
        self.chunk_size = chunk_size
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    # -- pool lifecycle --------------------------------------------------

    @property
    def serial(self) -> bool:
        """True when this executor will never use a process pool."""
        return self.workers <= 1 or os.environ.get(_IN_WORKER_ENV) == "1"

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, initializer=_mark_worker)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- mapping ---------------------------------------------------------

    def map(self, fn: Callable, items: Iterable, progress=None) -> list:
        """Apply ``fn`` to every item, returning results in order.

        ``progress``, if given, is called as ``progress(done, total)``
        with the cumulative number of completed items -- after every
        item in serial mode, after every chunk in parallel mode.

        Exceptions raised by ``fn`` propagate to the caller in both
        modes.
        """
        items = list(items)
        total = len(items)
        if total == 0:
            return []
        if (self.serial or total == 1
                or not _is_picklable(fn) or not _is_picklable(items[0])):
            return _serial_map(fn, items, progress)
        size = self.chunk_size or _auto_chunk_size(total, self.workers)
        chunks = _chunks(items, size)
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_run_chunk, fn, chunk)
                       for chunk in chunks]
        except (OSError, ValueError, RuntimeError):
            # Pool could not be created (restricted environment) --
            # correctness over speed.
            self.close()
            return _serial_map(fn, items, progress)
        try:
            if progress is not None:
                done_items = 0
                for future in concurrent.futures.as_completed(futures):
                    future.result()  # surface worker errors promptly
                    done_items += len(chunks[futures.index(future)])
                    progress(done_items, total)
            results: list = []
            for future in futures:
                chunk_results, worker_metrics = future.result()
                results.extend(chunk_results)
                _METRICS.merge(worker_metrics)
            return results
        except concurrent.futures.process.BrokenProcessPool:
            # A worker died (OOM-killed, sandbox limits): recompute
            # serially rather than failing the whole run.
            self.close()
            return _serial_map(fn, items, progress)
        except BaseException:
            for future in futures:
                future.cancel()
            raise


def parallel_map(fn: Callable, items: Iterable, workers: int | None = None,
                 chunk_size: int | None = None, progress=None) -> list:
    """One-shot :meth:`ParallelExecutor.map`.

    >>> parallel_map(abs, [-3, 1, -2], workers=1)
    [3, 1, 2]
    """
    with ParallelExecutor(workers=workers, chunk_size=chunk_size) as ex:
        return ex.map(fn, items, progress=progress)
