"""Experiment E15: Figure 2 fractions vs population size.

The paper subsampled M-Lab to 9,984 flows; a month of NDT is millions.
This experiment runs the streamed §3.1 pipeline at increasing
population sizes (default 10k → 1M) and reports the headline
possible-contention fraction with cluster-bootstrap confidence
intervals over shards -- the protocol for saying how stable the
paper's Figure 2 numbers are at the scale it sampled from, and how
much the uncertainty shrinks at full scale.

Per-flow seeding makes the populations *nested*: the 10k-flow
population is literally the first 10k flows of the 1M-flow one, so the
series isolates sample-size effects from population drift.  Memory
stays bounded at one shard regardless of size, and every size's shards
checkpoint to the store, so the big sizes resume (``--resume``) and
re-running any prefix of the series is free.
"""

from __future__ import annotations

from .. import viz
from ..ndt.stream import run_pipeline_streaming
from ..ndt.synth import PopulationModel
from .runner import ExperimentResult, Stopwatch

#: Default population-size ladder: 10k (paper scale) to 1M (M-Lab
#: monthly scale), half-decade steps.
DEFAULT_SIZES = (10_000, 31_623, 100_000, 316_228, 1_000_000)


def run(population_sizes: tuple[int, ...] = DEFAULT_SIZES,
        seed: int = 2023, chunk_size: int = 5_000,
        min_relative_shift: float = 0.25,
        confidence: float = 0.95,
        model: PopulationModel | None = None,
        workers: int | None = None,
        resume: bool = False) -> ExperimentResult:
    """Possible-contention fraction + CI at each population size.

    ``chunk_size`` sets both the memory bound and the bootstrap's
    cluster unit (every size must yield >= 2 shards).  Results are
    deterministic for any ``workers`` value; ``resume`` continues an
    interrupted ladder from its store checkpoints.
    """
    sizes = sorted(set(int(n) for n in population_sizes))
    rows = []
    with Stopwatch() as watch:
        for n_flows in sizes:
            result = run_pipeline_streaming(
                n_flows, seed=seed, model=model, chunk_size=chunk_size,
                min_relative_shift=min_relative_shift,
                workers=workers, resume=resume)
            point, ci_low, ci_high = result.fraction_ci(
                confidence=confidence)
            rows.append({
                "n_flows": n_flows,
                "shards": len(result.shards),
                "fraction_possible_contention": round(point, 5),
                "ci_low": round(ci_low, 5),
                "ci_high": round(ci_high, 5),
                "ci_width": round(ci_high - ci_low, 5),
                "fraction_filtered": round(result.fraction_filtered, 5),
            })

    parts = [
        f"Figure 2 vs population size (seed={seed}, "
        f"chunk={chunk_size}, {confidence:.0%} cluster-bootstrap CIs "
        "over shards)",
        "",
        viz.table(
            [(f"{r['n_flows']:,}", r["shards"],
              f"{r['fraction_possible_contention']:.2%}",
              f"[{r['ci_low']:.2%}, {r['ci_high']:.2%}]",
              f"{r['ci_width']:.2%}")
             for r in rows],
            header=("flows", "shards", "possible contention",
                    f"{confidence:.0%} CI", "width")),
        "",
        viz.bar_chart(
            [f"{r['n_flows']:,}" for r in rows],
            [r["ci_width"] for r in rows],
            title="CI width vs population size", fmt="{:.2%}"),
        "",
        "Populations are nested (per-flow seeding): each row extends "
        "the one above, so shrinking CIs are a pure sample-size "
        "effect.",
    ]

    first, last = rows[0], rows[-1]
    metrics = {
        "sizes": float(len(rows)),
        "max_flows": float(last["n_flows"]),
        "fraction_possible_contention":
            last["fraction_possible_contention"],
        "ci_width_smallest": first["ci_width"],
        "ci_width_largest": last["ci_width"],
    }
    for r in rows:
        metrics[f"ci_width_{r['n_flows']}"] = r["ci_width"]
    return ExperimentResult(
        experiment="fig2_scale",
        text="\n".join(parts),
        metrics=metrics,
        tables={"populations": rows},
        params={"population_sizes": list(sizes), "seed": seed,
                "chunk_size": chunk_size,
                "min_relative_shift": min_relative_shift,
                "confidence": confidence, "workers": workers},
        elapsed_s=watch.elapsed,
    )
