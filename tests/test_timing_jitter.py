"""The endpoint timing-jitter axis: seeded pacing/ACK-clock
perturbation on both backends, fingerprint back-compat, and the
oracle/shrinker integration around it."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.qa.scenario import FlowSpec, Scenario, run_scenario
from repro.sim.jitter import (ACK_DELAY_MAX_S, MAX_AMPLITUDE,
                              TimingJitter)


def _probe(backend: str, jitter: float = 0.0) -> Scenario:
    return Scenario(family="probe", rate_mbps=20.0, rtt_ms=20.0,
                    qdisc="droptail", duration=20.0, seed=1,
                    cross_traffic="none", backend=backend,
                    timing_jitter=jitter)


def _flows(backend: str, jitter: float = 0.0) -> Scenario:
    return Scenario(family="flows", rate_mbps=8.0, rtt_ms=20.0,
                    qdisc="droptail", duration=4.0, seed=1,
                    flows=(FlowSpec(cca="reno", rate_frac=0.5,
                                    user_id="a"),),
                    backend=backend, timing_jitter=jitter)


# -- the TimingJitter primitive -------------------------------------------

def test_timing_jitter_validates_amplitude():
    for bad in (0.0, -0.1, MAX_AMPLITUDE + 0.01):
        with pytest.raises(ConfigError):
            TimingJitter(bad, seed=1)
    TimingJitter(MAX_AMPLITUDE, seed=1)  # boundary is legal


def test_timing_jitter_streams_are_seeded_and_independent():
    a = [TimingJitter(0.2, seed=7).pacing_factor() for _ in range(50)]
    b = [TimingJitter(0.2, seed=7).pacing_factor() for _ in range(50)]
    assert a == b  # same seed, same stream
    c = [TimingJitter(0.2, seed=8).pacing_factor() for _ in range(50)]
    assert a != c  # seed matters
    flow = TimingJitter(0.2, seed=7, stream="flow-0")
    probe = TimingJitter(0.2, seed=7, stream="probe")
    assert [flow.pacing_factor() for _ in range(20)] \
        != [probe.pacing_factor() for _ in range(20)]


def test_timing_jitter_bounds():
    jitter = TimingJitter(0.3, seed=3)
    for _ in range(500):
        factor = jitter.pacing_factor()
        # uniform band plus the rare stall bonus
        assert 0.7 <= factor <= 1.3 + 0.3 * 8.0
        delay = jitter.ack_delay()
        assert 0.0 <= delay <= 0.3 * ACK_DELAY_MAX_S


# -- scenario integration --------------------------------------------------

def test_fingerprints_are_backward_compatible():
    # timing_jitter=0.0 must serialize exactly like a pre-jitter
    # scenario, or every corpus case and cached verdict is orphaned.
    scenario = _probe("packet")
    assert "timing_jitter" not in scenario.to_dict()
    assert Scenario.from_dict(scenario.to_dict()) == scenario
    jittered = _probe("packet", jitter=0.25)
    assert jittered.to_dict()["timing_jitter"] == 0.25
    assert Scenario.from_dict(jittered.to_dict()) == jittered
    assert "jitter=0.25" in jittered.label()


def test_scenario_rejects_out_of_range_jitter():
    for bad in (-0.1, MAX_AMPLITUDE + 0.1):
        with pytest.raises(ConfigError):
            _probe("packet", jitter=bad)


@pytest.mark.parametrize("backend", ("packet", "fluid"))
def test_jitter_changes_the_outcome_deterministically(backend):
    base = run_scenario(_probe(backend))
    jittered = run_scenario(_probe(backend, jitter=0.3))
    again = run_scenario(_probe(backend, jitter=0.3))
    assert jittered.fingerprint() == again.fingerprint()
    assert jittered.fingerprint() != base.fingerprint()


@pytest.mark.parametrize("backend", ("packet", "fluid"))
def test_jitter_applies_to_flows_family_too(backend):
    base = run_scenario(_flows(backend))
    jittered = run_scenario(_flows(backend, jitter=0.3))
    assert jittered.fingerprint() != base.fingerprint()


def test_jitter_degrades_detector_confidence_on_packet():
    # The 2BRobust effect the axis exists for: endpoint timing noise
    # drags the probe's elasticity estimate toward the threshold.
    base = run_scenario(_probe("packet"))
    jittered = run_scenario(_probe("packet", jitter=0.3))
    from repro.qa.features import detector_confidence
    assert detector_confidence(jittered) < detector_confidence(base)


# -- oracle and shrinker integration ---------------------------------------

def test_fluid_packet_agreement_oracle_skips_jittered_scenarios():
    # Fluid's rate noise is only a coarse analogue of packet-level
    # pacing jitter, so cross-backend agreement is not a property
    # there (satellite: oracle applicability gate).
    from repro.qa.oracles import FluidPacketAgreementOracle
    oracle = FluidPacketAgreementOracle()
    clean = dataclasses.replace(_probe("packet"), cross_traffic="reno")
    assert oracle.applies(clean)
    assert not oracle.applies(
        dataclasses.replace(clean, timing_jitter=0.2))


def test_shrinker_offers_jitter_removal():
    from repro.qa.shrink import _candidates
    jittered = _probe("packet", jitter=0.2)
    descriptions = [d for d, _ in _candidates(jittered)]
    assert "remove timing jitter" in descriptions
    candidates = dict(_candidates(jittered))
    assert candidates["remove timing jitter"].timing_jitter == 0.0
    assert "remove timing jitter" not in dict(_candidates(_probe("packet")))
