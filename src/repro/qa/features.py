"""The scenario feature map: coverage cells for guided search.

Coverage-guided fuzzing needs a notion of "somewhere new".  A
:class:`FeatureCell` coarsens one scenario *and its outcome* into a
tuple of categorical features -- qdisc, CCA-mix class, cross-traffic
type, load ratio, buffer depth, timing-jitter level, backend, the
shared-medium regime (queue vs CSMA/CA, bucketed by station count),
plus three outcome-derived buckets (detector-confidence, probe-share,
and queue residency) --
and the :class:`FeatureMap` keeps per-cell statistics: hit counts,
failures, and the lowest detector confidence seen.  A scenario is
interesting (and enters the search corpus) when it lands in a cell
nobody has hit before or drags a confidence minimum lower; the map
itself, serialized, is the robustness-envelope artifact's surface
(Contracts, PAPERS.md: map the region where the detector's
assumptions hold, don't just sample it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..medium.config import parse_medium
from ..sim.network import default_buffer_packets
from ..units import mbps, ms
from .scenario import Scenario, ScenarioOutcome

#: CCA behaviour classes: how a CCA reacts to congestion signals is
#: what the detector's elasticity logic keys on, not the CCA's name.
CCA_CLASSES = {
    "reno": "loss", "newreno": "loss", "cubic": "loss",
    "vegas": "delay", "copa": "delay", "ledbat": "delay",
    "bbr": "rate",
    "dctcp": "ecn",
    "cbr": "inelastic",
}

#: Jitter-amplitude bucket edges: none (0), low (<= this), high.
LOW_JITTER_MAX = 0.15

#: Confidence bucket edges (distance of mean elasticity from the
#: detector threshold): below the first edge a single perturbation
#: flips the verdict.
CONFIDENCE_EDGES = ((0.25, "critical"), (1.0, "low"), (2.5, "mid"))

#: Queue-residency occupancy edges (end-of-run residual packets over
#: the configured buffer): at or above the second edge the buffer is
#: effectively full, above the first a standing queue formed.
RESIDENCY_STANDING = 0.25
RESIDENCY_FULL = 0.9


def cca_mix_class(scenario: Scenario) -> str:
    """The scenario's CCA-mix class ("probe", one class, or "mixed")."""
    if scenario.family == "probe":
        return "probe"
    classes = {CCA_CLASSES[f.cca] for f in scenario.flows}
    if len(classes) == 1:
        return classes.pop()
    return "mixed"


def load_bucket(scenario: Scenario, outcome: ScenarioOutcome) -> str:
    """How loaded the link was, from delivered bytes vs capacity."""
    capacity = scenario.rate_mbps * 1e6 / 8.0 * scenario.duration
    ratio = outcome.total_delivered / capacity if capacity > 0 else 0.0
    if ratio < 0.25:
        return "light"
    if ratio < 0.6:
        return "moderate"
    if ratio < 0.9:
        return "heavy"
    return "saturated"


def buffer_bucket(scenario: Scenario) -> str:
    """Buffer depth relative to the BDP rule of thumb."""
    m = scenario.buffer_multiplier
    if m < 1.0:
        return "shallow"
    if m < 2.0:
        return "bdp"
    return "deep"


def jitter_bucket(scenario: Scenario) -> str:
    """Timing-jitter level: none / low / high."""
    a = scenario.timing_jitter
    if a == 0.0:
        return "none"
    if a <= LOW_JITTER_MAX:
        return "low"
    return "high"


def medium_bucket(scenario: Scenario) -> str:
    """Shared-medium regime: ``queue`` for a plain FIFO bottleneck,
    otherwise the CSMA/CA access mode bucketed by station count (the
    detector's confidence degrades with contenders, not with the exact
    count, so 3 vs 4 stations is the same cell)."""
    spec = parse_medium(scenario.medium)
    if spec is None:
        return "queue"
    if spec.n_stations <= 2:
        scale = "2"
    elif spec.n_stations <= 4:
        scale = "4"
    elif spec.n_stations <= 8:
        scale = "8"
    else:
        scale = "many"
    if spec.priority == "mixed":
        return f"csma-{scale}-prio"
    return f"csma-{scale}"


def queue_residency_bucket(scenario: Scenario,
                           outcome: ScenarioOutcome) -> str:
    """Where the bottleneck queue ended up, as an outcome feature.

    Standing queues are what separate a detector seeing *contention*
    from one seeing *its own self-induced delay*, so the end-of-run
    residual occupancy (relative to the configured buffer) is a
    coverage axis in its own right:

    * ``empty`` -- no residual and no drops: the queue drained.
    * ``transient`` -- drops happened or a small residual remains, but
      occupancy stayed under :data:`RESIDENCY_STANDING`.
    * ``standing`` -- a persistent queue holds a quarter to ~90% of
      the buffer.
    * ``full`` -- the run ended with the buffer essentially full.
    """
    buf = default_buffer_packets(mbps(scenario.rate_mbps),
                                 ms(scenario.rtt_ms),
                                 scenario.buffer_multiplier)
    stats = outcome.qdisc_stats
    occupancy = (stats.get("residual_packets", 0.0) / buf
                 if buf > 0 else 0.0)
    if occupancy >= RESIDENCY_FULL:
        return "full"
    if occupancy >= RESIDENCY_STANDING:
        return "standing"
    if occupancy > 0.0 or stats.get("drops", 0.0) > 0:
        return "transient"
    return "empty"


def detector_confidence(outcome: ScenarioOutcome,
                        threshold: float = 2.0) -> float | None:
    """Distance of the probe's mean elasticity from the verdict
    threshold (None for flows-family scenarios: no detector ran)."""
    if outcome.probe is None:
        return None
    return abs(outcome.probe.get("mean_elasticity", 0.0) - threshold)


def confidence_bucket(confidence: float | None) -> str:
    if confidence is None:
        return "n/a"
    for edge, name in CONFIDENCE_EDGES:
        if confidence < edge:
            return name
    return "high"


def probe_share_bucket(outcome: ScenarioOutcome) -> str:
    """The probe's share of delivered bytes, in 0.2-wide bins."""
    if outcome.probe is None:
        return "n/a"
    total = outcome.total_delivered
    share = outcome.delivered.get("probe", 0) / total if total else 0.0
    lo = min(4, int(share / 0.2)) * 0.2
    return f"{lo:.1f}-{lo + 0.2:.1f}"


@dataclass(frozen=True)
class FeatureCell:
    """One cell of the coverage map (all components categorical)."""

    qdisc: str
    mix: str
    cross: str
    load: str
    buffer: str
    jitter: str
    backend: str
    confidence: str
    probe_share: str
    queue: str = "empty"
    medium: str = "queue"

    def as_id(self) -> str:
        """Stable string id (the map's dict key and report row key).

        New axes append at the end, so positional consumers of older
        ids (e.g. jitter at index 5) keep working.
        """
        return "|".join((self.qdisc, self.mix, self.cross, self.load,
                         self.buffer, self.jitter, self.backend,
                         self.confidence, self.probe_share, self.queue,
                         self.medium))


def feature_cell(scenario: Scenario, outcome: ScenarioOutcome,
                 threshold: float = 2.0) -> FeatureCell:
    """Coarsen one (scenario, outcome) pair into its coverage cell."""
    return FeatureCell(
        qdisc=scenario.qdisc,
        mix=cca_mix_class(scenario),
        cross=scenario.cross_traffic,
        load=load_bucket(scenario, outcome),
        buffer=buffer_bucket(scenario),
        jitter=jitter_bucket(scenario),
        backend=scenario.backend,
        confidence=confidence_bucket(
            detector_confidence(outcome, threshold)),
        probe_share=probe_share_bucket(outcome),
        queue=queue_residency_bucket(scenario, outcome),
        medium=medium_bucket(scenario),
    )


class FeatureMap:
    """Per-cell coverage statistics for one search campaign.

    ``observe`` returns what made the observation interesting (a new
    cell, or a new per-cell confidence minimum), which is exactly the
    corpus-admission rule of :mod:`repro.qa.search`.

    Args:
        threshold: the detector's elasticity verdict threshold.
        qdisc_thresholds: optional per-qdisc overrides -- an AQM that
            reshapes elasticity readings (codel, cake) can be judged
            against its own calibrated threshold, so the envelope's
            confidence axis compares like with like across qdiscs.
    """

    def __init__(self, threshold: float = 2.0,
                 qdisc_thresholds: dict[str, float] | None = None):
        if threshold <= 0:
            raise ConfigError(f"threshold must be positive: {threshold}")
        self.threshold = threshold
        self.qdisc_thresholds: dict[str, float] = {}
        for qdisc, value in (qdisc_thresholds or {}).items():
            try:
                value = float(value)
            except (TypeError, ValueError):
                raise ConfigError(f"threshold for {qdisc!r} must be "
                                  f"a number: {value!r}")
            if value <= 0:
                raise ConfigError(f"threshold for {qdisc!r} must be "
                                  f"positive: {value}")
            self.qdisc_thresholds[str(qdisc)] = value
        self.cells: dict[str, dict] = {}

    def threshold_for(self, qdisc: str) -> float:
        """The effective verdict threshold for one qdisc."""
        return self.qdisc_thresholds.get(qdisc, self.threshold)

    def observe(self, scenario: Scenario, outcome: ScenarioOutcome,
                failed: bool = False) -> tuple[FeatureCell, bool, bool]:
        """Record one run.

        Returns:
            (cell, new_cell, new_min): the cell hit, whether it was
            previously unseen, and whether this run set a new per-cell
            detector-confidence minimum.
        """
        threshold = self.threshold_for(scenario.qdisc)
        cell = feature_cell(scenario, outcome, threshold)
        confidence = detector_confidence(outcome, threshold)
        cell_id = cell.as_id()
        stats = self.cells.get(cell_id)
        new_cell = stats is None
        if new_cell:
            stats = {"hits": 0, "failures": 0, "min_confidence": None}
            self.cells[cell_id] = stats
        stats["hits"] += 1
        if failed:
            stats["failures"] += 1
        new_min = False
        if confidence is not None:
            prior = stats["min_confidence"]
            if prior is None or confidence < prior - 1e-12:
                stats["min_confidence"] = confidence
                new_min = not new_cell
        return cell, new_cell, new_min

    @property
    def coverage(self) -> int:
        """Number of distinct cells hit."""
        return len(self.cells)

    def min_confidence(self) -> float | None:
        """The lowest detector confidence seen anywhere (None if no
        probe-family scenario ran)."""
        values = [s["min_confidence"] for s in self.cells.values()
                  if s["min_confidence"] is not None]
        return min(values) if values else None

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (cells sorted by id)."""
        return {
            "threshold": self.threshold,
            "qdisc_thresholds": dict(sorted(
                self.qdisc_thresholds.items())),
            "coverage": self.coverage,
            "min_confidence": self.min_confidence(),
            "cells": {
                cell_id: {
                    "hits": s["hits"],
                    "failures": s["failures"],
                    "min_confidence": s["min_confidence"],
                }
                for cell_id, s in sorted(self.cells.items())
            },
        }
