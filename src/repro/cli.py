"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands:

* ``repro list`` -- show available experiments.
* ``repro run fig3 [--out results/] [--smoke]`` -- run an experiment
  and print its report (optionally saving CSV/JSON artifacts).
* ``repro trace fig3 --out trace.jsonl`` -- run an experiment with the
  structured event trace streamed to JSONL.
* ``repro metrics fig3`` -- run an experiment and print the metrics
  registry (counters, gauges, histograms).
* ``repro quicklook --cross reno`` -- probe one emulated path.
* ``repro synth-ndt --flows 1000 --out ndt.jsonl`` -- write a synthetic
  NDT dataset.
* ``repro bench`` -- quick built-in performance smoke (engine, PELT,
  pipeline, campaign serial vs parallel).
* ``repro store stat|ls|gc`` -- inspect and prune the result store.
* ``repro qa fuzz|search|envelope|shrink|corpus`` -- deterministic
  scenario fuzzing against the oracle suite, coverage-guided
  adversarial search, the per-detector robustness-envelope artifact,
  failure minimization, and the committed regression corpus (see
  TESTING.md).
* ``repro serve`` -- run the always-on experiment service: an asyncio
  HTTP server accepting campaign/pipeline/sweep/qa-fuzz/qa-search/
  qa-envelope requests as JSON, with request coalescing, store-backed
  cache hits, rate limiting, and graceful drain (see SERVING.md).
* ``repro cluster status`` -- probe a federation of serve nodes and
  list local cluster-run manifests; ``repro run ... --cluster`` and
  ``repro qa search --cluster`` shard their inner work across those
  nodes and merge results back (see SERVING.md, "Cluster mode").

Machine-readable output: ``run`` / ``trace`` / ``metrics`` / ``qa
fuzz`` / ``qa corpus`` accept ``--json``, printing a single JSON
document to stdout.  Exit codes are uniform: 0 success, 1 failure
(including any :class:`repro.errors.ReproError`), 2 usage error.

Parallelism: experiments with independent inner work (the campaign,
the Figure 2 pipeline) accept ``--workers N``; without the flag the
``REPRO_WORKERS`` environment variable, then the CPU count, decides.

Caching: ``repro run`` / ``repro trace`` / ``repro metrics`` consult
the content-addressed result store (``$REPRO_STORE``, default
``~/.cache/repro``) unless ``--no-cache`` is given -- a repeated run
with identical parameters is served from disk, and an interrupted
campaign re-executes only its unfinished paths (add ``--resume`` to
also skip paths the previous run quarantined as persistently failing).
"""

from __future__ import annotations

import argparse
import sys

from . import __version__

#: Reduced parameters so every experiment finishes in seconds (CI and
#: demos); keys are experiment names, values are run() overrides.
SMOKE_PARAMS: dict[str, dict] = {
    "fig2": {"n_flows": 500},
    "fig3": {"phases": None},  # filled in below to shorten phases
    "fq_ablation": {"duration": 10.0},
    "tbf_jitter": {"duration": 8.0, "burst_sizes_kb": (15.0, 250.0)},
    "subpacket": {"duration": 40.0, "n_flows": 8},
    "fairness_matrix": {"duration": 10.0,
                        "ccas": ("reno", "cubic", "bbr")},
    "campaign_eval": {"n_paths": 8, "duration": 15.0},
    "access_link": {"duration": 3.0},
    "tslp_vs_elasticity": {"duration": 12.0},
    "bwe_isolation": {"duration": 8.0},
    "cellular_robustness": {"duration": 20.0,
                            "volatilities": (0.0, 0.1)},
    "envelope": {"backend": "fluid"},
    "robustness": {"budget": 40},
    "medium_contention": {"backend": "fluid", "duration": 10.0,
                          "mediums": ("queue", "csma-2", "csma-4")},
    "fig2_scale": {"population_sizes": (400, 1000),
                   "chunk_size": 100},
}


def _smoke_overrides(name: str) -> dict:
    params = dict(SMOKE_PARAMS.get(name, {}))
    if name == "fig3":
        from .traffic.mix import FIGURE3_PHASES, Phase
        params["phases"] = tuple(Phase(p.name, 15.0)
                                 for p in FIGURE3_PHASES)
    return params


def _json_default(obj):
    """JSON fallback for numpy scalars and other numerics."""
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def _print_json(payload: dict) -> None:
    import json
    print(json.dumps(payload, indent=2, sort_keys=True,
                     default=_json_default))


def cmd_list(args) -> int:
    """``repro list``: print the experiment registry."""
    from .experiments import EXPERIMENTS
    for name, fn in sorted(EXPERIMENTS.items()):
        doc = (sys.modules[fn.__module__].__doc__ or "").strip()
        first = doc.splitlines()[0] if doc else ""
        print(f"{name:16s} {first}")
    return 0


def _resolve_experiment(args):
    """Map CLI args to ``(run_fn, params)``; None when unknown.

    Shared by ``run``, ``trace``, and ``metrics``: handles smoke
    overrides and the optional ``--seed`` / ``--workers`` /
    ``--resume`` passthrough (silently meaningful only for experiments
    that accept them).
    """
    from .experiments import EXPERIMENTS
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return None
    import inspect
    run_fn = EXPERIMENTS[args.experiment]
    params = _smoke_overrides(args.experiment) if args.smoke else {}
    accepted = inspect.signature(run_fn).parameters
    if getattr(args, "seed", None) is not None:
        if "seed" in accepted:
            params["seed"] = args.seed
        else:
            print(f"note: {args.experiment} takes no seed; ignoring",
                  file=sys.stderr)
    if getattr(args, "workers", None) is not None:
        if "workers" in accepted:
            params["workers"] = args.workers
        else:
            print(f"note: {args.experiment} takes no workers; ignoring",
                  file=sys.stderr)
    if getattr(args, "resume", False):
        if "resume" in accepted:
            params["resume"] = True
        else:
            print(f"note: {args.experiment} takes no resume; ignoring",
                  file=sys.stderr)
    if getattr(args, "backend", None) is not None:
        if "backend" in accepted:
            params["backend"] = args.backend
        else:
            print(f"note: {args.experiment} takes no backend; ignoring",
                  file=sys.stderr)
    if getattr(args, "medium", None) is not None:
        if "medium" in accepted:
            params["medium"] = args.medium
        elif "mediums" in accepted:
            # Sweep experiments (E16) keep their queue control cells.
            params["mediums"] = tuple(dict.fromkeys(
                ("queue", args.medium)))
        else:
            print(f"note: {args.experiment} takes no medium; ignoring",
                  file=sys.stderr)
    if getattr(args, "cluster", None):
        if "cluster" in accepted:
            params["cluster"] = args.cluster
        else:
            print(f"note: {args.experiment} takes no cluster; ignoring",
                  file=sys.stderr)
    if getattr(args, "flows", None) is not None:
        if "n_flows" in accepted:
            params["n_flows"] = args.flows
        else:
            print(f"note: {args.experiment} takes no flows; ignoring",
                  file=sys.stderr)
    if getattr(args, "chunk_size", None) is not None:
        if "chunk_size" in accepted:
            params["chunk_size"] = args.chunk_size
        else:
            print(f"note: {args.experiment} takes no chunk size; "
                  "ignoring", file=sys.stderr)
    return run_fn, params


def _parse_qdisc_thresholds(pairs) -> dict[str, float] | None:
    """Parse repeated ``--qdisc-threshold name=value`` flags."""
    if not pairs:
        return None
    from .errors import ConfigError
    out: dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ConfigError(f"bad --qdisc-threshold {pair!r} "
                              "(expected qdisc=value)")
        try:
            out[name] = float(value)
        except ValueError:
            raise ConfigError(f"bad --qdisc-threshold {pair!r}: "
                              f"{value!r} is not a number")
    return out


def _cli_store(args):
    """The store the command should use (None when ``--no-cache``)."""
    if getattr(args, "no_cache", False):
        return None
    from .store import ArtifactStore
    return ArtifactStore()


def _experiment_key(name: str, params: dict) -> str:
    """Store key memoizing a whole experiment run.

    ``workers`` is excluded: the determinism contract makes results
    worker-count invariant, so a run at ``--workers 8`` can serve the
    same config at ``--workers 1``.  ``cluster`` likewise: a clustered
    campaign is byte-identical to a local one, so either can serve
    the other.
    """
    from .store import fingerprint
    payload = {k: v for k, v in params.items()
               if k not in ("workers", "resume", "cluster")}
    return fingerprint({"experiment": name, "params": payload},
                       kind="experiment")


def cmd_run(args) -> int:
    """``repro run <experiment>``: run and print one experiment."""
    resolved = _resolve_experiment(args)
    if resolved is None:
        return 2
    run_fn, params = resolved
    from .store import using_store
    store = _cli_store(args)
    cached = False
    with using_store(store):
        result = None
        key = None
        if store is not None:
            key = _experiment_key(args.experiment, params)
            result = store.get(key)
            cached = result is not None
        if result is None:
            result = run_fn(**params)
            if store is not None and key is not None:
                store.put(key, result, kind="experiment",
                          label=args.experiment)
    written = []
    prior = False
    if args.out:
        from .obs.metrics import REGISTRY
        if len(REGISTRY):
            result.attachments.setdefault("metrics_registry",
                                          REGISTRY.snapshot())
        from pathlib import Path
        prior = (Path(args.out) / result.experiment
                 / "report.txt").exists()
        written = result.save(args.out, force=args.force)
    if args.json:
        _print_json({"experiment": result.experiment,
                     "metrics": dict(result.metrics),
                     "params": result.params,
                     "elapsed_s": result.elapsed_s,
                     "cached": cached,
                     "written": [str(p) for p in written]})
        return 0
    print(result.text)
    tag = " (cached)" if cached else ""
    print(f"\n[{result.experiment} finished in "
          f"{result.elapsed_s:.1f}s{tag}]")
    for path in written:
        print(f"wrote {path}")
    if prior and not args.force:
        print(f"note: {args.out} already held a "
              f"{result.experiment} result; the new files were "
              "versioned alongside it (use --force to overwrite "
              "in place)")
    return 0


def cmd_trace(args) -> int:
    """``repro trace <experiment>``: run with event tracing to JSONL."""
    resolved = _resolve_experiment(args)
    if resolved is None:
        return 2
    run_fn, params = resolved
    from .obs.bus import JsonlTraceWriter
    from .store import using_store
    kinds = args.kinds.split(",") if args.kinds else None
    with JsonlTraceWriter(args.out, kinds=kinds) as writer, \
            using_store(_cli_store(args)):
        result = run_fn(**params)
    if args.json:
        _print_json({"experiment": result.experiment,
                     "out": args.out,
                     "events": writer.count,
                     "counts": dict(writer.counts)})
        return 0
    print(f"{result.experiment}: wrote {writer.count} events "
          f"to {args.out}")
    for kind, n in sorted(writer.counts.items()):
        print(f"  {kind:10s} {n:>10d}")
    return 0


def cmd_metrics(args) -> int:
    """``repro metrics <experiment>``: run and print the metrics registry."""
    resolved = _resolve_experiment(args)
    if resolved is None:
        return 2
    run_fn, params = resolved
    from .obs.metrics import REGISTRY
    from .store import using_store
    REGISTRY.reset()
    with using_store(_cli_store(args)):
        result = run_fn(**params)
    snapshot = REGISTRY.snapshot()
    if args.json:
        _print_json({"experiment": result.experiment,
                     "metrics_registry": snapshot})
        if args.out:
            result.attachments["metrics_registry"] = snapshot
            result.save(args.out)
        return 0
    for name, entry in snapshot.items():
        if entry["type"] == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            print(f"{name:32s} histogram n={count} mean={mean:.6g}")
        else:
            print(f"{name:32s} {entry['type']} {entry['value']:.6g}")
    if not snapshot:
        print("(no metrics recorded)")
    if args.out:
        result.attachments["metrics_registry"] = snapshot
        written = result.save(args.out)
        for path in written:
            print(f"wrote {path}")
    return 0


def cmd_quicklook(args) -> int:
    """``repro quicklook``: probe one emulated path and print verdicts."""
    from .core.quicklook import run_quicklook
    result = run_quicklook(cross_traffic=args.cross,
                           duration=args.duration, seed=args.seed or 0,
                           medium=args.medium)
    print(f"cross traffic:     {result.cross_traffic}")
    print(f"medium:            {args.medium}")
    print(f"mean elasticity:   {result.mean_elasticity:.2f}")
    print(f"contending:        {result.verdict} ({result.category})")
    print(f"probe throughput:  {result.probe_throughput_mbps:.1f} Mbit/s")
    return 0


def cmd_bench(args) -> int:
    """``repro bench``: built-in quick performance smoke."""
    from .benchtool import render, run_quick_bench
    rows = run_quick_bench(workers=args.workers, full=args.full)
    print(render(rows))
    failed = [r.name for r in rows if not r.ok]
    if failed:
        print(f"self-checks FAILED: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover


def cmd_store(args) -> int:
    """``repro store stat|ls|gc``: inspect and prune the result store."""
    import time

    from .store import ArtifactStore
    store = ArtifactStore(args.root)
    if args.store_command == "stat":
        stat = store.stat()
        print(f"store root:    {stat['root']}")
        print(f"entries:       {stat['entries']}")
        print(f"size:          {_human_bytes(stat['bytes'])}")
        print(f"lifetime hits: {stat['hits']}  misses: "
              f"{stat['misses']}")
        for kind, bucket in sorted(stat["by_kind"].items()):
            print(f"  {kind:12s} {bucket['entries']:>6d} entries  "
                  f"{_human_bytes(bucket['bytes'])}")
        checkpoints = sorted((store.root / "checkpoints").glob("*.json"))
        if checkpoints:
            import json
            print(f"checkpoints:   {len(checkpoints)}")
            for path in checkpoints:
                try:
                    with open(path) as f:
                        manifest = json.load(f)
                except (OSError, ValueError):
                    continue
                print(f"  {path.stem[:12]}  {manifest.get('status')}  "
                      f"done={len(manifest.get('done', {}))}"
                      f"/{manifest.get('total', 0)}  "
                      f"failed={len(manifest.get('failed', {}))}")
        return 0
    if args.store_command == "ls":
        entries = sorted(store.entries().items(),
                         key=lambda kv: kv[1]["last_access"],
                         reverse=True)
        if args.kind:
            entries = [(k, e) for k, e in entries
                       if e["kind"] == args.kind]
        now = time.time()
        print(f"{'key':12s}  {'kind':10s}  {'size':>10s}  "
              f"{'hits':>5s}  {'age':>8s}  label")
        for key, entry in entries[:args.limit]:
            age_s = max(0.0, now - entry["created"])
            age = (f"{age_s / 86400:.1f}d" if age_s >= 86400
                   else f"{age_s / 3600:.1f}h" if age_s >= 3600
                   else f"{age_s:.0f}s")
            print(f"{key[:12]}  {entry['kind']:10s}  "
                  f"{_human_bytes(entry['size']):>10s}  "
                  f"{entry['hits']:>5d}  {age:>8s}  {entry['label']}")
        if len(entries) > args.limit:
            print(f"... and {len(entries) - args.limit} more "
                  f"(--limit to see them)")
        return 0
    if args.store_command == "gc":
        if args.max_age_days is None and args.max_bytes is None:
            print("gc needs --max-age-days and/or --max-bytes",
                  file=sys.stderr)
            return 2
        evicted, freed = store.prune(
            max_age_s=(None if args.max_age_days is None
                       else args.max_age_days * 86400.0),
            max_bytes=args.max_bytes)
        print(f"evicted {evicted} entries, freed {_human_bytes(freed)}")
        return 0
    print(f"unknown store command {args.store_command!r}",
          file=sys.stderr)  # pragma: no cover
    return 2  # pragma: no cover


def cmd_qa_fuzz(args) -> int:
    """``repro qa fuzz``: run a budgeted scenario-fuzzing campaign.

    Stdout carries only the deterministic verdict report (identical
    across reruns of the same seed/budget, cache hits included);
    timing and cache statistics go to stderr.  Failures are shrunk to
    minimal repros and written into ``--corpus-out`` for triage.
    """
    import time as _time

    from .qa.corpus import case_for, save_case
    from .qa.fuzz import run_fuzz
    from .qa.oracles import ORACLES
    from .qa.scenario import run_scenario
    from .qa.shrink import shrink

    t0 = _time.time()
    report = run_fuzz(args.budget, seed=args.seed,
                      store=_cli_store(args),
                      pool_check=not args.no_pool_check)
    if args.json:
        _print_json({
            "seed": report.seed,
            "budget": report.budget,
            "passed": report.budget - len(report.failures),
            "cache_hits": report.cache_hits,
            "failures": [{"index": v.index, "label": v.label,
                          "findings": [str(f) for f in v.findings]}
                         for v in report.failures]})
    else:
        print(report.render())
    print(f"[{_time.time() - t0:.1f}s, {report.cache_hits} cached "
          f"verdicts]", file=sys.stderr)
    failures = report.failures
    if not failures:
        return 0
    if not args.no_shrink:
        by_name = {o.name: o for o in ORACLES}
        created = _time.strftime("%Y-%m-%d")
        for verdict in failures[:args.max_shrink]:
            oracle = by_name.get(verdict.findings[0].oracle)
            if oracle is None:  # synthetic finding (pool-equivalence)
                print(f"not shrinkable: {verdict.findings[0]}",
                      file=sys.stderr)
                continue
            from .qa.fuzz import sample_scenario
            scenario = sample_scenario(verdict.index, args.seed)
            print(f"shrinking [{verdict.index}] {verdict.label} "
                  f"({oracle.name})...", file=sys.stderr)
            result = shrink(scenario, oracle, run_scenario)
            case = case_for(
                result.scenario, oracle.name,
                origin=(f"fuzz seed={args.seed} index={verdict.index} "
                        f"(shrunk, {result.runs} runs)"),
                created=created)
            path = save_case(case, args.corpus_out)
            print(f"  -> {path} ({len(result.steps)} shrink steps: "
                  f"{'; '.join(result.steps) or 'already minimal'})",
                  file=sys.stderr)
    return 1


def cmd_qa_search(args) -> int:
    """``repro qa search``: coverage-guided adversarial search.

    Stdout carries only the deterministic search report (a pure
    function of seed/budget/threshold, bit-identical for any worker
    count); timing goes to stderr.  Failures that reproduced on the
    packet backend are shrunk and written into ``--corpus-out``; the
    exit code is 1 only when at least one failure reproduced.
    """
    import time as _time

    from .qa.search import promote_failure, run_search

    qdisc_thresholds = _parse_qdisc_thresholds(
        getattr(args, "qdisc_threshold", None))
    t0 = _time.time()
    if getattr(args, "cluster", None):
        from .cluster import run_clustered_search
        report = run_clustered_search(
            args.budget, args.cluster, seed=args.seed,
            threshold=args.threshold, store=_cli_store(args),
            qdisc_thresholds=qdisc_thresholds)
    else:
        report = run_search(args.budget, seed=args.seed,
                            workers=args.workers,
                            threshold=args.threshold,
                            qdisc_thresholds=qdisc_thresholds)
    if args.json:
        _print_json(report.to_dict())
    else:
        print(report.render())
    print(f"[{_time.time() - t0:.1f}s]", file=sys.stderr)
    reproduced = report.reproduced_failures
    if reproduced and not args.no_shrink:
        created = _time.strftime("%Y-%m-%d")
        for failure in reproduced[:args.max_shrink]:
            print(f"shrinking [{failure.oracle}] "
                  f"{failure.scenario.label()}...", file=sys.stderr)
            case, runs = promote_failure(failure, args.seed, created,
                                         directory=args.corpus_out)
            print(f"  -> {args.corpus_out}/{case.name}.json "
                  f"({runs} shrink runs)", file=sys.stderr)
    return 1 if reproduced else 0


def cmd_qa_envelope(args) -> int:
    """``repro qa envelope``: the robustness-envelope artifact.

    Produces (or fetches from the store) the feature-cell
    pass/fail/confidence surface for the default detector config.
    ``--out`` writes the artifact JSON; ``--check BASELINE`` diffs it
    against a committed baseline and exits 1 on any cell that passed
    in the baseline but fails now.
    """
    import json as _json
    import time as _time

    from .qa.search import diff_envelopes, run_envelope

    t0 = _time.time()
    artifact, cached = run_envelope(
        args.budget, seed=args.seed, store=_cli_store(args),
        workers=args.workers, threshold=args.threshold,
        qdisc_thresholds=_parse_qdisc_thresholds(
            getattr(args, "qdisc_threshold", None)))
    if args.out:
        with open(args.out, "w") as fh:
            _json.dump(artifact, fh, indent=2, sort_keys=True,
                       default=_json_default)
            fh.write("\n")
    if args.json:
        _print_json(artifact)
    else:
        cells = artifact["cells"]
        failing = sum(1 for s in cells.values() if not s["pass"])
        print(f"qa envelope seed={artifact['seed']} "
              f"budget={artifact['budget']} suite={artifact['suite']}")
        print(f"  detector: " + " ".join(
            f"{k}={v}" for k, v in sorted(
                artifact["detector"].items())))
        print(f"  coverage: {artifact['coverage']} cells "
              f"({artifact['coverage'] - failing} pass, {failing} fail)")
        if artifact["min_confidence"] is not None:
            print(f"  lowest detector confidence: "
                  f"{artifact['min_confidence']:.3f}")
        print(f"  fingerprint: {artifact['fingerprint']}")
    print(f"[{_time.time() - t0:.1f}s"
          f"{', cached' if cached else ''}]", file=sys.stderr)
    if args.check:
        with open(args.check) as fh:
            baseline = _json.load(fh)
        delta = diff_envelopes(baseline, artifact)
        for cell in delta["regressions"]:
            print(f"REGRESSION: {cell} passed in baseline, fails now")
        for cell in delta["fixed"]:
            print(f"fixed: {cell}")
        print(f"envelope check: {len(delta['regressions'])} regressions, "
              f"{len(delta['fixed'])} fixed, "
              f"{len(delta['new_cells'])} new cells, "
              f"{len(delta['lost_cells'])} lost cells")
        if delta["regressions"]:
            return 1
    return 0


def cmd_qa_shrink(args) -> int:
    """``repro qa shrink CASE.json``: re-minimize a corpus case."""
    import time as _time

    from .qa.corpus import case_for, load_case, save_case
    from .qa.oracles import ORACLES
    from .qa.scenario import run_scenario
    from .qa.shrink import shrink

    case = load_case(args.case)
    oracle_name = args.oracle or case.oracle
    by_name = {o.name: o for o in ORACLES}
    if oracle_name not in by_name:
        print(f"unknown oracle {oracle_name!r}; known: "
              f"{', '.join(sorted(by_name))}", file=sys.stderr)
        return 2
    result = shrink(case.scenario, by_name[oracle_name], run_scenario)
    print(f"{result.runs} runs, {len(result.steps)} steps")
    for step in result.steps:
        print(f"  - {step}")
    print(result.scenario.label())
    out = args.out or args.case.rsplit("/", 1)[0] or "."
    new_case = case_for(result.scenario, oracle_name,
                        origin=f"re-shrunk from {case.name}",
                        created=_time.strftime("%Y-%m-%d"))
    path = save_case(new_case, out)
    print(f"wrote {path}")
    return 0


def cmd_qa_corpus(args) -> int:
    """``repro qa corpus``: list (and optionally replay) the corpus."""
    from .qa.corpus import load_corpus, replay_case

    cases = load_corpus(args.dir)
    if not cases and not args.json:
        print(f"no corpus cases under {args.dir}")
        return 0
    failed = 0
    rows = []
    for case in cases:
        findings = []
        if args.replay:
            _, findings = replay_case(case)
            failed += bool(findings)
        rows.append({"name": case.name, "oracle": case.oracle,
                     "label": case.scenario.label(),
                     "findings": [str(f) for f in findings]})
    if args.json:
        _print_json({"dir": args.dir, "replayed": args.replay,
                     "passed": len(cases) - failed, "total": len(cases),
                     "cases": rows})
        return 1 if failed else 0
    for row in rows:
        line = f"{row['name']}  oracle={row['oracle']}  {row['label']}"
        if args.replay:
            status = "FAIL" if row["findings"] else "pass"
            print(f"[{status}] {line}")
            for finding in row["findings"]:
                print(f"    ! {finding}")
        else:
            print(line)
    if args.replay:
        print(f"{len(cases) - failed}/{len(cases)} corpus cases pass")
    return 1 if failed else 0


def cmd_serve(args) -> int:
    """``repro serve``: run the always-on experiment service."""
    import asyncio

    from .serve.server import serve_main

    store = _cli_store(args)
    clean = asyncio.run(serve_main(
        host=args.host, port=args.port, store=store,
        queue_depth=args.queue_depth, concurrency=args.concurrency,
        job_workers=args.job_workers, timeout_s=args.job_timeout,
        rate=args.rate, burst=args.burst,
        drain_grace_s=args.drain_grace))
    return 0 if clean else 1


def cmd_cluster(args) -> int:
    """``repro cluster status``: probe every node, list run manifests."""
    from .cluster import (Membership, collect_metrics, list_journals,
                          parse_cluster)
    from .serve.client import ServeClient
    from .store import ArtifactStore

    membership = Membership(parse_cluster(args.nodes))
    membership.tick()
    rows = membership.status()
    journals = list_journals(ArtifactStore(args.root))
    if args.json:
        payload = {"nodes": rows, "journals": journals}
        if args.metrics:
            payload["metrics"] = collect_metrics(
                [ServeClient(n.host, n.port, timeout=10.0,
                             connect_timeout=2.0)
                 for n in membership.nodes])
        _print_json(payload)
        return 0 if membership.live() else 1
    for row in rows:
        health = row["health"]
        extra = ""
        if health:
            extra = (f"  queued={health.get('queued', '?')} "
                     f"running={health.get('running', '?')} "
                     f"jobs={health.get('jobs', '?')}")
        print(f"{row['node']:24s} {row['state']:9s}{extra}")
    live = len(membership.live())
    print(f"{live}/{len(membership.nodes)} nodes live")
    if journals:
        print("cluster runs (local journal):")
        for row in journals:
            counts = " ".join(f"{k}={v}" for k, v
                              in row["by_status"].items())
            print(f"  {row['run'][:16]}  {row['status']:9s} "
                  f"{row['tasks']} tasks  {counts}")
    if args.metrics:
        merged = collect_metrics(
            [ServeClient(n.host, n.port, timeout=10.0,
                         connect_timeout=2.0)
             for n in membership.nodes])
        print("merged cluster metrics:")
        for name, entry in sorted(merged.items()):
            if entry["type"] == "histogram":
                count = entry["count"]
                mean = entry["sum"] / count if count else 0.0
                print(f"  {name:40s} histogram n={count} "
                      f"mean={mean:.6g}")
            else:
                print(f"  {name:40s} {entry['type']} "
                      f"{entry['value']:.6g}")
    return 0 if live else 1


def cmd_synth_ndt(args) -> int:
    """``repro synth-ndt``: write a synthetic NDT dataset as JSONL."""
    from .ndt.synth import SyntheticNdtGenerator
    dataset = SyntheticNdtGenerator(seed=args.seed or 0) \
        .generate(args.flows)
    dataset.save_jsonl(args.out)
    print(f"wrote {len(dataset)} records to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'How I Learned to Stop Worrying "
                     "About CCA Contention' (HotNets '23)"))
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments")
    p_list.set_defaults(fn=cmd_list)

    def add_cache_flags(p, with_resume: bool = True):
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the result store entirely")
        if with_resume:
            p.add_argument("--resume", action="store_true",
                           help="resume an interrupted campaign from "
                                "its checkpoint manifest (skip paths "
                                "it quarantined as failing)")

    def add_json_flag(p):
        p.add_argument("--json", action="store_true",
                       help="print one machine-readable JSON document "
                            "to stdout instead of the report text")

    p_run = sub.add_parser("run", help="run an experiment")
    p_run.add_argument("experiment")
    p_run.add_argument("--out", help="directory for CSV/JSON artifacts")
    p_run.add_argument("--force", action="store_true",
                       help="overwrite existing results under --out "
                            "instead of versioning them")
    p_run.add_argument("--smoke", action="store_true",
                       help="reduced parameters, seconds not minutes")
    p_run.add_argument("--seed", type=int)
    p_run.add_argument("--workers", type=int,
                       help="worker processes for parallel experiments "
                            "(default: $REPRO_WORKERS, then CPU count)")
    p_run.add_argument("--backend", choices=("packet", "fluid"),
                       help="simulation backend for experiments that "
                            "accept one (fluid = rate-based fast path, "
                            "20-50x faster; see DESIGN.md)")
    p_run.add_argument("--medium", metavar="MEDIUM",
                       help="bottleneck access regime for experiments "
                            "that accept one: 'queue' (default) or "
                            "'csma-<n>[-prio]' for a CSMA/CA shared "
                            "medium with n stations (see DESIGN.md)")
    p_run.add_argument("--cluster", metavar="NODES",
                       help="shard the experiment's inner work across "
                            "repro serve nodes (host1:8765,host2,...) "
                            "and merge results into the local store; "
                            "byte-identical to a local run "
                            "(see SERVING.md)")
    p_run.add_argument("--flows", type=int,
                       help="population size for flow-count experiments "
                            "(fig2: above 20k flows the run streams "
                            "out of core in bounded memory)")
    p_run.add_argument("--chunk-size", type=int, dest="chunk_size",
                       help="flows per shard for streamed runs -- the "
                            "memory and checkpoint/resume unit")
    add_cache_flags(p_run)
    add_json_flag(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="run an experiment with event tracing to JSONL")
    p_trace.add_argument("experiment")
    p_trace.add_argument("--out", default="trace.jsonl",
                         help="JSONL output path (default: trace.jsonl)")
    p_trace.add_argument("--kinds",
                         help="comma-separated event kinds to keep "
                              "(default: all)")
    p_trace.add_argument("--smoke", action="store_true",
                         help="reduced parameters, seconds not minutes")
    p_trace.add_argument("--seed", type=int)
    p_trace.add_argument("--workers", type=int)
    p_trace.add_argument("--backend", choices=("packet", "fluid"))
    p_trace.add_argument("--medium", metavar="MEDIUM")
    p_trace.add_argument("--flows", type=int)
    p_trace.add_argument("--chunk-size", type=int, dest="chunk_size")
    add_cache_flags(p_trace)
    add_json_flag(p_trace)
    p_trace.set_defaults(fn=cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="run an experiment and print the metrics registry")
    p_metrics.add_argument("experiment")
    p_metrics.add_argument("--out",
                           help="directory for report + registry snapshot")
    p_metrics.add_argument("--smoke", action="store_true",
                           help="reduced parameters, seconds not minutes")
    p_metrics.add_argument("--seed", type=int)
    p_metrics.add_argument("--workers", type=int)
    p_metrics.add_argument("--backend", choices=("packet", "fluid"))
    p_metrics.add_argument("--medium", metavar="MEDIUM")
    p_metrics.add_argument("--flows", type=int)
    p_metrics.add_argument("--chunk-size", type=int, dest="chunk_size")
    add_cache_flags(p_metrics)
    add_json_flag(p_metrics)
    p_metrics.set_defaults(fn=cmd_metrics)

    p_store = sub.add_parser(
        "store", help="inspect and prune the result store")
    p_store.add_argument("--root",
                         help="store directory (default: $REPRO_STORE, "
                              "then ~/.cache/repro)")
    store_sub = p_store.add_subparsers(dest="store_command",
                                       required=True)
    store_sub.add_parser("stat", help="totals, hit rates, checkpoints")
    p_store_ls = store_sub.add_parser("ls", help="list store entries")
    p_store_ls.add_argument("--kind",
                            help="only entries of this kind "
                                 "(path, sweep, experiment, fig2)")
    p_store_ls.add_argument("--limit", type=int, default=30)
    p_store_gc = store_sub.add_parser(
        "gc", help="evict by age and/or LRU byte budget")
    p_store_gc.add_argument("--max-age-days", type=float,
                            help="evict entries not accessed in this "
                                 "many days")
    p_store_gc.add_argument("--max-bytes", type=int,
                            help="then evict least-recently-used "
                                 "entries down to this budget")
    p_store.set_defaults(fn=cmd_store)

    p_bench = sub.add_parser(
        "bench", help="quick built-in performance smoke")
    p_bench.add_argument("--workers", type=int,
                         help="worker processes for the parallel rows")
    p_bench.add_argument("--full", action="store_true",
                         help="paper-scale sizes (minutes, not seconds)")
    p_bench.set_defaults(fn=cmd_bench)

    p_quick = sub.add_parser("quicklook",
                             help="probe one emulated path")
    p_quick.add_argument("--cross", default="reno",
                         help="cross traffic type (reno, bbr, video, "
                              "poisson, cbr, none)")
    p_quick.add_argument("--duration", type=float, default=30.0)
    p_quick.add_argument("--seed", type=int)
    p_quick.add_argument("--medium", default="queue", metavar="MEDIUM",
                         help="bottleneck access regime: 'queue' "
                              "(default) or 'csma-<n>[-prio]' for a "
                              "CSMA/CA shared medium with n stations")
    p_quick.set_defaults(fn=cmd_quicklook)

    p_qa = sub.add_parser(
        "qa", help="simulator QA: fuzz, shrink, regression corpus")
    qa_sub = p_qa.add_subparsers(dest="qa_command", required=True)
    p_fuzz = qa_sub.add_parser(
        "fuzz", help="run a budgeted scenario-fuzzing campaign")
    p_fuzz.add_argument("--budget", type=int, default=200,
                        help="number of scenarios to sample and judge")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (the scenario stream is a "
                             "pure function of it)")
    p_fuzz.add_argument("--no-cache", action="store_true",
                        help="skip the verdict cache")
    p_fuzz.add_argument("--corpus-out", default="qa-failures",
                        help="directory for shrunk failing scenarios")
    p_fuzz.add_argument("--max-shrink", type=int, default=5,
                        help="max failures to shrink after the campaign")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report failures without shrinking them")
    p_fuzz.add_argument("--no-pool-check", action="store_true",
                        help="skip the worker-equivalence stage")
    add_json_flag(p_fuzz)
    p_fuzz.set_defaults(fn=cmd_qa_fuzz)
    p_search = qa_sub.add_parser(
        "search", help="coverage-guided adversarial scenario search")
    p_search.add_argument("--budget", type=int, default=200,
                          help="candidate scenarios to evaluate")
    p_search.add_argument("--seed", type=int, default=0,
                          help="campaign seed (the report is a pure "
                               "function of seed/budget/threshold)")
    p_search.add_argument("--workers", type=int,
                          help="evaluation parallelism (wall-clock "
                               "only; output is worker-count invariant)")
    p_search.add_argument("--threshold", type=float, default=2.0,
                          help="detector threshold the confidence "
                               "buckets center on")
    p_search.add_argument("--corpus-out", default="qa-failures",
                          help="directory for shrunk reproduced "
                               "failures")
    p_search.add_argument("--max-shrink", type=int, default=5,
                          help="max failures to shrink after the search")
    p_search.add_argument("--no-shrink", action="store_true",
                          help="report failures without shrinking them")
    p_search.add_argument("--cluster", metavar="NODES",
                          help="evaluate candidates across repro serve "
                               "nodes (host1:8765,...); the report "
                               "stays byte-identical to a local run")
    p_search.add_argument("--qdisc-threshold", action="append",
                          metavar="QDISC=VALUE",
                          help="per-qdisc detector-threshold override "
                               "for the confidence axis (repeatable)")
    add_json_flag(p_search)
    p_search.set_defaults(fn=cmd_qa_search)
    p_envelope = qa_sub.add_parser(
        "envelope", help="produce the robustness-envelope artifact")
    p_envelope.add_argument("--budget", type=int, default=200,
                            help="search budget behind the envelope")
    p_envelope.add_argument("--seed", type=int, default=0)
    p_envelope.add_argument("--workers", type=int,
                            help="evaluation parallelism")
    p_envelope.add_argument("--threshold", type=float, default=2.0,
                            help="detector threshold under test")
    p_envelope.add_argument("--no-cache", action="store_true",
                            help="recompute even if the store has a "
                                 "matching envelope")
    p_envelope.add_argument("--out",
                            help="write the artifact JSON to this file")
    p_envelope.add_argument("--check", metavar="BASELINE",
                            help="diff against a baseline envelope "
                                 "JSON; exit 1 on pass->fail "
                                 "regressions")
    p_envelope.add_argument("--qdisc-threshold", action="append",
                            metavar="QDISC=VALUE",
                            help="per-qdisc detector-threshold "
                                 "override; recorded in the "
                                 "artifact's detectors matrix "
                                 "(repeatable)")
    add_json_flag(p_envelope)
    p_envelope.set_defaults(fn=cmd_qa_envelope)
    p_shrink = qa_sub.add_parser(
        "shrink", help="re-minimize a saved corpus case")
    p_shrink.add_argument("case", help="path to a corpus JSON file")
    p_shrink.add_argument("--out", help="output directory (default: "
                                        "alongside the input case)")
    p_shrink.add_argument("--oracle",
                          help="oracle to preserve (default: the case's)")
    p_shrink.set_defaults(fn=cmd_qa_shrink)
    p_corpus = qa_sub.add_parser(
        "corpus", help="list or replay the regression corpus")
    p_corpus.add_argument("--dir", default="tests/corpus",
                          help="corpus directory")
    p_corpus.add_argument("--replay", action="store_true",
                          help="re-run every case through the oracles")
    add_json_flag(p_corpus)
    p_corpus.set_defaults(fn=cmd_qa_corpus)

    p_synth = sub.add_parser("synth-ndt",
                             help="generate a synthetic NDT dataset")
    p_synth.add_argument("--flows", type=int, default=9_984)
    p_synth.add_argument("--out", default="ndt.jsonl")
    p_synth.add_argument("--seed", type=int)
    p_synth.set_defaults(fn=cmd_synth_ndt)

    p_serve = sub.add_parser(
        "serve", help="run the always-on experiment service (HTTP)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="listen port (0 picks a free one)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="bounded job queue size; beyond it "
                              "submissions get 429 + Retry-After")
    p_serve.add_argument("--concurrency", type=int, default=2,
                         help="jobs executed at once")
    p_serve.add_argument("--job-workers", type=int,
                         help="worker processes each job may use "
                              "(default: $REPRO_WORKERS, then CPU count)")
    p_serve.add_argument("--job-timeout", type=float,
                         help="per-job wall-clock budget in seconds "
                              "(default: none)")
    p_serve.add_argument("--rate", type=float, default=2.0,
                         help="per-client sustained submissions/second "
                              "(0 disables rate limiting)")
    p_serve.add_argument("--burst", type=float, default=10.0,
                         help="per-client burst allowance")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         help="seconds to wait for in-flight jobs on "
                              "SIGTERM before checkpointing them")
    add_cache_flags(p_serve, with_resume=False)
    p_serve.set_defaults(fn=cmd_serve)

    p_cluster = sub.add_parser(
        "cluster", help="coordinate work across repro serve nodes")
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command",
                                           required=True)
    p_cstatus = cluster_sub.add_parser(
        "status", help="probe every node and list cluster-run "
                       "manifests")
    p_cstatus.add_argument("--nodes", required=True, metavar="NODES",
                           help="comma-separated host[:port] list")
    p_cstatus.add_argument("--root",
                           help="local store root (default: "
                                "$REPRO_STORE, then ~/.cache/repro)")
    p_cstatus.add_argument("--metrics", action="store_true",
                           help="also print the merged cluster-wide "
                                "metrics snapshot")
    add_json_flag(p_cstatus)
    p_cstatus.set_defaults(fn=cmd_cluster)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 success, 1 failure (any :class:`ReproError` is
    reported on stderr), 2 usage error (argparse).
    """
    args = build_parser().parse_args(argv)
    from .errors import ReproError
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
