"""Slotted CSMA/CA shared-medium link for the packet backend.

:class:`MediumLink` replaces a dumbbell's bottleneck :class:`~repro.sim.link.Link`
with a contention medium: flows are mapped to *stations*, each station
owns its own egress qdisc, and stations arbitrate for airtime with the
classic DCF/EDCA machinery --

* **Carrier sensing / NAV deferral**: a station whose traffic arrives
  while the medium is busy defers until the current transmission's
  NAV expires (``medium.defer`` trace event).
* **Inter-frame spacing**: every contention round waits SIFS plus each
  station's per-class AIFS slots before its backoff countdown runs.
* **Binary-exponential backoff**: counters are drawn uniformly from
  ``[0, cw]``; a collision doubles ``cw`` (``min(2*cw + 1, cw_max)``)
  and a success resets it to ``cw_min`` -- the busy/idle arms of the
  ``ca_decision`` rules, with the priority classes tuning ``cw`` and
  AIFS per station.
* **Priority classes**: :class:`~repro.medium.config.MediumSpec`
  assigns each station an access class ("uniform" = all best-effort,
  "mixed" = odd stations run voice).

The countdown is *slot-jumped*, not ticked: each idle period schedules
one event at the earliest station's completion slot, so cost scales
with transmissions, not with 20 us slots.  All stations share one
global slot grid anchored at the start of the idle period, which is
what makes collisions (two counters expiring in the same slot) exact
integer coincidences -- and what makes the DES match Bianchi's slotted
model closely enough to pin in tests.

Per-station RNG streams derive from the scenario seed by the same
SHA-256 scheme as :mod:`repro.sim.rng`, so runs are deterministic and
stations are decorrelated.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Optional

import numpy as np

from ..errors import ConfigError
from ..medium.config import (PER_TX_OVERHEAD, SIFS, SLOT_TIME, MacClass,
                             MediumSpec)
from ..obs.bus import BUS as _OBS, EventKind
from ..qdisc.base import Qdisc
from ..qdisc.fifo import DropTailQueue
from .engine import Simulator
from .link import PacketSink, Tap
from .packet import Packet


def _station_seed(seed: int, index: int) -> int:
    """Stable per-station RNG seed (same scheme as repro.sim.rng)."""
    digest = hashlib.sha256(f"medium:{seed}:station:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


class _Station:
    """One contending station: its queue, MAC state, and RNG."""

    __slots__ = ("index", "mac", "qdisc", "rng", "head", "backoff", "cw",
                 "offset", "registered", "txops", "collisions", "defers")

    def __init__(self, index: int, mac: MacClass, qdisc: Qdisc,
                 seed: int):
        self.index = index
        self.mac = mac
        self.qdisc = qdisc
        self.rng = np.random.default_rng(_station_seed(seed, index))
        self.head: Optional[Packet] = None
        self.cw = mac.cw_min
        self.backoff = int(self.rng.integers(0, self.cw + 1))
        self.offset = 0
        self.registered = False
        self.txops = 0
        self.collisions = 0
        self.defers = 0

    @property
    def backlogged(self) -> bool:
        return self.head is not None or len(self.qdisc) > 0

    def redraw(self) -> int:
        """Draw a fresh backoff counter from the current window."""
        self.backoff = int(self.rng.integers(0, self.cw + 1))
        return self.backoff


class MediumLink:
    """A CSMA/CA shared medium serving per-station queues.

    Drop-in for :class:`~repro.sim.link.Link` as a dumbbell bottleneck:
    exposes ``send`` / ``add_tap`` / ``delivered_bytes`` /
    ``flow_bytes`` / ``queue_delay`` / ``rate``.  Instead of one shared
    qdisc it owns ``n_stations`` per-station qdiscs (built by
    ``qdisc_factory``); flows are assigned to stations round-robin in
    order of first appearance, which is deterministic per run.

    Args:
        sim: the owning simulator.
        rate: raw medium bit-pipe rate (bytes/second).
        spec: station count and priority layout.
        sink: downstream element receiving successful transmissions.
        qdisc_factory: builds one egress qdisc per station (default:
            100-packet DropTail each).
        seed: root seed for the per-station backoff RNG streams.
        name: label for stats and trace events.
    """

    def __init__(self, sim: Simulator, rate: float, spec: MediumSpec,
                 sink: Optional[PacketSink] = None,
                 qdisc_factory: Optional[Callable[[], Qdisc]] = None,
                 seed: int = 0, name: str = "medium"):
        if rate <= 0:
            raise ConfigError(f"medium rate must be positive: {rate}")
        self.sim = sim
        self._rate = float(rate)
        self.sink = sink
        self.spec = spec
        self.name = name
        factory = qdisc_factory or (
            lambda: DropTailQueue(limit_packets=100))
        self.stations = [
            _Station(i, spec.station_class(i), factory(), seed)
            for i in range(spec.n_stations)]
        self._flow_station: dict[str, int] = {}
        self._next_assign = 0
        self._busy = False
        self._busy_until = 0.0
        self._idle_anchor = sim.now
        self._round_event = None
        self._in_flight: Optional[Packet] = None
        self._taps: list[Tap] = []
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.busy_time = 0.0
        self.collisions = 0
        self.txops = 0
        self._per_flow_bytes: dict[str, int] = {}
        self._obs_src = f"medium:{name}"

    # -- Link-compatible surface ----------------------------------------

    @property
    def rate(self) -> float:
        """Raw medium rate (bytes/second); goodput is strictly lower."""
        return self._rate

    def add_tap(self, tap: Tap) -> None:
        """Register an observer called on every successful delivery."""
        self._taps.append(tap)

    def flow_bytes(self, flow_id: str) -> int:
        """Total bytes delivered for ``flow_id``."""
        return self._per_flow_bytes.get(flow_id, 0)

    @property
    def queue_delay(self) -> float:
        """Aggregate backlog drained at the raw rate (optimistic bound)."""
        backlog = sum(st.qdisc.byte_length for st in self.stations)
        return backlog / self._rate

    @property
    def station_qdiscs(self) -> list[Qdisc]:
        """Every station's egress qdisc (for stats and invariants)."""
        return [st.qdisc for st in self.stations]

    def station_for(self, flow_id: str) -> int:
        """The station serving ``flow_id`` (assigned on first packet)."""
        station = self._flow_station.get(flow_id)
        if station is None:
            station = self._next_assign % len(self.stations)
            self._flow_station[flow_id] = station
            self._next_assign += 1
        return station

    # -- data path -------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Offer a packet to its station's egress queue."""
        st = self.stations[self.station_for(packet.flow_id)]
        was_backlogged = st.backlogged
        st.qdisc.enqueue(packet, self.sim.now)
        if was_backlogged or not st.backlogged:
            return  # already contending, or refused at admission
        self._activate(st)

    def _activate(self, st: _Station) -> None:
        """A station just became backlogged; join the arbitration."""
        now = self.sim.now
        if self._busy:
            # Carrier sense says busy: defer under the NAV until the
            # current transmission ends (_begin_idle registers us).
            st.defers += 1
            if _OBS.enabled:
                _OBS.emit(now, EventKind.MEDIUM_DEFER, self._obs_src,
                          value=self._busy_until - now,
                          meta={"station": st.index})
            return
        if not any(s.registered for s in self.stations):
            # Medium idle and uncontended: a fresh slot grid.
            self._idle_anchor = now
            st.offset = 0
        else:
            # Join the running idle period on the next grid slot.
            st.offset = int(math.ceil(
                (now - self._idle_anchor) / SLOT_TIME - 1e-9))
        st.registered = True
        self._schedule_round()

    def _due(self, st: _Station) -> int:
        return st.offset + st.mac.aifsn + st.backoff

    def _schedule_round(self) -> None:
        if self._round_event is not None:
            self._round_event.cancel()
            self._round_event = None
        dues = [self._due(st) for st in self.stations if st.registered]
        if not dues:
            return
        when = self._idle_anchor + SIFS + min(dues) * SLOT_TIME
        self._round_event = self.sim.schedule_at(
            max(when, self.sim.now), self._round_fire)

    def _round_fire(self) -> None:
        self._round_event = None
        contenders = [st for st in self.stations if st.registered]
        if not contenders:
            return
        due_min = min(self._due(st) for st in contenders)
        winners = []
        for st in contenders:
            if self._due(st) == due_min:
                winners.append(st)
            else:
                # Countdown slots this station burned while losing.
                counted = due_min - st.offset - st.mac.aifsn
                if counted > 0:
                    st.backoff -= min(st.backoff, counted)
        now = self.sim.now
        transmitting = []
        for st in winners:
            if st.head is None:
                st.head = st.qdisc.dequeue(now)
            if st.head is None:
                # Queue drained underneath us, or a token-gated qdisc
                # is holding its packets; poll again when it says so.
                st.registered = False
                ready = st.qdisc.next_ready_time(now)
                if ready is not None:
                    self.sim.schedule(max(1e-6, ready - now),
                                      lambda st=st: self._poll(st))
            else:
                transmitting.append(st)
        for st in self.stations:
            st.registered = False
        if not transmitting:
            self._restart_idle()
            return
        if len(transmitting) == 1:
            self._transmit(transmitting[0])
        else:
            self._collide(transmitting)

    def _transmit(self, st: _Station) -> None:
        now = self.sim.now
        packet = st.head
        st.head = None
        tx_time = packet.size / self._rate + PER_TX_OVERHEAD
        self._busy = True
        self._busy_until = now + tx_time
        self.busy_time += tx_time
        self.txops += 1
        st.txops += 1
        if _OBS.enabled:
            _OBS.emit(now, EventKind.MEDIUM_TXOP, self._obs_src,
                      packet.flow_id, packet.size,
                      meta={"station": st.index, "duration": tx_time})
        # Success: window resets, post-backoff drawn for the next frame.
        st.cw = st.mac.cw_min
        backoff = st.redraw()
        if _OBS.enabled:
            _OBS.emit(now, EventKind.MEDIUM_BACKOFF, self._obs_src,
                      value=backoff, meta={"station": st.index,
                                           "cw": st.cw})
        self._in_flight = packet
        self.sim.call_later(tx_time, self._tx_done)

    def _collide(self, stations: list[_Station]) -> None:
        now = self.sim.now
        duration = (max(st.head.size for st in stations) / self._rate
                    + PER_TX_OVERHEAD)
        for st in stations:
            st.collisions += 1
            st.cw = min(2 * st.cw + 1, st.mac.cw_max)
            backoff = st.redraw()
            if _OBS.enabled:
                _OBS.emit(now, EventKind.MEDIUM_COLLISION, self._obs_src,
                          st.head.flow_id, st.head.size,
                          meta={"station": st.index,
                                "duration": duration,
                                "colliders": len(stations)})
                _OBS.emit(now, EventKind.MEDIUM_BACKOFF, self._obs_src,
                          value=backoff, meta={"station": st.index,
                                               "cw": st.cw})
        self.collisions += 1
        self._busy = True
        self._busy_until = now + duration
        self.busy_time += duration
        self.sim.call_later(duration, self._begin_idle)

    def _poll(self, st: _Station) -> None:
        """Re-join a station whose gated qdisc may be ready now."""
        if st.registered or not st.backlogged or self._busy:
            return  # busy: _begin_idle re-registers backlogged stations
        self._activate(st)

    def _tx_done(self) -> None:
        packet = self._in_flight
        self._in_flight = None
        self._deliver(packet)
        self._begin_idle()

    def _begin_idle(self) -> None:
        self._busy = False
        self._restart_idle()

    def _restart_idle(self) -> None:
        """Start a fresh idle period; all backlogged stations contend."""
        self._idle_anchor = self.sim.now
        any_registered = False
        for st in self.stations:
            st.registered = st.backlogged
            st.offset = 0
            any_registered = any_registered or st.registered
        if any_registered:
            self._schedule_round()

    def _deliver(self, packet: Packet) -> None:
        now = self.sim.now
        self.delivered_packets += 1
        self.delivered_bytes += packet.size
        flow = packet.flow_id
        self._per_flow_bytes[flow] = (
            self._per_flow_bytes.get(flow, 0) + packet.size)
        if _OBS.enabled:
            _OBS.emit(now, EventKind.DELIVER, f"link:{self.name}", flow,
                      packet.size)
        for tap in self._taps:
            tap(packet, now)
        if self.sink is not None:
            self.sink.send(packet)
