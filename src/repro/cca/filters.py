"""Windowed min/max filters used by rate-based CCAs."""

from __future__ import annotations

from collections import deque


class WindowedExtremum:
    """Track the min or max of samples over a sliding window.

    Samples arrive as ``(key, value)`` where ``key`` is a monotonically
    non-decreasing position (time, or round count).  Query cost is
    O(1); update is amortized O(1) via the monotonic-deque trick.

    Args:
        window: width of the window in key units.
        mode: "max" or "min".
    """

    def __init__(self, window: float, mode: str = "max"):
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min': {mode!r}")
        self.window = window
        self.mode = mode
        self._deque: deque[tuple[float, float]] = deque()

    def _better(self, a: float, b: float) -> bool:
        return a >= b if self.mode == "max" else a <= b

    def update(self, key: float, value: float) -> None:
        """Insert a sample and expire anything older than the window."""
        while self._deque and self._better(value, self._deque[-1][1]):
            self._deque.pop()
        self._deque.append((key, value))
        horizon = key - self.window
        while self._deque and self._deque[0][0] < horizon:
            self._deque.popleft()

    @property
    def value(self) -> float | None:
        """Current windowed extremum, or None if no samples survive."""
        return self._deque[0][1] if self._deque else None

    def reset(self) -> None:
        self._deque.clear()
