"""Concurrent multi-process ArtifactStore access.

The store's writes are atomic (tmp file + ``os.replace``), which is
what lets several server workers -- or a server plus a batch run --
share one store root.  These tests hammer the same fingerprint from
multiple processes and assert no torn objects or corrupt index ever
become visible.
"""

import pickle
import subprocess
import sys

from repro.store import ArtifactStore

#: Worker body: N racing puts of the SAME key + payload, then a get.
_WORKER = """
import os, sys
sys.path.insert(0, {src!r})
from repro.store import ArtifactStore

store = ArtifactStore({root!r})
payload = {{"rows": list(range(500)), "tag": "shared"}}
for _ in range(20):
    store.put("{key}", payload, kind="race-test", label="concurrent")
    got = store.get("{key}")
    assert got == payload, f"torn read: {{got!r}}"
print("ok")
"""


def _spawn_writers(tmp_path, n, key="cafe" * 16):
    import os

    import repro
    src = os.path.dirname(next(iter(repro.__path__)))
    root = str(tmp_path / "shared-store")
    script = _WORKER.format(src=src, root=root, key=key)
    procs = [subprocess.Popen([sys.executable, "-c", script],
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE)
             for _ in range(n)]
    outs = [p.communicate(timeout=120) for p in procs]
    return root, procs, outs


def test_concurrent_put_same_fingerprint(tmp_path):
    key = "ab" * 32
    root, procs, outs = _spawn_writers(tmp_path, n=4, key=key)
    for proc, (out, err) in zip(procs, outs):
        assert proc.returncode == 0, err.decode()
        assert out.decode().strip() == "ok"

    store = ArtifactStore(root)
    # exactly one object file for the key, and it is a valid pickle
    payload = store.get(key)
    assert payload == {"rows": list(range(500)), "tag": "shared"}
    with open(store._object_path(key), "rb") as f:
        assert pickle.load(f) == payload
    # the index survived the races: loadable, entry present, stat sane
    entry = store.entries()[key]
    assert entry["kind"] == "race-test"
    stat = store.stat()
    assert stat["entries"] >= 1
    assert stat["bytes"] > 0


def test_concurrent_put_is_idempotent_with_reader(tmp_path):
    """A reader process polling mid-race never sees a partial object."""
    key = "cd" * 32
    root, procs, outs = _spawn_writers(tmp_path, n=2, key=key)
    for proc, (out, err) in zip(procs, outs):
        assert proc.returncode == 0, err.decode()
    # every racing process also read its own writes back (asserted in
    # the worker); the final state is a single coherent entry
    store = ArtifactStore(root)
    assert key in store
    assert len([k for k in store.entries() if k == key]) == 1
