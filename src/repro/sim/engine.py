"""Discrete-event simulation engine.

A minimal but fast event loop: callbacks are scheduled at absolute times
and executed in timestamp order (FIFO among equal timestamps).  All other
simulation components -- links, queues, transport endpoints, applications
-- are written against this engine.

Two scheduling families exist.  :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` return an :class:`Event` handle that can
be cancelled; :meth:`Simulator.call_later` / :meth:`Simulator.call_at`
are the never-cancelled fast path -- they push a bare callback with no
handle allocation, which matters because the overwhelming majority of
events (transmission completions, propagation arrivals, pacing ticks)
are never cancelled.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..errors import SimulationError
from ..obs import invariants as _invariants
from ..obs.bus import BUS as _OBS, EventKind
from ..obs.metrics import REGISTRY as _METRICS

#: Delays more negative than this raise; anything in (-_EPSILON, 0) is
#: floating-point residue from rate arithmetic (e.g. ``bytes/rate -
#: elapsed`` landing at -1e-18) and is clamped to "now".
_EPSILON = 1e-9

# Cached run-accounting instruments.  ``REGISTRY.reset()`` drops every
# instrument, so the cache is keyed on the registry generation and
# refreshed when it changes; between resets the per-run cost is one
# integer comparison instead of three name lookups.
_RUN_INSTRUMENTS: tuple | None = None


def _run_instruments():
    global _RUN_INSTRUMENTS
    cached = _RUN_INSTRUMENTS
    generation = _METRICS.generation
    if cached is None or cached[0] != generation:
        cached = (generation,
                  _METRICS.counter("sim.events_processed"),
                  _METRICS.counter("sim.runs"),
                  _METRICS.gauge("sim.clock_s"))
        _RUN_INSTRUMENTS = cached
    return cached


class Event:
    """Handle for a scheduled callback; supports cancellation.

    Heap entries are ``(time, seq, callback, event_or_None)`` tuples so
    ordering is decided by C-level float/int comparison; ``seq`` is
    unique, so later elements are never compared.  The fourth slot is
    None for the fast path (:meth:`Simulator.call_later`), which never
    allocates a handle at all.
    """

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], Any]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True


class Simulator:
    """Event-driven simulation clock.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, lambda: out.append(sim.now))
    >>> sim.run(until=2.0)
    >>> out
    [1.0]
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        # Opt-in runtime auditing: REPRO_CHECK_INVARIANTS=1 attaches
        # strict trace-driven invariant checkers (idempotent, and a
        # no-op without the env var).
        _invariants.maybe_install_from_env()
        if _OBS.enabled:
            _OBS.emit(0.0, EventKind.SIM_START, "sim")

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` ``delay`` seconds from now.

        Delays negative only by floating-point error (above
        ``-_EPSILON``) are clamped to zero; genuinely negative delays
        raise :class:`SimulationError`.
        """
        if delay < 0:
            if delay <= -_EPSILON:
                raise SimulationError(
                    f"cannot schedule in the past: {delay!r}")
            delay = 0.0
        time = self.now + delay
        event = Event(time, callback)
        heapq.heappush(self._heap,
                       (time, next(self._seq), callback, event))
        return event

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            if time <= self.now - _EPSILON:
                raise SimulationError(
                    f"cannot schedule at {time} (now is {self.now})")
            time = self.now
        event = Event(time, callback)
        heapq.heappush(self._heap,
                       (time, next(self._seq), callback, event))
        return event

    def call_later(self, delay: float, callback: Callable[[], Any]) -> None:
        """Fast path: like :meth:`schedule` but with no cancellation
        handle (and no per-event allocation beyond the heap tuple)."""
        if delay < 0:
            if delay <= -_EPSILON:
                raise SimulationError(
                    f"cannot schedule in the past: {delay!r}")
            delay = 0.0
        heapq.heappush(self._heap,
                       (self.now + delay, next(self._seq), callback, None))

    def call_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Fast path: like :meth:`schedule_at` but with no handle."""
        if time < self.now:
            if time <= self.now - _EPSILON:
                raise SimulationError(
                    f"cannot schedule at {time} (now is {self.now})")
            time = self.now
        heapq.heappush(self._heap,
                       (time, next(self._seq), callback, None))

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._heap:
            time, _, callback, event = heapq.heappop(self._heap)
            if event is not None and event.cancelled:
                continue
            self.now = time
            callback()
            self._events_processed += 1
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run until the event queue drains or the clock passes ``until``.

        When ``until`` is given the clock is left exactly at ``until`` so
        that post-run measurements have a well-defined end time.
        """
        if self._running:
            raise SimulationError("run() re-entered from a callback")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        processed_before = self._events_processed
        if _OBS.enabled:
            _OBS.emit(self.now, EventKind.SIM_RUN, "sim",
                      meta={"phase": "begin"})
        limit = float("inf") if until is None else until
        try:
            while heap:
                entry = heap[0]
                event = entry[3]
                if event is not None and event.cancelled:
                    pop(heap)
                    continue
                time = entry[0]
                if time > limit:
                    break
                pop(heap)
                self.now = time
                entry[2]()
                self._events_processed += 1
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
            executed = self._events_processed - processed_before
            _, events_counter, runs_counter, clock_gauge = \
                _run_instruments()
            events_counter.inc(executed)
            runs_counter.inc()
            clock_gauge.set(self.now)
            if _OBS.enabled:
                _OBS.emit(self.now, EventKind.SIM_RUN, "sim",
                          value=float(executed), meta={"phase": "end"})

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of heap entries still queued.

        This counts *cancelled* events too: cancellation only marks the
        entry (removal from the middle of a heap is O(n)), and the mark
        is skipped lazily at dispatch time.  Use :attr:`pending_active`
        for the number of events that will actually run.
        """
        return len(self._heap)

    @property
    def pending_active(self) -> int:
        """Number of queued events that have not been cancelled.

        O(pending): walks the heap, so prefer :attr:`pending` in hot
        paths where the distinction does not matter.
        """
        return sum(1 for entry in self._heap
                   if entry[3] is None or not entry[3].cancelled)
