"""Seeded scenario fuzzing: sample, run, judge, cache.

:func:`sample_scenario` maps ``(index, seed)`` to one random-but-valid
:class:`~repro.qa.scenario.Scenario` through the same SHA-256 seed
derivation the parallel runtime uses, so the scenario stream is a pure
function of the campaign seed -- independent of process, platform, and
how many scenarios were drawn before.

:func:`run_fuzz` drives a budgeted campaign: every scenario runs under
full trace capture, is judged by the (period-gated) oracle suite, and
-- when it passes -- has its verdict cached in the artifact store keyed
by the scenario + oracle-list fingerprint, so re-running the same
campaign is nearly free while any change to scenario semantics or
oracle selection invalidates exactly the affected entries.  A small
pool-equivalence stage re-computes a few outcome fingerprints through
:class:`~repro.runtime.pool.ParallelExecutor` workers and fails the
campaign if worker processes disagree with the in-process result.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..runtime.pool import ParallelExecutor, derive_seed
from ..store.artifacts import ArtifactStore
from ..store.fingerprint import fingerprint
from ..traffic.mix import CROSS_TRAFFIC_REGISTRY
from .oracles import (FAULT_ENV, SUITE_VERSION, OracleFinding,
                      oracles_for_index, run_oracles)
from .scenario import (FLOW_CCAS, QDISC_NAMES, FlowSpec, Scenario,
                       run_scenario, scenario_fingerprint)

#: How many flows-family scenarios get the worker-equivalence check.
POOL_CHECK_COUNT = 3

_FLOW_RATES = (4.0, 8.0, 16.0, 24.0)
_FLOW_RTTS = (10.0, 20.0, 40.0, 80.0)
_FLOW_BUFFERS = (0.5, 1.0, 2.0)
_FLOW_DURATIONS = (3.0, 5.0, 8.0)
_FLOW_CROSS = ("video", "poisson", "cbr")

_PROBE_RATES = (20.0, 48.0)
_PROBE_RTTS = (20.0, 50.0)
_PROBE_CROSS = ("none", "reno", "bbr", "video", "poisson", "cbr")


def sample_scenario(index: int, seed: int) -> Scenario:
    """Deterministically sample the ``index``-th scenario of a campaign.

    Roughly 20% of scenarios exercise the elasticity probe pipeline
    end to end; the rest sweep qdisc x CCA x traffic combinations.
    Probe scenarios stay inside the detector's calibrated envelope
    (paper-scale rates/RTTs, long enough for several pulse windows);
    flow scenarios roam freely since their oracles are
    scale-independent.
    """
    rng = np.random.default_rng(derive_seed(seed, index, "qa-scenario"))
    scenario_seed = int(rng.integers(0, 2**31 - 1))
    if rng.random() < 0.2:
        qdisc = str(rng.choice(("droptail", "fq"), p=(0.7, 0.3)))
        return Scenario(
            family="probe",
            rate_mbps=float(rng.choice(_PROBE_RATES)),
            rtt_ms=float(rng.choice(_PROBE_RTTS)),
            qdisc=qdisc,
            duration=20.0 if qdisc == "droptail" else 12.0,
            seed=scenario_seed,
            buffer_multiplier=1.0,
            cross_traffic=str(rng.choice(_PROBE_CROSS)),
        )
    n_flows = int(rng.integers(1, 5))
    duration = float(rng.choice(_FLOW_DURATIONS))
    flows = []
    for i in range(n_flows):
        cca = str(rng.choice(FLOW_CCAS))
        flows.append(FlowSpec(
            cca=cca,
            rate_frac=float(rng.choice((0.2, 0.3, 0.5))),
            user_id="a" if i % 2 == 0 else "b",
            start=float(rng.choice((0.0, 0.0, 0.5))),
            ecn=(cca == "dctcp"),
        ))
    cross = "none"
    if rng.random() < 0.3:
        cross = str(rng.choice(_FLOW_CROSS))
    return Scenario(
        family="flows",
        rate_mbps=float(rng.choice(_FLOW_RATES)),
        rtt_ms=float(rng.choice(_FLOW_RTTS)),
        qdisc=str(rng.choice(QDISC_NAMES)),
        duration=duration,
        seed=scenario_seed,
        buffer_multiplier=float(rng.choice(_FLOW_BUFFERS)),
        flows=tuple(flows),
        cross_traffic=cross,
    )


# -- mutation operators ---------------------------------------------------
#
# Each operator takes (scenario, rng) and returns a mutated scenario
# that is valid by construction and differs from its parent in the
# mutated field (so its fingerprint changes), or None when the
# operator does not apply.  The guided search (repro.qa.search) draws
# operators in rng order and keeps the first applicable result; the
# operators never touch `backend`, which the search manages itself
# (fluid for exploration, packet for failure replay).

_MUTATION_RATES = (1.0, 192.0)          # clamp range, mbps
_MUTATION_RTTS = (2.0, 200.0)           # clamp range, ms
_MUTATION_BUFFERS = (0.25, 0.5, 1.0, 2.0, 4.0)
_MUTATION_JITTER = (0.0, 0.05, 0.15, 0.3)
_MUTATION_RATE_FRACS = (0.2, 0.3, 0.5)
_MUTATION_STARTS = (0.0, 0.5, 1.0)
#: Medium mutation targets: the plain queue plus the CSMA/CA station
#: counts the contention envelope is calibrated over (powers of two up
#: to 8, one priority mix).
_MUTATION_MEDIUMS = ("queue", "csma-2", "csma-4", "csma-8",
                     "csma-4-prio")
_MUTATION_MAX_FLOWS = 5
_MUTATION_MAX_DURATION = 30.0
#: Duration floors per family: the probe needs several pulse windows
#: past warmup; flows just need to leave slow start.
_MUTATION_MIN_DURATION = {"probe": 12.0, "flows": 2.0}


def _choice_not(rng: np.random.Generator, options: Sequence, current):
    """A uniform choice among ``options`` minus ``current`` (None if
    nothing differs)."""
    others = [o for o in options if o != current]
    if not others:
        return None
    return others[int(rng.integers(0, len(others)))]


def _mut_seed(scenario: Scenario, rng: np.random.Generator):
    bump = 1 + int(rng.integers(0, 1 << 16))
    return dataclasses.replace(
        scenario, seed=(scenario.seed + bump) % (2**31 - 1))


def _mut_qdisc(scenario, rng):
    qdisc = _choice_not(rng, QDISC_NAMES, scenario.qdisc)
    return dataclasses.replace(scenario, qdisc=qdisc)


def _mut_rate(scenario, rng):
    factor = 0.5 if rng.random() < 0.5 else 2.0
    lo, hi = _MUTATION_RATES
    rate = min(hi, max(lo, scenario.rate_mbps * factor))
    if rate == scenario.rate_mbps:
        return None
    return dataclasses.replace(scenario, rate_mbps=rate)


def _mut_rtt(scenario, rng):
    factor = 0.5 if rng.random() < 0.5 else 2.0
    lo, hi = _MUTATION_RTTS
    rtt = min(hi, max(lo, scenario.rtt_ms * factor))
    if rtt == scenario.rtt_ms:
        return None
    return dataclasses.replace(scenario, rtt_ms=rtt)


def _mut_buffer(scenario, rng):
    mult = _choice_not(rng, _MUTATION_BUFFERS, scenario.buffer_multiplier)
    return dataclasses.replace(scenario, buffer_multiplier=mult)


def _mut_duration(scenario, rng):
    factor = 0.5 if rng.random() < 0.5 else 1.5
    floor = _MUTATION_MIN_DURATION[scenario.family]
    duration = min(_MUTATION_MAX_DURATION,
                   max(floor, scenario.duration * factor))
    if duration == scenario.duration:
        return None
    return dataclasses.replace(scenario, duration=duration)


def _mut_jitter(scenario, rng):
    level = _choice_not(rng, _MUTATION_JITTER, scenario.timing_jitter)
    return dataclasses.replace(scenario, timing_jitter=level)


def _mut_cross(scenario, rng):
    # The whole cross-traffic registry has fluid laws, so any choice
    # stays runnable on the search's fluid exploration backend.
    options = tuple(sorted(CROSS_TRAFFIC_REGISTRY))
    cross = _choice_not(rng, options, scenario.cross_traffic)
    return dataclasses.replace(scenario, cross_traffic=cross)


def _mut_medium(scenario, rng):
    # Both backends implement every medium (MediumLink on packet,
    # ContentionBottleneck on fluid), so any choice stays runnable on
    # the search's fluid exploration backend.
    medium = _choice_not(rng, _MUTATION_MEDIUMS, scenario.medium)
    return dataclasses.replace(scenario, medium=medium)


def _mut_add_flow(scenario, rng):
    if (scenario.family != "flows"
            or len(scenario.flows) >= _MUTATION_MAX_FLOWS):
        return None
    cca = str(rng.choice(FLOW_CCAS))
    spec = FlowSpec(
        cca=cca,
        rate_frac=float(rng.choice(_MUTATION_RATE_FRACS)),
        user_id="a" if len(scenario.flows) % 2 == 0 else "b",
        start=float(rng.choice(_MUTATION_STARTS)),
        ecn=(cca == "dctcp"),
    )
    return dataclasses.replace(scenario, flows=scenario.flows + (spec,))


def _mut_drop_flow(scenario, rng):
    if scenario.family != "flows" or len(scenario.flows) < 2:
        return None
    index = int(rng.integers(0, len(scenario.flows)))
    flows = scenario.flows[:index] + scenario.flows[index + 1:]
    return dataclasses.replace(scenario, flows=flows)


def _mut_swap_cca(scenario, rng):
    if scenario.family != "flows":
        return None
    index = int(rng.integers(0, len(scenario.flows)))
    spec = scenario.flows[index]
    cca = _choice_not(rng, FLOW_CCAS, spec.cca)
    new = dataclasses.replace(spec, cca=cca, ecn=(cca == "dctcp"))
    flows = (scenario.flows[:index] + (new,)
             + scenario.flows[index + 1:])
    return dataclasses.replace(scenario, flows=flows)


def _mut_rate_frac(scenario, rng):
    if scenario.family != "flows":
        return None
    index = int(rng.integers(0, len(scenario.flows)))
    spec = scenario.flows[index]
    frac = _choice_not(rng, _MUTATION_RATE_FRACS, spec.rate_frac)
    if frac is None:
        return None
    flows = (scenario.flows[:index]
             + (dataclasses.replace(spec, rate_frac=frac),)
             + scenario.flows[index + 1:])
    return dataclasses.replace(scenario, flows=flows)


def _mut_start(scenario, rng):
    if scenario.family != "flows":
        return None
    index = int(rng.integers(0, len(scenario.flows)))
    spec = scenario.flows[index]
    start = _choice_not(rng, _MUTATION_STARTS, spec.start)
    if start is None:
        return None
    flows = (scenario.flows[:index]
             + (dataclasses.replace(spec, start=start),)
             + scenario.flows[index + 1:])
    return dataclasses.replace(scenario, flows=flows)


#: All mutation operators, in a fixed order (the order is part of the
#: search's determinism contract: rng draws index permutations).
MUTATORS: tuple[Callable, ...] = (
    _mut_seed, _mut_qdisc, _mut_rate, _mut_rtt, _mut_buffer,
    _mut_duration, _mut_jitter, _mut_cross, _mut_add_flow,
    _mut_drop_flow, _mut_swap_cca, _mut_rate_frac, _mut_start,
    _mut_medium,
)


def mutate_scenario(scenario: Scenario,
                    rng: np.random.Generator) -> Scenario:
    """Apply one applicable mutation operator, chosen by ``rng``.

    The result is always a valid scenario whose fingerprint differs
    from the parent's (``_mut_seed`` applies to everything, so the
    loop cannot come up empty).
    """
    for index in rng.permutation(len(MUTATORS)):
        mutated = MUTATORS[int(index)](scenario, rng)
        if mutated is not None:
            return mutated
    raise AssertionError("unreachable: _mut_seed always applies")


@dataclass(frozen=True)
class ScenarioVerdict:
    """One scenario's judgement: which oracles ran, what they found."""

    index: int
    fingerprint: str
    label: str
    oracles: tuple[str, ...]
    findings: tuple[OracleFinding, ...] = ()
    cached: bool = False

    @property
    def passed(self) -> bool:
        return not self.findings


@dataclass
class FuzzReport:
    """The outcome of one fuzz campaign."""

    seed: int
    budget: int
    verdicts: list[ScenarioVerdict] = field(default_factory=list)

    @property
    def failures(self) -> list[ScenarioVerdict]:
        return [v for v in self.verdicts if not v.passed]

    @property
    def cache_hits(self) -> int:
        return sum(1 for v in self.verdicts if v.cached)

    def render(self) -> str:
        """Deterministic human-readable summary (stable across reruns
        of the same campaign, cache hits included)."""
        lines = [f"qa fuzz seed={self.seed} budget={self.budget}"]
        for v in self.verdicts:
            status = "FAIL" if v.findings else "pass"
            lines.append(f"  [{v.index:4d}] {status} "
                         f"{v.fingerprint[:12]} {v.label}")
            for finding in v.findings:
                lines.append(f"         ! {finding}")
        lines.append(f"{self.budget - len(self.failures)}/{self.budget} "
                     f"scenarios passed, {len(self.failures)} failed")
        return "\n".join(lines)


def _scenario_outcome_fingerprint(scenario: Scenario) -> str:
    """Module-level (picklable) worker task for the pool check."""
    return run_scenario(scenario).fingerprint()


def _pool_check(scenarios: Sequence[Scenario],
                expected: Sequence[str]) -> list[str]:
    """Compare in-process outcome fingerprints against worker-process
    ones; any divergence is a determinism bug in the pool or engine."""
    with ParallelExecutor(workers=2) as executor:
        via_pool = executor.map(_scenario_outcome_fingerprint,
                                list(scenarios))
    problems = []
    for scenario, want, got in zip(scenarios, expected, via_pool):
        if want != got:
            problems.append(
                f"worker outcome diverged for "
                f"{scenario_fingerprint(scenario)[:12]} "
                f"({scenario.label()}): {want[:12]} != {got[:12]}")
    return problems


def run_fuzz(budget: int, seed: int = 0,
             store: ArtifactStore | None = None,
             progress: Callable[[ScenarioVerdict], None] | None = None,
             pool_check: bool = True) -> FuzzReport:
    """Run a ``budget``-scenario fuzz campaign.

    Args:
        budget: number of scenarios to sample and judge.
        seed: campaign seed; the full scenario stream and every verdict
            are a pure function of ``(seed, budget)``.
        store: artifact store for verdict caching (``None`` disables).
        progress: called with each :class:`ScenarioVerdict` as it lands.
        pool_check: run the worker-equivalence stage on the first few
            flows-family scenarios.
    """
    report = FuzzReport(seed=seed, budget=budget)
    fault = os.environ.get(FAULT_ENV, "")
    pool_targets: list[tuple[Scenario, str]] = []
    for index in range(budget):
        scenario = sample_scenario(index, seed)
        oracles = oracles_for_index(scenario, index)
        oracle_names = tuple(o.name for o in oracles)
        scen_fp = scenario_fingerprint(scenario)
        cache_key = fingerprint(
            {"suite": SUITE_VERSION, "scenario": scenario.to_dict(),
             "oracles": oracle_names, "fault": fault},
            kind="qa-verdict")
        cached = store.get(cache_key) if store is not None else None
        if cached is not None and cached.get("passed"):
            verdict = ScenarioVerdict(index=index, fingerprint=scen_fp,
                                      label=scenario.label(),
                                      oracles=oracle_names, cached=True)
            if (pool_check and scenario.family == "flows"
                    and len(pool_targets) < POOL_CHECK_COUNT):
                pool_targets.append((scenario,
                                     cached["outcome_fingerprint"]))
        else:
            outcome = run_scenario(scenario)
            findings = run_oracles(scenario, outcome, run_scenario,
                                   index=index, oracles=oracles)
            verdict = ScenarioVerdict(index=index, fingerprint=scen_fp,
                                      label=scenario.label(),
                                      oracles=oracle_names,
                                      findings=tuple(findings))
            if verdict.passed and store is not None:
                store.put(cache_key,
                          {"passed": True,
                           "outcome_fingerprint": outcome.fingerprint()},
                          kind="qa-verdict", label=scenario.label())
            if (pool_check and scenario.family == "flows"
                    and len(pool_targets) < POOL_CHECK_COUNT):
                pool_targets.append((scenario, outcome.fingerprint()))
        report.verdicts.append(verdict)
        if progress is not None:
            progress(verdict)
    if pool_check and pool_targets:
        problems = _pool_check([s for s, _ in pool_targets],
                               [f for _, f in pool_targets])
        if problems:
            scenario, _ = pool_targets[0]
            findings = tuple(OracleFinding(oracle="pool-equivalence",
                                           message=m) for m in problems)
            report.verdicts.append(ScenarioVerdict(
                index=budget, fingerprint="pool-equivalence",
                label="workers=1 vs workers=2", oracles=("pool-equivalence",),
                findings=findings))
    return report
