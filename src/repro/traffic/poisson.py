"""Short flows with Poisson arrivals.

The paper's §2.2: "most application flows are short" -- they fit in the
initial window and are gone before CCA dynamics matter.  This generator
creates a new transport connection per flow, with exponential
inter-arrival times and sizes drawn from a heavy-tailed (log-normal or
Pareto-like) distribution, the shape measurement studies consistently
report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cca.base import CongestionControl
from ..cca.cubic import CubicCca
from ..errors import ConfigError
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..tcp.endpoint import Connection
from .base import TrafficSource


def lognormal_sizes(rng: np.random.Generator, mean_bytes: float,
                    sigma: float = 1.5):
    """Heavy-tailed flow sizes with the requested mean."""
    mu = np.log(mean_bytes) - sigma * sigma / 2.0
    while True:
        yield max(200, int(rng.lognormal(mu, sigma)))


@dataclass
class FlowRecord:
    """Lifecycle record of one short flow."""

    flow_id: str
    size: int
    start_time: float
    completion_time: float | None = None

    @property
    def fct(self) -> float | None:
        """Flow completion time (None while in flight)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time


class PoissonShortFlows(TrafficSource):
    """Open-loop short-flow workload.

    Args:
        sim: the simulator.
        path: topology the flows run over.
        arrival_rate: flows per second (Poisson).
        mean_size: mean flow size in bytes.
        sigma: log-normal shape parameter (tail heaviness).
        cca_factory: builds a CCA per flow (fresh slow start each time).
        seed: RNG seed.
        prefix: flow-id prefix.
    """

    def __init__(self, sim: Simulator, path: PathHandles,
                 arrival_rate: float, mean_size: float = 50_000,
                 sigma: float = 1.5, cca_factory=CubicCca, seed: int = 0,
                 prefix: str = "short", user_id: str = ""):
        if arrival_rate <= 0:
            raise ConfigError(f"arrival_rate must be positive: {arrival_rate}")
        if mean_size <= 0:
            raise ConfigError(f"mean_size must be positive: {mean_size}")
        self.sim = sim
        self.path = path
        self.arrival_rate = arrival_rate
        self.cca_factory = cca_factory
        self.prefix = prefix
        self.user_id = user_id
        self._rng = np.random.default_rng(seed)
        self._sizes = lognormal_sizes(self._rng, mean_size, sigma)
        self._running = False
        self._counter = 0
        self.records: list[FlowRecord] = []
        self._delivered = 0

    def start(self) -> None:
        self._running = True
        self._schedule_next_arrival()

    def stop(self) -> None:
        """Stop new arrivals; in-flight flows finish naturally."""
        self._running = False

    def _schedule_next_arrival(self) -> None:
        if not self._running:
            return
        gap = self._rng.exponential(1.0 / self.arrival_rate)
        self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        if not self._running:
            return
        self._counter += 1
        flow_id = f"{self.prefix}-{self._counter}"
        size = next(self._sizes)
        record = FlowRecord(flow_id=flow_id, size=size,
                            start_time=self.sim.now)
        self.records.append(record)

        conn = Connection(self.sim, self.path, flow_id, self.cca_factory(),
                          user_id=self.user_id or flow_id,
                          on_data=self._count_bytes)
        path = self.path

        def finished(now: float, rec=record, c=conn, fid=flow_id):
            rec.completion_time = now
            path.dst_host.detach(fid)
            path.src_host.detach(fid)

        conn.sender.on_complete = finished
        conn.sender.write(size)
        conn.sender.close()
        self._schedule_next_arrival()

    def _count_bytes(self, nbytes: int, now: float) -> None:
        self._delivered += nbytes

    @property
    def delivered_bytes(self) -> int:
        return self._delivered

    @property
    def completed_flows(self) -> list[FlowRecord]:
        return [r for r in self.records if r.completion_time is not None]

    def offered_load(self) -> float:
        """Long-run offered load in bytes/second (rate x mean size)."""
        if not self.records:
            return 0.0
        mean = sum(r.size for r in self.records) / len(self.records)
        return self.arrival_rate * mean
