"""Elasticity estimation -- the paper's proposed measurement primitive.

Nimbus (Goyal et al., SIGCOMM 2022 [54]) detects whether cross traffic
is *elastic* -- i.e. adjusts its rate in response to short-term changes
in available bandwidth -- by (1) modulating its own sending rate with
sinusoidal pulses at a known frequency ``f_p``, (2) estimating the
cross-traffic rate ``z(t)`` from its own send and receive rates, and
(3) measuring how much energy ``z(t)`` carries at ``f_p``: elastic
cross traffic reacts to the pulses (its ACK clock slows when the probe
pulses up), imprinting the pulse frequency onto ``z``; inelastic cross
traffic does not.

This module implements the signal-processing half, independent of any
transport so it can also run offline over recorded rate series:

* :func:`cross_traffic_estimate` -- ẑ = max(0, μ·S/R - S).
* :class:`PulseGenerator` -- the rate modulation waveform.
* :class:`ElasticityEstimator` -- streaming FFT-based estimator.
* :func:`elasticity_series` -- offline sliding-window analysis.

The elasticity metric here is a peak-to-background ratio: the amplitude
of ``z``'s spectrum at the pulse frequency divided by the median
amplitude in the surrounding band.  It is scale-invariant, so errors in
the capacity estimate μ (which rescale ẑ) do not move it -- the
property that makes the technique usable as a *measurement tool* on
paths with unknown capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, ConfigError


def cross_traffic_estimate(mu: float, send_rate: float,
                           recv_rate: float) -> float:
    """Nimbus cross-traffic rate estimate ẑ = max(0, μ·S/R - S).

    Rationale: with a busy FIFO bottleneck of capacity μ, a flow
    sending at S receives service R ≈ μ · S / (S + z), so
    z ≈ μ·S/R - S.

    Args:
        mu: bottleneck capacity estimate (bytes/second).
        send_rate: the probe's send rate S (bytes/second).
        recv_rate: the probe's delivery rate R (bytes/second).
    """
    if recv_rate <= 0 or send_rate <= 0:
        return 0.0
    return max(0.0, mu * send_rate / recv_rate - send_rate)


class PulseGenerator:
    """Sinusoidal rate pulses at frequency ``frequency``.

    The offset added to the base rate at time ``t`` is
    ``amplitude_frac * mu * sin(2*pi*frequency*t)`` -- zero-mean, so
    pulsing does not change the probe's average rate.

    (Nimbus uses an asymmetric half-sine pulse to bound queue build-up;
    a symmetric sine has the same spectral signature at ``f_p`` and
    simplifies mean-rate reasoning.  DESIGN.md lists this as a
    documented deviation.)
    """

    def __init__(self, frequency: float = 5.0, amplitude_frac: float = 0.25):
        if frequency <= 0:
            raise ConfigError(f"frequency must be positive: {frequency}")
        if not 0 < amplitude_frac < 1:
            raise ConfigError(
                f"amplitude_frac must be in (0, 1): {amplitude_frac}")
        self.frequency = frequency
        self.amplitude_frac = amplitude_frac

    def offset(self, t: float, mu: float) -> float:
        """Rate offset (bytes/second) to add at time ``t``."""
        return (self.amplitude_frac * mu
                * math.sin(2.0 * math.pi * self.frequency * t))


@dataclass(frozen=True)
class ElasticityReading:
    """One elasticity measurement.

    Attributes:
        time: when the window ended.
        elasticity: peak-to-background ratio at the pulse frequency
            (dimensionless; ~1 for inelastic, >> 1 for elastic).
        peak_amplitude: raw |Z(f_p)| (bytes/second).
        background_amplitude: median |Z(f)| over the comparison band.
        mean_cross_rate: mean of ẑ over the window (bytes/second).
    """

    time: float
    elasticity: float
    peak_amplitude: float
    background_amplitude: float
    mean_cross_rate: float


def _spectrum_elasticity(z: np.ndarray, sample_interval: float,
                         pulse_freq: float, band: tuple[float, float],
                         significance_floor: float = 0.0
                         ) -> tuple[float, float, float]:
    """Return (elasticity, peak, background) for one window of ẑ.

    ``significance_floor`` is a rate amplitude (bytes/second): a cross-
    traffic oscillation smaller than this is insignificant, so it is
    added to the background before taking the ratio.  Without it, an
    all-but-empty path (ẑ ~ 0 everywhere) can produce arbitrarily large
    ratios out of numerical residue.
    """
    n = len(z)
    detrended = z - z.mean()
    windowed = detrended * np.hanning(n)
    spectrum = np.abs(np.fft.rfft(windowed))
    freqs = np.fft.rfftfreq(n, d=sample_interval)

    # Peak: the pulse-frequency bin and its immediate neighbours (the
    # Hann window spreads a tone over ~2 bins).
    pulse_idx = int(np.argmin(np.abs(freqs - pulse_freq)))
    lo = max(0, pulse_idx - 1)
    hi = min(len(spectrum), pulse_idx + 2)
    peak = float(spectrum[lo:hi].max())

    # Background: median amplitude in the band, excluding the pulse
    # bins (and their spread).
    in_band = (freqs >= band[0]) & (freqs <= band[1])
    exclude = np.zeros_like(in_band)
    exclude[max(0, pulse_idx - 2):pulse_idx + 3] = True
    comparison = spectrum[in_band & ~exclude]
    if len(comparison) == 0:
        raise AnalysisError(
            "comparison band is empty; widen band or window")
    background = float(np.median(comparison))
    # A Hann-windowed sine of amplitude `a` over n samples produces an
    # rfft peak of ~ a*n/4; convert the rate floor to spectrum units.
    floor = significance_floor * n / 4.0
    denom = max(background + floor, 1e-12)
    return peak / denom, peak, background


class ElasticityEstimator:
    """Streaming elasticity estimator over a sliding window of ẑ samples.

    Feed ẑ samples at a fixed cadence with :meth:`add_sample`; every
    ``update_interval`` seconds (once the window is full) a new
    :class:`ElasticityReading` is appended to :attr:`readings`.

    Args:
        pulse_freq: the probe's pulse frequency (Hz).
        sample_interval: spacing of ẑ samples (seconds).
        window: FFT window length (seconds); 5 s at f_p = 5 Hz gives
            25 pulse periods per window.
        update_interval: how often to emit a reading (seconds).
        band: comparison band (Hz) for the background estimate.
        significance_frac: oscillations below this fraction of
            :attr:`scale` are insignificant (see
            :func:`_spectrum_elasticity`); ignored while ``scale`` is 0.
    """

    def __init__(self, pulse_freq: float = 5.0,
                 sample_interval: float = 0.01, window: float = 5.0,
                 update_interval: float = 0.5,
                 band: tuple[float, float] = (1.0, 12.0),
                 significance_frac: float = 0.01):
        if window < 4.0 / pulse_freq:
            raise ConfigError("window must cover several pulse periods")
        if sample_interval <= 0 or sample_interval > 1.0 / (2 * pulse_freq):
            raise ConfigError(
                "sample_interval must satisfy Nyquist for the pulse")
        self.pulse_freq = pulse_freq
        self.sample_interval = sample_interval
        self.window_samples = int(round(window / sample_interval))
        self.update_interval = update_interval
        self.band = band
        self.significance_frac = significance_frac
        #: rate scale (bytes/second) for the significance floor; the
        #: owner (e.g. NimbusCca) keeps this at its capacity estimate.
        self.scale = 0.0
        self._samples: list[float] = []
        self._times: list[float] = []
        self._last_update = float("-inf")
        self.readings: list[ElasticityReading] = []

    def add_sample(self, now: float, z: float) -> ElasticityReading | None:
        """Add one ẑ sample; returns a new reading when one is emitted."""
        self._samples.append(float(z))
        self._times.append(now)
        max_keep = self.window_samples
        if len(self._samples) > max_keep:
            del self._samples[:-max_keep]
            del self._times[:-max_keep]
        if (len(self._samples) < self.window_samples
                or now - self._last_update < self.update_interval):
            return None
        self._last_update = now
        z_arr = np.asarray(self._samples)
        elasticity, peak, background = _spectrum_elasticity(
            z_arr, self.sample_interval, self.pulse_freq, self.band,
            significance_floor=self.significance_frac * self.scale)
        reading = ElasticityReading(
            time=now, elasticity=elasticity, peak_amplitude=peak,
            background_amplitude=background,
            mean_cross_rate=float(z_arr.mean()))
        self.readings.append(reading)
        return reading


def elasticity_series(times, z_values, pulse_freq: float = 5.0,
                      window: float = 5.0, step: float = 0.5,
                      band: tuple[float, float] = (1.0, 12.0)
                      ) -> list[ElasticityReading]:
    """Offline sliding-window elasticity over a recorded ẑ series.

    ``times`` must be evenly spaced; the sample interval is inferred.
    """
    t = np.asarray(times, dtype=float)
    z = np.asarray(z_values, dtype=float)
    if len(t) != len(z):
        raise AnalysisError("times and z_values must have equal length")
    if len(t) < 3:
        raise AnalysisError("need at least three samples")
    intervals = np.diff(t)
    dt = float(np.median(intervals))
    if np.any(np.abs(intervals - dt) > dt * 0.01):
        raise AnalysisError("times must be evenly spaced")

    win = int(round(window / dt))
    hop = max(1, int(round(step / dt)))
    out: list[ElasticityReading] = []
    for end in range(win, len(z) + 1, hop):
        seg = z[end - win:end]
        elasticity, peak, background = _spectrum_elasticity(
            seg, dt, pulse_freq, band)
        out.append(ElasticityReading(
            time=float(t[end - 1]), elasticity=elasticity,
            peak_amplitude=peak, background_amplitude=background,
            mean_cross_rate=float(seg.mean())))
    return out
