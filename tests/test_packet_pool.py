"""Tests for the packet free-list pool (reuse must not leak state)."""

import repro.sim.packet as packet_mod
from repro.sim.packet import (Packet, PacketKind, make_ack, make_data,
                              pool_size, recycle)


def _drain_pool():
    packet_mod._FREE.clear()


def test_recycle_then_make_reuses_the_object():
    _drain_pool()
    p = make_data("f1", seq=0, payload=100)
    recycle(p)
    assert pool_size() == 1
    q = make_data("f2", seq=500, payload=200)
    assert q is p
    assert pool_size() == 0


def test_reuse_does_not_leak_header_fields():
    _drain_pool()
    p = make_data("f1", seq=0, payload=100, ecn_capable=True)
    # Dirty every mutable field a qdisc/endpoint can touch in flight.
    p.ecn_marked = True
    p.enqueue_time = 123.456
    p.sack_blocks = ((0, 100), (200, 300))
    p.sacked = 3
    p.sent_time = 9.0
    p.ack_of_sent_time = 8.5
    p.app_limited = True
    p.retransmit = True
    p.rwnd = 65535
    p.ecn_echo = True
    recycle(p)
    q = make_data("f2", seq=1000, payload=50)
    assert q is p
    assert not q.ecn_marked
    assert q.enqueue_time == 0.0
    assert q.sack_blocks == ()
    assert q.sacked == 0
    assert q.sent_time == 0.0
    assert q.ack_of_sent_time is None
    assert not q.app_limited
    assert not q.retransmit
    assert q.rwnd is None
    assert not q.ecn_echo
    assert not q.ecn_capable  # not inherited from the prior lifetime
    assert q.flow_id == "f2"
    assert q.user_id == "f2"
    assert q.seq == 1000
    assert q.end_seq == 1050


def test_reused_ack_resets_data_fields():
    _drain_pool()
    p = make_data("f1", seq=7000, payload=1448)
    recycle(p)
    a = make_ack("f1", ack=8448)
    assert a is p
    assert a.kind is PacketKind.ACK
    assert a.seq == 0
    assert a.end_seq == 0
    assert a.payload == 0
    assert a.ack == 8448


def test_double_recycle_is_a_noop():
    _drain_pool()
    p = make_data("f1", seq=0, payload=100)
    recycle(p)
    recycle(p)
    assert pool_size() == 1


def test_pooled_sentinel_and_fresh_ids():
    _drain_pool()
    p = make_data("f1", seq=0, payload=100)
    old_id = p.packet_id
    recycle(p)
    assert p.packet_id == 0  # pooled sentinel
    q = make_data("f1", seq=0, payload=100)
    assert q.packet_id != 0
    assert q.packet_id != old_id  # a reuse is a new wire lifetime


def test_pool_is_bounded():
    _drain_pool()
    packets = [Packet("f", PacketKind.DATA, 1500)
               for _ in range(packet_mod._POOL_LIMIT + 10)]
    for p in packets:
        recycle(p)
    assert pool_size() == packet_mod._POOL_LIMIT
    _drain_pool()


def test_simulation_consumption_recycles():
    # An end-to-end transfer recycles terminally-consumed packets: run
    # a short dumbbell scenario and observe the pool being fed.
    _drain_pool()
    from repro.qa.scenario import Scenario, run_scenario
    scenario = Scenario(family="probe", rate_mbps=10.0, rtt_ms=20.0,
                        qdisc="droptail", duration=2.0, seed=1,
                        cross_traffic="cbr")
    outcome = run_scenario(scenario, check_invariants=False)
    assert outcome.total_delivered > 0
    assert pool_size() > 0
