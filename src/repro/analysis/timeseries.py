"""Rate and delay time series derived from packet-level observations.

Measurement code attaches a :class:`RateMeter` as a link tap to turn
packet deliveries into a binned rate series (the ground-truth
cross-traffic signal for elasticity experiments), and uses the jitter
helpers for the §5.2 token-bucket study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import AnalysisError


class RateMeter:
    """Bin packet sizes into fixed intervals to produce a rate series.

    Attach via ``link.add_tap(meter.on_packet)``.  Optionally filter to
    a subset of flows with ``flow_filter``.

    Args:
        bin_width: bin size in seconds.
        flow_filter: ``fn(flow_id) -> bool``; None counts everything.
    """

    def __init__(self, bin_width: float = 0.01,
                 flow_filter: Optional[Callable[[str], bool]] = None):
        if bin_width <= 0:
            raise AnalysisError(f"bin_width must be positive: {bin_width}")
        self.bin_width = bin_width
        self.flow_filter = flow_filter
        self._bins: dict[int, int] = {}
        self.total_bytes = 0

    def on_packet(self, packet, now: float) -> None:
        """Link-tap entry point."""
        if self.flow_filter is not None and not self.flow_filter(
                packet.flow_id):
            return
        self.add(now, packet.size)

    def add(self, now: float, nbytes: int) -> None:
        """Record ``nbytes`` observed at time ``now``."""
        idx = int(now / self.bin_width)
        self._bins[idx] = self._bins.get(idx, 0) + nbytes
        self.total_bytes += nbytes

    def series(self, t_start: float, t_end: float
               ) -> tuple[np.ndarray, np.ndarray]:
        """(times, rates) with rates in bytes/second over [t_start, t_end)."""
        first = int(t_start / self.bin_width)
        last = int(np.ceil(t_end / self.bin_width))
        idx = np.arange(first, last)
        times = (idx + 0.5) * self.bin_width
        rates = np.array([self._bins.get(int(i), 0) for i in idx],
                         dtype=float) / self.bin_width
        return times, rates

    def mean_rate(self, t_start: float, t_end: float) -> float:
        """Average rate (bytes/second) over the interval."""
        if t_end <= t_start:
            raise AnalysisError("t_end must exceed t_start")
        _, rates = self.series(t_start, t_end)
        return float(rates.mean()) if len(rates) else 0.0


class DelayMeter:
    """Record one-way delays (arrival time minus ``sent_time``) of
    delivered packets, for jitter analysis.  Attach as a tap at the
    delivery point."""

    def __init__(self, flow_filter: Optional[Callable[[str], bool]] = None):
        self.flow_filter = flow_filter
        self.times: list[float] = []
        self.delays: list[float] = []

    def on_packet(self, packet, now: float) -> None:
        if self.flow_filter is not None and not self.flow_filter(
                packet.flow_id):
            return
        self.times.append(now)
        self.delays.append(now - packet.sent_time)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.delays)


def ewma(values, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average of a series."""
    if not 0 < alpha <= 1:
        raise AnalysisError(f"alpha must be in (0, 1]: {alpha}")
    x = np.asarray(values, dtype=float)
    out = np.empty_like(x)
    acc = 0.0
    for i, v in enumerate(x):
        acc = v if i == 0 else (1 - alpha) * acc + alpha * v
        out[i] = acc
    return out


def jitter_metrics(delays) -> dict[str, float]:
    """Jitter summary of a delay series.

    Reports RFC 3550 interarrival jitter (EWMA of successive delay
    differences), delay span percentiles (p99 - p1), and the standard
    deviation -- the §5.2 quantities of interest.
    """
    d = np.asarray(delays, dtype=float)
    if len(d) < 2:
        raise AnalysisError("need at least two delay samples")
    rfc3550 = 0.0
    for diff in np.abs(np.diff(d)):
        rfc3550 += (diff - rfc3550) / 16.0
    return {
        "rfc3550_jitter": float(rfc3550),
        "delay_p50": float(np.percentile(d, 50)),
        "delay_p99": float(np.percentile(d, 99)),
        "delay_span_p99_p1": float(np.percentile(d, 99)
                                   - np.percentile(d, 1)),
        "delay_std": float(np.std(d)),
        "mean_abs_diff": float(np.mean(np.abs(np.diff(d)))),
    }
