"""Experiment E1 / Figure 2: the §3.1 M-Lab NDT passive analysis.

Generates the synthetic stand-in for the paper's one-month NDT query
(9,984 flows, June 2023), applies the §3.1 filters, runs change-point
detection on the remaining flows' throughput series, and reports the
category breakdown plus -- our addition -- ground-truth validation of
the passive inference.

Paper-shape expectations: a large majority of flows is removed as
application-limited, receiver-limited, or cellular; only a small
residual fraction shows throughput level shifts, and some of those
shifts (policed flows) are not contention at all.

Above :data:`STREAMING_THRESHOLD` flows (or with ``streaming=True``,
``--flows 1000000`` on the CLI) the run goes through the out-of-core
shard pipeline (:func:`repro.ndt.stream.run_pipeline_streaming`):
bounded memory, store-checkpointed shards (``--resume`` picks an
interrupted run back up), and aggregates byte-identical to the
materialized path.
"""

from __future__ import annotations

from .. import viz
from ..ndt.filters import FlowCategory
from ..ndt.pipeline import run_pipeline
from ..ndt.stream import run_pipeline_streaming
from ..ndt.synth import DEFAULT_CHUNK_SIZE, PopulationModel, \
    SyntheticNdtGenerator
from ..units import to_mbps
from .runner import ExperimentResult, Stopwatch

#: The paper analysed 9,984 flows from June 2023.
PAPER_FLOW_COUNT = 9_984

#: Populations above this stream out of core by default.
STREAMING_THRESHOLD = 20_000


def run(n_flows: int = PAPER_FLOW_COUNT, seed: int = 2023,
        min_relative_shift: float = 0.25,
        model: PopulationModel | None = None,
        workers: int | None = None,
        streaming: bool | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        resume: bool = False,
        cluster: str | None = None) -> ExperimentResult:
    """Run the Figure 2 pipeline.

    ``workers`` fans the analysis out over processes (default:
    ``REPRO_WORKERS`` env var, then CPU count); results are identical
    for any value.  ``streaming`` selects the out-of-core shard
    pipeline (default: only above :data:`STREAMING_THRESHOLD` flows);
    ``chunk_size`` is its flows-per-shard memory/checkpoint unit and
    ``resume`` continues an interrupted streamed run.  ``cluster``
    ("host1:8765,host2:...") shards a streamed run across serve nodes.
    """
    with Stopwatch() as watch:
        streamed = (streaming if streaming is not None
                    else (n_flows > STREAMING_THRESHOLD
                          or cluster is not None))
        if cluster:
            from ..cluster import run_clustered_fig2
            result = run_clustered_fig2(
                n_flows, cluster, seed=seed, model=model,
                chunk_size=chunk_size,
                min_relative_shift=min_relative_shift,
                workers=workers, resume=resume)
        elif streamed:
            result = run_pipeline_streaming(
                n_flows, seed=seed, model=model, chunk_size=chunk_size,
                min_relative_shift=min_relative_shift,
                workers=workers, resume=resume)
        else:
            dataset = SyntheticNdtGenerator(model=model, seed=seed) \
                .generate(n_flows)
            result = run_pipeline(dataset,
                                  min_relative_shift=min_relative_shift,
                                  workers=workers)
        quality = result.detector_quality()

    rows = [{"category": name, "flows": count, "fraction": round(frac, 4)}
            for name, count, frac in result.summary_rows()]
    cdf_rows = [
        {"category": cat.value, "throughput_mbps": round(to_mbps(v), 3),
         "cdf": round(f, 4)}
        for cat in FlowCategory
        if result.counts.get(cat, 0) > 0
        for v, f in (result.throughput_sketch(cat) if streamed
                     else result.throughput_cdf(cat))
        .points(max_points=100)
    ]

    parts = [
        f"Figure 2 reproduction: {n_flows} synthetic NDT flows "
        f"(seed={seed}"
        + (f", streamed in {len(result.shards)} shards)" if streamed
           else ")"),
        "",
        viz.table(
            [(r["category"], r["flows"], f"{r['fraction']:.1%}")
             for r in rows],
            header=("category", "flows", "fraction")),
        "",
        viz.bar_chart(
            [r["category"] for r in rows],
            [r["fraction"] for r in rows],
            title="Flow categorization (fractions)", fmt="{:.1%}"),
        "",
        "Ground-truth validation of 'level shift => contention' "
        "(synthetic only):",
        viz.table(
            [(k, f"{v:.3g}") for k, v in quality.items()],
            header=("measure", "value")),
    ]

    metrics = {
        "n_flows": float(n_flows),
        "fraction_filtered": result.fraction_filtered,
        "fraction_app_limited": result.fraction(FlowCategory.APP_LIMITED),
        "fraction_rwnd_limited": result.fraction(FlowCategory.RWND_LIMITED),
        "fraction_cellular": result.fraction(FlowCategory.CELLULAR),
        "fraction_remaining": result.fraction(FlowCategory.REMAINING),
        "fraction_possible_contention":
            result.fraction_possible_contention,
        "detector_precision": quality["precision"],
        "detector_recall": quality["recall"],
    }
    if streamed and len(result.shards) >= 2:
        point, ci_low, ci_high = result.fraction_ci()
        metrics["possible_contention_ci_low"] = ci_low
        metrics["possible_contention_ci_high"] = ci_high
        parts.append("")
        parts.append(f"possible contention: {point:.2%} "
                     f"(95% CI [{ci_low:.2%}, {ci_high:.2%}], "
                     f"cluster bootstrap over {len(result.shards)} "
                     "shards)")
    return ExperimentResult(
        experiment="fig2",
        text="\n".join(parts),
        metrics=metrics,
        tables={"categories": rows, "throughput_cdfs": cdf_rows},
        params={"n_flows": n_flows, "seed": seed,
                "min_relative_shift": min_relative_shift,
                "workers": workers, "streaming": streamed,
                "chunk_size": chunk_size},
        elapsed_s=watch.elapsed,
    )
