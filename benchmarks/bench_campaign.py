"""Benchmark E7: the measurement campaign the paper proposes.

Runs elasticity probes over a sampled path population with ground
truth and asserts (a) the detector classifies paths accurately,
(b) probed contention tracks true contention, and (c) FQ paths never
register as contending -- the §2.1 isolation effect, end to end.

Also sweeps the detector threshold (the E7 ROC ablation) and the
probe's pulse parameters (the DESIGN.md design-choice ablation).
"""

from repro.cca import RenoCca
from repro.core.probe import ElasticityProbe
from repro.experiments import campaign_eval
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms

from conftest import once


def test_campaign(benchmark, bench_scale):
    if bench_scale == "full":
        n_paths, duration = 36, 30.0
    else:
        n_paths, duration = 10, 15.0
    result = once(benchmark, campaign_eval.run, n_paths=n_paths,
                  duration=duration, seed=1)

    print()
    print(result.text)

    m = result.metrics
    # On paths the instrument can see, it classifies well.
    assert m["detector_accuracy"] > 0.75
    # Measured contention fraction tracks ground truth within the
    # masked-path inflation.
    assert abs(m["fraction_contending"]
               - m["true_fraction_contending"]) < 0.25
    # Idle/inelastic FQ paths read clean (isolation works when there
    # is nothing to hide)...
    quiet_fq = [r for r in result.tables["paths"]
                if r["qdisc"] == "fq"
                and r["cross_traffic"] in ("none", "video", "poisson",
                                           "cbr")]
    if quiet_fq:
        alarms = sum(1 for r in quiet_fq if r["verdict"])
        assert alarms <= len(quiet_fq) // 2
    # ...while elastic-cross-behind-FQ is the documented blind spot:
    # those paths tend to read contending (fair-share capping mirrors
    # the probe's pulses).
    if m["n_masked"] >= 2:
        assert m["masked_reads_contending"] >= 0.5


def _probe_once(cross: str, pulse_freq: float, amplitude: float,
                duration: float) -> float:
    sim = Simulator()
    path = dumbbell(sim, mbps(48), ms(100))
    probe = ElasticityProbe(sim, path, capacity_hint=mbps(48),
                            pulse_freq=pulse_freq,
                            pulse_amplitude=amplitude)
    probe.start()
    if cross == "reno":
        conn = Connection(sim, path, "cross", RenoCca())
        conn.sender.set_infinite_backlog()
    sim.run(until=duration)
    return probe.report().mean_elasticity


def test_pulse_parameter_ablation(benchmark, bench_scale):
    """The contending/non-contending separation survives reasonable
    pulse-frequency and amplitude choices (it is not a knife-edge
    artifact of the defaults)."""
    duration = 40.0 if bench_scale == "full" else 25.0
    configs = [(5.0, 0.25), (5.0, 0.15), (3.0, 0.25)]

    def sweep():
        rows = []
        for freq, amp in configs:
            contended = _probe_once("reno", freq, amp, duration)
            idle = _probe_once("none", freq, amp, duration)
            rows.append((freq, amp, idle, contended))
        return rows

    rows = once(benchmark, sweep)
    print()
    for freq, amp, idle, contended in rows:
        print(f"  fp={freq} A={amp}: idle={idle:.2f} "
              f"contended={contended:.2f}")
        assert contended > 1.5 * max(idle, 0.5), (
            f"separation lost at fp={freq}, A={amp}")
