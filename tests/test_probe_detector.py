"""Tests for the elasticity probe, detector, and Nimbus CCA wiring.

These are the paper's §3.2 claims in miniature: the probe reports
clearly higher elasticity against contending cross traffic than
against application-limited or constant-rate traffic.
"""

import pytest

from repro.cca import RenoCca
from repro.cca.nimbus import NimbusCca
from repro.core.detector import (ContentionDetector, confusion_counts)
from repro.core.elasticity import ElasticityReading
from repro.core.probe import ElasticityProbe
from repro.errors import ConfigError
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms, to_mbps


def reading(t, e):
    return ElasticityReading(time=t, elasticity=e, peak_amplitude=0.0,
                             background_amplitude=0.0, mean_cross_rate=0.0)


class TestDetector:
    def test_mean_rule(self):
        det = ContentionDetector(threshold=2.0, rule="mean")
        verdict = det.verdict([reading(1.0, 1.0), reading(2.0, 5.0)])
        assert verdict.contending  # mean 3.0 >= 2.0
        assert verdict.mean_elasticity == pytest.approx(3.0)

    def test_fraction_rule(self):
        det = ContentionDetector(threshold=2.0, rule="fraction",
                                 min_fraction=0.5)
        readings = [reading(float(i), 3.0 if i % 3 == 0 else 1.0)
                    for i in range(9)]
        verdict = det.verdict(readings)
        assert not verdict.contending  # only 1/3 above

    def test_warmup_excludes_early_readings(self):
        det = ContentionDetector(threshold=2.0, warmup=5.0)
        verdict = det.verdict([reading(1.0, 100.0), reading(6.0, 1.0)])
        assert not verdict.contending
        assert verdict.n_readings == 1

    def test_no_readings_is_not_contending(self):
        verdict = ContentionDetector().verdict([])
        assert not verdict.contending
        assert verdict.n_readings == 0

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            ContentionDetector(threshold=0)
        with pytest.raises(ConfigError):
            ContentionDetector(rule="vibes")

    def test_confusion_counts(self):
        quality = confusion_counts([True, True, False, False],
                                   [True, False, True, False])
        assert quality["tp"] == 1 and quality["fp"] == 1
        assert quality["fn"] == 1 and quality["tn"] == 1
        assert quality["accuracy"] == 0.5

    def test_confusion_requires_alignment(self):
        with pytest.raises(ConfigError):
            confusion_counts([True], [True, False])


class TestNimbusCca:
    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            NimbusCca(delay_target=-1.0)
        with pytest.raises(ConfigError):
            NimbusCca(elasticity_high=1.0, elasticity_low=2.0)
        with pytest.raises(ConfigError):
            NimbusCca(fixed_mode="warp")

    def test_capacity_hint_is_mu(self):
        cca = NimbusCca(capacity_hint=6e6)
        assert cca.mu == 6e6

    def test_delay_target_scales_with_pulses(self):
        gentle = NimbusCca(pulse_freq=5.0, pulse_amplitude=0.125)
        strong = NimbusCca(pulse_freq=5.0, pulse_amplitude=0.25)
        assert strong.delay_target > gentle.delay_target

    def test_fixed_tcp_mode_starts_in_tcp(self):
        cca = NimbusCca(mode_switching=False, fixed_mode="tcp")
        assert cca.mode == "tcp"

    def test_probe_saturates_empty_link(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(48), ms(100))
        probe = ElasticityProbe(sim, path, capacity_hint=mbps(48))
        probe.start()
        sim.run(until=20.0)
        report = probe.report()
        assert to_mbps(report.mean_throughput) > 35.0

    def test_mu_estimated_without_hint(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(48), ms(100))
        probe = ElasticityProbe(sim, path, capacity_hint=None)
        probe.start()
        sim.run(until=20.0)
        assert to_mbps(probe.cca.mu) > 30.0


class TestProbeEndToEnd:
    @staticmethod
    def run_probe(cross: str, duration=30.0):
        sim = Simulator()
        path = dumbbell(sim, mbps(48), ms(100))
        probe = ElasticityProbe(sim, path, capacity_hint=mbps(48))
        probe.start()
        if cross == "reno":
            conn = Connection(sim, path, "cross", RenoCca())
            conn.sender.set_infinite_backlog()
        sim.run(until=duration)
        return probe.report()

    def test_elastic_cross_scores_higher_than_empty(self):
        empty = self.run_probe("none")
        contended = self.run_probe("reno")
        assert contended.mean_elasticity > 2 * empty.mean_elasticity
        assert contended.mean_elasticity > 2.0
        assert empty.mean_elasticity < 2.0

    def test_report_window_selection(self):
        report = self.run_probe("none", duration=20.0)
        assert report.readings
        assert all(r.time >= 6.0 for r in report.readings)

    def test_verdict_matches_threshold(self):
        report = self.run_probe("reno")
        assert report.verdict(threshold=2.0)
        assert not report.verdict(threshold=1e9)


class TestModeSwitching:
    def test_switches_to_tcp_against_elastic_cross(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(48), ms(100))
        cca = NimbusCca(capacity_hint=mbps(48), mode_switching=True,
                        elasticity_high=2.0, elasticity_low=0.5,
                        min_rate_frac=0.25)
        conn = Connection(sim, path, "nimbus", cca)
        conn.sender.set_infinite_backlog()
        rival = Connection(sim, path, "rival", RenoCca())
        rival.sender.set_infinite_backlog()
        sim.run(until=40.0)
        assert any(mode == "tcp" for _, mode in cca.mode_log)

    def test_stays_in_delay_mode_alone(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(48), ms(100))
        cca = NimbusCca(capacity_hint=mbps(48), mode_switching=True,
                        min_rate_frac=0.25)
        conn = Connection(sim, path, "nimbus", cca)
        conn.sender.set_infinite_backlog()
        sim.run(until=30.0)
        assert cca.mode == "delay"
        assert not cca.mode_log


class TestTriStateVerdict:
    def test_bands(self):
        det = ContentionDetector(clean_below=1.5, contending_above=2.6)
        assert det.verdict([reading(1.0, 0.8)]).category == "clean"
        assert det.verdict([reading(1.0, 2.0)]).category == "inconclusive"
        assert det.verdict([reading(1.0, 3.5)]).category == "contending"

    def test_no_readings_is_clean(self):
        assert ContentionDetector().verdict([]).category == "clean"

    def test_invalid_bands_rejected(self):
        with pytest.raises(ConfigError):
            ContentionDetector(clean_below=3.0, contending_above=2.0)

    def test_binary_and_category_are_consistent(self):
        det = ContentionDetector(threshold=2.0, clean_below=1.5,
                                 contending_above=2.6)
        confident = det.verdict([reading(1.0, 3.0)])
        assert confident.contending and confident.category == "contending"
        clean = det.verdict([reading(1.0, 1.0)])
        assert not clean.contending and clean.category == "clean"
