"""The active measurement probe of §3.2.

An :class:`ElasticityProbe` is a speedtest-style flow that runs Nimbus
with mode switching disabled and pulses maintained, and reports the
elasticity of whatever cross traffic shares its bottleneck.  It owns a
transport connection on an existing path and exposes the elasticity
time series plus summary verdicts.

The probe is the tool the paper proposes pointing at many Internet
paths to settle its hypothesis; :mod:`repro.core.campaign` runs fleets
of them over synthetic path populations.

Known sensitivity: elasticity readings degrade when the path's
queueing delay is both large and fast-varying (very deep buffers under
loss-based competition, or high-volatility cellular links), because
the S(t - srtt) alignment inside ẑ smears; see E11 in EXPERIMENTS.md
for the measured boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cca.nimbus import NimbusCca
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..tcp.endpoint import Connection
from ..units import DEFAULT_MSS
from .elasticity import ElasticityReading


@dataclass(frozen=True)
class ProbeReport:
    """Outcome of one probe run.

    Attributes:
        readings: elasticity time series.
        mean_elasticity: mean over the (post-warmup) readings.
        peak_elasticity: max over the readings.
        mean_throughput: the probe's goodput (bytes/second).
        duration: measurement duration (seconds).
    """

    readings: tuple[ElasticityReading, ...]
    mean_elasticity: float
    peak_elasticity: float
    mean_throughput: float
    duration: float

    def verdict(self, threshold: float = 2.0) -> bool:
        """True if the path showed elastic (contending) cross traffic."""
        return self.mean_elasticity >= threshold


class ElasticityProbe:
    """A Nimbus measurement flow attached to a path.

    Args:
        sim: the simulator.
        path: topology handles from a builder in :mod:`repro.sim.network`.
        flow_id: the probe flow's identifier.
        capacity_hint: bottleneck capacity if known (speedtest servers
            typically learn it in a warmup phase); None auto-estimates.
        pulse_freq / pulse_amplitude: pulse parameters.  The amplitude
            default (0.35 of μ) is higher than deployed Nimbus's 0.25:
            a dedicated measurement flow can afford stronger pulses,
            and the extra drive is what makes weakly-reactive cross
            traffic (BBRv1's smoothed pacing) visible above bursty
            application traffic.  Calibration table in DESIGN.md.
        warmup: seconds of readings to discard in summaries.
        probe_mode: Nimbus base controller, "delay" (default) or "tcp".
        min_rate_frac: starvation floor for the delay controller; the
            0.25 default keeps the probe's pulses visible even when
            backlogged cross traffic would otherwise squeeze it out.
    """

    def __init__(self, sim: Simulator, path: PathHandles,
                 flow_id: str = "probe", capacity_hint: float | None = None,
                 pulse_freq: float = 5.0, pulse_amplitude: float = 0.35,
                 warmup: float = 6.0, mss: int = DEFAULT_MSS,
                 probe_mode: str = "delay", min_rate_frac: float = 0.25,
                 jitter=None):
        self.sim = sim
        self.flow_id = flow_id
        self.warmup = warmup
        self.cca = NimbusCca(
            mss=mss, capacity_hint=capacity_hint, pulse_freq=pulse_freq,
            pulse_amplitude=pulse_amplitude, mode_switching=False,
            fixed_mode=probe_mode, min_rate_frac=min_rate_frac)
        self.connection = Connection(sim, path, flow_id, self.cca,
                                     jitter=jitter)
        self._started_at: float | None = None

    def start(self) -> None:
        """Begin probing (persistently backlogged from now on)."""
        self._started_at = self.sim.now
        self.connection.sender.set_infinite_backlog()

    @property
    def readings(self) -> list[ElasticityReading]:
        return self.cca.elasticity_readings

    def readings_between(self, t_start: float, t_end: float
                         ) -> list[ElasticityReading]:
        """Readings whose window ended within [t_start, t_end)."""
        return [r for r in self.readings if t_start <= r.time < t_end]

    def report(self, t_start: float | None = None,
               t_end: float | None = None) -> ProbeReport:
        """Summarize the probe's measurements over a time range."""
        started = self._started_at if self._started_at is not None else 0.0
        lo = t_start if t_start is not None else started + self.warmup
        hi = t_end if t_end is not None else self.sim.now
        readings = tuple(self.readings_between(lo, hi))
        if readings:
            values = [r.elasticity for r in readings]
            mean_e = sum(values) / len(values)
            peak_e = max(values)
        else:
            mean_e = 0.0
            peak_e = 0.0
        duration = max(hi - started, 1e-9)
        throughput = self.connection.receiver.received_bytes / duration
        return ProbeReport(readings=readings, mean_elasticity=mean_e,
                           peak_elasticity=peak_e,
                           mean_throughput=throughput, duration=hi - lo)
