"""TCP Vegas: delay-based congestion avoidance.

Vegas compares the expected rate (cwnd / base RTT) against the actual
rate (cwnd / current RTT) and keeps the difference -- the number of
packets it estimates it has queued at the bottleneck -- between
``alpha`` and ``beta``.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import DEFAULT_MSS
from .base import AckSample, CongestionControl


class VegasCca(CongestionControl):
    """Vegas with once-per-RTT window adjustment.

    Args:
        alpha: grow the window below this many queued packets.
        beta: shrink the window above this many queued packets.
        gamma: leave slow start once the queue estimate exceeds this.
    """

    name = "vegas"

    def __init__(self, mss: int = DEFAULT_MSS, initial_cwnd: float = 10.0,
                 alpha: float = 2.0, beta: float = 4.0, gamma: float = 1.0):
        super().__init__(mss=mss)
        if not 0 < alpha <= beta:
            raise ConfigError("need 0 < alpha <= beta")
        self._cwnd = float(initial_cwnd)
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.min_cwnd = 2.0
        self._in_slow_start = True
        self._next_adjust_time = 0.0

    @property
    def cwnd(self) -> float:
        return self._cwnd

    @property
    def in_slow_start(self) -> bool:
        return self._in_slow_start

    def _queue_estimate(self, sample: AckSample) -> float | None:
        if sample.min_rtt is None or sample.rtt is None or sample.rtt <= 0:
            return None
        expected = self._cwnd / sample.min_rtt
        actual = self._cwnd / sample.rtt
        return (expected - actual) * sample.min_rtt  # packets in queue

    def on_ack(self, sample: AckSample) -> None:
        if sample.in_recovery:
            return
        diff = self._queue_estimate(sample)
        if self._in_slow_start:
            # Double every other RTT (half-rate slow start) until the
            # queue estimate crosses gamma.
            self._cwnd += sample.acked_bytes / self.mss / 2.0
            if diff is not None and diff > self.gamma:
                self._in_slow_start = False
                self._cwnd = max(self._cwnd - diff, self.min_cwnd)
            return
        if diff is None or sample.now < self._next_adjust_time:
            return
        rtt = sample.srtt if sample.srtt is not None else sample.rtt or 0.1
        self._next_adjust_time = sample.now + rtt
        if diff < self.alpha:
            self._cwnd += 1.0
        elif diff > self.beta:
            self._cwnd = max(self._cwnd - 1.0, self.min_cwnd)

    def on_loss(self, now: float, lost_bytes: int) -> None:
        self._in_slow_start = False
        self._cwnd = max(self._cwnd * 0.75, self.min_cwnd)

    def on_rto(self, now: float) -> None:
        self._in_slow_start = False
        self._cwnd = max(2.0, self.min_cwnd)
